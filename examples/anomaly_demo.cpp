// Demonstrates WHY a fault-tolerance shim is needed: runs the same
// concurrent workload twice — once writing directly to (simulated, eventually
// consistent) DynamoDB, once through AFT — and audits every transaction for
// read-your-write and fractured-read anomalies with the embedded-metadata
// checker of §6.1.2.
//
//   $ ./build/examples/anomaly_demo

#include <cstdio>

#include "src/cluster/deployment.h"
#include "src/storage/sim_dynamo.h"
#include "src/workload/dataset.h"
#include "src/workload/harness.h"

using namespace aft;

namespace {

WorkloadSpec DemoSpec() {
  WorkloadSpec spec;
  spec.num_keys = 200;     // Small + hot: anomalies show up quickly.
  spec.zipf_theta = 1.0;
  spec.value_bytes = 512;
  return spec;
}

HarnessOptions DemoHarness() {
  HarnessOptions options;
  options.num_clients = 8;
  options.requests_per_client = 100;
  return options;
}

}  // namespace

int main() {
  RealClock clock(0.02);  // 50x faster than real time.

  std::printf("workload: %zu clients x %zu requests, 2 functions x (2 reads + 1 write)\n\n",
              DemoHarness().num_clients, DemoHarness().requests_per_client);

  // ---- Round 1: plain DynamoDB, no shim --------------------------------------
  HarnessResult plain_result;
  {
    SimDynamo storage(clock);
    (void)LoadPlainDataset(storage, DemoSpec());
    FaasPlatform faas(clock);
    TxnPlanGenerator plans(DemoSpec());
    PlainRequestRunner runner(faas, storage, clock, plans);
    plain_result = RunClients(clock, runner, DemoHarness());
  }
  std::printf("PLAIN   : %4llu txns, %3llu read-your-write anomalies, %3llu fractured reads\n",
              static_cast<unsigned long long>(plain_result.completed),
              static_cast<unsigned long long>(plain_result.ryw_anomalies),
              static_cast<unsigned long long>(plain_result.fr_anomalies));

  // ---- Round 2: the same workload through AFT --------------------------------
  HarnessResult aft_result;
  {
    SimDynamo storage(clock);
    (void)LoadAftDataset(storage, DemoSpec());
    ClusterOptions cluster_options;
    cluster_options.num_nodes = 2;
    ClusterDeployment cluster(storage, clock, cluster_options);
    if (!cluster.Start().ok()) {
      return 1;
    }
    FaasPlatform faas(clock);
    AftClient client(cluster.balancer(), clock);
    TxnPlanGenerator plans(DemoSpec());
    AftRequestRunner runner(faas, client, clock, plans);
    aft_result = RunClients(clock, runner, DemoHarness());
    cluster.Stop();
  }
  std::printf("WITH AFT: %4llu txns, %3llu read-your-write anomalies, %3llu fractured reads\n",
              static_cast<unsigned long long>(aft_result.completed),
              static_cast<unsigned long long>(aft_result.ryw_anomalies),
              static_cast<unsigned long long>(aft_result.fr_anomalies));

  const bool ok = aft_result.ryw_anomalies == 0 && aft_result.fr_anomalies == 0 &&
                  (plain_result.ryw_anomalies + plain_result.fr_anomalies) > 0;
  std::printf("\n%s\n", ok ? "AFT eliminated every anomaly the plain deployment exhibited."
                           : "UNEXPECTED: check the configuration.");
  return ok ? 0 : 1;
}
