// Net quickstart: the AFT shim behind a real TCP socket.
//
// Starts an AftServiceServer on an ephemeral loopback port, connects a
// RemoteAftClient to it, and runs a read-atomic commit/read cycle — the same
// Table 1 API as examples/quickstart.cpp, but every call crosses the wire
// protocol of docs/PROTOCOLS.md (framed, versioned, CRC-checked).
//
//   $ ./build/examples/net_quickstart
//
// For a standalone server process, see the `aft_server` binary.

#include <cstdio>

#include "src/core/aft_node.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/storage/sim_dynamo.h"

int main() {
  using namespace aft;

  SimClock clock;
  SimDynamo storage(clock);
  AftNode node("net-demo", storage, clock);
  if (!node.Start().ok()) {
    std::fprintf(stderr, "failed to start node\n");
    return 1;
  }

  // Serve the node on an ephemeral port (port 0 = kernel picks).
  net::AftServiceServer server(node);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("server listening on %s\n", server.endpoint().ToString().c_str());

  // Connect; everything below is request/response frames over TCP.
  net::RemoteAftClient client({server.endpoint()});
  std::printf("ping -> node %s\n", client.Ping(0).value_or("?").c_str());

  // --- Write two keys atomically over the wire ------------------------------
  auto t1 = client.StartTransaction();
  if (!t1.ok()) {
    std::fprintf(stderr, "start: %s\n", t1.status().ToString().c_str());
    return 1;
  }
  client.Put(*t1, "account:alice", "100");
  client.Put(*t1, "account:bob", "200");

  // Read-your-writes across the socket: the uncommitted value comes back.
  auto own = client.Get(*t1, "account:alice");
  std::printf("t1 reads its own write:  account:alice = %s\n", own->value().c_str());

  auto committed = client.Commit(*t1);
  std::printf("t1 committed as          %s\n", committed->ToString().c_str());

  // --- Read atomic: a fresh transaction sees both writes or neither ---------
  auto t2 = client.StartTransaction();
  const std::string keys[] = {"account:alice", "account:bob"};
  auto reads = client.MultiGet(*t2, keys);
  std::printf("t2 atomic read:          alice = %s, bob = %s\n",
              (*reads)[0].value.value().c_str(), (*reads)[1].value.value().c_str());
  client.Abort(*t2);

  std::printf("\nclient: %llu rpcs, %llu retries   server: %llu requests\n",
              static_cast<unsigned long long>(client.stats().rpcs_sent.load()),
              static_cast<unsigned long long>(client.stats().retries.load()),
              static_cast<unsigned long long>(server.stats().requests_served.load()));
  server.Stop();
  return 0;
}
