// Autoscaling demo (§4.3 / §8): the AFT fleet grows under load and shrinks
// when idle, with graceful node draining — no committed data is ever lost
// and planned removals never trigger the fault manager's replacement path.
//
//   $ ./build/examples/autoscaling

#include <cstdio>

#include "src/cluster/autoscaler.h"
#include "src/storage/sim_dynamo.h"
#include "src/workload/dataset.h"
#include "src/workload/harness.h"

using namespace aft;

int main() {
  RealClock clock(0.2, Duration::zero());  // 5x faster, pure sleeps (many client threads).
  SimDynamo storage(clock);
  WorkloadSpec spec;
  spec.num_keys = 500;
  spec.zipf_theta = 1.0;
  (void)LoadAftDataset(storage, spec);

  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  ClusterDeployment cluster(storage, clock, cluster_options);
  if (!cluster.Start().ok()) {
    return 1;
  }

  AutoscalerOptions scaler_options;
  scaler_options.evaluate_interval = std::chrono::seconds(2);
  scaler_options.cooldown = std::chrono::seconds(4);
  scaler_options.max_nodes = 6;
  Autoscaler autoscaler(cluster, clock,
                        std::make_unique<ThresholdPolicy>(ThresholdPolicyOptions{
                            /*per_node_capacity_tps=*/550, 0.70, 0.25}),
                        scaler_options);
  autoscaler.Start();

  FaasPlatform faas(clock);
  AftClient client(cluster.balancer(), clock);
  TxnPlanGenerator plans(spec);
  AftRequestRunner runner(faas, client, clock, plans);

  auto run_phase = [&](const char* label, size_t clients, double seconds) {
    HarnessOptions harness;
    harness.num_clients = clients;
    harness.requests_per_client = 1000000;
    harness.max_duration = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(seconds));
    harness.check_anomalies = true;
    const HarnessResult result = RunClients(clock, runner, harness);
    std::printf("%-18s %3zu clients -> %7.1f txn/s, %zu live nodes, anomalies %llu/%llu\n",
                label, clients, result.throughput_tps, cluster.balancer().LiveNodes().size(),
                static_cast<unsigned long long>(result.ryw_anomalies),
                static_cast<unsigned long long>(result.fr_anomalies));
  };

  std::printf("phase 1: light load (fleet should stay at 1 node)\n");
  run_phase("  light", 8, 8);

  std::printf("phase 2: heavy load (fleet should scale up)\n");
  run_phase("  heavy", 80, 30);

  std::printf("phase 3: idle again (fleet should drain back down)\n");
  run_phase("  cooldown", 4, 30);

  autoscaler.Stop();
  std::printf("\nautoscaler actions: %llu up, %llu down across %llu evaluations\n",
              static_cast<unsigned long long>(autoscaler.stats().scale_ups.load()),
              static_cast<unsigned long long>(autoscaler.stats().scale_downs.load()),
              static_cast<unsigned long long>(autoscaler.stats().evaluations.load()));
  cluster.Stop();
  return 0;
}
