// Quickstart: a single AFT node over simulated DynamoDB.
//
// Demonstrates the Table 1 API — StartTransaction / Get / Put / Commit /
// Abort — plus the three guarantees programmers get: read-your-writes,
// repeatable read, and atomic visibility of multi-key updates.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/aft_node.h"
#include "src/storage/sim_dynamo.h"

int main() {
  using namespace aft;

  // A simulated clock makes this demo instantaneous; swap in
  // RealClock::Default() to feel the simulated cloud latencies.
  SimClock clock;
  SimDynamo storage(clock);
  AftNode node("demo", storage, clock);
  if (!node.Start().ok()) {
    std::fprintf(stderr, "failed to start node\n");
    return 1;
  }

  // --- Transaction 1: write two keys atomically -----------------------------
  auto t1 = node.StartTransaction();
  node.Put(*t1, "account:alice", "100");
  node.Put(*t1, "account:bob", "200");

  // Read-your-writes: we see our own buffered update before commit...
  auto own = node.Get(*t1, "account:alice");
  std::printf("t1 reads its own write:        account:alice = %s\n", own->value().c_str());

  // ...but other transactions see nothing until we commit.
  auto t2 = node.StartTransaction();
  auto invisible = node.Get(*t2, "account:alice");
  std::printf("t2 before t1 commits:          account:alice = %s\n",
              invisible->has_value() ? invisible->value().c_str() : "(null)");

  auto commit1 = node.CommitTransaction(*t1);
  std::printf("t1 committed as                %s\n", commit1->ToString().c_str());

  // Repeatable read: t2 already observed the pre-commit snapshot for alice
  // (NULL) — it keeps seeing a consistent view; a fresh transaction sees the
  // committed data.
  node.AbortTransaction(*t2);
  auto t3 = node.StartTransaction();
  auto alice = node.Get(*t3, "account:alice");
  auto bob = node.Get(*t3, "account:bob");
  std::printf("t3 after commit:               alice = %s, bob = %s\n", alice->value().c_str(),
              bob->value().c_str());
  node.CommitTransaction(*t3);

  // --- Transaction 2: abort discards everything ------------------------------
  auto t4 = node.StartTransaction();
  node.Put(*t4, "account:alice", "0");
  node.AbortTransaction(*t4);
  auto t5 = node.StartTransaction();
  std::printf("after t4 aborts:               alice = %s (unchanged)\n",
              node.Get(*t5, "account:alice")->value().c_str());
  node.AbortTransaction(*t5);

  // --- Atomic visibility: never a fractured read -----------------------------
  // t6 updates both accounts; concurrent readers see either both updates or
  // neither, never a mix — that is read atomic isolation.
  auto t6 = node.StartTransaction();
  node.Put(*t6, "account:alice", "150");
  node.Put(*t6, "account:bob", "150");
  node.CommitTransaction(*t6);
  auto t7 = node.StartTransaction();
  std::printf("after atomic transfer:         alice = %s, bob = %s\n",
              node.Get(*t7, "account:alice")->value().c_str(),
              node.Get(*t7, "account:bob")->value().c_str());
  node.AbortTransaction(*t7);

  std::printf("\nstats: %llu committed, %llu aborted, %llu reads, %llu writes\n",
              static_cast<unsigned long long>(node.stats().txns_committed.load()),
              static_cast<unsigned long long>(node.stats().txns_aborted.load()),
              static_cast<unsigned long long>(node.stats().reads.load()),
              static_cast<unsigned long long>(node.stats().writes.load()));
  return 0;
}
