// A multi-function serverless application on AFT: a shopping-cart checkout.
//
// The request is the paper's motivating shape (§1, §2.2): a LINEAR
// COMPOSITION of functions, each possibly on a different machine, sharing
// one transaction. Function 1 reserves inventory, function 2 charges the
// account and writes the order — if anything fails in between, retry-based
// FaaS fault tolerance re-runs the functions with the SAME transaction ID
// and AFT guarantees that either the whole checkout becomes visible or none
// of it does.
//
//   $ ./build/examples/shopping_cart

#include <cstdio>
#include <string>

#include "src/cluster/aft_client.h"
#include "src/cluster/deployment.h"
#include "src/faas/faas_platform.h"
#include "src/storage/sim_dynamo.h"

using namespace aft;

namespace {

// Tiny helpers: the demo stores integers as decimal strings.
int ReadInt(AftClient& client, const TxnSession& session, const std::string& key) {
  auto value = client.Get(session, key);
  if (!value.ok() || !value->has_value()) {
    return 0;
  }
  return std::atoi(value->value().c_str());
}

void WriteInt(AftClient& client, const TxnSession& session, const std::string& key, int v) {
  (void)client.Put(session, key, std::to_string(v));
}

}  // namespace

int main() {
  SimClock clock;
  SimDynamo storage(clock);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 2;
  cluster_options.start_background_threads = false;
  ClusterDeployment cluster(storage, clock, cluster_options);
  if (!cluster.Start().ok()) {
    return 1;
  }
  AftClient client(cluster.balancer(), clock);
  FaasPlatform faas(clock);

  // Seed the catalog and one account (its own transaction).
  {
    auto seed = client.StartTransaction();
    WriteInt(client, *seed, "stock:widget", 5);
    WriteInt(client, *seed, "balance:alice", 100);
    (void)client.Commit(*seed);
  }
  cluster.bus().RunOnce();  // Let both nodes learn the seed data.

  // ---- One checkout request: two functions, one transaction -----------------
  auto session = client.StartTransaction();
  const int price = 30;
  bool out_of_stock = false;

  FaasFunction reserve_inventory = [&](int) -> Status {
    const int stock = ReadInt(client, *session, "stock:widget");
    std::printf("[reserve]  stock:widget = %d\n", stock);
    if (stock <= 0) {
      out_of_stock = true;
      return Status::Ok();  // Nothing to buy; later functions will no-op.
    }
    WriteInt(client, *session, "stock:widget", stock - 1);
    WriteInt(client, *session, "cart:alice", 1);
    return Status::Ok();
  };

  FaasFunction charge_and_order = [&](int) -> Status {
    if (out_of_stock) {
      return Status::Ok();
    }
    // Read-your-writes across FUNCTIONS: this function (possibly on another
    // machine) sees the reservation made by the previous one.
    const int in_cart = ReadInt(client, *session, "cart:alice");
    const int balance = ReadInt(client, *session, "balance:alice");
    std::printf("[charge]   cart:alice = %d, balance:alice = %d\n", in_cart, balance);
    if (balance < in_cart * price) {
      return Status::Aborted("insufficient funds");
    }
    WriteInt(client, *session, "balance:alice", balance - in_cart * price);
    (void)client.Put(*session, "order:alice:1", "1 x widget @ " + std::to_string(price));
    return Status::Ok();
  };

  Status chain = faas.InvokeChain({reserve_inventory, charge_and_order});
  if (chain.ok()) {
    auto commit = client.Commit(*session);
    std::printf("checkout committed: %s\n", commit->ToString().c_str());
  } else {
    (void)client.Abort(*session);
    std::printf("checkout aborted (%s) — NO partial state was exposed\n",
                chain.ToString().c_str());
  }

  // ---- Audit: concurrent observers never see a torn checkout -----------------
  auto audit = client.StartTransaction();
  const int stock = ReadInt(client, *audit, "stock:widget");
  const int balance = ReadInt(client, *audit, "balance:alice");
  auto order = client.Get(*audit, "order:alice:1");
  (void)client.Abort(*audit);
  std::printf("\naudit: stock=%d balance=%d order=%s\n", stock, balance,
              order->has_value() ? order->value().c_str() : "(none)");
  const bool consistent = (stock == 4 && balance == 70 && order->has_value()) ||
                          (stock == 5 && balance == 100 && !order->has_value());
  std::printf("atomic visibility: %s\n", consistent ? "OK" : "VIOLATED");
  cluster.Stop();
  return consistent ? 0 : 1;
}
