// Exactly-once execution in the face of failures (§3.3.1, §4.2).
//
// Three scenarios on a 2-node deployment:
//   1. A function crashes mid-transaction; the FaaS retry continues the SAME
//      transaction ID and the commit applies exactly once.
//   2. An AFT node crashes AFTER persisting a commit record but BEFORE
//      broadcasting it; the fault manager's commit-set scan surfaces the
//      committed data to the surviving node — an acknowledged commit is
//      never lost.
//   3. An AFT node crashes BETWEEN writing data and writing the commit
//      record; the partial data is never visible anywhere.
//
//   $ ./build/examples/fault_recovery

#include <cstdio>

#include "src/cluster/aft_client.h"
#include "src/cluster/deployment.h"
#include "src/faas/faas_platform.h"
#include "src/storage/sim_dynamo.h"

using namespace aft;

namespace {

std::optional<std::string> ReadOnce(AftNode& node, const std::string& key) {
  auto txid = node.StartTransaction();
  if (!txid.ok()) {
    return std::nullopt;
  }
  auto result = node.Get(*txid, key);
  (void)node.AbortTransaction(*txid);
  return result.ok() ? *result : std::nullopt;
}

}  // namespace

int main() {
  SimClock clock;
  SimDynamo storage(clock);

  // ---- Scenario 1: function crash + retry with the same transaction ID -------
  {
    ClusterOptions options;
    options.num_nodes = 1;
    options.start_background_threads = false;
    ClusterDeployment cluster(storage, clock, options);
    if (!cluster.Start().ok()) {
      return 1;
    }
    AftClient client(cluster.balancer(), clock);
    FaasOptions faas_options;
    faas_options.invocation_overhead = LatencyModel::Zero();
    FaasPlatform faas(clock, faas_options);

    auto session = client.StartTransaction();
    int attempts = 0;
    Status chain = faas.Invoke([&](int attempt) -> Status {
      ++attempts;
      if (attempt > 0) {
        (void)client.Resume(*session);  // Continue the same transaction.
      }
      (void)client.Put(*session, "ledger", "entry-1");
      if (attempt == 0) {
        return Status::Unavailable("simulated crash after the put");
      }
      (void)client.Put(*session, "ledger-index", "1");
      return Status::Ok();
    });
    (void)client.Commit(*session);
    std::printf("scenario 1: function ran %d times, committed once; ledger=%s index=%s\n",
                attempts, ReadOnce(*cluster.node(0), "ledger")->c_str(),
                ReadOnce(*cluster.node(0), "ledger-index")->c_str());
    (void)chain;
    cluster.Stop();
  }

  // ---- Scenario 2: node dies after commit record, before broadcast ------------
  {
    SimDynamo fresh(clock);
    AftNodeOptions node_options;
    node_options.crash_hook = [](CrashPoint point) {
      return point == CrashPoint::kAfterCommitWrite;
    };
    ClusterOptions options;
    options.num_nodes = 2;
    options.start_background_threads = false;
    options.node_options = node_options;
    ClusterDeployment cluster(fresh, clock, options);
    if (!cluster.Start().ok()) {
      return 1;
    }
    auto txid = cluster.node(0)->StartTransaction();
    (void)cluster.node(0)->Put(*txid, "acked", "must-survive");
    Status commit = cluster.node(0)->CommitTransaction(*txid).status();
    std::printf("\nscenario 2: node 0 died during commit ack (%s)\n", commit.ToString().c_str());
    std::printf("            node 1 before fault-manager scan: %s\n",
                ReadOnce(*cluster.node(1), "acked").has_value() ? "visible" : "invisible");
    clock.Advance(std::chrono::seconds(5));  // Past the scan's grace window.
    cluster.fault_manager().RunLivenessScanOnce();
    auto recovered = ReadOnce(*cluster.node(1), "acked");
    std::printf("            node 1 after  fault-manager scan: %s\n",
                recovered.has_value() ? recovered->c_str() : "(LOST!)");
    cluster.Stop();
  }

  // ---- Scenario 3: node dies between data write and commit record -------------
  {
    SimDynamo fresh(clock);
    AftNodeOptions node_options;
    node_options.crash_hook = [](CrashPoint point) {
      return point == CrashPoint::kAfterDataWrite;
    };
    ClusterOptions options;
    options.num_nodes = 2;
    options.start_background_threads = false;
    options.node_options = node_options;
    ClusterDeployment cluster(fresh, clock, options);
    if (!cluster.Start().ok()) {
      return 1;
    }
    auto txid = cluster.node(0)->StartTransaction();
    (void)cluster.node(0)->Put(*txid, "torn", "half-written");
    (void)cluster.node(0)->CommitTransaction(*txid);
    cluster.fault_manager().RunLivenessScanOnce();
    std::printf("\nscenario 3: node 0 died before the commit record was written\n");
    std::printf("            data object in storage: %s; visible to readers: %s\n",
                fresh.List(kVersionPrefix)->empty() ? "no" : "yes (orphaned)",
                ReadOnce(*cluster.node(1), "torn").has_value() ? "YES (BUG!)" : "no — atomic");
    cluster.Stop();
  }
  return 0;
}
