file(REMOVE_RECURSE
  "CMakeFiles/aft_engine_matrix_test.dir/aft_engine_matrix_test.cc.o"
  "CMakeFiles/aft_engine_matrix_test.dir/aft_engine_matrix_test.cc.o.d"
  "aft_engine_matrix_test"
  "aft_engine_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_engine_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
