# Empty dependencies file for aft_engine_matrix_test.
# This may be replaced when dependencies are built.
