
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aft_engine_matrix_test.cc" "tests/CMakeFiles/aft_engine_matrix_test.dir/aft_engine_matrix_test.cc.o" "gcc" "tests/CMakeFiles/aft_engine_matrix_test.dir/aft_engine_matrix_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/aft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/aft_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/aft_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/ramp/CMakeFiles/aft_ramp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faas/CMakeFiles/aft_faas.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aft_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
