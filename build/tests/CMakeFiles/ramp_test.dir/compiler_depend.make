# Empty compiler generated dependencies file for ramp_test.
# This may be replaced when dependencies are built.
