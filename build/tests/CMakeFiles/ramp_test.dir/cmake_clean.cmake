file(REMOVE_RECURSE
  "CMakeFiles/ramp_test.dir/ramp_test.cc.o"
  "CMakeFiles/ramp_test.dir/ramp_test.cc.o.d"
  "ramp_test"
  "ramp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
