# Empty dependencies file for ramp_variants_test.
# This may be replaced when dependencies are built.
