file(REMOVE_RECURSE
  "CMakeFiles/ramp_variants_test.dir/ramp_variants_test.cc.o"
  "CMakeFiles/ramp_variants_test.dir/ramp_variants_test.cc.o.d"
  "ramp_variants_test"
  "ramp_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
