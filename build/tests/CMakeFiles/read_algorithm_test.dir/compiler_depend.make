# Empty compiler generated dependencies file for read_algorithm_test.
# This may be replaced when dependencies are built.
