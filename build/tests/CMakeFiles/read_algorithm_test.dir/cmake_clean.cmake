file(REMOVE_RECURSE
  "CMakeFiles/read_algorithm_test.dir/read_algorithm_test.cc.o"
  "CMakeFiles/read_algorithm_test.dir/read_algorithm_test.cc.o.d"
  "read_algorithm_test"
  "read_algorithm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
