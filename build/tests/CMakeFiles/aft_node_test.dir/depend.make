# Empty dependencies file for aft_node_test.
# This may be replaced when dependencies are built.
