file(REMOVE_RECURSE
  "CMakeFiles/aft_node_test.dir/aft_node_test.cc.o"
  "CMakeFiles/aft_node_test.dir/aft_node_test.cc.o.d"
  "aft_node_test"
  "aft_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
