file(REMOVE_RECURSE
  "CMakeFiles/core_records_test.dir/core_records_test.cc.o"
  "CMakeFiles/core_records_test.dir/core_records_test.cc.o.d"
  "core_records_test"
  "core_records_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_records_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
