# Empty compiler generated dependencies file for core_records_test.
# This may be replaced when dependencies are built.
