# Empty compiler generated dependencies file for packed_layout_test.
# This may be replaced when dependencies are built.
