file(REMOVE_RECURSE
  "CMakeFiles/packed_layout_test.dir/packed_layout_test.cc.o"
  "CMakeFiles/packed_layout_test.dir/packed_layout_test.cc.o.d"
  "packed_layout_test"
  "packed_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
