# Empty compiler generated dependencies file for bench_fig4_caching_skew.
# This may be replaced when dependencies are built.
