# Empty compiler generated dependencies file for bench_fig5_rw_ratio.
# This may be replaced when dependencies are built.
