# Empty compiler generated dependencies file for bench_fig8_distributed.
# This may be replaced when dependencies are built.
