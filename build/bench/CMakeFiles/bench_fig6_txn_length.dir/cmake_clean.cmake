file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_txn_length.dir/bench_fig6_txn_length.cc.o"
  "CMakeFiles/bench_fig6_txn_length.dir/bench_fig6_txn_length.cc.o.d"
  "bench_fig6_txn_length"
  "bench_fig6_txn_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_txn_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
