# Empty compiler generated dependencies file for bench_fig6_txn_length.
# This may be replaced when dependencies are built.
