# Empty dependencies file for bench_fig10_fault.
# This may be replaced when dependencies are built.
