file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_fault.dir/bench_fig10_fault.cc.o"
  "CMakeFiles/bench_fig10_fault.dir/bench_fig10_fault.cc.o.d"
  "bench_fig10_fault"
  "bench_fig10_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
