# Empty compiler generated dependencies file for bench_ablation_s3_layout.
# This may be replaced when dependencies are built.
