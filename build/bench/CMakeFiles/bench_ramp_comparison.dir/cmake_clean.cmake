file(REMOVE_RECURSE
  "CMakeFiles/bench_ramp_comparison.dir/bench_ramp_comparison.cc.o"
  "CMakeFiles/bench_ramp_comparison.dir/bench_ramp_comparison.cc.o.d"
  "bench_ramp_comparison"
  "bench_ramp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ramp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
