# Empty compiler generated dependencies file for bench_ramp_comparison.
# This may be replaced when dependencies are built.
