file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_single_node.dir/bench_fig7_single_node.cc.o"
  "CMakeFiles/bench_fig7_single_node.dir/bench_fig7_single_node.cc.o.d"
  "bench_fig7_single_node"
  "bench_fig7_single_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
