
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aft_node.cc" "src/core/CMakeFiles/aft_core.dir/aft_node.cc.o" "gcc" "src/core/CMakeFiles/aft_core.dir/aft_node.cc.o.d"
  "/root/repo/src/core/commit_set_cache.cc" "src/core/CMakeFiles/aft_core.dir/commit_set_cache.cc.o" "gcc" "src/core/CMakeFiles/aft_core.dir/commit_set_cache.cc.o.d"
  "/root/repo/src/core/data_cache.cc" "src/core/CMakeFiles/aft_core.dir/data_cache.cc.o" "gcc" "src/core/CMakeFiles/aft_core.dir/data_cache.cc.o.d"
  "/root/repo/src/core/key_version_index.cc" "src/core/CMakeFiles/aft_core.dir/key_version_index.cc.o" "gcc" "src/core/CMakeFiles/aft_core.dir/key_version_index.cc.o.d"
  "/root/repo/src/core/read_algorithm.cc" "src/core/CMakeFiles/aft_core.dir/read_algorithm.cc.o" "gcc" "src/core/CMakeFiles/aft_core.dir/read_algorithm.cc.o.d"
  "/root/repo/src/core/records.cc" "src/core/CMakeFiles/aft_core.dir/records.cc.o" "gcc" "src/core/CMakeFiles/aft_core.dir/records.cc.o.d"
  "/root/repo/src/core/txn_id.cc" "src/core/CMakeFiles/aft_core.dir/txn_id.cc.o" "gcc" "src/core/CMakeFiles/aft_core.dir/txn_id.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aft_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
