# Empty compiler generated dependencies file for aft_core.
# This may be replaced when dependencies are built.
