file(REMOVE_RECURSE
  "CMakeFiles/aft_core.dir/aft_node.cc.o"
  "CMakeFiles/aft_core.dir/aft_node.cc.o.d"
  "CMakeFiles/aft_core.dir/commit_set_cache.cc.o"
  "CMakeFiles/aft_core.dir/commit_set_cache.cc.o.d"
  "CMakeFiles/aft_core.dir/data_cache.cc.o"
  "CMakeFiles/aft_core.dir/data_cache.cc.o.d"
  "CMakeFiles/aft_core.dir/key_version_index.cc.o"
  "CMakeFiles/aft_core.dir/key_version_index.cc.o.d"
  "CMakeFiles/aft_core.dir/read_algorithm.cc.o"
  "CMakeFiles/aft_core.dir/read_algorithm.cc.o.d"
  "CMakeFiles/aft_core.dir/records.cc.o"
  "CMakeFiles/aft_core.dir/records.cc.o.d"
  "CMakeFiles/aft_core.dir/txn_id.cc.o"
  "CMakeFiles/aft_core.dir/txn_id.cc.o.d"
  "libaft_core.a"
  "libaft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
