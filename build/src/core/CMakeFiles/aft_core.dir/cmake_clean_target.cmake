file(REMOVE_RECURSE
  "libaft_core.a"
)
