file(REMOVE_RECURSE
  "libaft_common.a"
)
