file(REMOVE_RECURSE
  "CMakeFiles/aft_common.dir/bloom.cc.o"
  "CMakeFiles/aft_common.dir/bloom.cc.o.d"
  "CMakeFiles/aft_common.dir/clock.cc.o"
  "CMakeFiles/aft_common.dir/clock.cc.o.d"
  "CMakeFiles/aft_common.dir/latency.cc.o"
  "CMakeFiles/aft_common.dir/latency.cc.o.d"
  "CMakeFiles/aft_common.dir/logging.cc.o"
  "CMakeFiles/aft_common.dir/logging.cc.o.d"
  "CMakeFiles/aft_common.dir/stats.cc.o"
  "CMakeFiles/aft_common.dir/stats.cc.o.d"
  "CMakeFiles/aft_common.dir/status.cc.o"
  "CMakeFiles/aft_common.dir/status.cc.o.d"
  "CMakeFiles/aft_common.dir/thread_pool.cc.o"
  "CMakeFiles/aft_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/aft_common.dir/uuid.cc.o"
  "CMakeFiles/aft_common.dir/uuid.cc.o.d"
  "CMakeFiles/aft_common.dir/zipf.cc.o"
  "CMakeFiles/aft_common.dir/zipf.cc.o.d"
  "libaft_common.a"
  "libaft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
