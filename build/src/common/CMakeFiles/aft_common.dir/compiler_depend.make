# Empty compiler generated dependencies file for aft_common.
# This may be replaced when dependencies are built.
