file(REMOVE_RECURSE
  "libaft_workload.a"
)
