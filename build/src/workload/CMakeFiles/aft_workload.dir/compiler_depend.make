# Empty compiler generated dependencies file for aft_workload.
# This may be replaced when dependencies are built.
