file(REMOVE_RECURSE
  "CMakeFiles/aft_workload.dir/dataset.cc.o"
  "CMakeFiles/aft_workload.dir/dataset.cc.o.d"
  "CMakeFiles/aft_workload.dir/harness.cc.o"
  "CMakeFiles/aft_workload.dir/harness.cc.o.d"
  "CMakeFiles/aft_workload.dir/runners.cc.o"
  "CMakeFiles/aft_workload.dir/runners.cc.o.d"
  "CMakeFiles/aft_workload.dir/workload.cc.o"
  "CMakeFiles/aft_workload.dir/workload.cc.o.d"
  "libaft_workload.a"
  "libaft_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
