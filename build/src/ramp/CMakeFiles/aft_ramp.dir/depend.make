# Empty dependencies file for aft_ramp.
# This may be replaced when dependencies are built.
