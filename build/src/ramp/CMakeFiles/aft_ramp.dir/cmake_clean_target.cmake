file(REMOVE_RECURSE
  "libaft_ramp.a"
)
