file(REMOVE_RECURSE
  "CMakeFiles/aft_ramp.dir/ramp_client.cc.o"
  "CMakeFiles/aft_ramp.dir/ramp_client.cc.o.d"
  "CMakeFiles/aft_ramp.dir/ramp_store.cc.o"
  "CMakeFiles/aft_ramp.dir/ramp_store.cc.o.d"
  "libaft_ramp.a"
  "libaft_ramp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_ramp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
