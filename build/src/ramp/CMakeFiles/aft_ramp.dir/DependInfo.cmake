
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ramp/ramp_client.cc" "src/ramp/CMakeFiles/aft_ramp.dir/ramp_client.cc.o" "gcc" "src/ramp/CMakeFiles/aft_ramp.dir/ramp_client.cc.o.d"
  "/root/repo/src/ramp/ramp_store.cc" "src/ramp/CMakeFiles/aft_ramp.dir/ramp_store.cc.o" "gcc" "src/ramp/CMakeFiles/aft_ramp.dir/ramp_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aft_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
