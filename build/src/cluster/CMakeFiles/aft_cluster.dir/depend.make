# Empty dependencies file for aft_cluster.
# This may be replaced when dependencies are built.
