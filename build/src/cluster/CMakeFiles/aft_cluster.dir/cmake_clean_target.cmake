file(REMOVE_RECURSE
  "libaft_cluster.a"
)
