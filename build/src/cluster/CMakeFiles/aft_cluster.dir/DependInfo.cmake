
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/aft_client.cc" "src/cluster/CMakeFiles/aft_cluster.dir/aft_client.cc.o" "gcc" "src/cluster/CMakeFiles/aft_cluster.dir/aft_client.cc.o.d"
  "/root/repo/src/cluster/autoscaler.cc" "src/cluster/CMakeFiles/aft_cluster.dir/autoscaler.cc.o" "gcc" "src/cluster/CMakeFiles/aft_cluster.dir/autoscaler.cc.o.d"
  "/root/repo/src/cluster/deployment.cc" "src/cluster/CMakeFiles/aft_cluster.dir/deployment.cc.o" "gcc" "src/cluster/CMakeFiles/aft_cluster.dir/deployment.cc.o.d"
  "/root/repo/src/cluster/fault_manager.cc" "src/cluster/CMakeFiles/aft_cluster.dir/fault_manager.cc.o" "gcc" "src/cluster/CMakeFiles/aft_cluster.dir/fault_manager.cc.o.d"
  "/root/repo/src/cluster/load_balancer.cc" "src/cluster/CMakeFiles/aft_cluster.dir/load_balancer.cc.o" "gcc" "src/cluster/CMakeFiles/aft_cluster.dir/load_balancer.cc.o.d"
  "/root/repo/src/cluster/multicast_bus.cc" "src/cluster/CMakeFiles/aft_cluster.dir/multicast_bus.cc.o" "gcc" "src/cluster/CMakeFiles/aft_cluster.dir/multicast_bus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aft_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
