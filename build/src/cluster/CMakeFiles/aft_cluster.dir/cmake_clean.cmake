file(REMOVE_RECURSE
  "CMakeFiles/aft_cluster.dir/aft_client.cc.o"
  "CMakeFiles/aft_cluster.dir/aft_client.cc.o.d"
  "CMakeFiles/aft_cluster.dir/autoscaler.cc.o"
  "CMakeFiles/aft_cluster.dir/autoscaler.cc.o.d"
  "CMakeFiles/aft_cluster.dir/deployment.cc.o"
  "CMakeFiles/aft_cluster.dir/deployment.cc.o.d"
  "CMakeFiles/aft_cluster.dir/fault_manager.cc.o"
  "CMakeFiles/aft_cluster.dir/fault_manager.cc.o.d"
  "CMakeFiles/aft_cluster.dir/load_balancer.cc.o"
  "CMakeFiles/aft_cluster.dir/load_balancer.cc.o.d"
  "CMakeFiles/aft_cluster.dir/multicast_bus.cc.o"
  "CMakeFiles/aft_cluster.dir/multicast_bus.cc.o.d"
  "libaft_cluster.a"
  "libaft_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
