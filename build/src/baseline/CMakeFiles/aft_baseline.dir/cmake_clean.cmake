file(REMOVE_RECURSE
  "CMakeFiles/aft_baseline.dir/anomaly_checker.cc.o"
  "CMakeFiles/aft_baseline.dir/anomaly_checker.cc.o.d"
  "CMakeFiles/aft_baseline.dir/dynamo_txn_client.cc.o"
  "CMakeFiles/aft_baseline.dir/dynamo_txn_client.cc.o.d"
  "CMakeFiles/aft_baseline.dir/plain_client.cc.o"
  "CMakeFiles/aft_baseline.dir/plain_client.cc.o.d"
  "libaft_baseline.a"
  "libaft_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
