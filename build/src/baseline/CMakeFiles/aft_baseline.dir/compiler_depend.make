# Empty compiler generated dependencies file for aft_baseline.
# This may be replaced when dependencies are built.
