
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/anomaly_checker.cc" "src/baseline/CMakeFiles/aft_baseline.dir/anomaly_checker.cc.o" "gcc" "src/baseline/CMakeFiles/aft_baseline.dir/anomaly_checker.cc.o.d"
  "/root/repo/src/baseline/dynamo_txn_client.cc" "src/baseline/CMakeFiles/aft_baseline.dir/dynamo_txn_client.cc.o" "gcc" "src/baseline/CMakeFiles/aft_baseline.dir/dynamo_txn_client.cc.o.d"
  "/root/repo/src/baseline/plain_client.cc" "src/baseline/CMakeFiles/aft_baseline.dir/plain_client.cc.o" "gcc" "src/baseline/CMakeFiles/aft_baseline.dir/plain_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aft_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
