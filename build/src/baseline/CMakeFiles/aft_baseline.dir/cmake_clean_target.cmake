file(REMOVE_RECURSE
  "libaft_baseline.a"
)
