
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/sim_dynamo.cc" "src/storage/CMakeFiles/aft_storage.dir/sim_dynamo.cc.o" "gcc" "src/storage/CMakeFiles/aft_storage.dir/sim_dynamo.cc.o.d"
  "/root/repo/src/storage/sim_engine_base.cc" "src/storage/CMakeFiles/aft_storage.dir/sim_engine_base.cc.o" "gcc" "src/storage/CMakeFiles/aft_storage.dir/sim_engine_base.cc.o.d"
  "/root/repo/src/storage/sim_redis.cc" "src/storage/CMakeFiles/aft_storage.dir/sim_redis.cc.o" "gcc" "src/storage/CMakeFiles/aft_storage.dir/sim_redis.cc.o.d"
  "/root/repo/src/storage/versioned_map.cc" "src/storage/CMakeFiles/aft_storage.dir/versioned_map.cc.o" "gcc" "src/storage/CMakeFiles/aft_storage.dir/versioned_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
