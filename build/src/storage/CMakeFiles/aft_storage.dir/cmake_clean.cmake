file(REMOVE_RECURSE
  "CMakeFiles/aft_storage.dir/sim_dynamo.cc.o"
  "CMakeFiles/aft_storage.dir/sim_dynamo.cc.o.d"
  "CMakeFiles/aft_storage.dir/sim_engine_base.cc.o"
  "CMakeFiles/aft_storage.dir/sim_engine_base.cc.o.d"
  "CMakeFiles/aft_storage.dir/sim_redis.cc.o"
  "CMakeFiles/aft_storage.dir/sim_redis.cc.o.d"
  "CMakeFiles/aft_storage.dir/versioned_map.cc.o"
  "CMakeFiles/aft_storage.dir/versioned_map.cc.o.d"
  "libaft_storage.a"
  "libaft_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
