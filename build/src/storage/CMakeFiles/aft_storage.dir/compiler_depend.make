# Empty compiler generated dependencies file for aft_storage.
# This may be replaced when dependencies are built.
