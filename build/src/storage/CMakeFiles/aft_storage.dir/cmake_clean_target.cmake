file(REMOVE_RECURSE
  "libaft_storage.a"
)
