file(REMOVE_RECURSE
  "libaft_faas.a"
)
