file(REMOVE_RECURSE
  "CMakeFiles/aft_faas.dir/faas_platform.cc.o"
  "CMakeFiles/aft_faas.dir/faas_platform.cc.o.d"
  "libaft_faas.a"
  "libaft_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aft_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
