
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faas/faas_platform.cc" "src/faas/CMakeFiles/aft_faas.dir/faas_platform.cc.o" "gcc" "src/faas/CMakeFiles/aft_faas.dir/faas_platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aft_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
