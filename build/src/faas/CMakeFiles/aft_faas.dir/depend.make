# Empty dependencies file for aft_faas.
# This may be replaced when dependencies are built.
