#include "src/baseline/dynamo_txn_client.h"

#include <algorithm>

#include "src/baseline/plain_client.h"
#include "src/storage/sim_engine_base.h"

namespace aft {

DynamoTxnTransaction::DynamoTxnTransaction(SimDynamo& dynamo, Clock& clock,
                                           std::vector<std::string> declared_write_set,
                                           DynamoTxnRetryPolicy retry)
    : dynamo_(dynamo),
      clock_(clock),
      id_(clock.WallTimeMicros(), Uuid::Random(ThreadLocalRng())),
      declared_write_set_(std::move(declared_write_set)),
      retry_(retry) {
  log_.self = id_;
}

Duration DynamoTxnTransaction::BackoffFor(int attempt) const {
  Duration backoff = retry_.base_backoff * (1LL << std::min(attempt, 8));
  return std::min(backoff, retry_.max_backoff);
}

Result<std::vector<std::optional<std::string>>> DynamoTxnTransaction::ReadTxn(
    std::span<const std::string> keys) {
  for (int attempt = 0; attempt <= retry_.max_retries; ++attempt) {
    auto result = dynamo_.TransactGet(keys);
    if (result.ok()) {
      std::vector<std::optional<std::string>> payloads;
      payloads.reserve(keys.size());
      for (size_t i = 0; i < keys.size(); ++i) {
        const auto& raw = result.value()[i];
        log_.AddRead(DecodeObservation(keys[i], raw));
        if (raw.has_value()) {
          auto decoded = VersionedValue::Deserialize(*raw);
          payloads.push_back(decoded.ok() ? std::optional<std::string>(std::move(decoded->payload))
                                          : raw);
        } else {
          payloads.push_back(std::nullopt);
        }
      }
      return payloads;
    }
    if (!result.status().IsAborted()) {
      return result.status();
    }
    ++conflict_retries_;
    clock_.SleepFor(BackoffFor(attempt));
  }
  return Status::Aborted("TransactGetItems retries exhausted");
}

Status DynamoTxnTransaction::WriteTxn(std::span<const WriteOp> user_ops) {
  std::vector<WriteOp> encoded;
  encoded.reserve(user_ops.size());
  for (const WriteOp& op : user_ops) {
    VersionedValue value{id_, declared_write_set_, op.value};
    encoded.push_back(WriteOp{op.key, value.Serialize()});
  }
  for (int attempt = 0; attempt <= retry_.max_retries; ++attempt) {
    Status status = dynamo_.TransactWrite(encoded);
    if (status.ok()) {
      for (const WriteOp& op : user_ops) {
        log_.AddWrite(op.key);
      }
      return Status::Ok();
    }
    if (!status.IsAborted()) {
      return status;
    }
    ++conflict_retries_;
    clock_.SleepFor(BackoffFor(attempt));
  }
  return Status::Aborted("TransactWriteItems retries exhausted");
}

}  // namespace aft
