// Baseline clients: what a serverless application does WITHOUT AFT.
//
// `PlainTransaction` writes straight to the storage engine as its functions
// execute — no buffering, no commit point, no atomicity. Each stored value
// embeds the writer's ID and cowritten key set (the paper's ~70 extra bytes,
// §6.1.2) so the anomaly checker can audit what concurrent transactions
// actually observed.

#ifndef SRC_BASELINE_PLAIN_CLIENT_H_
#define SRC_BASELINE_PLAIN_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/baseline/anomaly_checker.h"
#include "src/common/clock.h"
#include "src/core/records.h"
#include "src/storage/storage_engine.h"

namespace aft {

// Decodes a raw stored value into a read observation for `key`. A missing
// value yields a NULL observation; a value without valid embedded metadata
// (not written by our harness) also yields NULL.
ReadObservation DecodeObservation(const std::string& key, const std::optional<std::string>& raw);

class PlainTransaction {
 public:
  // `declared_write_set` is the set of keys this request intends to write —
  // needed up front because cowritten metadata is embedded at write time.
  PlainTransaction(StorageEngine& storage, Clock& clock,
                   std::vector<std::string> declared_write_set);

  // Reads `key` directly from storage; returns the user payload.
  Result<std::optional<std::string>> Get(const std::string& key);

  // Writes `key` directly to storage (immediately visible — this is the
  // fractional-execution hazard AFT exists to prevent).
  Status Put(const std::string& key, std::string payload);

  const TxnLog& log() const { return log_; }
  const TxnId& id() const { return id_; }

 private:
  StorageEngine& storage_;
  const TxnId id_;
  const std::vector<std::string> declared_write_set_;
  TxnLog log_;
};

}  // namespace aft

#endif  // SRC_BASELINE_PLAIN_CLIENT_H_
