// Consistency-anomaly detection (Table 2).
//
// When running WITHOUT AFT, the paper detects anomalies "by embedding the
// same metadata aft uses — a timestamp, a UUID, and a cowritten key set —
// into the key-value pairs" (§6.1.2). The baseline clients in this library
// do exactly that (reusing the VersionedValue codec), log every read/write
// observation in program order, and this checker classifies each finished
// transaction:
//
//  * Read-Your-Write (RYW) anomaly — the transaction wrote a key and a later
//    read of that key observed some other transaction's version.
//  * Fractured Read (FR) anomaly — the read set violates the Atomic Readset
//    definition (Definition 1): some read version k_t was cowritten with a
//    key l that this transaction read at an older version. Repeatable-read
//    violations are counted here too, as in the paper ("these encompass
//    repeatable read anomalies").

#ifndef SRC_BASELINE_ANOMALY_CHECKER_H_
#define SRC_BASELINE_ANOMALY_CHECKER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/core/records.h"
#include "src/core/txn_id.h"

namespace aft {

// One observed read: the version (writer ID) and cowritten set decoded from
// the stored metadata. A read of a key that was never written has a Null
// version and an empty cowritten set.
struct ReadObservation {
  std::string key;
  TxnId version;
  std::shared_ptr<const std::vector<std::string>> cowritten;
};

// Program-ordered log of one transaction's operations.
struct TxnLog {
  TxnId self;

  struct Event {
    enum class Kind { kRead, kWrite };
    Kind kind;
    std::string key;
    ReadObservation read;  // Set for kRead.
  };
  std::vector<Event> events;

  void AddRead(ReadObservation obs) {
    events.push_back(Event{Event::Kind::kRead, obs.key, std::move(obs)});
  }
  void AddWrite(std::string key) {
    events.push_back(Event{Event::Kind::kWrite, std::move(key), ReadObservation{}});
  }
};

struct AnomalyVerdict {
  bool ryw_anomaly = false;
  bool fr_anomaly = false;
};

// Classifies one transaction's log.
AnomalyVerdict CheckTransaction(const TxnLog& log);

// Aggregates verdicts across a run (one row of Table 2).
struct AnomalyCounters {
  std::atomic<uint64_t> transactions{0};
  std::atomic<uint64_t> ryw_anomalies{0};
  std::atomic<uint64_t> fr_anomalies{0};

  void Accumulate(const AnomalyVerdict& verdict) {
    transactions.fetch_add(1, std::memory_order_relaxed);
    if (verdict.ryw_anomaly) {
      ryw_anomalies.fetch_add(1, std::memory_order_relaxed);
    }
    if (verdict.fr_anomaly) {
      fr_anomalies.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

}  // namespace aft

#endif  // SRC_BASELINE_ANOMALY_CHECKER_H_
