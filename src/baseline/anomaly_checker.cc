#include "src/baseline/anomaly_checker.h"

#include <algorithm>

namespace aft {

AnomalyVerdict CheckTransaction(const TxnLog& log) {
  AnomalyVerdict verdict;

  // ---- RYW: a read after our own write of the same key must observe our
  // version (or a NULL observation is equally anomalous).
  for (size_t i = 0; i < log.events.size(); ++i) {
    const auto& event = log.events[i];
    if (event.kind != TxnLog::Event::Kind::kWrite) {
      continue;
    }
    for (size_t j = i + 1; j < log.events.size(); ++j) {
      const auto& later = log.events[j];
      if (later.key != event.key) {
        continue;
      }
      if (later.kind == TxnLog::Event::Kind::kWrite) {
        break;  // Rewritten; subsequent reads are judged against that write.
      }
      // Self-detection is by UUID: AFT assigns the commit timestamp only at
      // commit time, so in-flight reads of our own writes carry a zero
      // timestamp with our UUID.
      if (later.read.version.uuid != log.self.uuid) {
        verdict.ryw_anomaly = true;
      }
      break;  // Only the first subsequent read of the key matters.
    }
  }

  // Collect the reads that observed OTHER transactions' data; reads of our
  // own writes are excluded from the fractured-read analysis (they carry our
  // in-flight ID, not a committed version).
  std::vector<const ReadObservation*> reads;
  // NULL observations are excluded: Definition 1 (and the paper's fractured
  // read definition) constrain only the versions actually read; a NULL read
  // corresponds to an earlier snapshot in which the key did not yet exist.
  for (const auto& event : log.events) {
    if (event.kind == TxnLog::Event::Kind::kRead && !event.read.version.IsNull() &&
        event.read.version.uuid != log.self.uuid) {
      reads.push_back(&event.read);
    }
  }

  // ---- Fractured reads: Definition 1 over the observed read set. For any
  // observed version k_t whose cowritten set contains a key l that we also
  // read at version l_j with j < t, the read set is fractured: the writer of
  // k_t wrote l_t together with it, so we saw old l data. Reads of NULL
  // (version Null) where a cowritten constraint exists count as well: the
  // cowritten l_t must exist if k_t does.
  for (const ReadObservation* a : reads) {
    if (a->version.IsNull() || a->cowritten == nullptr) {
      continue;
    }
    for (const ReadObservation* b : reads) {
      if (a == b) {
        continue;
      }
      const auto& cowritten = *a->cowritten;
      if (std::find(cowritten.begin(), cowritten.end(), b->key) == cowritten.end()) {
        continue;
      }
      if (b->version < a->version) {
        // Includes repeatable-read violations on the same key (b->key ==
        // a->key observed at an older version).
        verdict.fr_anomaly = true;
      }
    }
  }

  // ---- Repeatable read (folded into FR, §6.1.2): the same key observed at
  // two different committed versions.
  for (size_t i = 0; i < reads.size() && !verdict.fr_anomaly; ++i) {
    for (size_t j = i + 1; j < reads.size(); ++j) {
      if (reads[i]->key == reads[j]->key && reads[i]->version != reads[j]->version) {
        verdict.fr_anomaly = true;
        break;
      }
    }
  }

  return verdict;
}

}  // namespace aft
