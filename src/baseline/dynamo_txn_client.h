// DynamoDB transaction-mode baseline (§6.1.2, [13]).
//
// DynamoDB transactions are serializable but restricted: each transaction is
// a single API call and is either read-only or write-only, so a logical
// request spanning functions cannot be covered by one transaction. The
// paper adapts the 2-function workload as: function 1 does a 2-read
// transaction; function 2 does a 2-read transaction followed by a 2-write
// transaction. Conflicts abort proactively and the client retries with
// backoff (reported latencies include retries).

#ifndef SRC_BASELINE_DYNAMO_TXN_CLIENT_H_
#define SRC_BASELINE_DYNAMO_TXN_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/baseline/anomaly_checker.h"
#include "src/common/clock.h"
#include "src/storage/sim_dynamo.h"

namespace aft {

struct DynamoTxnRetryPolicy {
  int max_retries = 10;
  Duration base_backoff = Millis(4);  // Doubled per attempt, capped below.
  Duration max_backoff = Millis(64);
};

class DynamoTxnTransaction {
 public:
  DynamoTxnTransaction(SimDynamo& dynamo, Clock& clock,
                       std::vector<std::string> declared_write_set,
                       DynamoTxnRetryPolicy retry = {});

  // One TransactGetItems call (with conflict retries); logs observations.
  Result<std::vector<std::optional<std::string>>> ReadTxn(std::span<const std::string> keys);

  // One TransactWriteItems call (with conflict retries) installing all
  // updates atomically; logs writes.
  Status WriteTxn(std::span<const WriteOp> user_ops);

  const TxnLog& log() const { return log_; }
  const TxnId& id() const { return id_; }
  int conflict_retries() const { return conflict_retries_; }

 private:
  Duration BackoffFor(int attempt) const;

  SimDynamo& dynamo_;
  Clock& clock_;
  const TxnId id_;
  const std::vector<std::string> declared_write_set_;
  const DynamoTxnRetryPolicy retry_;
  TxnLog log_;
  int conflict_retries_ = 0;
};

}  // namespace aft

#endif  // SRC_BASELINE_DYNAMO_TXN_CLIENT_H_
