#include "src/baseline/plain_client.h"

#include "src/common/rng.h"
#include "src/storage/sim_engine_base.h"

namespace aft {

ReadObservation DecodeObservation(const std::string& key, const std::optional<std::string>& raw) {
  ReadObservation obs;
  obs.key = key;
  if (!raw.has_value()) {
    return obs;  // NULL observation.
  }
  auto decoded = VersionedValue::Deserialize(*raw);
  if (!decoded.ok()) {
    return obs;
  }
  obs.version = decoded->writer;
  obs.cowritten = std::make_shared<const std::vector<std::string>>(std::move(decoded->cowritten));
  return obs;
}

PlainTransaction::PlainTransaction(StorageEngine& storage, Clock& clock,
                                   std::vector<std::string> declared_write_set)
    : storage_(storage),
      id_(clock.WallTimeMicros(), Uuid::Random(ThreadLocalRng())),
      declared_write_set_(std::move(declared_write_set)) {
  log_.self = id_;
}

Result<std::optional<std::string>> PlainTransaction::Get(const std::string& key) {
  auto raw = storage_.Get(key);
  std::optional<std::string> value;
  if (raw.ok()) {
    value = std::move(raw).value();
  } else if (!raw.status().IsNotFound()) {
    return raw.status();
  }
  ReadObservation obs = DecodeObservation(key, value);
  std::optional<std::string> payload;
  if (value.has_value()) {
    auto decoded = VersionedValue::Deserialize(*value);
    payload = decoded.ok() ? std::move(decoded->payload) : std::move(*value);
  }
  log_.AddRead(std::move(obs));
  return payload;
}

Status PlainTransaction::Put(const std::string& key, std::string payload) {
  VersionedValue value{id_, declared_write_set_, std::move(payload)};
  AFT_RETURN_IF_ERROR(storage_.Put(key, value.Serialize()));
  log_.AddWrite(key);
  return Status::Ok();
}

}  // namespace aft
