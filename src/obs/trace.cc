#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace aft {
namespace obs {
namespace {

// JSON string escaping for the small set of characters our names/args can
// reasonably contain.
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  MutexLock lock(mu_);
  ring_.resize(capacity_);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

TraceContext Tracer::StartTrace() {
  const uint64_t n = sample_every_n_.load(std::memory_order_relaxed);
  if (n == 0) {
    return TraceContext{};
  }
  const uint64_t start = next_start_.fetch_add(1, std::memory_order_relaxed);
  if (start % n != 0) {
    return TraceContext{};
  }
  return TraceContext{next_trace_id_.fetch_add(1, std::memory_order_relaxed)};
}

void Tracer::Record(TraceEvent event) {
  if (event.trace_id == 0) {
    return;
  }
  total_recorded_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(mu_);
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  if (count_ < capacity_) {
    ++count_;
  }
}

uint64_t Tracer::NowMicros() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch)
                                   .count());
}

std::string Tracer::DumpJson() const {
  MutexLock lock(mu_);
  std::string out = "[";
  bool first = true;
  // Oldest event first: when the ring has wrapped, head_ points at it.
  const size_t start = count_ == capacity_ ? head_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    const TraceEvent& event = ring_[(start + i) % capacity_];
    if (!first) {
      out += ",";
    }
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\n{\"name\":\"%s\",\"cat\":\"aft\",\"ph\":\"X\",\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"pid\":1,\"tid\":\"%s\",\"args\":{\"trace_id\":%" PRIu64,
                  EscapeJson(event.name).c_str(), event.start_us, event.dur_us,
                  event.node.empty() ? "client" : EscapeJson(event.node).c_str(), event.trace_id);
    out += buf;
    for (const auto& [key, value] : event.args) {
      out += ",\"" + EscapeJson(key) + "\":\"" + EscapeJson(value) + "\"";
    }
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

size_t Tracer::size() const {
  MutexLock lock(mu_);
  return count_;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  for (auto& slot : ring_) {
    slot = TraceEvent{};
  }
  head_ = 0;
  count_ = 0;
}

}  // namespace obs
}  // namespace aft
