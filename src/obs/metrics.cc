#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>

#include "src/common/logging.h"

namespace aft {
namespace obs {
namespace internal {

size_t ThisThreadLane() {
  // Hash of the thread id, computed once per thread. Collisions just share a
  // lane; correctness is unaffected.
  thread_local const size_t lane =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kLanes;
  return lane;
}

}  // namespace internal

namespace {

double DecodeDouble(uint64_t bits) {
  double v = 0;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

uint64_t EncodeDouble(double v) {
  uint64_t bits = 0;
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Renders `{k1="v1",k2="v2"}` (empty string for no labels), optionally with
// one extra label appended (the histogram `le`).
std::string RenderLabels(const MetricLabels& labels, const std::string& extra_key = "",
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) {
      out += ',';
    }
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return std::string(buf);
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return std::string(buf);
}

// Canonical child key: label pairs sorted by key.
std::string LabelSignature(const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string sig;
  for (const auto& [key, value] : sorted) {
    sig += key;
    sig += '\x01';
    sig += value;
    sig += '\x02';
  }
  return sig;
}

}  // namespace

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)), buckets_(boundaries_.size() + 1) {}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(boundaries_, value)].fetch_add(1, std::memory_order_relaxed);
  auto& lane = sum_lanes_[internal::ThisThreadLane()].value;
  uint64_t old = lane.load(std::memory_order_relaxed);
  while (!lane.compare_exchange_weak(old, EncodeDouble(DecodeDouble(old) + value),
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const auto& lane : sum_lanes_) {
    total += DecodeDouble(lane.value.load(std::memory_order_relaxed));
  }
  return total;
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  uint64_t running = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

// ---- ScopedMetricCallback --------------------------------------------------

void ScopedMetricCallback::Release() {
  if (registry_ != nullptr) {
    registry_->UnregisterCallback(token_);
    registry_ = nullptr;
  }
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Family* MetricsRegistry::FindOrCreateFamilyLocked(const std::string& name,
                                                                   const std::string& help,
                                                                   Type type) {
  for (auto& family : families_) {
    if (family->name == name) {
      if (family->type != type) {
        return nullptr;
      }
      return family.get();
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->type = type;
  families_.push_back(std::move(family));
  return families_.back().get();
}

MetricsRegistry::Child* MetricsRegistry::FindOrCreateChildLocked(Family& family,
                                                                 MetricLabels labels) {
  std::string signature = LabelSignature(labels);
  for (auto& child : family.children) {
    if (child->signature == signature) {
      return child.get();
    }
  }
  auto child = std::make_unique<Child>();
  child->labels = std::move(labels);
  child->signature = std::move(signature);
  family.children.push_back(std::move(child));
  return family.children.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help,
                                     MetricLabels labels) {
  MutexLock lock(mu_);
  Family* family = FindOrCreateFamilyLocked(name, help, Type::kCounter);
  if (family == nullptr) {
    AFT_LOG(Warn) << "metric '" << name << "' re-registered with a different type";
    detached_.push_back(std::make_unique<Child>());
    detached_.back()->counter = std::make_unique<Counter>();
    return detached_.back()->counter.get();
  }
  Child* child = FindOrCreateChildLocked(*family, std::move(labels));
  if (child->counter == nullptr) {
    child->counter = std::make_unique<Counter>();
  }
  return child->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help,
                                 MetricLabels labels) {
  MutexLock lock(mu_);
  Family* family = FindOrCreateFamilyLocked(name, help, Type::kGauge);
  if (family == nullptr) {
    AFT_LOG(Warn) << "metric '" << name << "' re-registered with a different type";
    detached_.push_back(std::make_unique<Child>());
    detached_.back()->gauge = std::make_unique<Gauge>();
    return detached_.back()->gauge.get();
  }
  Child* child = FindOrCreateChildLocked(*family, std::move(labels));
  if (child->gauge == nullptr) {
    child->gauge = std::make_unique<Gauge>();
  }
  return child->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, const std::string& help,
                                         std::vector<double> boundaries, MetricLabels labels) {
  MutexLock lock(mu_);
  Family* family = FindOrCreateFamilyLocked(name, help, Type::kHistogram);
  if (family == nullptr) {
    AFT_LOG(Warn) << "metric '" << name << "' re-registered with a different type";
    detached_.push_back(std::make_unique<Child>());
    detached_.back()->histogram = std::make_unique<Histogram>(std::move(boundaries));
    return detached_.back()->histogram.get();
  }
  Child* child = FindOrCreateChildLocked(*family, std::move(labels));
  if (child->histogram == nullptr) {
    child->histogram = std::make_unique<Histogram>(std::move(boundaries));
  }
  return child->histogram.get();
}

ScopedMetricCallback MetricsRegistry::RegisterCallback(const std::string& name,
                                                       const std::string& help, CallbackType type,
                                                       MetricLabels labels,
                                                       std::function<double()> fn) {
  const Type family_type =
      type == CallbackType::kCounter ? Type::kCallbackCounter : Type::kCallbackGauge;
  MutexLock lock(mu_);
  Family* family = FindOrCreateFamilyLocked(name, help, family_type);
  if (family == nullptr) {
    AFT_LOG(Warn) << "metric '" << name << "' re-registered with a different type";
    return ScopedMetricCallback();
  }
  Child* child = FindOrCreateChildLocked(*family, std::move(labels));
  child->callback = std::move(fn);
  child->callback_token = next_callback_token_++;
  return ScopedMetricCallback(this, child->callback_token);
}

void MetricsRegistry::UnregisterCallback(uint64_t token) {
  MutexLock lock(mu_);
  for (auto& family : families_) {
    for (auto& child : family->children) {
      if (child->callback_token == token) {
        // Only clear if a newer registration has not replaced this slot.
        child->callback = nullptr;
        child->callback_token = 0;
        return;
      }
    }
  }
}

std::string MetricsRegistry::Exposition() const {
  MutexLock lock(mu_);
  // Deterministic output: families by name, children by label signature.
  std::vector<const Family*> families;
  families.reserve(families_.size());
  for (const auto& family : families_) {
    families.push_back(family.get());
  }
  std::sort(families.begin(), families.end(),
            [](const Family* a, const Family* b) { return a->name < b->name; });

  std::string out;
  for (const Family* family : families) {
    std::vector<const Child*> children;
    children.reserve(family->children.size());
    for (const auto& child : family->children) {
      if ((family->type == Type::kCallbackCounter || family->type == Type::kCallbackGauge) &&
          child->callback == nullptr) {
        continue;  // Unregistered callback slot.
      }
      children.push_back(child.get());
    }
    if (children.empty()) {
      continue;
    }
    std::sort(children.begin(), children.end(),
              [](const Child* a, const Child* b) { return a->signature < b->signature; });

    out += "# HELP " + family->name + " " + family->help + "\n";
    const char* type_name = "untyped";
    switch (family->type) {
      case Type::kCounter:
      case Type::kCallbackCounter:
        type_name = "counter";
        break;
      case Type::kGauge:
      case Type::kCallbackGauge:
        type_name = "gauge";
        break;
      case Type::kHistogram:
        type_name = "histogram";
        break;
    }
    out += "# TYPE " + family->name + " " + std::string(type_name) + "\n";

    for (const Child* child : children) {
      switch (family->type) {
        case Type::kCounter:
          out += family->name + RenderLabels(child->labels) + " " +
                 FormatU64(child->counter->Value()) + "\n";
          break;
        case Type::kGauge:
          out += family->name + RenderLabels(child->labels) + " " +
                 FormatDouble(child->gauge->Value()) + "\n";
          break;
        case Type::kCallbackCounter:
        case Type::kCallbackGauge:
          out += family->name + RenderLabels(child->labels) + " " +
                 FormatDouble(child->callback()) + "\n";
          break;
        case Type::kHistogram: {
          const Histogram& hist = *child->histogram;
          const std::vector<uint64_t> cumulative = hist.CumulativeCounts();
          const std::vector<double>& bounds = hist.boundaries();
          for (size_t i = 0; i < bounds.size(); ++i) {
            out += family->name + "_bucket" +
                   RenderLabels(child->labels, "le", FormatDouble(bounds[i])) + " " +
                   FormatU64(cumulative[i]) + "\n";
          }
          out += family->name + "_bucket" + RenderLabels(child->labels, "le", "+Inf") + " " +
                 FormatU64(cumulative.back()) + "\n";
          out += family->name + "_sum" + RenderLabels(child->labels) + " " +
                 FormatDouble(hist.Sum()) + "\n";
          out += family->name + "_count" + RenderLabels(child->labels) + " " +
                 FormatU64(cumulative.back()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

bool MetricsRegistry::ReadValue(const std::string& name, const MetricLabels& labels,
                                double* out) const {
  const std::string signature = LabelSignature(labels);
  MutexLock lock(mu_);
  for (const auto& family : families_) {
    if (family->name != name) {
      continue;
    }
    for (const auto& child : family->children) {
      if (child->signature != signature) {
        continue;
      }
      switch (family->type) {
        case Type::kCounter:
          *out = static_cast<double>(child->counter->Value());
          return true;
        case Type::kGauge:
          *out = child->gauge->Value();
          return true;
        case Type::kHistogram:
          *out = static_cast<double>(child->histogram->Count());
          return true;
        case Type::kCallbackCounter:
        case Type::kCallbackGauge:
          if (child->callback == nullptr) {
            return false;
          }
          *out = child->callback();
          return true;
      }
    }
  }
  return false;
}

}  // namespace obs
}  // namespace aft
