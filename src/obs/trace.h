// Sampled per-transaction lifecycle tracing (docs/OBSERVABILITY.md).
//
// A `TraceContext` is minted when a transaction starts (client side or, for
// untraced callers, at the server). Sampling happens exactly once, at mint
// time: a context is either sampled (its 64-bit id travels with the
// transaction, including across the TCP wire via the frame trace flag — see
// docs/PROTOCOLS.md) or it is a no-op and every span guard along the way
// compiles down to two branches and no stores.
//
// Spans are recorded as *complete* events (chrome://tracing `ph:"X"`): the
// RAII `TraceSpan` stamps a steady-clock start on construction and pushes one
// event with a duration on destruction. Events land in a fixed-size ring
// buffer owned by the process-wide `Tracer`; when the ring wraps, the oldest
// events are overwritten (tracing never blocks or allocates on the hot path
// beyond the args strings the caller chose to attach). `DumpJson()` renders
// the ring as a chrome://tracing-compatible JSON array; load it at
// chrome://tracing or https://ui.perfetto.dev.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/mutex.h"

namespace aft {
namespace obs {

// Propagated with a transaction. trace_id == 0 means "not sampled".
struct TraceContext {
  uint64_t trace_id = 0;

  bool sampled() const { return trace_id != 0; }
};

// One completed span. Timestamps are microseconds on the process-wide steady
// clock (`Tracer::NowMicros`), so events from different threads of one
// process line up on a shared axis.
struct TraceEvent {
  uint64_t trace_id = 0;
  std::string name;                                       // e.g. "CommitFlush"
  std::string node;                                       // emitting node id ("" = client)
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  std::vector<std::pair<std::string, std::string>> args;  // small, optional
};

class Tracer {
 public:
  // Ring capacity in events. Sized so a full cluster-test workload fits with
  // room to spare while keeping the tracer's memory footprint bounded.
  static constexpr size_t kDefaultCapacity = 8192;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer every span guard records into.
  static Tracer& Global();

  // Sample 1 in `n` new traces. n == 0 disables tracing (the default for
  // library use; aft_server --trace-sample and tests turn it on). n == 1
  // traces everything.
  void SetSampleEveryN(uint64_t n) { sample_every_n_.store(n, std::memory_order_relaxed); }
  uint64_t sample_every_n() const { return sample_every_n_.load(std::memory_order_relaxed); }

  // Mints a context for a new transaction: sampled (non-zero id) for 1 in N
  // starts, no-op otherwise.
  TraceContext StartTrace();

  // Appends a completed event (no-op when event.trace_id == 0). Overwrites
  // the oldest event once the ring is full.
  void Record(TraceEvent event);

  // Microseconds since process start on the steady clock.
  static uint64_t NowMicros();

  // chrome://tracing JSON array of the ring's events, oldest first. Each
  // event becomes {"name","cat","ph":"X","ts","dur","pid":1,"tid",...} with
  // the trace id and caller args under "args".
  std::string DumpJson() const;

  // Events currently held (<= capacity).
  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Total events ever recorded, including ones the ring has since overwritten.
  uint64_t total_recorded() const { return total_recorded_.load(std::memory_order_relaxed); }

  void Clear();

 private:
  const size_t capacity_;
  std::atomic<uint64_t> sample_every_n_{0};
  std::atomic<uint64_t> next_start_{0};      // Start counter for 1-in-N sampling.
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> total_recorded_{0};

  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);  // capacity_ slots.
  size_t head_ GUARDED_BY(mu_) = 0;               // Next slot to write.
  size_t count_ GUARDED_BY(mu_) = 0;              // Filled slots (<= capacity_).
};

// RAII span guard: stamps start on construction, records a complete event on
// destruction. All methods are no-ops when the context is not sampled.
class TraceSpan {
 public:
  // Views, not strings: an unsampled span must not copy its name — commit
  // spans run once per transaction and some names outgrow the small-string
  // buffer. The strings are materialized only on the sampled path.
  TraceSpan(const TraceContext& ctx, std::string_view name, std::string_view node = {})
      : trace_id_(ctx.trace_id) {
    if (trace_id_ != 0) {
      name_ = std::string(name);
      node_ = std::string(node);
      start_us_ = Tracer::NowMicros();
    }
  }
  ~TraceSpan() { Finish(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a key/value to the eventual event (e.g. Algorithm-1 walk depth).
  void AddArg(const std::string& key, std::string value) {
    if (trace_id_ != 0) {
      args_.emplace_back(key, std::move(value));
    }
  }

  // Records the event now instead of at scope exit. Idempotent.
  void Finish() {
    if (trace_id_ == 0) {
      return;
    }
    TraceEvent event;
    event.trace_id = trace_id_;
    event.name = std::move(name_);
    event.node = std::move(node_);
    event.start_us = start_us_;
    event.dur_us = Tracer::NowMicros() - start_us_;
    event.args = std::move(args_);
    Tracer::Global().Record(std::move(event));
    trace_id_ = 0;
  }

 private:
  uint64_t trace_id_ = 0;
  std::string name_;
  std::string node_;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace obs
}  // namespace aft

#endif  // SRC_OBS_TRACE_H_
