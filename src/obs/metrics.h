// Runtime metrics: low-overhead counters, gauges, and fixed-boundary
// histograms behind a process-wide registry with labeled families, rendered
// in the Prometheus text exposition format (docs/OBSERVABILITY.md).
//
// Hot-path cost model:
//   * Counter::Increment — one relaxed fetch_add on a cache-line-padded lane
//     picked by a hash of the calling thread, so concurrent writers do not
//     ping-pong a shared line. Reads sum the lanes (reads are rare: scrape
//     time only).
//   * Histogram::Observe — one binary search over the boundary vector plus
//     one relaxed bucket fetch_add and one relaxed CAS-add into a sharded
//     sum lane. No locks anywhere on the write path.
//   * Gauge — a single atomic (gauges track levels, not rates; their writers
//     are far less frequent than counter increments).
//
// Registration (GetCounter / GetGauge / GetHistogram) takes a mutex and is
// meant for construction time: components look their instruments up once and
// cache the returned pointer. Pointers are stable for the registry's
// lifetime; instruments are never deleted (a family child re-requested with
// the same name+labels is the same object, so counters accumulate across
// component restarts — exactly what a scraper expects of a process).
//
// Callback metrics wrap pre-existing atomics (e.g. `StorageCounters`) or
// compute point-in-time values (cache sizes) at exposition time without
// touching the owner's hot path. They are the one registration that must be
// UNregistered — the callback captures the owning component — so
// RegisterCallback returns an RAII handle. Re-registering the same
// name+labels replaces the previous callback (the old owner is gone); the
// superseded handle's destructor then does nothing.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/mutex.h"

namespace aft {
namespace obs {

// Label set for one family child, e.g. {{"node", "aft-0"}, {"method", "Get"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

namespace internal {

inline constexpr size_t kLanes = 16;

// One cache-line-padded atomic lane.
struct alignas(64) Lane {
  std::atomic<uint64_t> value{0};
};

// Stable per-thread lane index.
size_t ThisThreadLane();

}  // namespace internal

// Monotonically increasing counter, sharded across lanes.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    lanes_[internal::ThisThreadLane()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& lane : lanes_) {
      total += lane.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  internal::Lane lanes_[internal::kLanes];
};

// A level that can move both ways. Stored as a double (Prometheus gauges are
// doubles) in one atomic word.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }

  void Add(double delta) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old, Encode(Decode(old) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  void Sub(double delta) { Add(-delta); }

  double Value() const { return Decode(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t Encode(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double Decode(uint64_t bits) {
    double v = 0;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::atomic<uint64_t> bits_{0x0ULL};  // 0.0
};

// Fixed-boundary histogram with atomic buckets and lane-sharded sum.
class Histogram {
 public:
  explicit Histogram(std::vector<double> boundaries);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const;
  double Sum() const;
  // Per-bucket cumulative counts, one per boundary plus the +Inf bucket —
  // the shape the Prometheus `le` series wants.
  std::vector<uint64_t> CumulativeCounts() const;
  const std::vector<double>& boundaries() const { return boundaries_; }

 private:
  const std::vector<double> boundaries_;
  std::vector<std::atomic<uint64_t>> buckets_;  // boundaries_.size() + 1.
  internal::Lane sum_lanes_[internal::kLanes];  // Bit-cast doubles.
};

// Observes the scope's wall duration in milliseconds into a latency
// histogram. Always measures real (steady-clock) time — metrics report what
// the process actually spent, even under a simulated Clock.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedHistogramTimer() {
    if (histogram_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      histogram_->Observe(std::chrono::duration<double, std::milli>(elapsed).count());
    }
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

  // The instant the timer opened. Instrumentation nested inside the timed
  // window can reuse this as its own start instead of re-reading the clock —
  // stage attribution anchors txn_lock_wait here so the per-stage sum nests
  // inside the end-to-end window by construction.
  std::chrono::steady_clock::time_point start() const { return start_; }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

enum class CallbackType {
  kCounter,  // Exposed with TYPE counter; the function must be monotone.
  kGauge,
};

class MetricsRegistry;

// RAII deregistration handle for callback metrics. Movable; destroying it
// removes the callback unless a later registration already replaced it.
class ScopedMetricCallback {
 public:
  ScopedMetricCallback() = default;
  ScopedMetricCallback(MetricsRegistry* registry, uint64_t token)
      : registry_(registry), token_(token) {}
  ~ScopedMetricCallback() { Release(); }

  ScopedMetricCallback(ScopedMetricCallback&& other) noexcept
      : registry_(other.registry_), token_(other.token_) {
    other.registry_ = nullptr;
  }
  ScopedMetricCallback& operator=(ScopedMetricCallback&& other) noexcept {
    if (this != &other) {
      Release();
      registry_ = other.registry_;
      token_ = other.token_;
      other.registry_ = nullptr;
    }
    return *this;
  }
  ScopedMetricCallback(const ScopedMetricCallback&) = delete;
  ScopedMetricCallback& operator=(const ScopedMetricCallback&) = delete;

 private:
  void Release();

  MetricsRegistry* registry_ = nullptr;
  uint64_t token_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every in-tree component registers into; the
  // kGetMetrics RPC and the --metrics-port endpoint expose this one.
  static MetricsRegistry& Global();

  // Find-or-create. The returned pointer is stable and lock-free to use;
  // look it up once and cache it. A name re-used with a different metric
  // type logs a warning and yields a detached instrument (never nullptr, so
  // callers need no error path).
  Counter* GetCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help, MetricLabels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> boundaries, MetricLabels labels = {});

  // Registers a function evaluated at exposition time. Same name+labels
  // replaces the previous callback. The returned handle unregisters on
  // destruction; keep it alive exactly as long as everything the function
  // captures.
  [[nodiscard]] ScopedMetricCallback RegisterCallback(const std::string& name,
                                                      const std::string& help, CallbackType type,
                                                      MetricLabels labels,
                                                      std::function<double()> fn);

  // Prometheus text exposition (format 0.0.4). Families sorted by name,
  // children by label signature, so output is deterministic.
  std::string Exposition() const;

  // Point read of one child's value (tests): counter/gauge/callback value,
  // or histogram count. Returns false when no such child exists.
  bool ReadValue(const std::string& name, const MetricLabels& labels, double* out) const;

 private:
  friend class ScopedMetricCallback;

  enum class Type { kCounter, kGauge, kHistogram, kCallbackCounter, kCallbackGauge };

  struct Child {
    MetricLabels labels;          // Original order for exposition.
    std::string signature;        // Canonical sorted key.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
    uint64_t callback_token = 0;
  };

  struct Family {
    std::string name;
    std::string help;
    Type type = Type::kCounter;
    std::vector<std::unique_ptr<Child>> children;
  };

  Family* FindOrCreateFamilyLocked(const std::string& name, const std::string& help, Type type)
      REQUIRES(mu_);
  Child* FindOrCreateChildLocked(Family& family, MetricLabels labels) REQUIRES(mu_);
  void UnregisterCallback(uint64_t token);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Family>> families_ GUARDED_BY(mu_);
  // Type-conflict fallbacks: detached instruments kept alive but never
  // exposed (a coding bug should degrade, not crash).
  std::vector<std::unique_ptr<Child>> detached_ GUARDED_BY(mu_);
  uint64_t next_callback_token_ GUARDED_BY(mu_) = 1;
};

}  // namespace obs
}  // namespace aft

#endif  // SRC_OBS_METRICS_H_
