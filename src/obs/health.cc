#include "src/obs/health.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "src/common/contention.h"
#include "src/common/mutex.h"

namespace aft {
namespace obs {
namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

struct VarzState {
  Mutex mu;
  std::map<std::string, std::string> values GUARDED_BY(mu);
};

VarzState& Varz() {
  static VarzState* state = new VarzState();
  return *state;
}

struct ReadyCheck {
  std::string name;
  ReadyCheckFn fn;
};

struct ReadyState {
  Mutex mu;
  uint64_t next_id GUARDED_BY(mu) = 1;
  std::map<uint64_t, ReadyCheck> checks GUARDED_BY(mu);
};

ReadyState& Ready() {
  static ReadyState* state = new ReadyState();
  return *state;
}

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) * 1e-9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) * 1e-6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(ns) * 1e-3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(ns));
  }
  return buf;
}

}  // namespace

void SetVarz(const std::string& key, const std::string& value) {
  VarzState& state = Varz();
  MutexLock lock(state.mu);
  state.values[key] = value;
}

std::string RenderVarz() {
  std::map<std::string, std::string> values;
  {
    VarzState& state = Varz();
    MutexLock lock(state.mu);
    values = state.values;
  }
  values["build.compiler"] = __VERSION__;
#ifdef NDEBUG
  values["build.mode"] = "release";
#else
  values["build.mode"] = "debug";
#endif
  values["proc.pid"] = std::to_string(::getpid());
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - ProcessStart()).count();
  char up[32];
  std::snprintf(up, sizeof(up), "%.1f", uptime_s);
  values["proc.uptime_s"] = up;

  std::string out;
  for (const auto& [key, value] : values) {
    out += key;
    out += ": ";
    out += value;
    out += "\n";
  }
  return out;
}

ScopedReadyCheck& ScopedReadyCheck::operator=(ScopedReadyCheck&& other) noexcept {
  if (this != &other) {
    Release();
    id_ = other.id_;
    other.id_ = 0;
  }
  return *this;
}

void ScopedReadyCheck::Release() {
  if (id_ == 0) {
    return;
  }
  ReadyState& state = Ready();
  MutexLock lock(state.mu);
  state.checks.erase(id_);
  id_ = 0;
}

ScopedReadyCheck RegisterReadyCheck(const std::string& name, ReadyCheckFn fn) {
  ReadyState& state = Ready();
  MutexLock lock(state.mu);
  // Replace semantics: a re-registered name supersedes the old check (the
  // superseded handle's Release then erases nothing that matters).
  for (auto it = state.checks.begin(); it != state.checks.end();) {
    it = it->second.name == name ? state.checks.erase(it) : std::next(it);
  }
  const uint64_t id = state.next_id++;
  state.checks.emplace(id, ReadyCheck{name, std::move(fn)});
  return ScopedReadyCheck(id);
}

ReadyReport CheckReady() {
  // Copy the functions out so checks run without the registry lock (a check
  // may itself take locks).
  std::vector<ReadyCheck> checks;
  {
    ReadyState& state = Ready();
    MutexLock lock(state.mu);
    checks.reserve(state.checks.size());
    for (const auto& [id, check] : state.checks) {
      checks.push_back(check);
    }
  }
  std::sort(checks.begin(), checks.end(),
            [](const ReadyCheck& a, const ReadyCheck& b) { return a.name < b.name; });
  ReadyReport report;
  for (const ReadyCheck& check : checks) {
    auto [ok, detail] = check.fn();
    report.ready = report.ready && ok;
    report.body += check.name;
    report.body += ok ? ": ok" : ": FAIL";
    if (!detail.empty()) {
      report.body += " ";
      report.body += detail;
    }
    report.body += "\n";
  }
  if (checks.empty()) {
    report.body = "no checks registered\n";
  }
  return report;
}

std::string RenderContention() {
  const auto sites = contention::ContentionRegistry::Global().Snapshot();
  std::string out = "# contention sites, ranked by total sampled wait\n";
  out += "# sample_every_n: " + std::to_string(contention::SampleEveryN()) +
         (contention::SampleEveryN() == 0 ? " (profiler off)" : "") + "\n";
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %-5s %10s %10s %12s %10s %10s %10s\n", "site", "kind",
                "samples", "contended", "total_wait", "max", "p50", "p99");
  out += line;
  for (const auto& site : sites) {
    std::snprintf(line, sizeof(line), "%-28s %-5s %10llu %10llu %12s %10s %10s %10s\n",
                  site.name.c_str(), contention::SiteKindName(site.kind),
                  static_cast<unsigned long long>(site.samples),
                  static_cast<unsigned long long>(site.contended),
                  FormatNs(site.total_wait_ns).c_str(), FormatNs(site.max_wait_ns).c_str(),
                  FormatNs(site.ApproxQuantileNs(0.5)).c_str(),
                  FormatNs(site.ApproxQuantileNs(0.99)).c_str());
    out += line;
  }
  return out;
}

void SyncContentionMetrics(MetricsRegistry& registry) {
  // One-time (per site) callback registration; the callbacks read the
  // site's atomics at scrape time. Handles are intentionally leaked into a
  // static — sites live forever, and so does the bridge.
  struct BridgeState {
    Mutex mu;
    std::unordered_set<std::string> bridged GUARDED_BY(mu);
    std::vector<ScopedMetricCallback> handles GUARDED_BY(mu);
  };
  static BridgeState* state = new BridgeState();

  const auto sites = contention::ContentionRegistry::Global().Snapshot();
  MutexLock lock(state->mu);
  for (const auto& snap : sites) {
    if (!state->bridged.insert(snap.name).second) {
      continue;
    }
    contention::ContentionSite* site = contention::ContentionRegistry::Global().GetSite(
        snap.name, snap.kind);
    const MetricLabels labels = {{"lock", snap.name},
                                 {"kind", contention::SiteKindName(snap.kind)}};
    state->handles.push_back(registry.RegisterCallback(
        "aft_lock_wait_seconds_total", "Sampled wait accumulated at this site",
        CallbackType::kCounter, labels,
        [site] { return static_cast<double>(site->total_wait_ns()) * 1e-9; }));
    state->handles.push_back(registry.RegisterCallback(
        "aft_lock_wait_samples_total", "Sampled acquisitions at this site",
        CallbackType::kCounter, labels,
        [site] { return static_cast<double>(site->samples()); }));
    state->handles.push_back(registry.RegisterCallback(
        "aft_lock_contended_total", "Sampled acquisitions that blocked at this site",
        CallbackType::kCounter, labels,
        [site] { return static_cast<double>(site->contended()); }));
  }
}

}  // namespace obs
}  // namespace aft
