// Plaintext HTTP exporter for the metrics registry and the tracer, so a real
// Prometheus scraper (or `curl`) can poll a node:
//
//   GET /metrics  ->  text/plain; version=0.0.4   Prometheus exposition
//   GET /traces   ->  application/json            chrome://tracing event array
//
// Deliberately minimal: one blocking accept thread, one request per
// connection, GET only. It lives in src/obs (raw POSIX sockets, not
// src/net's Socket) so the observability layer stays below the transport it
// instruments — aft_net depends on aft_obs, never the reverse.

#ifndef SRC_OBS_METRICS_HTTP_H_
#define SRC_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aft {
namespace obs {

class MetricsHttpServer {
 public:
  MetricsHttpServer(MetricsRegistry& registry, Tracer& tracer)
      : registry_(registry), tracer_(tracer) {}
  ~MetricsHttpServer() { Stop(); }

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds 0.0.0.0:`port` (0 = kernel-assigned, see port()) and starts the
  // accept thread.
  Status Start(uint16_t port);
  void Stop();

  // The bound port, valid after a successful Start().
  uint16_t port() const { return port_; }

 private:
  void Loop();
  void ServeConnection(int fd);

  MetricsRegistry& registry_;
  Tracer& tracer_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

}  // namespace obs
}  // namespace aft

#endif  // SRC_OBS_METRICS_HTTP_H_
