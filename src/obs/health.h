// Health, readiness and introspection surfaces behind the HTTP exporter:
//
//   /healthz            liveness: the process is up and serving (200 always)
//   /readyz             readiness: every registered check passes (else 503)
//   /varz               build info, uptime, and the flag/env echo the server
//                       publishes via SetVarz — scrape-side tooling uses it
//                       to tell node configurations apart
//   /debug/contention   ranked lock/queue hot spots from the sampled
//                       contention profiler (src/common/contention.h)
//
// Process-global registries (like MetricsRegistry): a server binary has one
// health state no matter how many components report into it.

#ifndef SRC_OBS_HEALTH_H_
#define SRC_OBS_HEALTH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace aft {
namespace obs {

// ---- /varz -----------------------------------------------------------------

// Publishes (or overwrites) one key in the /varz table. Values are free-form
// one-line strings; keys render in sorted order.
void SetVarz(const std::string& key, const std::string& value);

// The /varz body: "key: value" lines — the published keys plus built-in
// build.compiler, build.mode, proc.uptime_s and proc.pid.
std::string RenderVarz();

// ---- /readyz ---------------------------------------------------------------

// A readiness check: returns {ready, detail}. Must be callable from the
// exporter's accept thread at any time after registration.
using ReadyCheckFn = std::function<std::pair<bool, std::string>()>;

// RAII handle; destruction unregisters the check. Re-registering a live name
// replaces the previous check (component restart semantics, mirroring
// ScopedMetricCallback).
class [[nodiscard]] ScopedReadyCheck {
 public:
  ScopedReadyCheck() = default;
  explicit ScopedReadyCheck(uint64_t id) : id_(id) {}
  ~ScopedReadyCheck() { Release(); }
  ScopedReadyCheck(ScopedReadyCheck&& other) noexcept : id_(other.id_) { other.id_ = 0; }
  ScopedReadyCheck& operator=(ScopedReadyCheck&& other) noexcept;
  ScopedReadyCheck(const ScopedReadyCheck&) = delete;
  ScopedReadyCheck& operator=(const ScopedReadyCheck&) = delete;

  void Release();

 private:
  uint64_t id_ = 0;  // 0 = inert
};

ScopedReadyCheck RegisterReadyCheck(const std::string& name, ReadyCheckFn fn);

struct ReadyReport {
  bool ready = true;  // true iff every check passed (vacuously with none)
  // One "name: ok|FAIL detail" line per check, sorted by name.
  std::string body;
};

ReadyReport CheckReady();

// ---- /debug/contention ------------------------------------------------------

// Ranked (by total wait) plain-text table of every contention site: name,
// kind, samples, contended count, total/max/p50/p99 wait. Includes the
// current sampling rate header so a blank table is self-explanatory.
std::string RenderContention();

// Bridges contention sites into `registry` as callback counters —
// aft_lock_wait_seconds_total / aft_lock_wait_samples_total /
// aft_lock_contended_total, labeled {lock=<site>, kind=lock|queue} — so
// plain /metrics scrapers (and aft_top) see lock waits without the debug
// endpoint. Idempotent and cheap after the first call per site; the HTTP
// exporter invokes it before each exposition so sites created since the
// last scrape appear.
void SyncContentionMetrics(MetricsRegistry& registry);

}  // namespace obs
}  // namespace aft

#endif  // SRC_OBS_HEALTH_H_
