#include "src/obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"
#include "src/obs/health.h"

namespace aft {
namespace obs {
namespace {

void SendAllBestEffort(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

// EVERY response — success or error — goes through here, so Content-Length
// and Connection: close are consistent on all paths (clients like bash's
// /dev/tcp scrape loop and aft_top read until EOF and rely on the header
// pair; ObsHttpTest.ErrorResponsesCarryFramingHeaders pins this).
// `extra_headers` carries per-response additions, e.g. 405's "Allow: GET".
std::string HttpResponse(int code, const char* reason, const char* content_type,
                         const std::string& body, const std::string& extra_headers = {}) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason + "\r\n";
  out += "Content-Type: ";
  out += content_type;
  out += "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Status MetricsHttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("metrics http: socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st =
        Status::Unavailable("metrics http: bind: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 16) < 0) {
    const Status st =
        Status::Internal("metrics http: listen: " + std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // Shutdown unblocks the accept(2) in Loop().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::Loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (!stopping_.load(std::memory_order_acquire)) {
        AFT_LOG(Warn) << "metrics http: accept: " << std::strerror(errno);
      }
      return;
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::ServeConnection(int fd) {
  // Read until end-of-headers (or a sane cap); we only care about the request
  // line of a GET.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  if (request.find("\r\n\r\n") == std::string::npos) {
    // Headers never terminated within the cap: refuse rather than parse a
    // truncated request line as if it were complete.
    SendAllBestEffort(fd, HttpResponse(400, "Bad Request", "text/plain",
                                       "request headers too large or malformed\n"));
    return;
  }

  const size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) {
    SendAllBestEffort(fd, HttpResponse(405, "Method Not Allowed", "text/plain", "GET only\n",
                                       "Allow: GET\r\n"));
    return;
  }
  const size_t path_start = 4;
  const size_t path_end = line.find(' ', path_start);
  if (path_end == std::string::npos) {
    SendAllBestEffort(fd,
                      HttpResponse(400, "Bad Request", "text/plain", "malformed request line\n"));
    return;
  }
  const std::string path = line.substr(path_start, path_end - path_start);

  if (path == "/metrics" || path == "/") {
    // Late-created contention sites bridge into the registry at scrape time.
    SyncContentionMetrics(registry_);
    SendAllBestEffort(fd, HttpResponse(200, "OK", "text/plain; version=0.0.4",
                                       registry_.Exposition()));
  } else if (path == "/traces") {
    SendAllBestEffort(fd, HttpResponse(200, "OK", "application/json", tracer_.DumpJson()));
  } else if (path == "/healthz") {
    // Liveness: this thread answered, the process serves. Nothing deeper —
    // that is /readyz's job.
    SendAllBestEffort(fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
  } else if (path == "/readyz") {
    const ReadyReport report = CheckReady();
    SendAllBestEffort(fd, report.ready
                              ? HttpResponse(200, "OK", "text/plain", report.body)
                              : HttpResponse(503, "Service Unavailable", "text/plain",
                                             report.body));
  } else if (path == "/varz") {
    SendAllBestEffort(fd, HttpResponse(200, "OK", "text/plain", RenderVarz()));
  } else if (path == "/debug/contention") {
    SendAllBestEffort(fd, HttpResponse(200, "OK", "text/plain", RenderContention()));
  } else {
    SendAllBestEffort(
        fd, HttpResponse(404, "Not Found", "text/plain",
                         "try /metrics /traces /healthz /readyz /varz /debug/contention\n"));
  }
}

}  // namespace obs
}  // namespace aft
