#include "src/common/zipf.h"

#include <algorithm>
#include <cassert>

namespace aft {
namespace {

// Helper for numerically stable (exp(x*log(b)) - 1) / x style expressions.
// Computes (pow(b, x) - 1) / x with a series fallback near x == 0.
double PowHalf(double b, double x) {
  const double log_b = std::log(b);
  if (std::abs(x * log_b) < 1e-8) {
    // pow(b,x) - 1 ~= x*log(b) * (1 + x*log(b)/2)
    return log_b * (1.0 + x * log_b / 2.0);
  }
  return (std::pow(b, x) - 1.0) / x;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(std::max<uint64_t>(n, 1)), theta_(theta) {
  assert(theta >= 0.0);
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_n_ = H(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta_));
}

// H is the integral of the hat function h(x) = x^-theta:
//   H(x) = (x^(1-theta) - 1) / (1-theta)   for theta != 1
//   H(x) = log(x)                          for theta == 1
// Written with PowHalf for stability as theta -> 1.
double ZipfSampler::H(double x) const { return PowHalf(x, 1.0 - theta_); }

double ZipfSampler::HInverse(double x) const {
  const double t = x * (1.0 - theta_);
  if (std::abs(t) < 1e-8) {
    return std::exp(x);
  }
  return std::pow(1.0 + t, 1.0 / (1.0 - theta_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (theta_ == 0.0 || n_ == 1) {
    return rng.Below(n_);
  }
  while (true) {
    const double u = h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    k = std::clamp(k, 1.0, static_cast<double>(n_));
    const uint64_t rank = static_cast<uint64_t>(k);
    // Accept k with probability proportional to the true mass vs. the hat.
    if (k - x <= s_ || u >= H(k + 0.5) - std::pow(k, -theta_)) {
      return rank - 1;  // 0-based rank.
    }
  }
}

}  // namespace aft
