#include "src/common/status.h"

namespace aft {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aft
