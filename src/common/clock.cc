#include "src/common/clock.h"

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include <cstdlib>
#include <thread>

namespace aft {

int64_t Clock::WallTimeMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Now()).count();
}

RealClock::RealClock(double scale, Duration spin_threshold)
    : scale_(scale > 0 ? scale : 1.0),
      spin_threshold_(spin_threshold),
      epoch_(std::chrono::steady_clock::now()) {
#if defined(__linux__)
  // Scaled sleeps are frequently sub-millisecond; the default 50us kernel
  // timer slack would systematically overshoot them. Threads inherit the
  // creator's slack, so setting it here covers the whole process in the
  // common case where the clock is created before worker threads.
  prctl(PR_SET_TIMERSLACK, 1000);
#endif
}

TimePoint RealClock::Now() {
  const auto wall = std::chrono::steady_clock::now() - epoch_;
  // Report simulated time: wall elapsed divided by the scale factor.
  return std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::nano>(wall.count() / scale_));
}

void RealClock::SleepFor(Duration d) {
  if (d <= Duration::zero()) {
    return;
  }
  const auto wall = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::nano>(static_cast<double>(d.count()) * scale_));
  // Linux timer slack makes very short sleeps unreliable (~50-100us jitter),
  // which would distort sub-millisecond simulated latencies. Sleep the bulk
  // and spin the final stretch (unless spinning is disabled).
  if (spin_threshold_ <= Duration::zero()) {
    std::this_thread::sleep_for(wall);
    return;
  }
  const auto deadline = std::chrono::steady_clock::now() + wall;
  if (wall > spin_threshold_) {
    std::this_thread::sleep_for(wall - spin_threshold_);
  }
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

int64_t RealClock::WallTimeMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

RealClock& RealClock::Default() {
  static RealClock* clock = [] {
    double scale = 1.0;
    if (const char* env = std::getenv("AFT_TIME_SCALE"); env != nullptr) {
      const double parsed = std::atof(env);
      if (parsed > 0) {
        scale = parsed;
      }
    }
    return new RealClock(scale);
  }();
  return *clock;
}

TimePoint SimClock::Now() {
  MutexLock lock(mu_);
  return now_;
}

void SimClock::SleepFor(Duration d) {
  if (d <= Duration::zero()) {
    return;
  }
  MutexLock lock(mu_);
  const TimePoint deadline = now_ + d;
  auto it = sleepers_.insert(deadline);
  while (now_ < deadline) {
    if (auto_advance_.load() && *sleepers_.begin() == deadline) {
      // We are the earliest sleeper: virtual time jumps to our deadline.
      now_ = deadline;
      cv_.NotifyAll();
      break;
    }
    cv_.Wait(lock);
  }
  sleepers_.erase(it);
  // Our wakeup may have made another thread the earliest sleeper.
  cv_.NotifyAll();
}

int64_t SimClock::WallTimeMicros() {
  MutexLock lock(mu_);
  const int64_t base = std::chrono::duration_cast<std::chrono::microseconds>(now_).count();
  // Units are microseconds of virtual time. A global sequence number keeps
  // timestamps strictly increasing across ties at the same virtual instant
  // (it drifts the clock forward by 1us per call, which is harmless — the
  // protocols never depend on timestamp accuracy). The constant offset keeps
  // simulated wall time well above the small timestamps used by dataset
  // loaders, mirroring a real epoch-based clock.
  constexpr int64_t kEpochOffset = 1'000'000'000'000;
  return kEpochOffset + base + wall_seq_.fetch_add(1);
}

void SimClock::Advance(Duration d) {
  if (d < Duration::zero()) {
    return;
  }
  MutexLock lock(mu_);
  now_ += d;
  cv_.NotifyAll();
}

}  // namespace aft
