#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace aft {

std::string LatencySummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2fms min=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms", count,
                mean_ms, min_ms, median_ms, p95_ms, p99_ms, max_ms);
  return std::string(buf);
}

LatencyRecorder::LatencyRecorder() : histogram_(FineLatencyBoundariesMs()) {}

void LatencyRecorder::Record(Duration d) { RecordMillis(ToMillis(d)); }

void LatencyRecorder::RecordMillis(double ms) {
  MutexLock lock(mu_);
  if (samples_ms_.size() < kMaxExactSamples) {
    samples_ms_.push_back(ms);
  }
  histogram_.Observe(ms);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  std::vector<double> theirs;
  FixedHistogram their_histogram(FineLatencyBoundariesMs());
  {
    MutexLock lock(other.mu_);
    theirs = other.samples_ms_;
    their_histogram = other.histogram_;
  }
  MutexLock lock(mu_);
  const size_t room = kMaxExactSamples - std::min(kMaxExactSamples, samples_ms_.size());
  const size_t take = std::min(room, theirs.size());
  samples_ms_.insert(samples_ms_.end(), theirs.begin(), theirs.begin() + take);
  histogram_.Merge(their_histogram);
}

size_t LatencyRecorder::count() const {
  MutexLock lock(mu_);
  return static_cast<size_t>(histogram_.count());
}

void LatencyRecorder::Clear() {
  MutexLock lock(mu_);
  samples_ms_.clear();
  histogram_.Clear();
}

bool LatencyRecorder::overflowed() const {
  MutexLock lock(mu_);
  return histogram_.count() > samples_ms_.size();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

LatencySummary LatencyRecorder::Summarize() const {
  std::vector<double> samples;
  FixedHistogram histogram(FineLatencyBoundariesMs());
  {
    MutexLock lock(mu_);
    samples = samples_ms_;
    histogram = histogram_;
  }
  LatencySummary s;
  s.count = static_cast<size_t>(histogram.count());
  if (s.count == 0) {
    return s;
  }
  if (samples.size() == histogram.count()) {
    // Under the cap: exact order statistics from the raw samples.
    s.mean_ms = std::accumulate(samples.begin(), samples.end(), 0.0) /
                static_cast<double>(samples.size());
    s.min_ms = *std::min_element(samples.begin(), samples.end());
    s.max_ms = *std::max_element(samples.begin(), samples.end());
    s.median_ms = Percentile(samples, 50);
    s.p95_ms = Percentile(samples, 95);
    s.p99_ms = Percentile(samples, 99);
    return s;
  }
  // Overflowed: histogram estimates (worst-case ~8% relative error per
  // bucket width; min/max/mean stay exact — the histogram tracks them).
  s.mean_ms = histogram.sum() / static_cast<double>(histogram.count());
  s.min_ms = histogram.Quantile(0.0);
  s.max_ms = histogram.Quantile(1.0);
  s.median_ms = histogram.Quantile(0.50);
  s.p95_ms = histogram.Quantile(0.95);
  s.p99_ms = histogram.Quantile(0.99);
  return s;
}

ThroughputTimeline::ThroughputTimeline(Clock& clock, Duration window)
    : clock_(clock), window_(window) {}

void ThroughputTimeline::Start() {
  MutexLock lock(mu_);
  start_ = clock_.Now();
  buckets_.clear();
  total_ = 0;
}

void ThroughputTimeline::RecordEvent() {
  const TimePoint now = clock_.Now();
  MutexLock lock(mu_);
  if (now < start_) {
    return;
  }
  const size_t idx = static_cast<size_t>((now - start_) / window_);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  ++buckets_[idx];
  ++total_;
}

std::vector<ThroughputTimeline::Row> ThroughputTimeline::Report() const {
  MutexLock lock(mu_);
  std::vector<Row> rows;
  rows.reserve(buckets_.size());
  const double window_sec = ToMillis(window_) / 1000.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    rows.push_back(Row{static_cast<double>(i) * window_sec,
                       static_cast<double>(buckets_[i]) / window_sec});
  }
  return rows;
}

uint64_t ThroughputTimeline::total() const {
  MutexLock lock(mu_);
  return total_;
}

}  // namespace aft
