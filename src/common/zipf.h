// Zipfian key sampling.
//
// The paper's workloads draw keys from Zipf distributions with coefficients
// 1.0 (light), 1.5 (moderate) and 2.0 (heavy contention) over datasets of
// 1,000 or 100,000 keys (§6.1.2, §6.2). This sampler uses the
// rejection-inversion method of Hörmann & Derflinger, which is O(1) per
// sample for any exponent > 0 and needs no O(n) setup table.

#ifndef SRC_COMMON_ZIPF_H_
#define SRC_COMMON_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "src/common/rng.h"

namespace aft {

// Samples ranks in [0, n) with P(rank = k) proportional to 1 / (k+1)^theta.
class ZipfSampler {
 public:
  // `n` must be >= 1. `theta` is the Zipf coefficient; theta = 0 degenerates
  // to uniform sampling.
  ZipfSampler(uint64_t n, double theta);

  // Draws one rank using the supplied generator (callers own per-thread RNGs).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace aft

#endif  // SRC_COMMON_ZIPF_H_
