// A bounded executor for fanning one logical operation's blocking storage
// I/O out over worker threads (§3.3: "all of the transaction's updates are
// sent to storage in parallel").
//
// `ParallelFor(n, fn)` runs fn(0..n-1) concurrently and returns once EVERY
// call has finished — it is the commit path's completion latch, so the
// write-ordering protocol's barrier ("commit record only after every data
// write succeeded") holds by construction.
//
// Design notes:
//   - The caller PARTICIPATES: it drains the same work index as the pool
//     workers and then waits on a per-call latch. Completion therefore never
//     depends on pool capacity or even pool liveness — if the underlying
//     `ThreadPool` has been shut down (`Submit` returns false; its
//     destructor DROPS queued tasks), the caller simply runs every item
//     inline. Commit paths must never rely on pool drain for correctness,
//     and with this executor they never do.
//   - Items are claimed from a shared atomic index, executed exactly once,
//     and counted down on a per-call latch; helpers touch only per-call
//     state kept alive by shared_ptr, so overlapping ParallelFor calls from
//     many transactions share the pool safely.
//   - No early exit on error: every item runs even if an earlier one failed
//     (parallel writes already in flight cannot be recalled; stray versions
//     are invisible without a commit record and are reaped by the orphan
//     sweep). The FIRST error by item index is returned, which keeps the
//     reported failure deterministic under interleaving.
//   - Nesting is deadlock-free: a nested ParallelFor on a starved pool just
//     degrades to the caller thread working alone.
//
// Lock ordering: fn must not hold any lock across a ParallelFor call that
// fn itself acquires (the usual self-deadlock rule); the executor's own
// internal mutex is a leaf and is never held while fn runs.

#ifndef SRC_COMMON_IO_EXECUTOR_H_
#define SRC_COMMON_IO_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "src/common/contention.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"

namespace aft {

class IoExecutor {
 public:
  // Spawns `num_threads` helper workers. Helpers mostly sleep on simulated
  // storage latency, so the width can comfortably exceed the hardware
  // thread count.
  //
  // A non-null `name` enrolls the executor in the contention profiler:
  // sampled Submit() tasks record queue wait (submit → first instruction)
  // into "<name>.queue" and run time into "<name>.run". Unnamed executors
  // and unsampled tasks pay one pointer compare.
  explicit IoExecutor(size_t num_threads, const char* name = nullptr);

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  // Runs fn(0) .. fn(n-1), using up to `max_parallelism` concurrent lanes
  // (0 = executor width; the calling thread always counts as one lane).
  // Returns after ALL n calls have completed: OK if every call succeeded,
  // otherwise the error of the failing call with the lowest index.
  // n <= 1 runs entirely inline.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn,
                     size_t max_parallelism = 0);

  // Fire-and-forget: enqueues one task on the helper pool. Returns false when
  // the pool has been shut down (the caller then runs the work inline — same
  // never-rely-on-pool-drain contract as ParallelFor). Used by the event-loop
  // server to hand decoded requests to worker lanes.
  bool Submit(std::function<void()> task);

  // Stops accepting helper work; in-flight items finish, queued helper
  // tasks are dropped. ParallelFor remains correct afterwards (caller-only
  // drain). Exposed for the shutdown-during-flush test.
  void Shutdown();

  size_t width() const { return pool_.num_threads(); }

  // The process-wide executor shared by commit flush, multi-get reads and
  // maintenance sweeps. Width: AFT_IO_THREADS env var, default 32.
  // Intentionally leaked so late-exiting threads never race static
  // destruction.
  static IoExecutor& Shared();

  // Nanoseconds THIS thread spent in ParallelFor's final completion wait
  // (the §3.3 barrier: data writes issued, waiting for stragglers) since the
  // last call; reading resets the accumulator. The commit path brackets its
  // flush with consume-before / consume-after to attribute the barrier
  // stage. Only accumulates while contention::StageTimingEnabled().
  static uint64_t ConsumeLatchWaitNanos();

 private:
  ThreadPool pool_;
  contention::ContentionSite* queue_site_ = nullptr;
  contention::ContentionSite* run_site_ = nullptr;
};

}  // namespace aft

#endif  // SRC_COMMON_IO_EXECUTOR_H_
