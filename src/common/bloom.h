// A simple Bloom filter over strings.
//
// Used by RAMP-Hybrid (Bailis et al., SIGMOD'14), which attaches a Bloom
// filter of the transaction's write set to every version instead of the full
// key list — constant-ish metadata with one-sided error: membership queries
// can yield false POSITIVES (forcing a spurious second read round) but never
// false negatives (which would break read atomicity).

#ifndef SRC_COMMON_BLOOM_H_
#define SRC_COMMON_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aft {

class BloomFilter {
 public:
  // `bits` is rounded up to a multiple of 64; `hashes` in [1, 16].
  explicit BloomFilter(size_t bits = 256, int hashes = 4);

  // Reconstructs a filter from Serialize() output (empty filter on corrupt
  // input — conservative: an empty filter reports nothing present, which for
  // RAMP-Hybrid means "no sibling", so callers must only deserialize bytes
  // they produced; Deserialize validates the header for that reason).
  static BloomFilter Deserialize(const std::string& bytes, bool* ok = nullptr);

  void Add(const std::string& item);
  bool MightContain(const std::string& item) const;

  std::string Serialize() const;

  size_t bit_count() const { return words_.size() * 64; }
  int hash_count() const { return hashes_; }

  // Expected false-positive rate given `n` inserted items.
  double EstimatedFalsePositiveRate(size_t n) const;

 private:
  std::pair<uint64_t, uint64_t> HashPair(const std::string& item) const;

  int hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace aft

#endif  // SRC_COMMON_BLOOM_H_
