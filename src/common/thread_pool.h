// A bounded worker pool with a FIFO queue.
//
// Used by the FaaS platform simulator (worker slots model the provider's
// concurrent-invocation limit), by background deletion in the global GC, and
// as the lane pool behind IoExecutor.
//
// CONTRACT: destruction (and Shutdown) drops queued tasks that have not
// started. Anything that must complete therefore may not rely on the pool
// draining — either Wait() explicitly (the fault manager's delete pool) or
// count completions on a per-call latch with the submitting thread
// participating in the work (IoExecutor::ParallelFor, which the commit
// flush runs on). See src/common/io_executor.h.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"

namespace aft {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  // Drains nothing: pending tasks that have not started are dropped, running
  // tasks are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns false after Shutdown().
  bool Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void Wait();

  // Stops accepting tasks and joins workers after running tasks finish.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  CondVar work_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace aft

#endif  // SRC_COMMON_THREAD_POOL_H_
