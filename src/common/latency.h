// Latency injection for simulated cloud services.
//
// Cloud storage latencies are well modelled by lognormal distributions with a
// heavy right tail (S3 especially; see [9, 40] in the paper). Each simulated
// engine owns a `LatencyProfile` mapping operation classes to `LatencyModel`s
// and charges a sample against the configured `Clock` on every call.

#ifndef SRC_COMMON_LATENCY_H_
#define SRC_COMMON_LATENCY_H_

#include <cstdint>

#include "src/common/clock.h"
#include "src/common/rng.h"

namespace aft {

// One latency distribution: lognormal(mu, sigma) + a constant floor, where mu
// is expressed as a *median* in milliseconds for readability. A per-kilobyte
// transfer cost models payload-size sensitivity.
class LatencyModel {
 public:
  constexpr LatencyModel() = default;

  // `median_ms`: median of the lognormal; `sigma`: log-space standard
  // deviation (0 = deterministic); `floor_ms`: hard lower bound;
  // `per_kb_ms`: additional deterministic cost per KiB of payload.
  constexpr LatencyModel(double median_ms, double sigma, double floor_ms = 0.0,
                         double per_kb_ms = 0.0)
      : median_ms_(median_ms), sigma_(sigma), floor_ms_(floor_ms), per_kb_ms_(per_kb_ms) {}

  static constexpr LatencyModel Zero() { return LatencyModel(0, 0, 0, 0); }

  // Draws one latency for a payload of `bytes`.
  Duration Sample(Rng& rng, uint64_t bytes = 0) const;

  double median_ms() const { return median_ms_; }
  bool is_zero() const { return median_ms_ == 0 && floor_ms_ == 0 && per_kb_ms_ == 0; }

  // Returns a copy scaled by `factor` (used to derive batch-op costs).
  constexpr LatencyModel Scaled(double factor) const {
    return LatencyModel(median_ms_ * factor, sigma_, floor_ms_ * factor, per_kb_ms_ * factor);
  }

 private:
  double median_ms_ = 0.0;
  double sigma_ = 0.0;
  double floor_ms_ = 0.0;
  double per_kb_ms_ = 0.0;
};

// Samples a standard normal using the ratio-of-uniforms-free polar method.
double SampleStandardNormal(Rng& rng);

}  // namespace aft

#endif  // SRC_COMMON_LATENCY_H_
