#include "src/common/contention.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "src/common/mutex.h"

namespace aft {
namespace contention {

namespace detail {
std::atomic<uint32_t> g_sample_every_n{0};
std::atomic<bool> g_stage_timing{true};
}  // namespace detail

void SetSampleEveryN(uint32_t n) {
  detail::g_sample_every_n.store(n, std::memory_order_relaxed);
}

uint32_t SampleEveryN() { return detail::g_sample_every_n.load(std::memory_order_relaxed); }

void SetStageTiming(bool enabled) {
  detail::g_stage_timing.store(enabled, std::memory_order_relaxed);
}

const char* SiteKindName(SiteKind kind) {
  return kind == SiteKind::kLock ? "lock" : "queue";
}

uint64_t SiteSnapshot::ApproxQuantileNs(double q) const {
  if (contended == 0) {
    return 0;
  }
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(contended - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < ContentionSite::kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return uint64_t{1} << (i + 1);  // bucket upper bound
    }
  }
  return max_wait_ns;
}

namespace {

// Registry internals. The map mutex is UNNAMED on purpose: a named mutex
// inside the registry that backs named mutexes would recurse through
// GetSite. Lookups happen at site-caching time only, never per-acquisition.
struct RegistryState {
  Mutex mu;
  std::unordered_map<std::string, std::unique_ptr<ContentionSite>> sites GUARDED_BY(mu);
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // leaked: site pointers outlive exit
  return *state;
}

}  // namespace

ContentionRegistry& ContentionRegistry::Global() {
  static ContentionRegistry* registry = new ContentionRegistry();
  return *registry;
}

ContentionSite* ContentionRegistry::GetSite(const std::string& name, SiteKind kind) {
  RegistryState& state = State();
  MutexLock lock(state.mu);
  auto it = state.sites.find(name);
  if (it == state.sites.end()) {
    it = state.sites.emplace(name, std::make_unique<ContentionSite>(name, kind)).first;
  }
  return it->second.get();
}

std::vector<SiteSnapshot> ContentionRegistry::Snapshot() const {
  std::vector<SiteSnapshot> out;
  {
    RegistryState& state = State();
    MutexLock lock(state.mu);
    out.reserve(state.sites.size());
    for (const auto& [name, site] : state.sites) {
      SiteSnapshot snap;
      snap.name = name;
      snap.kind = site->kind();
      snap.samples = site->samples();
      snap.contended = site->contended();
      snap.total_wait_ns = site->total_wait_ns();
      snap.max_wait_ns = site->max_wait_ns();
      for (int i = 0; i < ContentionSite::kNumBuckets; ++i) {
        snap.buckets[i] = site->bucket(i);
      }
      out.push_back(std::move(snap));
    }
  }
  std::sort(out.begin(), out.end(), [](const SiteSnapshot& a, const SiteSnapshot& b) {
    if (a.total_wait_ns != b.total_wait_ns) {
      return a.total_wait_ns > b.total_wait_ns;
    }
    return a.name < b.name;
  });
  return out;
}

ContentionSite* LockSite(const char* name) {
  return ContentionRegistry::Global().GetSite(name, SiteKind::kLock);
}

ContentionSite* QueueSite(const char* name) {
  return ContentionRegistry::Global().GetSite(name, SiteKind::kQueue);
}

}  // namespace contention
}  // namespace aft
