// Pooled segment arena backing the zero-copy serde/transport hot path.
//
// Three pieces (see docs/PROTOCOLS.md, "Buffer ownership & zero-copy
// contract"):
//
//   * `BufferPool`   — a process-wide freelist of fixed-size (16 KiB) byte
//                      segments. Acquire/Release never touch the allocator at
//                      steady state; recycling uses the same hysteresis shape
//                      as the transport backpressure (src/net/server.h): the
//                      freelist fills to its cap, then trims in one batch down
//                      to HALF the cap, so a load spike's segments are reused
//                      across the spike instead of thrashing malloc at the
//                      boundary.
//   * `SegmentBuffer`— an owning chain of pool segments holding one encoded
//                      payload. Exposes the bytes as spans (iovec-ready: the
//                      net layer hands them straight to sendmsg) instead of
//                      one flat string, so building a frame never coalesces.
//   * `ArenaWriter`  — the serde writer over a SegmentBuffer. Same Put* API
//                      and byte-identical output as `BinaryWriter`
//                      (src/common/serde.h); message.cc instantiates one
//                      shared encode body for both, which is what makes the
//                      wire-compat golden tests hold by construction.
//
// Ownership rules: a SegmentBuffer owns its segments and returns them to its
// pool on Clear()/destruction. Spans returned by Span()/ForEachSpan alias the
// buffer and die with it — callers must not hold them across Clear(). The
// pool outlives every buffer carved from it (the Global() pool lives for the
// process).

#ifndef SRC_COMMON_ARENA_H_
#define SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/mutex.h"

namespace aft {

// Thread-safe freelist of fixed-size segments.
class BufferPool {
 public:
  static constexpr size_t kSegmentSize = 16 * 1024;

  // `max_pooled_segments` is the freelist cap (the hysteresis high
  // watermark); on overflow the list is trimmed to half the cap in one batch.
  explicit BufferPool(size_t max_pooled_segments = 256);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // The process-wide pool used when a SegmentBuffer is not given its own.
  static BufferPool& Global();

  // Never returns null: falls through to the heap when the freelist is empty.
  char* Acquire();
  // Returns a segment for reuse (or frees it past the watermark).
  void Release(char* segment);

  struct Stats {
    uint64_t acquires = 0;   // total Acquire calls
    uint64_t pool_hits = 0;  // acquires served from the freelist
    uint64_t trims = 0;      // hysteresis trim batches
  };
  Stats stats() const;
  size_t pooled() const;

 private:
  const size_t max_pooled_;
  mutable Mutex mu_;
  std::vector<char*> free_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

// An owning, movable chain of pool segments; the payload representation of
// the zero-copy path. Appends fill the tail segment and acquire the next one
// from the pool; no byte is ever copied between segments.
class SegmentBuffer {
 public:
  // nullptr = the global pool.
  explicit SegmentBuffer(BufferPool* pool = nullptr)
      : pool_(pool != nullptr ? pool : &BufferPool::Global()) {}
  ~SegmentBuffer() { Reset(); }

  SegmentBuffer(SegmentBuffer&& other) noexcept
      : pool_(other.pool_), segments_(std::move(other.segments_)), size_(other.size_) {
    other.segments_.clear();
    other.size_ = 0;
  }
  SegmentBuffer& operator=(SegmentBuffer&& other) noexcept {
    if (this != &other) {
      Reset();
      pool_ = other.pool_;
      segments_ = std::move(other.segments_);
      size_ = other.size_;
      other.segments_.clear();
      other.size_ = 0;
    }
    return *this;
  }
  SegmentBuffer(const SegmentBuffer&) = delete;
  SegmentBuffer& operator=(const SegmentBuffer&) = delete;

  void Append(const void* data, size_t len) {
    const char* src = static_cast<const char*>(data);
    while (len > 0) {
      const size_t used = size_ - (segments_.empty() ? 0 : (segments_.size() - 1) * BufferPool::kSegmentSize);
      size_t room = segments_.empty() ? 0 : BufferPool::kSegmentSize - used;
      if (room == 0) {
        segments_.push_back(pool_->Acquire());
        room = BufferPool::kSegmentSize;
      }
      const size_t n = len < room ? len : room;
      std::memcpy(segments_.back() + (BufferPool::kSegmentSize - room), src, n);
      src += n;
      len -= n;
      size_ += n;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Releases every segment back to the pool; keeps the chain vector's
  // capacity so a reused buffer re-fills without allocating.
  void Clear() {
    for (char* segment : segments_) {
      pool_->Release(segment);
    }
    segments_.clear();
    size_ = 0;
  }

  // The payload as contiguous spans, in order. Span addresses alias this
  // buffer: they are invalidated by Append/Clear/destruction.
  size_t SpanCount() const { return segments_.size(); }
  std::pair<const char*, size_t> Span(size_t i) const {
    const bool last = i + 1 == segments_.size();
    const size_t len =
        last ? size_ - i * BufferPool::kSegmentSize : BufferPool::kSegmentSize;
    return {segments_[i], len};
  }
  template <typename Fn>
  void ForEachSpan(Fn&& fn) const {
    for (size_t i = 0; i < segments_.size(); ++i) {
      const auto [data, len] = Span(i);
      fn(data, len);
    }
  }

  // Boundary copies (storage, tests): flatten into caller-owned memory.
  void CopyTo(char* dst) const {
    ForEachSpan([&dst](const char* data, size_t len) {
      std::memcpy(dst, data, len);
      dst += len;
    });
  }
  std::string ToString() const {
    std::string out;
    out.resize(size_);
    CopyTo(out.data());
    return out;
  }

 private:
  void Reset() {
    for (char* segment : segments_) {
      pool_->Release(segment);
    }
    segments_.clear();
    size_ = 0;
  }

  BufferPool* pool_;
  std::vector<char*> segments_;
  size_t size_ = 0;
};

// The serde writer of the zero-copy path: BinaryWriter's Put* API emitting
// into a SegmentBuffer. Output bytes are identical to BinaryWriter's —
// message.cc encodes every wire type through one shared body instantiated
// for both writers.
class ArenaWriter {
 public:
  explicit ArenaWriter(BufferPool* pool = nullptr) : buf_(pool) {}

  void PutU8(uint8_t v) {
    const char c = static_cast<char>(v);
    buf_.Append(&c, 1);
  }
  void PutU32(uint32_t v) { buf_.Append(&v, 4); }
  void PutU64(uint64_t v) { buf_.Append(&v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.Append(s.data(), s.size());
  }
  template <typename Container>
  void PutStringVector(const Container& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (const auto& s : v) {
      PutString(s);
    }
  }
  void PutStringVector(std::initializer_list<std::string_view> v) {
    PutStringVector<std::initializer_list<std::string_view>>(v);
  }
  void PutBytes(const void* data, size_t len) { buf_.Append(data, len); }

  size_t size() const { return buf_.size(); }
  void Clear() { buf_.Clear(); }

  const SegmentBuffer& buffer() const& { return buf_; }
  SegmentBuffer TakeBuffer() && { return std::move(buf_); }

 private:
  SegmentBuffer buf_;
};

}  // namespace aft

#endif  // SRC_COMMON_ARENA_H_
