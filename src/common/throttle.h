// Service-capacity model for a simulated server process.
//
// A real AFT node runs on a fixed-size VM (4 physical cores in the paper's
// c5.2xlarge deployment); request processing — deserialization, metadata
// bookkeeping, 4KB payload copies — consumes CPU, which is what makes a
// single node's throughput plateau as clients are added (§6.5.1). This
// throttle models that: each unit of work must hold one of `cores` virtual
// cores for a sampled service time. Throughput caps at cores/service_time
// and queueing delay rises smoothly as utilization approaches 1.

#ifndef SRC_COMMON_THROTTLE_H_
#define SRC_COMMON_THROTTLE_H_

#include <cstddef>

#include "src/common/clock.h"
#include "src/common/latency.h"
#include "src/common/mutex.h"
#include "src/common/rng.h"

namespace aft {

class ServiceThrottle {
 public:
  // `cores` == 0 disables the throttle entirely.
  ServiceThrottle(Clock& clock, size_t cores, LatencyModel service_time)
      : clock_(clock), cores_(cores), service_time_(service_time) {}

  bool enabled() const { return cores_ > 0 && !service_time_.is_zero(); }

  // Occupies one core for `units` service-time samples.
  void Charge(Rng& rng, double units = 1.0) {
    if (!enabled() || units <= 0) {
      return;
    }
    {
      MutexLock lock(mu_);
      while (busy_ >= cores_) {
        cv_.Wait(lock);
      }
      ++busy_;
    }
    const Duration d = service_time_.Sample(rng);
    const auto scaled = std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, std::nano>(static_cast<double>(d.count()) * units));
    clock_.SleepFor(scaled);
    {
      MutexLock lock(mu_);
      --busy_;
    }
    cv_.NotifyOne();
  }

 private:
  Clock& clock_;
  const size_t cores_;
  const LatencyModel service_time_;
  Mutex mu_;
  CondVar cv_;
  size_t busy_ GUARDED_BY(mu_) = 0;
};

}  // namespace aft

#endif  // SRC_COMMON_THROTTLE_H_
