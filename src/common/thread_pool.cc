#include "src/common/thread_pool.h"

#include <algorithm>

namespace aft {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && active_ == 0)) {
    idle_cv_.Wait(lock);
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    queue_.clear();
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        work_cv_.Wait(lock);
      }
      if (shutdown_) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.NotifyAll();
      }
    }
  }
}

}  // namespace aft
