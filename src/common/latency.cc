#include "src/common/latency.h"

#include <cmath>

namespace aft {

double SampleStandardNormal(Rng& rng) {
  // Marsaglia polar method; loop runs ~1.27 iterations on average.
  while (true) {
    const double u = 2.0 * rng.NextDouble() - 1.0;
    const double v = 2.0 * rng.NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

Duration LatencyModel::Sample(Rng& rng, uint64_t bytes) const {
  if (is_zero()) {
    return Duration::zero();
  }
  double ms = median_ms_;
  if (sigma_ > 0.0 && median_ms_ > 0.0) {
    // exp(log(median) + sigma * Z): the median of the lognormal is median_ms_.
    ms = median_ms_ * std::exp(sigma_ * SampleStandardNormal(rng));
  }
  ms += per_kb_ms_ * (static_cast<double>(bytes) / 1024.0);
  if (ms < floor_ms_) {
    ms = floor_ms_;
  }
  return std::chrono::duration_cast<Duration>(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace aft
