#include "src/common/arena.h"

namespace aft {

BufferPool::BufferPool(size_t max_pooled_segments)
    : max_pooled_(max_pooled_segments > 0 ? max_pooled_segments : 1) {}

BufferPool::~BufferPool() {
  MutexLock lock(mu_);
  for (char* segment : free_) {
    delete[] segment;
  }
  free_.clear();
}

BufferPool& BufferPool::Global() {
  // Leaked intentionally: SegmentBuffers in static-storage objects may
  // release segments during process teardown, after a static pool would
  // already be gone.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

char* BufferPool::Acquire() {
  {
    MutexLock lock(mu_);
    ++stats_.acquires;
    if (!free_.empty()) {
      ++stats_.pool_hits;
      char* segment = free_.back();
      free_.pop_back();
      return segment;
    }
  }
  return new char[kSegmentSize];
}

void BufferPool::Release(char* segment) {
  std::vector<char*> overflow;
  {
    MutexLock lock(mu_);
    free_.push_back(segment);
    if (free_.size() > max_pooled_) {
      // Hysteresis trim: drop to half the cap in one batch (mirrors the
      // transport backpressure's pause-at-cap / resume-at-half shape), so a
      // borderline workload does not free-and-reallocate one segment per op.
      const size_t keep = max_pooled_ / 2;
      overflow.assign(free_.begin() + keep, free_.end());
      free_.resize(keep);
      ++stats_.trims;
    }
  }
  for (char* extra : overflow) {
    delete[] extra;
  }
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t BufferPool::pooled() const {
  MutexLock lock(mu_);
  return free_.size();
}

}  // namespace aft
