#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include "src/common/mutex.h"

namespace aft {
namespace {

std::atomic<int> g_level{[] {
  if (const char* env = std::getenv("AFT_LOG_LEVEL"); env != nullptr) {
    return std::atoi(env);
  }
  return 1;  // Warnings and errors by default.
}()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
  }
  return "?";
}

thread_local std::string t_log_context;

}  // namespace

LogScope::LogScope(std::string context) : previous_(std::move(t_log_context)) {
  t_log_context = std::move(context);
}

LogScope::~LogScope() { t_log_context = std::move(previous_); }

const std::string& LogScope::Current() { return t_log_context; }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

bool LogEnabled(LogLevel level) { return static_cast<int>(level) <= g_level.load(); }

void LogLine(LogLevel level, const std::string& file, int line, const std::string& message) {
  static Mutex mu;
  // Trim the path to the basename for readability.
  const size_t slash = file.find_last_of('/');
  const std::string base = slash == std::string::npos ? file : file.substr(slash + 1);
  const std::string& context = LogScope::Current();
  MutexLock lock(mu);
  if (context.empty()) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base.c_str(), line,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] [%s] %s\n", LevelName(level), base.c_str(), line,
                 context.c_str(), message.c_str());
  }
}

}  // namespace internal
}  // namespace aft
