#include "src/common/bloom.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/serde.h"

namespace aft {
namespace {

// 64-bit FNV-1a.
uint64_t Fnv1a(const std::string& item, uint64_t seed) {
  uint64_t hash = 1469598103934665603ULL ^ seed;
  for (const char c : item) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

BloomFilter::BloomFilter(size_t bits, int hashes)
    : hashes_(std::clamp(hashes, 1, 16)), words_((std::max<size_t>(bits, 64) + 63) / 64, 0) {}

std::pair<uint64_t, uint64_t> BloomFilter::HashPair(const std::string& item) const {
  // Kirsch-Mitzenmacher double hashing: h_i = h1 + i*h2.
  return {Fnv1a(item, 0x9e3779b97f4a7c15ULL), Fnv1a(item, 0xc2b2ae3d27d4eb4fULL) | 1};
}

void BloomFilter::Add(const std::string& item) {
  const auto [h1, h2] = HashPair(item);
  const uint64_t bits = words_.size() * 64;
  for (int i = 0; i < hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits;
    words_[bit / 64] |= (1ULL << (bit % 64));
  }
}

bool BloomFilter::MightContain(const std::string& item) const {
  const auto [h1, h2] = HashPair(item);
  const uint64_t bits = words_.size() * 64;
  for (int i = 0; i < hashes_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits;
    if ((words_[bit / 64] & (1ULL << (bit % 64))) == 0) {
      return false;
    }
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  BinaryWriter w;
  w.PutU8(0xBF);
  w.PutU8(static_cast<uint8_t>(hashes_));
  w.PutU32(static_cast<uint32_t>(words_.size()));
  for (const uint64_t word : words_) {
    w.PutU64(word);
  }
  return std::move(w).TakeData();
}

BloomFilter BloomFilter::Deserialize(const std::string& bytes, bool* ok) {
  BinaryReader r(bytes);
  uint8_t tag = 0;
  uint8_t hashes = 0;
  uint32_t word_count = 0;
  if (ok != nullptr) {
    *ok = false;
  }
  if (!r.GetU8(&tag) || tag != 0xBF || !r.GetU8(&hashes) || !r.GetU32(&word_count) ||
      word_count == 0 || word_count > (1u << 20)) {
    return BloomFilter();
  }
  BloomFilter filter(static_cast<size_t>(word_count) * 64, hashes);
  for (uint32_t i = 0; i < word_count; ++i) {
    if (!r.GetU64(&filter.words_[i])) {
      return BloomFilter();
    }
  }
  if (ok != nullptr) {
    *ok = true;
  }
  return filter;
}

double BloomFilter::EstimatedFalsePositiveRate(size_t n) const {
  const double m = static_cast<double>(bit_count());
  const double k = static_cast<double>(hashes_);
  return std::pow(1.0 - std::exp(-k * static_cast<double>(n) / m), k);
}

}  // namespace aft
