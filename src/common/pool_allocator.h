// A recycling STL allocator carved from pooled arena segments.
//
// The commit pipeline's metadata containers (version maps, commit-set cache
// shards, the data cache's LRU list and index, the idempotent-commit memory)
// are node-based: every insert costs one operator-new without help. This
// allocator gives each container a private `MemoryPool` that carves nodes
// from the same fixed-size segments as the serde arena (src/common/arena.h,
// `BufferPool::Global()`), and recycles freed nodes on per-size freelists —
// so at steady state inserts and erases never touch the global allocator,
// and a load spike's segments drain back through the buffer pool's
// hysteresis trim instead of thrashing malloc.
//
// Concurrency: the pool locks internally (a leaf mutex), so one pool may be
// shared by allocator copies used under different outer locks — including
// shared_ptr control blocks (`std::allocate_shared`) whose final release
// happens on whatever thread drops the last reference.
//
// Lifetime: allocator copies share the pool via shared_ptr; the pool lives
// until the last container / control block holding a copy is gone. Blocks
// larger than `kMaxPooledBytes` (unordered_map bucket arrays past a few
// thousand entries) fall through to the global allocator.

#ifndef SRC_COMMON_POOL_ALLOCATOR_H_
#define SRC_COMMON_POOL_ALLOCATOR_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "src/common/arena.h"
#include "src/common/mutex.h"

namespace aft {

class MemoryPool {
 public:
  // Blocks are rounded up to this granularity; one freelist per class.
  static constexpr size_t kBlockAlign = 16;
  // Largest block served from pool segments. Must fit in one segment.
  static constexpr size_t kMaxPooledBytes = 4096;

  MemoryPool() = default;
  ~MemoryPool() {
    for (char* segment : segments_) {
      BufferPool::Global().Release(segment);
    }
  }

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  void* Allocate(size_t bytes) {
    const size_t rounded = RoundUp(bytes);
    if (rounded > kMaxPooledBytes) {
      return ::operator new(bytes);
    }
    MutexLock lock(mu_);
    const size_t cls = rounded / kBlockAlign;
    if (free_lists_[cls] != nullptr) {
      void* block = free_lists_[cls];
      free_lists_[cls] = *static_cast<void**>(block);
      return block;
    }
    if (bump_remaining_ < rounded) {
      // The tail remainder of the old segment is abandoned (< kMaxPooledBytes
      // per segment switch); the segment itself is recycled at destruction.
      segments_.push_back(BufferPool::Global().Acquire());
      bump_ = segments_.back();
      bump_remaining_ = BufferPool::kSegmentSize;
    }
    void* block = bump_;
    bump_ += rounded;
    bump_remaining_ -= rounded;
    return block;
  }

  void Free(void* block, size_t bytes) {
    const size_t rounded = RoundUp(bytes);
    if (rounded > kMaxPooledBytes) {
      ::operator delete(block);
      return;
    }
    MutexLock lock(mu_);
    const size_t cls = rounded / kBlockAlign;
    *static_cast<void**>(block) = free_lists_[cls];
    free_lists_[cls] = block;
  }

 private:
  static size_t RoundUp(size_t bytes) {
    return bytes == 0 ? kBlockAlign : (bytes + kBlockAlign - 1) & ~(kBlockAlign - 1);
  }

  Mutex mu_;
  void* free_lists_[kMaxPooledBytes / kBlockAlign + 1] GUARDED_BY(mu_) = {};
  std::vector<char*> segments_ GUARDED_BY(mu_);
  char* bump_ GUARDED_BY(mu_) = nullptr;
  size_t bump_remaining_ GUARDED_BY(mu_) = 0;
};

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  PoolAllocator() : pool_(std::make_shared<MemoryPool>()) {}
  explicit PoolAllocator(std::shared_ptr<MemoryPool> pool) : pool_(std::move(pool)) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}  // NOLINT

  T* allocate(size_t n) {
    static_assert(alignof(T) <= MemoryPool::kBlockAlign,
                  "over-aligned types need the global allocator");
    return static_cast<T*>(pool_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { pool_->Free(p, n * sizeof(T)); }

  const std::shared_ptr<MemoryPool>& pool() const { return pool_; }

  template <typename U>
  friend bool operator==(const PoolAllocator& a, const PoolAllocator<U>& b) {
    return a.pool_ == b.pool();
  }

 private:
  std::shared_ptr<MemoryPool> pool_;
};

}  // namespace aft

#endif  // SRC_COMMON_POOL_ALLOCATOR_H_
