// Hot key-string interning.
//
// The key-version index sees the same user keys on every commit; copying the
// key string into the index per insert was pure hot-path allocation. The
// interner stores each distinct key once (stable storage — views into it
// never dangle while the interner lives) and hands out `std::string_view`
// handles, so a re-seen key costs a hash lookup and zero allocations.
//
// NOT internally synchronized: callers own the locking (the key-version
// index interns under its writer lock). Interned strings are never removed —
// the population is bounded by the workload's live keyspace, which the
// metadata cache already holds in full.

#ifndef SRC_COMMON_INTERNER_H_
#define SRC_COMMON_INTERNER_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_set>

#include "src/common/pool_allocator.h"

namespace aft {

class KeyInterner {
 public:
  KeyInterner() = default;
  KeyInterner(const KeyInterner&) = delete;
  KeyInterner& operator=(const KeyInterner&) = delete;

  // Returns a view of the canonical copy of `key`, inserting it on first use.
  std::string_view Intern(std::string_view key) {
    if (auto it = known_.find(key); it != known_.end()) {
      return *it;
    }
    storage_.emplace_back(key);  // std::deque: element addresses are stable.
    const std::string_view canonical = storage_.back();
    known_.insert(canonical);
    return canonical;
  }

  // The canonical view if `key` is already interned, empty view otherwise.
  std::string_view Find(std::string_view key) const {
    if (auto it = known_.find(key); it != known_.end()) {
      return *it;
    }
    return {};
  }

  size_t size() const { return known_.size(); }

 private:
  std::deque<std::string> storage_;
  std::unordered_set<std::string_view, std::hash<std::string_view>,
                     std::equal_to<std::string_view>, PoolAllocator<std::string_view>>
      known_;
};

}  // namespace aft

#endif  // SRC_COMMON_INTERNER_H_
