#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>

namespace aft {

std::vector<double> ExponentialBoundaries(double start, double factor, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& DefaultLatencyBoundariesMs() {
  static const std::vector<double> kBounds = ExponentialBoundaries(0.25, 2.0, 17);
  return kBounds;
}

const std::vector<double>& FineLatencyBoundariesMs() {
  static const std::vector<double> kBounds = ExponentialBoundaries(0.01, 1.08, 232);
  return kBounds;
}

size_t BucketIndex(std::span<const double> boundaries, double value) {
  // First boundary >= value (le semantics: value <= boundary).
  const auto it = std::lower_bound(boundaries.begin(), boundaries.end(), value);
  return static_cast<size_t>(it - boundaries.begin());
}

FixedHistogram::FixedHistogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)), counts_(boundaries_.size() + 1, 0) {}

void FixedHistogram::Observe(double value) {
  ++counts_[BucketIndex(boundaries_, value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void FixedHistogram::Merge(const FixedHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < counts_.size() && i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void FixedHistogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double FixedHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target among `count_` samples (1-based).
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const uint64_t before = cumulative;
    cumulative += counts_[i];
    if (cumulative < rank) {
      continue;
    }
    // The rank lands in bucket i: interpolate between the bucket's bounds.
    const double lo = i == 0 ? 0.0 : boundaries_[i - 1];
    const double hi = i < boundaries_.size() ? boundaries_[i] : max_;
    const double frac =
        static_cast<double>(rank - before) / static_cast<double>(counts_[i]);
    const double estimate = lo + (hi - lo) * frac;
    return std::clamp(estimate, min_, max_);
  }
  return max_;
}

}  // namespace aft
