// Fast, seedable random number generation.
//
// The simulation substrate draws millions of latency samples and workload
// keys; std::mt19937_64 is adequate but xoshiro256** is faster and has a tiny
// state, which matters when every client thread owns its own generator.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace aft {

// SplitMix64: used to expand a single seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator so it
// can be plugged into <random> distributions.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) {
      word = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  uint64_t operator()() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Below(uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling; modulo bias is
    // negligible for our n (< 2^32) but the multiply-shift is also faster.
    const unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * n;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace aft

#endif  // SRC_COMMON_RNG_H_
