// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the Ethernet/zip
// checksum used by both the wire protocol (src/net/frame.h) and the durable
// WAL (src/storage/wal.h). One implementation so a frame CRC and a log-record
// CRC can never drift; the net layer re-exports these under aft::net for
// source compatibility.

#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aft {

// Streaming interface for payloads held as segment chains / iovec lists:
// feed spans in order, no coalescing.
// `Crc32End(Crc32Feed(Crc32Begin(), d, n))` == `Crc32({d, n})`.
uint32_t Crc32Begin();
uint32_t Crc32Feed(uint32_t state, const void* data, size_t len);
uint32_t Crc32End(uint32_t state);

// One-shot convenience over a contiguous buffer.
uint32_t Crc32(std::string_view data);

}  // namespace aft

#endif  // SRC_COMMON_CRC32_H_
