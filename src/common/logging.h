// Minimal leveled logging.
//
// The simulation produces little steady-state log output; this is deliberately
// tiny. Level is controlled by `SetLogLevel` or the AFT_LOG_LEVEL environment
// variable (0 = error only ... 3 = debug). Output goes to stderr and is
// serialized across threads.
//
// Context prefix: a `LogScope` on the stack tags every AFT_LOG line emitted
// by the current thread with a context string (typically "node=A txn=...")
// until it goes out of scope. Scopes nest; the innermost wins. With no scope
// active the output format is unchanged.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace aft {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// RAII thread-local log context. While alive, AFT_LOG lines from this thread
// carry "[<context>]" after the file:line tag. Nested scopes shadow the outer
// one; the destructor restores it.
class LogScope {
 public:
  explicit LogScope(std::string context);
  ~LogScope();
  LogScope(const LogScope&) = delete;
  LogScope& operator=(const LogScope&) = delete;

  // The current thread's active context ("" when none).
  static const std::string& Current();

 private:
  std::string previous_;
};

namespace internal {

bool LogEnabled(LogLevel level);
void LogLine(LogLevel level, const std::string& file, int line, const std::string& message);

// Stream collector used by the AFT_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace aft

#define AFT_LOG(level)                                                      \
  if (!::aft::internal::LogEnabled(::aft::LogLevel::k##level)) {            \
  } else                                                                    \
    ::aft::internal::LogMessage(::aft::LogLevel::k##level, __FILE__, __LINE__).stream()

#endif  // SRC_COMMON_LOGGING_H_
