// Sampled contention profiler: named wait points (locks and queues) with
// lock-free recording, feeding the /debug/contention surface and the
// aft_lock_wait_* metrics bridge.
//
// Design constraints (see docs/OBSERVABILITY.md "Latency attribution"):
//   - NEAR-ZERO COST WHEN OFF. Sampling defaults to disabled
//     (`SetSampleEveryN(0)`); the per-acquisition check is one relaxed
//     atomic load and a branch, and an *unnamed* mutex only pays a null
//     pointer compare. bench_obs holds a gate on this.
//   - Lives in src/common (not src/obs) because the instrumented wrappers in
//     mutex.h are common and obs depends on common, never the reverse. The
//     obs layer bridges snapshots into the metrics registry at scrape time.
//   - Sites are never deleted; GetSite pointers are stable for the process
//     lifetime, so callers cache them in constructors or function statics.
//
// Wait histograms are log2-nanosecond buckets: bucket i counts waits in
// [2^i, 2^(i+1)) ns, bucket 0 additionally absorbs 0..1 ns. 32 buckets cover
// up to ~4.3 s, everything longer lands in the last bucket.

#ifndef SRC_COMMON_CONTENTION_H_
#define SRC_COMMON_CONTENTION_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace aft {
namespace contention {

enum class SiteKind { kLock, kQueue };

// One named wait point. All counters are relaxed atomics: concurrent
// recorders never synchronize with each other, snapshots are approximate
// by design (each individual counter is exact).
class ContentionSite {
 public:
  static constexpr int kNumBuckets = 32;

  ContentionSite(std::string name, SiteKind kind)
      : name_(std::move(name)), kind_(kind) {}
  ContentionSite(const ContentionSite&) = delete;
  ContentionSite& operator=(const ContentionSite&) = delete;

  // A sampled acquisition that had to block for `wait_ns`.
  void RecordWait(uint64_t wait_ns) {
    samples_.fetch_add(1, std::memory_order_relaxed);
    contended_.fetch_add(1, std::memory_order_relaxed);
    total_wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    uint64_t prev = max_wait_ns_.load(std::memory_order_relaxed);
    while (prev < wait_ns &&
           !max_wait_ns_.compare_exchange_weak(prev, wait_ns, std::memory_order_relaxed)) {
    }
    buckets_[BucketIndex(wait_ns)].fetch_add(1, std::memory_order_relaxed);
  }

  // A sampled acquisition that got the capability immediately (try succeeded).
  void RecordUncontended() { samples_.fetch_add(1, std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  SiteKind kind() const { return kind_; }
  uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }
  uint64_t contended() const { return contended_.load(std::memory_order_relaxed); }
  uint64_t total_wait_ns() const { return total_wait_ns_.load(std::memory_order_relaxed); }
  uint64_t max_wait_ns() const { return max_wait_ns_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  static int BucketIndex(uint64_t wait_ns) {
    if (wait_ns < 2) {
      return 0;
    }
    int i = 63 - __builtin_clzll(wait_ns);
    return i < kNumBuckets ? i : kNumBuckets - 1;
  }

 private:
  const std::string name_;
  const SiteKind kind_;
  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> total_wait_ns_{0};
  std::atomic<uint64_t> max_wait_ns_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

// Point-in-time copy of one site's counters, for /debug/contention and tests.
struct SiteSnapshot {
  std::string name;
  SiteKind kind;
  uint64_t samples = 0;
  uint64_t contended = 0;
  uint64_t total_wait_ns = 0;
  uint64_t max_wait_ns = 0;
  std::array<uint64_t, ContentionSite::kNumBuckets> buckets{};

  // Approximate quantile (0..1) from the log2 buckets; returns the upper
  // bound of the bucket holding the q-th contended wait (≤ 2x relative
  // error by construction). 0 when nothing was contended.
  uint64_t ApproxQuantileNs(double q) const;
};

const char* SiteKindName(SiteKind kind);  // "lock" | "queue"

// Process-wide site registry. Find-or-create keyed by name; pointers stable
// forever (sites are intentionally leaked, same lifetime rule as metrics
// instruments).
class ContentionRegistry {
 public:
  static ContentionRegistry& Global();

  ContentionSite* GetSite(const std::string& name, SiteKind kind);

  // Copies every site's counters. Sorted by total_wait_ns descending so the
  // /debug/contention surface is pre-ranked.
  std::vector<SiteSnapshot> Snapshot() const;

 private:
  ContentionRegistry() = default;
};

// Convenience for cached-site initializers: `static auto* s = LockSite("x");`
ContentionSite* LockSite(const char* name);
ContentionSite* QueueSite(const char* name);

// ---- Sampling control ------------------------------------------------------
// 1-in-N acquisitions of *named* sites are timed; 0 disables (the library
// default — aft_server turns it on via --contention-sample). The counter is
// thread-local, so per-thread streams are exactly 1-in-N.

namespace detail {
extern std::atomic<uint32_t> g_sample_every_n;
extern std::atomic<bool> g_stage_timing;
}  // namespace detail

void SetSampleEveryN(uint32_t n);
uint32_t SampleEveryN();

inline bool ShouldSample() {
  const uint32_t n = detail::g_sample_every_n.load(std::memory_order_relaxed);
  if (n == 0) {
    return false;
  }
  if (n == 1) {
    return true;
  }
  thread_local uint32_t tick = 0;
  if (++tick >= n) {
    tick = 0;
    return true;
  }
  return false;
}

// Times one sampled blocking acquisition: try first (zero wait), otherwise
// clock the block. Cold path by construction — only sampled acquisitions of
// named sites get here.
template <class TryFn, class LockFn>
inline void TimedAcquire(ContentionSite* site, TryFn&& try_acquire, LockFn&& acquire) {
  if (try_acquire()) {
    site->RecordUncontended();
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  acquire();
  site->RecordWait(static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                             std::chrono::steady_clock::now() - start)
                                             .count()));
}

// ---- Commit-stage attribution toggle ---------------------------------------
// Gates the per-stage commit decomposition (aft_commit_stage_seconds and the
// stage timing inside CommitUnits / ParallelFor). ON by default — the
// instrumentation is a handful of steady_clock reads per commit; the toggle
// exists for the bench_obs on/off overhead A/B and as an escape hatch. Lives
// here (not obs) so src/common and src/storage can read it without an obs
// dependency.

void SetStageTiming(bool enabled);

inline bool StageTimingEnabled() {
  return detail::g_stage_timing.load(std::memory_order_relaxed);
}

}  // namespace contention
}  // namespace aft

#endif  // SRC_COMMON_CONTENTION_H_
