// Fixed-boundary histogram math shared by the bench-harness recorders
// (src/common/stats.h) and the runtime metrics subsystem (src/obs/metrics.h).
//
// A histogram is defined by a sorted vector of inclusive upper bucket
// boundaries; one implicit +Inf bucket catches everything beyond the last
// boundary. `FixedHistogram` is the plain (externally synchronized) variant:
// `LatencyRecorder` updates it under its own mutex, the obs::Histogram keeps
// its own atomic lanes and only borrows the boundary/quantile helpers here.
//
// Quantiles are estimated by locating the target rank's bucket and linearly
// interpolating within it, so the error of a quantile estimate is bounded by
// the relative width of its bucket — with the default log-spaced boundaries
// (8% growth per bucket) that is a worst-case ~8% relative error, in exchange
// for O(1) memory regardless of sample count.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace aft {

// `count` boundaries starting at `start`, each `factor` times the previous.
std::vector<double> ExponentialBoundaries(double start, double factor, size_t count);

// Coarse boundaries for operator-facing latency metrics (Prometheus
// exposition): 0.25ms .. ~16s, doubling. 17 buckets + the implicit +Inf.
const std::vector<double>& DefaultLatencyBoundariesMs();

// Fine boundaries for percentile estimation in the bench harness: 10us ..
// ~10min, 8% growth (~230 buckets, worst-case ~8% relative quantile error).
const std::vector<double>& FineLatencyBoundariesMs();

// Index of the bucket `value` falls into: the first boundary with
// value <= boundary (Prometheus `le` semantics), or boundaries.size() for
// the +Inf bucket.
size_t BucketIndex(std::span<const double> boundaries, double value);

// Plain fixed-boundary histogram. NOT thread-safe; callers synchronize.
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<double> boundaries);

  void Observe(double value);
  void Merge(const FixedHistogram& other);  // Boundaries must match.
  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  // Quantile estimate for q in [0, 1] by within-bucket linear interpolation.
  // Returns 0 on an empty histogram. Estimates are clamped to the observed
  // [min, max] so extreme quantiles never exceed real samples.
  double Quantile(double q) const;

  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

 private:
  std::vector<double> boundaries_;
  std::vector<uint64_t> counts_;  // boundaries_.size() + 1 buckets (last = +Inf).
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace aft

#endif  // SRC_COMMON_HISTOGRAM_H_
