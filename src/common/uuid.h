// 128-bit universally unique identifiers.
//
// AFT identifies every transaction by a <commit timestamp, UUID> pair; the
// UUID breaks timestamp ties with a lexicographic comparison (§3.1). UUIDs
// are generated locally with no coordination.

#ifndef SRC_COMMON_UUID_H_
#define SRC_COMMON_UUID_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace aft {

class Rng;

// A 128-bit identifier. Comparison is lexicographic on the big-endian byte
// representation, i.e. (hi, lo) pair ordering.
class Uuid {
 public:
  constexpr Uuid() : hi_(0), lo_(0) {}
  constexpr Uuid(uint64_t hi, uint64_t lo) : hi_(hi), lo_(lo) {}

  // Generates a version-4 style random UUID from the given generator.
  static Uuid Random(Rng& rng);

  // Parses the canonical 8-4-4-4-12 hex form; returns the nil UUID on
  // malformed input (callers in this codebase only parse strings they
  // produced themselves).
  static Uuid Parse(const std::string& text);

  bool IsNil() const { return hi_ == 0 && lo_ == 0; }

  uint64_t hi() const { return hi_; }
  uint64_t lo() const { return lo_; }

  // Canonical lowercase 8-4-4-4-12 hex representation.
  std::string ToString() const;
  // The same 36 characters appended to `out` — storage-key builders reserve
  // the full key once and append in place instead of concatenating temporaries.
  static constexpr size_t kStringLength = 36;
  void AppendTo(std::string& out) const;

  friend auto operator<=>(const Uuid& a, const Uuid& b) = default;

 private:
  uint64_t hi_;
  uint64_t lo_;
};

}  // namespace aft

template <>
struct std::hash<aft::Uuid> {
  size_t operator()(const aft::Uuid& u) const noexcept {
    // hi/lo are already uniformly random; xor-fold is sufficient.
    return static_cast<size_t>(u.hi() ^ (u.lo() * 0x9e3779b97f4a7c15ULL));
  }
};

#endif  // SRC_COMMON_UUID_H_
