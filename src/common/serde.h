// Minimal binary serialization for AFT records.
//
// AFT persists commit records and versioned values into storage engines that
// only understand byte strings. This module provides a small, explicit
// little-endian writer/reader pair — no reflection, no allocation tricks —
// with length-prefixed strings and containers.

#ifndef SRC_COMMON_SERDE_H_
#define SRC_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace aft {

// Appends fixed-width integers and length-prefixed byte strings to a buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    char tmp[4];
    std::memcpy(tmp, &v, 4);
    buf_.append(tmp, 4);
  }

  void PutU64(uint64_t v) {
    char tmp[8];
    std::memcpy(tmp, &v, 8);
    buf_.append(tmp, 8);
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  // Any sized range of string-view-convertible elements (std::vector,
  // SmallVector, a keys view over a map) encodes identically.
  template <typename Container>
  void PutStringVector(const Container& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (const auto& s : v) {
      PutString(s);
    }
  }
  void PutStringVector(std::initializer_list<std::string_view> v) {
    PutStringVector<std::initializer_list<std::string_view>>(v);
  }

  const std::string& data() const& { return buf_; }
  std::string TakeData() && { return std::move(buf_); }
  // Drops the content, keeps the capacity — scratch writers on the hot path
  // are reused across operations without re-allocating.
  void Clear() { buf_.clear(); }
  // Pre-size the buffer: encoders that know their exact output size reserve
  // once so the append path never re-allocates mid-record.
  void Reserve(size_t bytes) { buf_.reserve(buf_.size() + bytes); }

 private:
  std::string buf_;
};

// Reads values written by BinaryWriter. All getters return false (and leave
// the output untouched) on truncated input; callers surface that as a
// corruption status.
//
// The reader parses IN PLACE over the caller's bytes: it holds a view, never
// a copy, and `GetStringView` hands out sub-views that alias the underlying
// buffer. The buffer must outlive the reader and every view taken from it —
// copy (GetString) at the boundary where a field outlives the frame (see
// docs/PROTOCOLS.md, "Buffer ownership & zero-copy contract").
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* out) {
    if (pos_ + 1 > data_.size()) {
      return false;
    }
    *out = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool GetU32(uint32_t* out) {
    if (pos_ + 4 > data_.size()) {
      return false;
    }
    std::memcpy(out, data_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* out) {
    if (pos_ + 8 > data_.size()) {
      return false;
    }
    std::memcpy(out, data_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

  bool GetI64(int64_t* out) {
    uint64_t u = 0;
    if (!GetU64(&u)) {
      return false;
    }
    *out = static_cast<int64_t>(u);
    return true;
  }

  // Zero-copy string read: the view aliases the reader's underlying buffer.
  bool GetStringView(std::string_view* out) {
    uint32_t len = 0;
    if (!GetU32(&len) || len > remaining()) {
      return false;
    }
    *out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  // Copying string read, for fields that outlive the frame buffer.
  bool GetString(std::string* out) {
    std::string_view s;
    if (!GetStringView(&s)) {
      return false;
    }
    out->assign(s.data(), s.size());
    return true;
  }

  // `Container` is anything with clear/reserve/emplace_back over strings
  // (std::vector<std::string>, SmallVector<std::string, N>).
  template <typename Container>
  bool GetStringVector(Container* out) {
    uint32_t count = 0;
    if (!GetU32(&count)) {
      return false;
    }
    // Every element costs at least its 4-byte length prefix, so a count the
    // remaining bytes cannot possibly back is corrupt (or hostile — the
    // count may come off the wire; never reserve unbounded memory from it).
    if (count > remaining() / 4) {
      return false;
    }
    out->clear();
    out->reserve(count);
    // One pass: bounds-check a view of each element, then construct the
    // owned string directly in the vector slot (no intermediate string).
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view s;
      if (!GetStringView(&s)) {
        return false;
      }
      out->emplace_back(s);
    }
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace aft

#endif  // SRC_COMMON_SERDE_H_
