// Lightweight status / result types used throughout the AFT codebase.
//
// AFT runs on the critical path of every storage IO, so error handling uses
// explicit status codes rather than exceptions (see C++ Core Guidelines E.28:
// codebase-wide policy). `Status` carries a code and a human-readable message;
// `Result<T>` is a status-or-value sum type.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace aft {

// Error categories. Modelled loosely on absl::StatusCode, restricted to what
// the shim and its simulated substrates actually produce.
enum class StatusCode {
  kOk = 0,
  // The requested key / transaction / object does not exist.
  kNotFound,
  // A transactional operation lost a conflict (e.g. DynamoDB transaction-mode
  // lock acquisition failure) and was aborted; the caller may retry.
  kAborted,
  // The operation was rejected because an argument was malformed.
  kInvalidArgument,
  // The component has been shut down or the target node has failed.
  kUnavailable,
  // An operation could not complete in time.
  kTimeout,
  // A precondition was violated (e.g. commit on an unknown transaction).
  kFailedPrecondition,
  // Capacity or quota exceeded (e.g. FaaS concurrency limit with no queueing).
  kResourceExhausted,
  // Catch-all for internal invariant violations.
  kInternal,
};

// Returns a short stable name for a status code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A status is a code plus an optional diagnostic message. Statuses are cheap
// to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status Aborted(std::string msg) { return Status(StatusCode::kAborted, std::move(msg)); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) { return Status(StatusCode::kTimeout, std::move(msg)); }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  // "OK" or "NOT_FOUND: no such key".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Status-or-value. The value is engaged iff the status is OK.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return Status::NotFound(...)`
  // or `return value;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "OK Result must carry a value");
  }
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when the status is not OK.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status from an expression producing `Status`.
#define AFT_RETURN_IF_ERROR(expr)        \
  do {                                   \
    ::aft::Status _aft_status = (expr);  \
    if (!_aft_status.ok()) {             \
      return _aft_status;                \
    }                                    \
  } while (0)

// Assigns the value of a `Result<T>` expression to `lhs`, or propagates the
// error. `lhs` may be a declaration: AFT_ASSIGN_OR_RETURN(auto v, Lookup(k));
#define AFT_ASSIGN_OR_RETURN(lhs, expr)      \
  AFT_ASSIGN_OR_RETURN_IMPL_(                \
      AFT_STATUS_CONCAT_(_aft_r, __LINE__), lhs, expr)

#define AFT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define AFT_STATUS_CONCAT_(a, b) AFT_STATUS_CONCAT_IMPL_(a, b)
#define AFT_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace aft

#endif  // SRC_COMMON_STATUS_H_
