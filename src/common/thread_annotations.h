// Clang Thread Safety Analysis annotation macros.
//
// The standard macro set from the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), expanding to
// attributes under Clang and to nothing elsewhere — GCC compiles the
// annotated tree unchanged. Build with -Wthread-safety (wired up by the
// AFT_THREAD_SAFETY_ANALYSIS CMake option) to have the compiler verify the
// locking discipline these macros declare.

#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define AFT_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define AFT_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

// A type that acts as a capability (a mutex class).
#define CAPABILITY(x) AFT_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// An RAII type that acquires a capability at construction and releases it at
// destruction.
#define SCOPED_CAPABILITY AFT_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// The data member is protected by the given capability.
#define GUARDED_BY(x) AFT_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// The data *pointed to* by the member is protected by the given capability.
#define PT_GUARDED_BY(x) AFT_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Lock-ordering declarations.
#define ACQUIRED_BEFORE(...) AFT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) AFT_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// The function must be called with the given capabilities held (and does not
// acquire/release them itself).
#define REQUIRES(...) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and holds it on return.
#define ACQUIRE(...) AFT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability (which must be held on entry).
#define RELEASE(...) AFT_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

// The function attempts the acquisition; the first argument is the return
// value that means success.
#define TRY_ACQUIRE(...) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

// The function must NOT be called with the given capabilities held (guards
// against self-deadlock on non-reentrant mutexes).
#define EXCLUDES(...) AFT_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// The function asserts (at runtime) that the capability is held.
#define ASSERT_CAPABILITY(x) AFT_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  AFT_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) AFT_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Escape hatch for code the analysis cannot follow.
#define NO_THREAD_SAFETY_ANALYSIS AFT_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
