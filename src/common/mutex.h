// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// Thin shims over the std synchronization primitives that carry the
// capability annotations from thread_annotations.h, so that GUARDED_BY(mu_)
// fields and REQUIRES(mu_) functions are machine-checked under
// -Wthread-safety. On GCC everything compiles to the plain std types.
//
// Idiom:
//
//   class Counter {
//    public:
//     void Add(int n) {
//       MutexLock lock(mu_);
//       value_ += n;
//     }
//    private:
//     mutable Mutex mu_;
//     int value_ GUARDED_BY(mu_) = 0;
//   };
//
// Condition variables pair with MutexLock via CondVar::Wait; write waits as
// explicit `while (!predicate) cv_.Wait(lock);` loops — predicate *lambdas*
// passed into std::condition_variable::wait are opaque to the analysis, the
// inline loop condition is not.
//
// Contention profiling: a mutex constructed with a name (or a cached
// contention::ContentionSite*) participates in the sampled lock-wait
// profiler — 1-in-N acquisitions are timed (try_lock first, so an
// uncontended sampled acquisition records zero wait without touching the
// clock) and feed /debug/contention. An UNNAMED mutex pays exactly one null
// pointer compare per acquisition; a named mutex with sampling disabled
// (the default) additionally pays one relaxed atomic load. bench_obs gates
// both. Lock names follow `layer.object` (e.g. "node.committed",
// "wal.append") — aftlint checks the grammar.

#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/common/contention.h"
#include "src/common/thread_annotations.h"

namespace aft {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // Named participation in the contention profiler. The const char* form
  // does a registry lookup — fine for long-lived members; per-object hot
  // construction (e.g. TransactionState) passes a cached site instead.
  explicit Mutex(const char* name) : site_(contention::LockSite(name)) {}
  explicit Mutex(contention::ContentionSite* site) : site_(site) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
    if (site_ != nullptr && contention::ShouldSample()) {
      contention::TimedAcquire(
          site_, [this] { return mu_.try_lock(); }, [this] { mu_.lock(); });
    } else {
      mu_.lock();
    }
  }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
  contention::ContentionSite* site_ = nullptr;
};

// Reader/writer lock; "writer" = exclusive capability, "reader" = shared.
// Shared and exclusive waits feed the same named site.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name) : site_(contention::LockSite(name)) {}
  explicit SharedMutex(contention::ContentionSite* site) : site_(site) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
    if (site_ != nullptr && contention::ShouldSample()) {
      contention::TimedAcquire(
          site_, [this] { return mu_.try_lock(); }, [this] { mu_.lock(); });
    } else {
      mu_.lock();
    }
  }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() {
    if (site_ != nullptr && contention::ShouldSample()) {
      contention::TimedAcquire(
          site_, [this] { return mu_.try_lock_shared(); }, [this] { mu_.lock_shared(); });
    } else {
      mu_.lock_shared();
    }
  }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
  contention::ContentionSite* site_ = nullptr;
};

// RAII exclusive lock over Mutex. Backed by std::unique_lock so a CondVar
// can release/reacquire it while waiting.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_, std::defer_lock) {
    if (mu.site_ != nullptr && contention::ShouldSample()) {
      contention::TimedAcquire(
          mu.site_, [this] { return lock_.try_lock(); }, [this] { lock_.lock(); });
    } else {
      lock_.lock();
    }
  }
  ~MutexLock() RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release (std::unique_lock semantics: the destructor then no-ops).
  void Unlock() RELEASE() { lock_.unlock(); }
  // Re-acquire after an early release (the drop-lock-around-blocking-I/O
  // idiom used by the pipelined client's reader). Reacquisitions are not
  // sampled — the profiler attributes a scope's wait to its construction.
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// RAII exclusive lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_.LockShared(); }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable working with aft::Mutex / MutexLock. Wait atomically
// releases and reacquires the lock; the analysis sees the capability as held
// across the wait, which matches every caller's invariant (the guarded state
// may change across the wait — hence the mandatory while-loop idiom).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  // Timed wait: returns false on timeout, true when notified. As with Wait,
  // callers re-check their predicate in a while-loop either way. (Templated
  // on the duration type because clock.h's Duration alias would be a circular
  // include here.)
  template <class Rep, class Period>
  bool WaitFor(MutexLock& lock, std::chrono::duration<Rep, Period> d) {
    return cv_.wait_for(lock.lock_, d) == std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aft

#endif  // SRC_COMMON_MUTEX_H_
