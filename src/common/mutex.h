// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// Thin, zero-overhead shims over the std synchronization primitives that
// carry the capability annotations from thread_annotations.h, so that
// GUARDED_BY(mu_) fields and REQUIRES(mu_) functions are machine-checked
// under -Wthread-safety. On GCC everything compiles to the plain std types.
//
// Idiom:
//
//   class Counter {
//    public:
//     void Add(int n) {
//       MutexLock lock(mu_);
//       value_ += n;
//     }
//    private:
//     mutable Mutex mu_;
//     int value_ GUARDED_BY(mu_) = 0;
//   };
//
// Condition variables pair with MutexLock via CondVar::Wait; write waits as
// explicit `while (!predicate) cv_.Wait(lock);` loops — predicate *lambdas*
// passed into std::condition_variable::wait are opaque to the analysis, the
// inline loop condition is not.

#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/common/thread_annotations.h"

namespace aft {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// Reader/writer lock; "writer" = exclusive capability, "reader" = shared.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over Mutex. Backed by std::unique_lock so a CondVar
// can release/reacquire it while waiting.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Early release (std::unique_lock semantics: the destructor then no-ops).
  void Unlock() RELEASE() { lock_.unlock(); }
  // Re-acquire after an early release (the drop-lock-around-blocking-I/O
  // idiom used by the pipelined client's reader).
  void Lock() ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// RAII exclusive lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) { mu_.LockShared(); }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable working with aft::Mutex / MutexLock. Wait atomically
// releases and reacquires the lock; the analysis sees the capability as held
// across the wait, which matches every caller's invariant (the guarded state
// may change across the wait — hence the mandatory while-loop idiom).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  // Timed wait: returns false on timeout, true when notified. As with Wait,
  // callers re-check their predicate in a while-loop either way. (Templated
  // on the duration type because clock.h's Duration alias would be a circular
  // include here.)
  template <class Rep, class Period>
  bool WaitFor(MutexLock& lock, std::chrono::duration<Rep, Period> d) {
    return cv_.wait_for(lock.lock_, d) == std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aft

#endif  // SRC_COMMON_MUTEX_H_
