#include "src/common/uuid.h"

#include <cstdio>

#include "src/common/rng.h"

namespace aft {

Uuid Uuid::Random(Rng& rng) {
  uint64_t hi = rng();
  uint64_t lo = rng();
  // Stamp RFC 4122 version (4) and variant (10) bits so the string form is a
  // legal v4 UUID; the ordering semantics do not depend on this.
  hi = (hi & 0xffffffffffff0fffULL) | 0x0000000000004000ULL;
  lo = (lo & 0x3fffffffffffffffULL) | 0x8000000000000000ULL;
  return Uuid(hi, lo);
}

std::string Uuid::ToString() const {
  std::string out;
  out.reserve(kStringLength);
  AppendTo(out);
  return out;
}

void Uuid::AppendTo(std::string& out) const {
  char buf[kStringLength + 1];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<uint32_t>(hi_ >> 32), static_cast<uint32_t>((hi_ >> 16) & 0xffff),
                static_cast<uint32_t>(hi_ & 0xffff), static_cast<uint32_t>(lo_ >> 48),
                static_cast<unsigned long long>(lo_ & 0xffffffffffffULL));
  out.append(buf, kStringLength);
}

Uuid Uuid::Parse(const std::string& text) {
  unsigned int a = 0, b = 0, c = 0, d = 0;
  unsigned long long e = 0;
  if (std::sscanf(text.c_str(), "%8x-%4x-%4x-%4x-%12llx", &a, &b, &c, &d, &e) != 5) {
    return Uuid();
  }
  const uint64_t hi = (static_cast<uint64_t>(a) << 32) | (static_cast<uint64_t>(b) << 16) | c;
  const uint64_t lo = (static_cast<uint64_t>(d) << 48) | e;
  return Uuid(hi, lo);
}

}  // namespace aft
