#include "src/common/crc32.h"

#include <array>

namespace aft {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32Begin() { return 0xFFFFFFFFu; }

uint32_t Crc32Feed(uint32_t state, const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    state = (state >> 8) ^ kTable[(state ^ bytes[i]) & 0xFFu];
  }
  return state;
}

uint32_t Crc32End(uint32_t state) { return state ^ 0xFFFFFFFFu; }

uint32_t Crc32(std::string_view data) {
  return Crc32End(Crc32Feed(Crc32Begin(), data.data(), data.size()));
}

}  // namespace aft
