// A vector with inline storage for its first N elements.
//
// The commit pipeline's per-transaction collections (batch write ops, per-key
// version lists, version history entries) are almost always tiny — a handful
// of keys per transaction. Keeping the first N elements inline means the hot
// path never touches the heap for them; only a genuinely large transaction
// spills to a heap buffer, after which the container behaves like a plain
// std::vector (geometric growth, contiguous storage).
//
// Deliberately minimal: just the operations the commit path and its
// neighbours need. Elements must be movable; moves of the container move
// inline elements one by one (so iterators/pointers into a moved-from
// SmallVector are invalidated, exactly like std::vector's small-string
// cousins).

#ifndef SRC_COMMON_SMALL_VECTOR_H_
#define SRC_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace aft {

template <typename T, size_t N>
class SmallVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) {
      push_back(v);
    }
  }

  SmallVector(const SmallVector& other) { CopyFrom(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SmallVector& operator=(std::initializer_list<T> init) {
    clear();
    reserve(init.size());
    for (const T& v : init) {
      push_back(v);
    }
    return *this;
  }

  ~SmallVector() { Destroy(); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const { return const_reverse_iterator(end()); }
  const_reverse_iterator rend() const { return const_reverse_iterator(begin()); }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void reserve(size_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  // Inserts before `pos`, shifting the tail right (sorted-insert support).
  iterator insert(iterator pos, T v) {
    const size_t at = static_cast<size_t>(pos - data_);
    emplace_back(std::move(v));  // May reallocate; recompute the position.
    pos = data_ + at;
    std::rotate(pos, data_ + size_ - 1, data_ + size_);
    return pos;
  }

  iterator erase(iterator pos) {
    std::move(pos + 1, end(), pos);
    pop_back();
    return pos;
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) {
      data_[i].~T();
    }
    size_ = 0;
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* InlineData() { return std::launder(reinterpret_cast<T*>(inline_storage_)); }

  bool IsInline() const { return data_ == const_cast<SmallVector*>(this)->InlineData(); }

  void Grow(size_t n) {
    const size_t new_cap = std::max(n, capacity_ * 2);
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(heap + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!IsInline()) {
      ::operator delete(data_);
    }
    data_ = heap;
    capacity_ = new_cap;
  }

  void Destroy() {
    clear();
    if (!IsInline()) {
      ::operator delete(data_);
      data_ = InlineData();
      capacity_ = N;
    }
  }

  void CopyFrom(const SmallVector& other) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) {
      push_back(other.data_[i]);
    }
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (other.IsInline()) {
      data_ = InlineData();
      capacity_ = N;
      size_ = 0;
      for (size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
        ++size_;
      }
      other.size_ = 0;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.InlineData();
      other.capacity_ = N;
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t capacity_ = N;
  size_t size_ = 0;
};

}  // namespace aft

#endif  // SRC_COMMON_SMALL_VECTOR_H_
