// Measurement utilities for the benchmark harness.
//
// `LatencyRecorder` collects latency samples (thread-safe) and reports the
// percentiles the paper plots (median / p99). `ThroughputTimeline` buckets
// completion events into fixed windows for the time-series figures (Fig 9,
// Fig 10).
//
// Memory bound: the recorder keeps at most `kMaxExactSamples` raw samples.
// Every sample is ALSO folded into a fine-grained fixed-boundary histogram
// (~230 log-spaced buckets, 8% growth); once the exact buffer overflows,
// Summarize() switches from exact order statistics to histogram quantile
// estimates (worst-case ~8% relative error — see src/common/histogram.h).
// Long benchmark runs therefore use O(1) memory instead of growing without
// bound, at the cost of slightly approximate tail percentiles.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/mutex.h"

namespace aft {

// Summary statistics over a set of latency samples, in simulated ms.
struct LatencySummary {
  size_t count = 0;
  double mean_ms = 0;
  double min_ms = 0;
  double median_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  std::string ToString() const;
};

// Thread-safe sample sink.
class LatencyRecorder {
 public:
  // Raw samples kept for exact percentiles before the histogram takes over
  // (64Ki doubles = 512 KiB per recorder, the worst case).
  static constexpr size_t kMaxExactSamples = 65536;

  LatencyRecorder();

  void Record(Duration d);
  void RecordMillis(double ms);

  // Merges another recorder's samples into this one.
  void Merge(const LatencyRecorder& other);

  LatencySummary Summarize() const;
  size_t count() const;

  void Clear();

  // True once the exact buffer overflowed and percentiles come from the
  // histogram estimate.
  bool overflowed() const;

 private:
  mutable Mutex mu_;
  std::vector<double> samples_ms_ GUARDED_BY(mu_);
  // Every sample lands here too; the authority once samples_ms_ is full.
  FixedHistogram histogram_ GUARDED_BY(mu_);
};

// Computes the p-th percentile (0 <= p <= 100) by nearest-rank on a copy.
double Percentile(std::vector<double> samples, double p);

// Buckets events into fixed-width windows of simulated time; `Report`
// produces (window start sec, events/sec) rows.
class ThroughputTimeline {
 public:
  // `window` is the bucket width.
  ThroughputTimeline(Clock& clock, Duration window = Millis(1000));

  // Marks the experiment start; events before Start are dropped.
  void Start();

  // Records one completion event at the current simulated time.
  void RecordEvent();

  struct Row {
    double window_start_sec;
    double events_per_sec;
  };
  std::vector<Row> Report() const;

  // Total events recorded since Start().
  uint64_t total() const;

 private:
  Clock& clock_;
  const Duration window_;
  mutable Mutex mu_;
  TimePoint start_ GUARDED_BY(mu_){};
  std::vector<uint64_t> buckets_ GUARDED_BY(mu_);
  uint64_t total_ GUARDED_BY(mu_) = 0;
};

}  // namespace aft

#endif  // SRC_COMMON_STATS_H_
