#include "src/common/io_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "src/common/mutex.h"

namespace aft {
namespace {

size_t SharedWidthFromEnv() {
  if (const char* env = std::getenv("AFT_IO_THREADS"); env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 32;
}

// Per-thread accumulator for ParallelFor's completion-latch wait; consumed
// by the commit path to attribute the §3.3 barrier stage.
thread_local uint64_t tl_latch_wait_ns = 0;

uint64_t NowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

IoExecutor::IoExecutor(size_t num_threads, const char* name) : pool_(num_threads) {
  if (name != nullptr) {
    queue_site_ = contention::QueueSite((std::string(name) + ".queue").c_str());
    run_site_ = contention::QueueSite((std::string(name) + ".run").c_str());
  }
}

void IoExecutor::Shutdown() { pool_.Shutdown(); }

bool IoExecutor::Submit(std::function<void()> task) {
  // Sampled tasks are rewrapped to clock queue wait and run time; the
  // unsampled path hands the task straight through (no extra allocation,
  // no clock reads).
  if (queue_site_ != nullptr && contention::ShouldSample()) {
    const uint64_t submitted_ns = NowNs();
    return pool_.Submit(
        [qs = queue_site_, rs = run_site_, submitted_ns, task = std::move(task)] {
          const uint64_t started_ns = NowNs();
          qs->RecordWait(started_ns - submitted_ns);
          task();
          rs->RecordWait(NowNs() - started_ns);
        });
  }
  return pool_.Submit(std::move(task));
}

IoExecutor& IoExecutor::Shared() {
  static IoExecutor* shared = new IoExecutor(SharedWidthFromEnv(), "io_shared");
  return *shared;
}

uint64_t IoExecutor::ConsumeLatchWaitNanos() {
  const uint64_t v = tl_latch_wait_ns;
  tl_latch_wait_ns = 0;
  return v;
}

Status IoExecutor::ParallelFor(size_t n, const std::function<Status(size_t)>& fn,
                               size_t max_parallelism) {
  if (n == 0) {
    return Status::Ok();
  }
  if (n == 1) {
    return fn(0);
  }

  // Per-call state, shared_ptr-owned: a helper that is still exiting its
  // drain loop after the final count-down must not touch freed memory even
  // though the caller has already returned.
  struct CallState {
    Mutex mu;
    CondVar done_cv;
    std::atomic<size_t> next{0};
    size_t remaining GUARDED_BY(mu);
    size_t first_error_index GUARDED_BY(mu) = std::numeric_limits<size_t>::max();
    Status first_error GUARDED_BY(mu) = Status::Ok();
  };
  auto state = std::make_shared<CallState>();
  {
    MutexLock lock(state->mu);
    state->remaining = n;
  }

  // Claims items until the index is exhausted; every claimed item is
  // executed and counted down unconditionally, so `remaining` always
  // reaches zero no matter which threads participate.
  auto drain = [](CallState& s, const std::function<Status(size_t)>& f, size_t total) {
    size_t i;
    while ((i = s.next.fetch_add(1, std::memory_order_relaxed)) < total) {
      Status status = f(i);
      MutexLock lock(s.mu);
      if (!status.ok() && i < s.first_error_index) {
        s.first_error_index = i;
        s.first_error = std::move(status);
      }
      if (--s.remaining == 0) {
        s.done_cv.NotifyAll();
      }
    }
  };

  size_t lanes = std::min(n, pool_.num_threads() + 1);
  if (max_parallelism > 0) {
    lanes = std::min(lanes, max_parallelism);
  }
  // The caller is one lane; the rest are pool helpers. A failed Submit
  // (pool shut down) just means fewer lanes — never lost work.
  for (size_t h = 0; h + 1 < lanes; ++h) {
    if (!pool_.Submit([state, fn, n, drain] { drain(*state, fn, n); })) {
      break;
    }
  }

  drain(*state, fn, n);

  MutexLock lock(state->mu);
  if (state->remaining > 0) {
    // Completion latch: our own items are done but helpers still hold
    // claimed ones — this wait IS the §3.3 barrier's straggler time.
    const bool timed = contention::StageTimingEnabled();
    const uint64_t wait_start_ns = timed ? NowNs() : 0;
    do {
      state->done_cv.Wait(lock);
    } while (state->remaining > 0);
    if (timed) {
      tl_latch_wait_ns += NowNs() - wait_start_ns;
    }
  }
  return state->first_error;
}

}  // namespace aft
