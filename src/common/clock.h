// Time abstraction for the AFT simulation substrate.
//
// Every latency-bearing component (storage engines, the FaaS invoker, gossip
// timers) takes a `Clock&` so that:
//   * unit tests run against `SimClock` (virtual time, instantaneous), and
//   * benchmarks run against `RealClock` with a global *time scale*: simulated
//     cloud latencies (milliseconds) are slept at `latency * scale` so a full
//     paper experiment finishes in seconds, while reported numbers are
//     converted back to simulated milliseconds.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>

#include "src/common/mutex.h"

namespace aft {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds;  // Nanoseconds since clock epoch.

inline Duration Micros(int64_t us) { return std::chrono::microseconds(us); }
inline Duration Millis(int64_t ms) { return std::chrono::milliseconds(ms); }
inline double ToMillis(Duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(d).count();
}

// Interface. `now()` must be monotonic; `SleepFor` blocks the calling thread
// for (at least) the given *simulated* duration.
class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic simulated time since an arbitrary epoch.
  virtual TimePoint Now() = 0;

  // Blocks for `d` of simulated time.
  virtual void SleepFor(Duration d) = 0;

  // Wall-clock microseconds since the Unix epoch, used only for commit
  // timestamps (the paper: "each transaction is given a commit timestamp
  // based on the machine's local system clock"; correctness never depends on
  // clock synchronization). Defaults to a monotonic counter derived from
  // Now() so SimClock produces strictly useful timestamps too.
  virtual int64_t WallTimeMicros();
};

// Real time, optionally scaled. With scale 0.1, `SleepFor(10ms)` sleeps 1ms
// of wall time; `Now()` reports *simulated* time (wall elapsed / scale) so
// callers measure latencies in simulated units without extra bookkeeping.
//
// Short scaled sleeps (< 200us wall) are completed with a spin-wait: Linux
// timer slack would otherwise distort sub-millisecond simulated latencies.
class RealClock : public Clock {
 public:
  // `scale` is wall-seconds per simulated-second, must be > 0.
  // `spin_threshold` is the wall-time tail of each sleep completed by
  // spin-waiting for precision; pass Duration::zero() for pure sleeps in
  // highly concurrent benchmarks (hundreds of threads spinning would
  // serialize on small machines).
  explicit RealClock(double scale = 1.0,
                     Duration spin_threshold = std::chrono::microseconds(200));

  TimePoint Now() override;
  void SleepFor(Duration d) override;
  int64_t WallTimeMicros() override;

  double scale() const { return scale_; }

  // Process-wide default clock with scale taken from the AFT_TIME_SCALE
  // environment variable (default 1.0). Used by benches.
  static RealClock& Default();

 private:
  const double scale_;
  const Duration spin_threshold_;
  const std::chrono::steady_clock::time_point epoch_;
};

// Virtual time. `SleepFor` blocks the caller until some other thread (or the
// caller itself via `Advance`) moves time forward past its deadline. With a
// single thread, `SleepFor` simply advances time instantly — this is the mode
// unit tests and deterministic protocol tests use.
//
// Thread-safe. When multiple threads sleep, `Advance` wakes all those whose
// deadlines have passed; `AutoAdvance(true)` (the default) makes `SleepFor`
// by the *only* sleeper advance time itself, which keeps single-threaded
// tests trivial while still supporting explicit-advance tests.
class SimClock : public Clock {
 public:
  SimClock() = default;

  TimePoint Now() override;
  void SleepFor(Duration d) override;
  int64_t WallTimeMicros() override;

  // Moves time forward by `d`, waking sleepers whose deadlines pass.
  void Advance(Duration d);

  // When true (default), a thread calling SleepFor advances virtual time to
  // its own deadline if no earlier-deadline sleeper exists. When false,
  // SleepFor blocks until Advance() is called from another thread.
  void set_auto_advance(bool v) { auto_advance_.store(v); }

 private:
  Mutex mu_;
  CondVar cv_;
  TimePoint now_ GUARDED_BY(mu_){Duration::zero()};
  // Deadlines of currently sleeping threads; the earliest sleeper is allowed
  // to advance virtual time when auto-advance is enabled.
  std::multiset<TimePoint> sleepers_ GUARDED_BY(mu_);
  std::atomic<bool> auto_advance_{true};
  // Monotonic counter folded into WallTimeMicros so that two commits at the
  // same virtual instant still get distinct, ordered timestamps.
  std::atomic<int64_t> wall_seq_{0};
};

}  // namespace aft

#endif  // SRC_COMMON_CLOCK_H_
