// Client-side view of an AFT deployment.
//
// A FaaS function talks to AFT over the network; this client charges a
// per-API-call network hop (part of the ~6ms fixed overhead the paper
// attributes to "shipping data to aft", §6.1.1) and pins each transaction to
// the node the load balancer chose at StartTransaction.

#ifndef SRC_CLUSTER_AFT_CLIENT_H_
#define SRC_CLUSTER_AFT_CLIENT_H_

#include <optional>
#include <string>
#include <vector>

#include "src/cluster/load_balancer.h"
#include "src/common/latency.h"
#include "src/core/aft_node.h"

namespace aft {

struct AftClientOptions {
  // One request/response hop between the function and the AFT node (same
  // AZ: sub-millisecond).
  LatencyModel network_hop = LatencyModel(0.5, 0.3, 0.15, 0.01);
};

// A transaction session: which node serves the transaction, plus its UUID.
// Sessions are small value types that flow between the functions of one
// logical request (the "distributed client session" of §2.2).
struct TxnSession {
  AftNode* node = nullptr;
  Uuid txid;

  bool valid() const { return node != nullptr; }
};

class AftClient {
 public:
  AftClient(LoadBalancer& balancer, Clock& clock, AftClientOptions options = {});

  // Begins a transaction on the next node in round-robin order.
  Result<TxnSession> StartTransaction();

  // Re-attaches to a transaction after a function handoff or retry (§3.3.1:
  // a retried function "can use the same transaction ID to continue").
  Status Resume(const TxnSession& session);

  Result<std::optional<std::string>> Get(const TxnSession& session, const std::string& key);

  // Read with version metadata (used by the evaluation harness).
  Result<AftNode::VersionedRead> GetVersioned(const TxnSession& session, const std::string& key);

  // Multi-key read in ONE request to the shim: one network hop for the whole
  // batch; the node plans Algorithm 1 across the keys and fetches the
  // payloads concurrently (see AftNode::MultiGet). Results are positional.
  Result<std::vector<AftNode::VersionedRead>> MultiGet(const TxnSession& session,
                                                       std::span<const std::string> keys);

  Status Put(const TxnSession& session, const std::string& key, std::string value);

  // Ships a whole set of updates in ONE request to the shim ("the client
  // sends a single batch", §6.1.1, the "Aft Batch" configuration).
  Status PutBatch(const TxnSession& session, std::span<const WriteOp> ops);

  Result<TxnId> Commit(const TxnSession& session);
  Status Abort(const TxnSession& session);

 private:
  void ChargeHop(uint64_t bytes = 0);
  Status CheckSession(const TxnSession& session) const;

  LoadBalancer& balancer_;
  Clock& clock_;
  const AftClientOptions options_;
};

}  // namespace aft

#endif  // SRC_CLUSTER_AFT_CLIENT_H_
