// Commit-set multicast between AFT nodes (§4).
//
// Every `interval` (1 second in the paper), each node's recently committed
// transactions are gathered and broadcast to all peers, pruned of locally
// superseded transactions (§4.1). The *unpruned* stream is forwarded to the
// fault manager (§4.2). This is an in-process stand-in for the background
// multicast thread each node runs in the real deployment; message and record
// counters let the ablation bench quantify the pruning optimization.

#ifndef SRC_CLUSTER_MULTICAST_BUS_H_
#define SRC_CLUSTER_MULTICAST_BUS_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/core/aft_node.h"

namespace aft {

struct MulticastStats {
  std::atomic<uint64_t> rounds{0};
  std::atomic<uint64_t> records_broadcast{0};
  std::atomic<uint64_t> records_pruned{0};
  std::atomic<uint64_t> records_to_fault_manager{0};
};

class MulticastBus {
 public:
  using FaultManagerSink = std::function<void(const std::vector<CommitRecordPtr>&)>;

  explicit MulticastBus(Clock& clock, Duration interval = Millis(1000));
  ~MulticastBus();

  MulticastBus(const MulticastBus&) = delete;
  MulticastBus& operator=(const MulticastBus&) = delete;

  void RegisterNode(AftNode* node);
  void UnregisterNode(AftNode* node);

  // Receives every committed transaction WITHOUT pruning (§4.2).
  void SetFaultManagerSink(FaultManagerSink sink);

  // Disables supersedence pruning (ablation bench).
  void set_pruning_enabled(bool enabled) { pruning_enabled_.store(enabled); }

  // One gossip round: drain every node, forward unpruned records to the
  // fault manager, deliver pruned records to all *other* nodes.
  void RunOnce();

  // Background driver.
  void Start();
  void Stop();

  const MulticastStats& stats() const { return stats_; }

 private:
  void Loop();

  Clock& clock_;
  const Duration interval_;
  Mutex mu_;
  std::vector<AftNode*> nodes_ GUARDED_BY(mu_);
  FaultManagerSink fault_manager_sink_ GUARDED_BY(mu_);
  std::atomic<bool> pruning_enabled_{true};
  std::atomic<bool> running_{false};
  std::thread thread_;
  MulticastStats stats_;
};

}  // namespace aft

#endif  // SRC_CLUSTER_MULTICAST_BUS_H_
