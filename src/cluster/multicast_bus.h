// Commit-set multicast between AFT nodes (§4).
//
// Every `interval` (1 second in the paper), each node's recently committed
// transactions are gathered and broadcast to all peers, pruned of locally
// superseded transactions (§4.1). The *unpruned* stream is forwarded to the
// fault manager (§4.2). Message and record counters let the ablation bench
// quantify the pruning optimization.
//
// `MulticastBus` is the transport-neutral interface: the fault manager and
// cluster tests drive gossip through it without caring how records move.
// Two implementations exist:
//   * `InProcMulticastBus` (below) — direct method calls, the original
//     in-process stand-in;
//   * `TcpMulticastBus` (src/net/tcp_multicast_bus.h) — real loopback TCP:
//     records are framed, checksummed, and applied by each peer's service
//     endpoint, so the protocol survives an actual socket boundary.

#ifndef SRC_CLUSTER_MULTICAST_BUS_H_
#define SRC_CLUSTER_MULTICAST_BUS_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/core/aft_node.h"
#include "src/obs/health.h"

namespace aft {

struct MulticastStats {
  std::atomic<uint64_t> rounds{0};
  std::atomic<uint64_t> records_broadcast{0};
  std::atomic<uint64_t> records_pruned{0};
  std::atomic<uint64_t> records_to_fault_manager{0};
  // Broadcast deliveries that failed in the transport (always 0 in-process;
  // over TCP: peer connection refused/reset mid-gossip). Undelivered records
  // are NOT retried by the bus — the fault manager's storage scan is the
  // recovery path for anything gossip loses (§4.2).
  std::atomic<uint64_t> delivery_errors{0};
};

// Transport-neutral gossip interface. Implementations own the membership
// list; `Start`/`Stop` drive the shared background loop (one `RunOnce` per
// `interval`), with `Stop` performing a final drain so no committed record is
// stranded in a node's pending list.
// Base methods are defined inline so transport implementations in other
// libraries (src/net) depend only on this header, not on aft_cluster.
class MulticastBus {
 public:
  using FaultManagerSink = std::function<void(const std::vector<CommitRecordPtr>&)>;

  MulticastBus(Clock& clock, Duration interval) : clock_(clock), interval_(interval) {}

  virtual ~MulticastBus() {
    // Concrete destructors are required to have called Stop() already (the
    // final drain needs their RunOnce). If one forgot, still join the
    // threads — without the drain — so we never destruct with a live loop.
    if (running_.exchange(false)) {
      {
        MutexLock lock(nudge_mu_);
        nudge_stop_ = true;
        nudge_cv_.NotifyAll();
      }
      JoinThreads();
    }
  }

  MulticastBus(const MulticastBus&) = delete;
  MulticastBus& operator=(const MulticastBus&) = delete;

  virtual void RegisterNode(AftNode* node) = 0;
  virtual void UnregisterNode(AftNode* node) = 0;

  // Receives every committed transaction WITHOUT pruning (§4.2).
  virtual void SetFaultManagerSink(FaultManagerSink sink) = 0;

  // One gossip round: drain every node, forward unpruned records to the
  // fault manager, deliver pruned records to all *other* nodes.
  virtual void RunOnce() = 0;

  // Disables supersedence pruning (ablation bench).
  void set_pruning_enabled(bool enabled) { pruning_enabled_.store(enabled); }

  // Commit-round nudge (src/core/commit_batcher.h): wakes the nudge
  // dispatcher into an immediate coalesced gossip round instead of letting
  // the round's records wait out `interval`. Nudges arriving while a round
  // is executing coalesce into ONE follow-up round. No-op while the bus is
  // not started — tests that drive RunOnce by hand keep their exact round
  // and record counts.
  void NotifyCommitBatch() {
    if (!running_.load(std::memory_order_acquire)) {
      return;
    }
    MutexLock lock(nudge_mu_);
    ++nudges_;
    nudge_cv_.NotifyOne();
  }

  // Background driver. Concrete destructors MUST call Stop() before their
  // members are torn down (the loop calls the virtual RunOnce).
  void Start() {
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true)) {
      return;
    }
    {
      MutexLock lock(nudge_mu_);
      nudge_stop_ = false;
      handled_ = nudges_;  // Nudges from before Start are stale; drop them.
    }
    thread_ = std::thread([this] { Loop(); });
    nudge_thread_ = std::thread([this] { NudgeLoop(); });
    // /readyz gossip_live: live exactly while the background driver runs.
    // Released in Stop, so a bus that was never started (or a test driving
    // RunOnce by hand) contributes no check.
    gossip_ready_ = obs::RegisterReadyCheck("gossip_live", [this] {
      return std::make_pair(
          running_.load(std::memory_order_acquire),
          "rounds=" + std::to_string(stats_.rounds.load(std::memory_order_relaxed)));
    });
  }

  void Stop() {
    gossip_ready_.Release();
    if (!running_.exchange(false)) {
      return;
    }
    {
      MutexLock lock(nudge_mu_);
      nudge_stop_ = true;
      nudge_cv_.NotifyAll();
    }
    JoinThreads();
    // Final drain so no committed record is stranded in a node's pending list.
    RunOnce();
  }

  const MulticastStats& stats() const { return stats_; }

 protected:
  bool pruning_enabled() const { return pruning_enabled_.load(); }

  Clock& clock_;
  const Duration interval_;
  MulticastStats stats_;

 private:
  void Loop() {
    while (running_.load()) {
      clock_.SleepFor(interval_);
      if (!running_.load()) {
        return;
      }
      SerializedRunOnce();
    }
  }

  // Dispatcher for commit-round nudges. Runs no clock sleeps of its own
  // (SimClock-safe): it parks on the condvar until NotifyCommitBatch and
  // snapshots the nudge counter before each round, so any number of nudges
  // that arrived while a round was in flight collapse into one more round.
  void NudgeLoop() {
    MutexLock lock(nudge_mu_);
    while (true) {
      while (nudges_ == handled_ && !nudge_stop_) {
        nudge_cv_.Wait(lock);
      }
      if (nudge_stop_) {
        return;
      }
      handled_ = nudges_;
      lock.Unlock();
      SerializedRunOnce();
      lock.Lock();
    }
  }

  // Interval rounds and nudged rounds must not interleave: RunOnce drains
  // per-node pending lists and bumps stats that assume one round at a time.
  void SerializedRunOnce() {
    MutexLock lock(round_mu_);
    RunOnce();
  }

  void JoinThreads() {
    if (nudge_thread_.joinable()) {
      nudge_thread_.join();
    }
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  std::atomic<bool> pruning_enabled_{true};
  std::atomic<bool> running_{false};
  obs::ScopedReadyCheck gossip_ready_;
  std::thread thread_;
  std::thread nudge_thread_;
  Mutex round_mu_;
  Mutex nudge_mu_;
  CondVar nudge_cv_;
  uint64_t nudges_ GUARDED_BY(nudge_mu_) = 0;
  uint64_t handled_ GUARDED_BY(nudge_mu_) = 0;
  bool nudge_stop_ GUARDED_BY(nudge_mu_) = false;
};

// The original in-process implementation: peers exchange records by direct
// method call on the shared heap.
class InProcMulticastBus : public MulticastBus {
 public:
  explicit InProcMulticastBus(Clock& clock, Duration interval = Millis(1000));
  ~InProcMulticastBus() override;

  void RegisterNode(AftNode* node) override;
  void UnregisterNode(AftNode* node) override;
  void SetFaultManagerSink(FaultManagerSink sink) override;
  void RunOnce() override;

 private:
  Mutex mu_;
  std::vector<AftNode*> nodes_ GUARDED_BY(mu_);
  FaultManagerSink fault_manager_sink_ GUARDED_BY(mu_);
};

}  // namespace aft

#endif  // SRC_CLUSTER_MULTICAST_BUS_H_
