#include "src/cluster/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace aft {

size_t ThresholdPolicy::DesiredNodes(const Observation& observation) {
  if (observation.live_nodes == 0) {
    return 1;
  }
  const double capacity =
      options_.per_node_capacity_tps * static_cast<double>(observation.live_nodes);
  const double utilization = capacity > 0 ? observation.aggregate_tps / capacity : 0;
  if (utilization > options_.scale_up_fraction) {
    // Size the fleet so that it would run at the scale-up threshold.
    return static_cast<size_t>(std::ceil(observation.aggregate_tps /
                                         (options_.per_node_capacity_tps *
                                          options_.scale_up_fraction)));
  }
  if (utilization < options_.scale_down_fraction && observation.live_nodes > 1) {
    return observation.live_nodes - 1;
  }
  return observation.live_nodes;
}

Autoscaler::Autoscaler(ClusterDeployment& cluster, Clock& clock,
                       std::unique_ptr<AutoscalingPolicy> policy, AutoscalerOptions options)
    : cluster_(cluster), clock_(clock), policy_(std::move(policy)), options_(options) {}

Autoscaler::~Autoscaler() { Stop(); }

uint64_t Autoscaler::TotalCommitted() const {
  uint64_t total = 0;
  for (AftNode* node : cluster_.balancer().LiveNodes()) {
    total += node->stats().txns_committed.load(std::memory_order_relaxed);
  }
  return total;
}

int Autoscaler::RunOnce() {
  stats_.evaluations.fetch_add(1, std::memory_order_relaxed);
  const TimePoint now = clock_.Now();
  const uint64_t committed = TotalCommitted();
  if (!primed_) {
    // First call only establishes the measurement baseline.
    primed_ = true;
    last_eval_ = now;
    last_committed_ = committed;
    return 0;
  }
  const double elapsed_sec = ToMillis(now - last_eval_) / 1000.0;
  if (elapsed_sec <= 0) {
    return 0;
  }
  AutoscalingPolicy::Observation observation;
  observation.live_nodes = cluster_.balancer().LiveNodes().size();
  observation.aggregate_tps =
      static_cast<double>(committed - last_committed_) / elapsed_sec;
  observation.per_node_tps = observation.live_nodes > 0
                                 ? observation.aggregate_tps /
                                       static_cast<double>(observation.live_nodes)
                                 : 0;
  last_eval_ = now;
  last_committed_ = committed;

  size_t desired = policy_->DesiredNodes(observation);
  desired = std::clamp(desired, options_.min_nodes, options_.max_nodes);
  if (desired == observation.live_nodes) {
    return 0;
  }
  if (last_action_.count() != 0 && now - last_action_ < options_.cooldown) {
    return 0;  // Hysteresis: at most one scaling action per cooldown window.
  }
  last_action_ = now;
  if (desired > observation.live_nodes) {
    AFT_LOG(Info) << "autoscaler: scaling up (" << observation.live_nodes << " -> "
                  << observation.live_nodes + 1 << ", " << observation.aggregate_tps
                  << " txn/s)";
    stats_.scale_ups.fetch_add(1, std::memory_order_relaxed);
    return cluster_.AddNode() != nullptr ? 1 : 0;
  }
  AFT_LOG(Info) << "autoscaler: scaling down (" << observation.live_nodes << " -> "
                << observation.live_nodes - 1 << ", " << observation.aggregate_tps
                << " txn/s)";
  stats_.scale_downs.fetch_add(1, std::memory_order_relaxed);
  DecommissionOneNode();
  return -1;
}

void Autoscaler::DecommissionOneNode() {
  const std::vector<AftNode*> live = cluster_.balancer().LiveNodes();
  if (live.size() <= options_.min_nodes) {
    return;
  }
  AftNode* victim = live.back();
  // 1. Stop routing NEW transactions to the node; running ones finish.
  cluster_.balancer().RemoveNode(victim);
  // 2. Planned removal: the fault manager must not replace it.
  cluster_.fault_manager().Decommission(victim);
  // 3. Drain: wait (bounded) for in-flight transactions to complete.
  const TimePoint deadline = clock_.Now() + options_.drain_timeout;
  while (victim->RunningTransactionCount() > 0 && clock_.Now() < deadline) {
    clock_.SleepFor(Millis(50));
  }
  // 4. Final gossip so no committed record is stranded, then retire.
  cluster_.bus().RunOnce();
  cluster_.bus().UnregisterNode(victim);
  victim->Kill();
}

void Autoscaler::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  thread_ = std::thread([this] {
    while (running_.load()) {
      clock_.SleepFor(options_.evaluate_interval);
      if (!running_.load()) {
        return;
      }
      RunOnce();
    }
  });
}

void Autoscaler::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace aft
