#include "src/cluster/fault_manager.h"

#include <algorithm>

#include "src/common/histogram.h"

#include "src/common/io_executor.h"
#include "src/common/logging.h"
#include "src/storage/sim_engine_base.h"

namespace aft {

FaultManager::FaultManager(Clock& clock, StorageEngine& storage, LoadBalancer& balancer,
                           MulticastBus& bus, FaultManagerOptions options)
    : clock_(clock),
      storage_(storage),
      balancer_(balancer),
      bus_(bus),
      options_(options),
      delete_pool_(options.delete_pool_threads) {
  bus_.SetFaultManagerSink(
      [this](const std::vector<CommitRecordPtr>& records) { IngestCommits(records); });
  auto& reg = obs::MetricsRegistry::Global();
  auto sweep = [&](const char* kind) {
    return reg.GetHistogram("aft_fm_sweep_duration_ms",
                            "Wall-clock duration of one maintenance sweep (ms)",
                            DefaultLatencyBoundariesMs(), {{"sweep", kind}});
  };
  metrics_.liveness_scan_ms = sweep("liveness");
  metrics_.gc_round_ms = sweep("gc");
  metrics_.orphan_sweep_ms = sweep("orphan");
  auto wrap = [&](const char* metric, const char* help, const std::atomic<uint64_t>& cell) {
    metric_callbacks_.push_back(reg.RegisterCallback(
        metric, help, obs::CallbackType::kCounter, {},
        [&cell] { return static_cast<double>(cell.load(std::memory_order_relaxed)); }));
  };
  wrap("aft_fm_records_ingested_total", "Unpruned commit records ingested from gossip",
       stats_.records_ingested);
  wrap("aft_fm_missed_commits_recovered_total",
       "Commits recovered by the storage scan that gossip never delivered",
       stats_.missed_commits_recovered);
  wrap("aft_fm_txns_deleted_total", "Transactions garbage-collected globally",
       stats_.txns_deleted);
  wrap("aft_fm_versions_deleted_total", "Key versions deleted by the global GC",
       stats_.versions_deleted);
  wrap("aft_fm_orphans_deleted_total", "Orphaned versions deleted by the sweep",
       stats_.orphans_deleted);
  wrap("aft_fm_gc_rounds_total", "Global GC rounds run", stats_.gc_rounds);
  wrap("aft_fm_failures_detected_total", "Node failures detected", stats_.failures_detected);
  wrap("aft_fm_nodes_replaced_total", "Dead nodes replaced", stats_.nodes_replaced);
}

FaultManager::~FaultManager() { Stop(); }

void FaultManager::Manage(AftNode* node) {
  MutexLock lock(nodes_mu_);
  if (std::find(managed_nodes_.begin(), managed_nodes_.end(), node) == managed_nodes_.end()) {
    managed_nodes_.push_back(node);
  }
}

void FaultManager::Decommission(AftNode* node) {
  MutexLock lock(nodes_mu_);
  managed_nodes_.erase(std::remove(managed_nodes_.begin(), managed_nodes_.end(), node),
                       managed_nodes_.end());
  handled_failures_.insert(node->node_id());
}

void FaultManager::SetNodeFactory(NodeFactory factory) {
  MutexLock lock(nodes_mu_);
  factory_ = std::move(factory);
}

std::vector<AftNode*> FaultManager::ManagedNodes() const {
  MutexLock lock(nodes_mu_);
  return managed_nodes_;
}

void FaultManager::IngestCommits(const std::vector<CommitRecordPtr>& records) {
  for (const auto& record : records) {
    if (commits_.Add(record)) {
      index_.AddCommit(*record);
      stats_.records_ingested.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(known_writers_mu_);
      known_writers_.insert(record->id.uuid);
    }
  }
}

size_t FaultManager::RunLivenessScanOnce() {
  obs::ScopedHistogramTimer timer(metrics_.liveness_scan_ms);
  auto keys = storage_.List(kCommitPrefix);
  if (!keys.ok()) {
    return 0;
  }
  const int64_t now_micros = clock_.WallTimeMicros();
  const int64_t grace_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(options_.liveness_grace).count();
  // Phase 1 (in-memory, cheap): records in storage we have never heard of.
  std::vector<std::string> candidates;
  for (const std::string& storage_key : keys.value()) {
    const TxnId id = TxnIdFromCommitStorageKey(storage_key);
    if (commits_.Contains(id) || commits_.HasLocallyDeleted(id)) {
      continue;
    }
    if (id.timestamp > now_micros - grace_micros) {
      continue;  // Fresh commit, presumably still in flight to the gossip.
    }
    candidates.push_back(storage_key);
  }
  if (candidates.empty()) {
    return 0;
  }
  // Phase 2: fetch + decode the candidates concurrently, capped so this
  // background pass never crowds the commit path off the shared executor.
  // Slots are disjoint per lane; a slot left null means the record was
  // deleted concurrently (or is corrupt) and is simply skipped.
  std::vector<CommitRecordPtr> fetched(candidates.size());
  (void)IoExecutor::Shared().ParallelFor(
      candidates.size(),
      [&](size_t i) {
        auto bytes = MaintenanceRead(storage_, candidates[i]);
        if (!bytes.ok()) {
          return Status::Ok();  // Deleted concurrently.
        }
        auto record = CommitRecord::Deserialize(bytes.value());
        if (!record.ok()) {
          AFT_LOG(Warn) << "fault manager: corrupt commit record at " << candidates[i];
          return Status::Ok();
        }
        fetched[i] = std::make_shared<const CommitRecord>(std::move(record).value());
        return Status::Ok();
      },
      options_.maintenance_parallelism);
  // Phase 3 (serial): merge into the unpruned view. The caches are
  // thread-safe, but merging on one thread keeps Add/AddCommit pairing
  // trivially atomic per record.
  size_t recovered = 0;
  std::vector<CommitRecordPtr> discovered;
  for (CommitRecordPtr& ptr : fetched) {
    if (ptr == nullptr) {
      continue;
    }
    if (commits_.Add(ptr)) {
      index_.AddCommit(*ptr);
      {
        MutexLock lock(known_writers_mu_);
        known_writers_.insert(ptr->id.uuid);
      }
      discovered.push_back(std::move(ptr));
      ++recovered;
    }
  }
  if (!discovered.empty()) {
    // §4.2: data committed by a node that died before broadcasting must
    // still become visible everywhere.
    for (AftNode* node : ManagedNodes()) {
      if (node->alive()) {
        node->ApplyRemoteCommits(discovered);
      }
    }
    stats_.missed_commits_recovered.fetch_add(discovered.size(), std::memory_order_relaxed);
  }
  return recovered;
}

size_t FaultManager::RunGlobalGcOnce() {
  if (!options_.enable_global_gc) {
    return 0;
  }
  obs::ScopedHistogramTimer timer(metrics_.gc_round_ms);
  stats_.gc_rounds.fetch_add(1, std::memory_order_relaxed);
  std::vector<CommitRecordPtr> snapshot = commits_.Snapshot();
  // Oldest first (§5.2.1 mitigation).
  std::sort(snapshot.begin(), snapshot.end(),
            [](const CommitRecordPtr& a, const CommitRecordPtr& b) { return a->id < b->id; });
  const std::vector<AftNode*> nodes = ManagedNodes();
  std::vector<CommitRecordPtr> victims;
  for (const auto& record : snapshot) {
    if (victims.size() >= options_.gc_max_per_round) {
      break;
    }
    if (!IsTransactionSuperseded(*record, index_)) {
      continue;
    }
    // §5.2: delete only if every node has dropped the transaction locally
    // (and thus no running transaction can still read from it).
    const bool all_agree = std::all_of(nodes.begin(), nodes.end(), [&](AftNode* node) {
      return node->CanGloballyDelete(record->id);
    });
    if (!all_agree) {
      continue;
    }
    // Remove from our own view first so the liveness scan does not
    // resurrect the record while the deletion is in flight.
    index_.RemoveCommit(*record);
    commits_.Remove(record->id);
    victims.push_back(record);
  }
  if (victims.empty()) {
    return 0;
  }
  // The expensive storage deletes run on the dedicated deletion cores
  // (§5.2) and are batched aggressively — per-transaction delete calls
  // would cap the deletion rate far below the commit rate. The round's
  // victims are partitioned into up to maintenance_parallelism groups of
  // WHOLE records, one pool task each, so every deletion core stays busy
  // and each group's BatchDelete fans out further inside the engine.
  // Every victim record already passed the all-nodes CanGloballyDelete
  // vote above; splitting into groups never starts a delete before that
  // consensus, and each group completes its own bookkeeping so no record's
  // cleanup waits on another group's storage latency.
  const size_t group_count =
      std::min(victims.size(), std::max<size_t>(1, options_.maintenance_parallelism));
  const size_t group_size = (victims.size() + group_count - 1) / group_count;
  for (size_t begin = 0; begin < victims.size(); begin += group_size) {
    const size_t end = std::min(victims.size(), begin + group_size);
    std::vector<CommitRecordPtr> group(victims.begin() + begin, victims.begin() + end);
    delete_pool_.Submit([this, group = std::move(group), nodes] {
      std::vector<std::string> victim_keys;
      uint64_t version_count = 0;
      for (const auto& record : group) {
        if (record->packed()) {
          for (uint32_t i = 0; i < record->segment_count; ++i) {
            victim_keys.push_back(SegmentStorageKey(record->id.uuid, i));
          }
          version_count += record->write_set.size();
        } else {
          for (const std::string& key : record->write_set) {
            victim_keys.push_back(VersionStorageKey(key, record->id.uuid));
            ++version_count;
          }
        }
        victim_keys.push_back(CommitStorageKey(record->id));
      }
      (void)storage_.BatchDelete(victim_keys);
      for (const auto& record : group) {
        commits_.ForgetLocallyDeleted(record->id);
        for (AftNode* node : nodes) {
          node->AcknowledgeGlobalDelete(record->id);
        }
      }
      // Drop deleted writers from the orphan whitelist: if a transient
      // storage error left a straggler version behind, the orphan sweep can
      // now reap it (its commit record is gone, so nothing will ever
      // reference it).
      {
        MutexLock lock(known_writers_mu_);
        for (const auto& record : group) {
          known_writers_.erase(record->id.uuid);
        }
      }
      stats_.txns_deleted.fetch_add(group.size(), std::memory_order_relaxed);
      stats_.versions_deleted.fetch_add(version_count, std::memory_order_relaxed);
    });
  }
  return victims.size();
}

size_t FaultManager::RunOrphanSweepOnce() {
  obs::ScopedHistogramTimer timer(metrics_.orphan_sweep_ms);
  auto version_keys = storage_.List(kVersionPrefix);
  if (!version_keys.ok()) {
    return 0;
  }
  // Packed-layout segments are orphan candidates too.
  if (auto segment_keys = storage_.List(kSegmentPrefix); segment_keys.ok()) {
    version_keys->insert(version_keys->end(), segment_keys->begin(), segment_keys->end());
  }
  const TimePoint now = clock_.Now();
  // Snapshot the whitelist AND the candidate table under a short lock:
  // holding known_writers_mu_ for the whole sweep would block commit
  // ingestion (and thus gossip). The candidate table was previously read and
  // replaced with no lock at all, racing concurrent sweeps.
  std::unordered_set<Uuid> known;
  std::unordered_map<std::string, TimePoint> candidates;
  {
    MutexLock lock(known_writers_mu_);
    known = known_writers_;
    candidates = orphan_candidates_;
  }
  std::unordered_map<std::string, TimePoint> still_present;
  std::vector<std::string> victims;
  for (const std::string& storage_key : *version_keys) {
    Uuid writer;
    if (storage_key.compare(0, 2, kSegmentPrefix) == 0) {
      writer = WriterFromSegmentStorageKey(storage_key);
    } else {
      // "v/<key>/<uuid>" — the writer UUID is the final path segment.
      const size_t slash = storage_key.rfind('/');
      if (slash == std::string::npos) {
        continue;
      }
      writer = Uuid::Parse(storage_key.substr(slash + 1));
    }
    if (writer.IsNil() || known.contains(writer)) {
      continue;  // Committed (or commit seen at some point): not an orphan.
    }
    auto it = candidates.find(storage_key);
    const TimePoint first_seen = it == candidates.end() ? now : it->second;
    if (now - first_seen >= options_.orphan_grace) {
      victims.push_back(storage_key);
    } else {
      still_present.emplace(storage_key, first_seen);
    }
  }
  {
    MutexLock lock(known_writers_mu_);
    orphan_candidates_ = std::move(still_present);
  }
  if (!victims.empty()) {
    (void)storage_.BatchDelete(victims);
    stats_.orphans_deleted.fetch_add(victims.size(), std::memory_order_relaxed);
  }
  return victims.size();
}

void FaultManager::CheckForFailuresOnce() {
  std::vector<AftNode*> dead;
  {
    MutexLock lock(nodes_mu_);
    for (AftNode* node : managed_nodes_) {
      if (!node->alive() && !handled_failures_.contains(node->node_id())) {
        handled_failures_.insert(node->node_id());
        dead.push_back(node);
      }
    }
  }
  for (AftNode* node : dead) {
    stats_.failures_detected.fetch_add(1, std::memory_order_relaxed);
    AFT_LOG(Info) << "fault manager: node " << node->node_id() << " failed";
    balancer_.RemoveNode(node);
    bus_.UnregisterNode(node);
    if (options_.enable_node_replacement) {
      const std::string failed_id = node->node_id();
      MutexLock lock(replacements_mu_);
      replacement_threads_.emplace_back([this, failed_id] { ReplaceNode(failed_id); });
    }
  }
}

void FaultManager::ReplaceNode(const std::string& failed_id) {
  NodeFactory factory;
  {
    MutexLock lock(nodes_mu_);
    factory = factory_;
  }
  if (!factory) {
    AFT_LOG(Warn) << "fault manager: no node factory; cannot replace " << failed_id;
    return;
  }
  // Declaring the failure takes a few seconds (heartbeat timeouts)...
  clock_.SleepFor(options_.failure_detection_delay);
  AftNode* replacement = factory(failed_id + "-r");
  if (replacement == nullptr) {
    return;
  }
  // ...and the replacement spends ~45s downloading its container before it
  // can bootstrap (§6.7). Standby VMs are assumed pre-allocated, so no EC2
  // spin-up time is charged.
  clock_.SleepFor(options_.container_download_time);
  if (!replacement->Start().ok()) {
    AFT_LOG(Warn) << "fault manager: replacement for " << failed_id << " failed to start";
    return;
  }
  Manage(replacement);
  bus_.RegisterNode(replacement);
  balancer_.AddNode(replacement);
  stats_.nodes_replaced.fetch_add(1, std::memory_order_relaxed);
  AFT_LOG(Info) << "fault manager: node " << replacement->node_id() << " joined, replacing "
                << failed_id;
}

void FaultManager::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void FaultManager::Stop() {
  if (running_.exchange(false)) {
    if (thread_.joinable()) {
      thread_.join();
    }
  }
  std::vector<std::thread> replacements;
  {
    MutexLock lock(replacements_mu_);
    replacements.swap(replacement_threads_);
  }
  for (auto& t : replacements) {
    if (t.joinable()) {
      t.join();
    }
  }
  delete_pool_.Wait();
}

void FaultManager::Loop() {
  TimePoint last_scan = clock_.Now();
  TimePoint last_gc = last_scan;
  TimePoint last_orphan_sweep = last_scan;
  while (running_.load()) {
    clock_.SleepFor(options_.detection_interval);
    if (!running_.load()) {
      return;
    }
    CheckForFailuresOnce();
    const TimePoint now = clock_.Now();
    if (now - last_gc >= options_.gc_interval) {
      last_gc = now;
      RunGlobalGcOnce();
    }
    if (now - last_scan >= options_.scan_interval) {
      last_scan = now;
      RunLivenessScanOnce();
    }
    if (now - last_orphan_sweep >= options_.orphan_sweep_interval) {
      last_orphan_sweep = now;
      RunOrphanSweepOnce();
    }
  }
}

}  // namespace aft
