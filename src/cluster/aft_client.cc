#include "src/cluster/aft_client.h"

#include "src/storage/sim_engine_base.h"

namespace aft {

AftClient::AftClient(LoadBalancer& balancer, Clock& clock, AftClientOptions options)
    : balancer_(balancer), clock_(clock), options_(options) {}

void AftClient::ChargeHop(uint64_t bytes) {
  const Duration d = options_.network_hop.Sample(ThreadLocalRng(), bytes);
  if (d > Duration::zero()) {
    clock_.SleepFor(d);
  }
}

Status AftClient::CheckSession(const TxnSession& session) const {
  if (!session.valid()) {
    return Status::InvalidArgument("invalid transaction session");
  }
  if (!session.node->alive()) {
    return Status::Unavailable("aft node serving this transaction is down");
  }
  return Status::Ok();
}

Result<TxnSession> AftClient::StartTransaction() {
  AftNode* node = balancer_.Pick();
  if (node == nullptr) {
    return Status::Unavailable("no live aft nodes");
  }
  ChargeHop();
  AFT_ASSIGN_OR_RETURN(Uuid txid, node->StartTransaction());
  return TxnSession{node, txid};
}

Status AftClient::Resume(const TxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  ChargeHop();
  return session.node->AdoptTransaction(session.txid);
}

Result<std::optional<std::string>> AftClient::Get(const TxnSession& session,
                                                  const std::string& key) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  ChargeHop(key.size());
  return session.node->Get(session.txid, key);
}

Result<AftNode::VersionedRead> AftClient::GetVersioned(const TxnSession& session,
                                                       const std::string& key) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  ChargeHop(key.size());
  return session.node->GetVersioned(session.txid, key);
}

Result<std::vector<AftNode::VersionedRead>> AftClient::MultiGet(
    const TxnSession& session, std::span<const std::string> keys) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  uint64_t bytes = 0;
  for (const std::string& key : keys) {
    bytes += key.size();
  }
  // One round trip for the whole batch (the response payload dominates the
  // wire time either way; request fan-out happens inside the node).
  ChargeHop(bytes);
  return session.node->MultiGet(session.txid, keys);
}

Status AftClient::Put(const TxnSession& session, const std::string& key, std::string value) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  ChargeHop(key.size() + value.size());
  return session.node->Put(session.txid, key, std::move(value));
}

Status AftClient::PutBatch(const TxnSession& session, std::span<const WriteOp> ops) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  uint64_t bytes = 0;
  for (const WriteOp& op : ops) {
    bytes += op.key.size() + op.value.size();
  }
  // One network round trip for the whole batch; buffering server-side is
  // memory-speed.
  ChargeHop(bytes);
  for (const WriteOp& op : ops) {
    AFT_RETURN_IF_ERROR(session.node->Put(session.txid, op.key, op.value));
  }
  return Status::Ok();
}

Result<TxnId> AftClient::Commit(const TxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  ChargeHop();
  return session.node->CommitTransaction(session.txid);
}

Status AftClient::Abort(const TxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  ChargeHop();
  return session.node->AbortTransaction(session.txid);
}

}  // namespace aft
