// Autoscaling for AFT deployments.
//
// The paper deliberately leaves the scaling POLICY pluggable and out of
// scope ("That policy is pluggable in aft", §4.3; revisited as future work
// in §8) while the MECHANISM — adding and removing fungible nodes without
// coordination — is what the protocols enable. This module provides both:
//
//  * `AutoscalingPolicy` — the pluggable decision function; given the
//    observed load it returns the desired node count.
//  * `ThresholdPolicy` — a simple default: scale up when aggregate
//    throughput exceeds `scale_up_fraction` of the fleet's capacity, down
//    when below `scale_down_fraction`, with hysteresis via a cooldown.
//  * `Autoscaler` — the mechanism: samples committed-transaction counters,
//    consults the policy, adds nodes through the deployment, and
//    decommissions nodes gracefully (deregister from the balancer, wait for
//    in-flight transactions to drain, final gossip, then retire — planned
//    removals never trigger the fault manager's replacement path).

#ifndef SRC_CLUSTER_AUTOSCALER_H_
#define SRC_CLUSTER_AUTOSCALER_H_

#include <atomic>
#include <memory>
#include <thread>

#include "src/cluster/deployment.h"

namespace aft {

class AutoscalingPolicy {
 public:
  virtual ~AutoscalingPolicy() = default;

  struct Observation {
    size_t live_nodes = 0;
    double aggregate_tps = 0;   // Committed transactions per simulated second.
    double per_node_tps = 0;    // aggregate / live_nodes.
  };

  // Desired number of live nodes (the autoscaler clamps and rate-limits).
  virtual size_t DesiredNodes(const Observation& observation) = 0;
};

struct ThresholdPolicyOptions {
  // Estimated single-node capacity (txn/s) — e.g. from Figure 7.
  double per_node_capacity_tps = 550;
  double scale_up_fraction = 0.75;
  double scale_down_fraction = 0.30;
};

class ThresholdPolicy final : public AutoscalingPolicy {
 public:
  explicit ThresholdPolicy(ThresholdPolicyOptions options = {}) : options_(options) {}
  size_t DesiredNodes(const Observation& observation) override;

 private:
  const ThresholdPolicyOptions options_;
};

struct AutoscalerOptions {
  Duration evaluate_interval = std::chrono::seconds(5);
  Duration cooldown = std::chrono::seconds(15);
  size_t min_nodes = 1;
  size_t max_nodes = 16;
  // How long a decommissioned node may take to drain before being retired
  // regardless (its clients fail over like on a crash).
  Duration drain_timeout = std::chrono::seconds(10);
};

struct AutoscalerStats {
  std::atomic<uint64_t> evaluations{0};
  std::atomic<uint64_t> scale_ups{0};
  std::atomic<uint64_t> scale_downs{0};
};

class Autoscaler {
 public:
  Autoscaler(ClusterDeployment& cluster, Clock& clock, std::unique_ptr<AutoscalingPolicy> policy,
             AutoscalerOptions options = {});
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  // One evaluation: sample throughput since the last call, consult the
  // policy, apply at most one scaling action. Returns the delta in node
  // count (-1, 0 or +1).
  int RunOnce();

  void Start();
  void Stop();

  const AutoscalerStats& stats() const { return stats_; }

 private:
  uint64_t TotalCommitted() const;
  void DecommissionOneNode();

  ClusterDeployment& cluster_;
  Clock& clock_;
  std::unique_ptr<AutoscalingPolicy> policy_;
  const AutoscalerOptions options_;

  TimePoint last_eval_{};
  uint64_t last_committed_ = 0;
  TimePoint last_action_{};
  bool primed_ = false;

  std::atomic<bool> running_{false};
  std::thread thread_;
  AutoscalerStats stats_;
};

}  // namespace aft

#endif  // SRC_CLUSTER_AUTOSCALER_H_
