#include "src/cluster/multicast_bus.h"

#include <algorithm>

namespace aft {

InProcMulticastBus::InProcMulticastBus(Clock& clock, Duration interval)
    : MulticastBus(clock, interval) {}

InProcMulticastBus::~InProcMulticastBus() { Stop(); }

void InProcMulticastBus::RegisterNode(AftNode* node) {
  MutexLock lock(mu_);
  if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
    nodes_.push_back(node);
  }
}

void InProcMulticastBus::UnregisterNode(AftNode* node) {
  MutexLock lock(mu_);
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node), nodes_.end());
}

void InProcMulticastBus::SetFaultManagerSink(FaultManagerSink sink) {
  MutexLock lock(mu_);
  fault_manager_sink_ = std::move(sink);
}

void InProcMulticastBus::RunOnce() {
  std::vector<AftNode*> nodes;
  FaultManagerSink sink;
  {
    MutexLock lock(mu_);
    nodes = nodes_;
    sink = fault_manager_sink_;
  }
  stats_.rounds.fetch_add(1, std::memory_order_relaxed);
  const bool prune = pruning_enabled();
  for (AftNode* sender : nodes) {
    if (!sender->alive()) {
      continue;  // A dead node cannot gossip; the fault manager's storage
                 // scan recovers anything it committed but never broadcast.
    }
    std::vector<CommitRecordPtr> pruned;
    std::vector<CommitRecordPtr> unpruned;
    sender->DrainRecentCommits(prune ? &pruned : nullptr, &unpruned);
    if (unpruned.empty()) {
      continue;
    }
    if (sink) {
      sink(unpruned);
      stats_.records_to_fault_manager.fetch_add(unpruned.size(), std::memory_order_relaxed);
    }
    const std::vector<CommitRecordPtr>& outgoing = prune ? pruned : unpruned;
    stats_.records_broadcast.fetch_add(outgoing.size(), std::memory_order_relaxed);
    stats_.records_pruned.fetch_add(unpruned.size() - outgoing.size(),
                                    std::memory_order_relaxed);
    if (outgoing.empty()) {
      continue;
    }
    for (AftNode* receiver : nodes) {
      if (receiver != sender && receiver->alive()) {
        receiver->ApplyRemoteCommits(outgoing);
      }
    }
  }
}

}  // namespace aft
