#include "src/cluster/deployment.h"

namespace aft {

namespace {

std::unique_ptr<MulticastBus> MakeBus(ClusterTransport transport, Clock& clock,
                                      Duration interval,
                                      const net::TcpMulticastBusOptions& tcp_options) {
  if (transport == ClusterTransport::kTcp) {
    return std::make_unique<net::TcpMulticastBus>(clock, interval, tcp_options);
  }
  return std::make_unique<InProcMulticastBus>(clock, interval);
}

}  // namespace

ClusterDeployment::ClusterDeployment(StorageEngine& storage, Clock& clock, ClusterOptions options)
    : storage_(storage),
      clock_(clock),
      options_(std::move(options)),
      bus_(MakeBus(options_.transport, clock, options_.multicast_interval,
                   options_.tcp_options)),
      fault_manager_(clock, storage, balancer_, *bus_, options_.fault_manager) {
  fault_manager_.SetNodeFactory([this](const std::string& node_id) { return CreateNode(node_id); });
}

ClusterDeployment::~ClusterDeployment() { Stop(); }

AftNode* ClusterDeployment::CreateNode(const std::string& node_id) {
  MutexLock lock(nodes_mu_);
  nodes_.push_back(std::make_unique<AftNode>(node_id, storage_, clock_, options_.node_options));
  // A batched commit round nudges the gossip bus into an immediate
  // coalesced broadcast (no-op unless the bus's background loop runs).
  // Safe lifetime: bus_ is declared before nodes_, so it is destroyed
  // after every node that can fire the listener.
  nodes_.back()->SetCommitBatchListener([bus = bus_.get()] { bus->NotifyCommitBatch(); });
  return nodes_.back().get();
}

Status ClusterDeployment::Start() {
  for (size_t i = 0; i < options_.num_nodes; ++i) {
    AftNode* node = AddNode();
    if (node == nullptr) {
      return Status::Internal("failed to create node");
    }
  }
  started_.store(true, std::memory_order_release);
  if (options_.start_background_threads) {
    bus_->Start();
    fault_manager_.Start();
  }
  return Status::Ok();
}

AftNode* ClusterDeployment::AddNode() {
  std::string node_id;
  {
    MutexLock lock(nodes_mu_);
    node_id = "aft-" + std::to_string(next_node_number_++);
  }
  AftNode* node = CreateNode(node_id);
  if (!node->Start().ok()) {
    return nullptr;
  }
  bus_->RegisterNode(node);
  fault_manager_.Manage(node);
  balancer_.AddNode(node);
  return node;
}

void ClusterDeployment::KillNode(size_t index) {
  AftNode* victim = node(index);
  if (victim != nullptr) {
    victim->Kill();
  }
}

void ClusterDeployment::Stop() {
  if (!started_.exchange(false)) {
    return;
  }
  fault_manager_.Stop();
  bus_->Stop();
}

std::vector<net::NetEndpoint> ClusterDeployment::ServiceEndpoints() const {
  if (options_.transport != ClusterTransport::kTcp) {
    return {};
  }
  return static_cast<const net::TcpMulticastBus&>(*bus_).Endpoints();
}

AftNode* ClusterDeployment::node(size_t index) {
  MutexLock lock(nodes_mu_);
  if (index >= nodes_.size()) {
    return nullptr;
  }
  return nodes_[index].get();
}

size_t ClusterDeployment::node_count() const {
  MutexLock lock(nodes_mu_);
  return nodes_.size();
}

}  // namespace aft
