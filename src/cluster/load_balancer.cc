#include "src/cluster/load_balancer.h"

#include <algorithm>

namespace aft {

void LoadBalancer::AddNode(AftNode* node) {
  WriterMutexLock lock(mu_);
  if (std::find(nodes_.begin(), nodes_.end(), node) == nodes_.end()) {
    nodes_.push_back(node);
  }
}

void LoadBalancer::RemoveNode(AftNode* node) {
  WriterMutexLock lock(mu_);
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node), nodes_.end());
}

AftNode* LoadBalancer::Pick() {
  ReaderMutexLock lock(mu_);
  if (nodes_.empty()) {
    return nullptr;
  }
  // Skip dead nodes that have not been deregistered yet.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    AftNode* node = nodes_[next_.fetch_add(1, std::memory_order_relaxed) % nodes_.size()];
    if (node->alive()) {
      return node;
    }
  }
  return nullptr;
}

std::vector<AftNode*> LoadBalancer::LiveNodes() const {
  ReaderMutexLock lock(mu_);
  std::vector<AftNode*> out;
  for (AftNode* node : nodes_) {
    if (node->alive()) {
      out.push_back(node);
    }
  }
  return out;
}

size_t LoadBalancer::NodeCount() const {
  ReaderMutexLock lock(mu_);
  return nodes_.size();
}

}  // namespace aft
