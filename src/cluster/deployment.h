// Assembles a complete AFT deployment: N nodes over one shared storage
// engine, the commit multicast bus, the fault manager, and a round-robin
// load balancer — the in-process equivalent of the paper's Kubernetes
// deployment (§4.3, Figure 1).

#ifndef SRC_CLUSTER_DEPLOYMENT_H_
#define SRC_CLUSTER_DEPLOYMENT_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/fault_manager.h"
#include "src/cluster/load_balancer.h"
#include "src/cluster/multicast_bus.h"
#include "src/core/aft_node.h"
#include "src/net/tcp_multicast_bus.h"

namespace aft {

// How records and requests move between the deployment's nodes:
//   * kInProc — direct method calls on the shared heap (the original mode);
//   * kTcp   — every node behind its own loopback AftServiceServer, commit
//     multicast shipped as framed ApplyCommits RPCs (src/net). The same
//     protocol logic runs in both; kTcp proves it survives a real socket.
enum class ClusterTransport {
  kInProc,
  kTcp,
};

struct ClusterOptions {
  size_t num_nodes = 1;
  AftNodeOptions node_options;
  Duration multicast_interval = Millis(1000);
  FaultManagerOptions fault_manager;
  ClusterTransport transport = ClusterTransport::kInProc;
  // kTcp only: transport knobs for the per-node service servers and the
  // gossip RPCs (threading model, timeouts, backpressure).
  net::TcpMulticastBusOptions tcp_options;
  // When true, Start() launches the bus / fault-manager / per-node
  // background threads; tests that drive rounds manually leave this off.
  bool start_background_threads = true;
};

class ClusterDeployment {
 public:
  ClusterDeployment(StorageEngine& storage, Clock& clock, ClusterOptions options = {});
  ~ClusterDeployment();

  ClusterDeployment(const ClusterDeployment&) = delete;
  ClusterDeployment& operator=(const ClusterDeployment&) = delete;

  // Boots all nodes (bootstrap from the commit set) and background services.
  Status Start();
  void Stop();

  // Adds one more node to the running cluster (manual scale-out; the paper
  // leaves the autoscaling *policy* pluggable and out of scope, §4.3).
  AftNode* AddNode();

  // Simulates the failure of node `index` (§6.7).
  void KillNode(size_t index);

  LoadBalancer& balancer() { return balancer_; }
  MulticastBus& bus() { return *bus_; }
  FaultManager& fault_manager() { return fault_manager_; }
  Clock& clock() { return clock_; }
  StorageEngine& storage() { return storage_; }
  ClusterTransport transport() const { return options_.transport; }

  // kTcp only: the loopback service endpoints of all nodes, in node order —
  // what a RemoteAftClient connects to. Empty in kInProc mode.
  std::vector<net::NetEndpoint> ServiceEndpoints() const;

  AftNode* node(size_t index);
  size_t node_count() const;

 private:
  AftNode* CreateNode(const std::string& node_id);

  StorageEngine& storage_;
  Clock& clock_;
  const ClusterOptions options_;

  LoadBalancer balancer_;
  // Constructed before fault_manager_ (which keeps a reference).
  std::unique_ptr<MulticastBus> bus_;
  FaultManager fault_manager_;

  mutable Mutex nodes_mu_;
  std::vector<std::unique_ptr<AftNode>> nodes_ GUARDED_BY(nodes_mu_);
  size_t next_node_number_ GUARDED_BY(nodes_mu_) = 0;
  // Stop() can race Start() (destructor vs. a starting thread); atomic so
  // the started flag itself is never a data race.
  std::atomic<bool> started_{false};
};

}  // namespace aft

#endif  // SRC_CLUSTER_DEPLOYMENT_H_
