// Stateless round-robin load balancer (§6: "a simple stateless load balancer
// ... to route requests to aft nodes in a round-robin fashion").
//
// A transaction is routed to one node at StartTransaction and stays there
// for its lifetime (§3.1: "Each transaction sends all operations to a single
// aft node"); the balancer only chooses the node for each *new* transaction.

#ifndef SRC_CLUSTER_LOAD_BALANCER_H_
#define SRC_CLUSTER_LOAD_BALANCER_H_

#include <atomic>
#include <vector>

#include "src/common/mutex.h"
#include "src/core/aft_node.h"

namespace aft {

class LoadBalancer {
 public:
  LoadBalancer() = default;

  void AddNode(AftNode* node);
  void RemoveNode(AftNode* node);

  // The next live node in round-robin order; nullptr when none are live.
  AftNode* Pick();

  // All currently registered live nodes.
  std::vector<AftNode*> LiveNodes() const;
  size_t NodeCount() const;

 private:
  mutable SharedMutex mu_;
  std::vector<AftNode*> nodes_ GUARDED_BY(mu_);
  std::atomic<uint64_t> next_{0};
};

}  // namespace aft

#endif  // SRC_CLUSTER_LOAD_BALANCER_H_
