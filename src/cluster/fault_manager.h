// The fault manager (§4.2, §5.2, §6.7).
//
// Lives OFF the transaction critical path and has three duties:
//
//  1. Liveness: it receives every node's committed transactions without
//     pruning, periodically scans the Transaction Commit Set in storage, and
//     notifies all nodes of any commit record it never heard about — so a
//     commit acknowledged by a node that died before broadcasting is still
//     surfaced (§4.2). It is itself stateless-recoverable: all of its state
//     can be rebuilt by re-scanning the Commit Set.
//
//  2. Global data GC: it determines superseded transactions (Algorithm 2),
//     asks every node whether the transaction can be forgotten, and only
//     then deletes the transaction's key versions and commit record from
//     storage, on a dedicated deletion pool (§5.2).
//
//  3. Failure detection and replacement: it watches node health and brings
//     up replacements, modelling the paper's measured delays — ~5 s to
//     declare a node failed and ~45 s for the replacement to download its
//     container and warm its metadata cache (§6.7, Figure 10).

#ifndef SRC_CLUSTER_FAULT_MANAGER_H_
#define SRC_CLUSTER_FAULT_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/thread_pool.h"
#include "src/cluster/load_balancer.h"
#include "src/cluster/multicast_bus.h"
#include "src/core/aft_node.h"
#include "src/obs/metrics.h"

namespace aft {

struct FaultManagerOptions {
  // Commit-set storage scan for missed commits (§4.2).
  Duration scan_interval = std::chrono::seconds(5);
  // Records younger than this are skipped by the scan: they are normally
  // still in flight to the 1-second gossip, not missing.
  Duration liveness_grace = std::chrono::seconds(3);
  // Global GC round period (§5.2).
  Duration gc_interval = Millis(1000);
  size_t gc_max_per_round = 4096;
  bool enable_global_gc = true;
  // Dedicated deletion cores (the paper used 1 of 4; the default here is 2
  // so deletion keeps pace with multi-node deployments committing >1500
  // txn/s — deletes are charged simulated storage latency like any client).
  size_t delete_pool_threads = 2;
  // Fan-out cap for maintenance I/O on the shared IoExecutor: the liveness
  // scan fetches its candidate commit records with at most this many
  // concurrent lanes, and each global-GC round splits its victims into at
  // most this many delete groups. Maintenance is off the critical path and
  // must not crowd commit/read traffic off the executor, so this stays well
  // below the executor width.
  size_t maintenance_parallelism = 8;

  // Node health poll period and the modelled recovery delays (Figure 10).
  Duration detection_interval = Millis(1000);
  Duration failure_detection_delay = std::chrono::seconds(5);
  Duration container_download_time = std::chrono::seconds(45);
  bool enable_node_replacement = true;

  // Orphaned key versions — written by a node that crashed before its
  // commit record landed (§3.3) — are deleted once they have been visible
  // without a commit record for this long. Must exceed the node transaction
  // timeout so in-flight spilled buffers are never mistaken for orphans.
  Duration orphan_grace = std::chrono::seconds(90);
  // The sweep lists every version key in storage; keep it infrequent.
  Duration orphan_sweep_interval = std::chrono::seconds(30);
};

struct FaultManagerStats {
  std::atomic<uint64_t> records_ingested{0};
  std::atomic<uint64_t> missed_commits_recovered{0};
  std::atomic<uint64_t> txns_deleted{0};
  std::atomic<uint64_t> versions_deleted{0};
  std::atomic<uint64_t> orphans_deleted{0};
  std::atomic<uint64_t> gc_rounds{0};
  std::atomic<uint64_t> failures_detected{0};
  std::atomic<uint64_t> nodes_replaced{0};
};

class FaultManager {
 public:
  // Creates a replacement AFT node; the deployment owns the returned node.
  using NodeFactory = std::function<AftNode*(const std::string& node_id)>;

  FaultManager(Clock& clock, StorageEngine& storage, LoadBalancer& balancer, MulticastBus& bus,
               FaultManagerOptions options = {});
  ~FaultManager();

  FaultManager(const FaultManager&) = delete;
  FaultManager& operator=(const FaultManager&) = delete;

  // Hooks this manager up as the bus's unpruned sink and begins watching
  // `node` for failure.
  void Manage(AftNode* node);

  // Stops watching `node` (planned scale-down): its death must NOT trigger a
  // replacement, and it no longer votes in the global GC.
  void Decommission(AftNode* node);

  void SetNodeFactory(NodeFactory factory);

  // Bus sink: ingest an unpruned committed set (§4.2).
  void IngestCommits(const std::vector<CommitRecordPtr>& records);

  // One storage scan for commit records nobody broadcast; notifies nodes.
  // Returns the number of missed commits recovered.
  size_t RunLivenessScanOnce();

  // One global GC round; returns the number of transactions whose data was
  // deleted from storage.
  size_t RunGlobalGcOnce();

  // One failure-detection pass; kicks off replacement for dead nodes.
  void CheckForFailuresOnce();

  // One sweep for orphaned key versions: version objects in storage whose
  // writer has no commit record anywhere after `orphan_grace`. These are the
  // spilled/partial writes of crashed transactions (§3.3) — invisible but
  // occupying storage. Returns the number of versions deleted.
  size_t RunOrphanSweepOnce();

  // Background driver multiplexing all three duties.
  void Start();
  void Stop();

  const FaultManagerStats& stats() const { return stats_; }
  size_t KnownCommitCount() const { return commits_.size(); }

 private:
  void Loop();
  void ReplaceNode(const std::string& failed_id);
  std::vector<AftNode*> ManagedNodes() const;

  Clock& clock_;
  StorageEngine& storage_;
  LoadBalancer& balancer_;
  MulticastBus& bus_;
  const FaultManagerOptions options_;

  // Complete (unpruned) view of committed transactions.
  CommitSetCache commits_;
  KeyVersionIndex index_;

  // Writer UUIDs of every commit record ever seen (including ones whose
  // data the GC already deleted) — the orphan sweep's whitelist.
  mutable Mutex known_writers_mu_;
  std::unordered_set<Uuid> known_writers_ GUARDED_BY(known_writers_mu_);
  // Orphan candidates: version storage key -> when first seen.
  std::unordered_map<std::string, TimePoint> orphan_candidates_ GUARDED_BY(known_writers_mu_);

  mutable Mutex nodes_mu_;
  std::vector<AftNode*> managed_nodes_ GUARDED_BY(nodes_mu_);
  std::unordered_set<std::string> handled_failures_ GUARDED_BY(nodes_mu_);
  NodeFactory factory_ GUARDED_BY(nodes_mu_);

  ThreadPool delete_pool_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  Mutex replacements_mu_;
  std::vector<std::thread> replacement_threads_ GUARDED_BY(replacements_mu_);

  FaultManagerStats stats_;

  // Wall-clock duration of each maintenance sweep
  // (aft_fm_sweep_duration_ms{sweep=liveness|gc|orphan}).
  struct Instruments {
    obs::Histogram* liveness_scan_ms = nullptr;
    obs::Histogram* gc_round_ms = nullptr;
    obs::Histogram* orphan_sweep_ms = nullptr;
  };
  Instruments metrics_;
  // Callback counters wrapping `stats_` (read at exposition time).
  std::vector<obs::ScopedMetricCallback> metric_callbacks_;
};

}  // namespace aft

#endif  // SRC_CLUSTER_FAULT_MANAGER_H_
