// The storage substrate the original RAMP protocols assume (Bailis et al.,
// SIGMOD'14 — reference [4] of the AFT paper): LINEARIZABLE, UNREPLICATED,
// SHARD-PARTITIONED storage where each shard is the sole source of truth for
// its keys and participates in the protocol (it stores prepared-but-
// uncommitted versions and serves version-specific reads). This is exactly
// the design AFT relaxes (§2.2): it limits read locality/scalability and is
// incompatible with commodity shared cloud storage.
//
// Shards speak the RAMP server protocol:
//   Prepare(version)            — durably stage a version (timestamp-keyed).
//   Commit(key, ts)             — advance the key's lastCommit to ts.
//   GetLatest(key)              — newest committed version + metadata.
//   GetVersion(key, ts)         — a SPECIFIC version (RAMP-Fast round 2);
//                                 prepared-but-uncommitted versions are
//                                 legal to return here, by design.
//
// Multi-shard rounds execute in parallel in RAMP; `ParallelRound` models
// that by charging the slowest sampled latency of the round once.

#ifndef SRC_RAMP_RAMP_STORE_H_
#define SRC_RAMP_RAMP_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/latency.h"
#include "src/common/mutex.h"
#include "src/common/status.h"

namespace aft {

// One RAMP version: value + the transaction timestamp + per-algorithm
// metadata: RAMP-Fast attaches the full write set; RAMP-Hybrid a Bloom
// filter of it; RAMP-Small nothing but the timestamp.
struct RampVersion {
  int64_t timestamp = 0;  // 0 == the bottom version (key absent).
  std::vector<std::string> write_set;  // RAMP-Fast.
  std::string bloom;                   // RAMP-Hybrid (serialized BloomFilter).
  std::string value;

  bool IsBottom() const { return timestamp == 0; }
};

struct RampStoreOptions {
  size_t num_shards = 4;
  // Per-operation latency of one shard round trip (linearizable stores are
  // Dynamo-class KVs in the RAMP evaluation).
  LatencyModel op_latency = LatencyModel(4.0, 0.3, 1.2, 0.02);
  // Versions retained per key (older prepared/committed versions are pruned;
  // RAMP's own GC keeps a bounded history).
  size_t max_versions_per_key = 16;
};

class RampStore {
 public:
  RampStore(Clock& clock, RampStoreOptions options = {});

  size_t ShardOf(const std::string& key) const;
  size_t num_shards() const { return shards_.size(); }

  // ---- Server protocol --------------------------------------------------------
  // State transitions only: LATENCY IS NOT CHARGED HERE. RAMP rounds are
  // parallel fan-outs, so the client charges each round once via
  // ChargeParallelRound (a single op is ChargeParallelRound(1)).
  Status Prepare(const RampVersion& version, const std::string& key);
  Status Commit(const std::string& key, int64_t timestamp);
  // Newest COMMITTED version (bottom if none).
  Result<RampVersion> GetLatest(const std::string& key);
  // Specific version by timestamp; may legally return a prepared version.
  Result<RampVersion> GetVersion(const std::string& key, int64_t timestamp);
  // RAMP-Small / RAMP-Hybrid round 2: the newest version of `key` whose
  // timestamp is in `ts_set` (bottom if none matches). Tolerates Bloom
  // false positives by construction.
  Result<RampVersion> GetByTimestampSet(const std::string& key,
                                        const std::vector<int64_t>& ts_set);

  // ---- Parallel round helpers --------------------------------------------------
  // Charges the latency of `ops_in_round` parallel shard operations: one
  // sample per op, sleep the maximum. Returns immediately for 0 ops.
  void ChargeParallelRound(size_t ops_in_round);

  // Like ChargeParallelRound, but APPLIES each op at its own sampled arrival
  // time (ops land on different shards at different instants — exactly the
  // window in which RAMP readers observe partial commits and must repair).
  // `apply_op` is invoked once per op index, in arrival order.
  void StaggeredRound(size_t ops_in_round, const std::function<void(size_t)>& apply_op);

  // Zero-latency structural queries for tests.
  size_t VersionCountForTest(const std::string& key) const;

 private:
  struct KeyState {
    // timestamp -> version (prepared and committed both live here).
    std::map<int64_t, RampVersion> versions;
    int64_t last_commit = 0;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, KeyState> keys GUARDED_BY(mu);
  };

  Shard& ShardForKey(const std::string& key);
  const Shard& ShardForKey(const std::string& key) const;

  Clock& clock_;
  const RampStoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace aft

#endif  // SRC_RAMP_RAMP_STORE_H_
