#include "src/ramp/ramp_client.h"

#include <algorithm>
#include <atomic>

#include "src/common/bloom.h"

namespace aft {
namespace {

// Two staggered parallel rounds: PREPARE every version (built by
// `make_version`), then COMMIT every key.
Status TwoRoundWrite(RampStore& store, const std::vector<std::pair<std::string, std::string>>& ordered,
                     int64_t timestamp,
                     const std::function<RampVersion(const std::string& key,
                                                     const std::string& value)>& make_version) {
  Status status = Status::Ok();
  store.StaggeredRound(ordered.size(), [&](size_t i) {
    Status prepared = store.Prepare(make_version(ordered[i].first, ordered[i].second),
                                    ordered[i].first);
    if (!prepared.ok()) {
      status = prepared;
    }
  });
  AFT_RETURN_IF_ERROR(status);
  store.StaggeredRound(ordered.size(), [&](size_t i) {
    Status committed = store.Commit(ordered[i].first, timestamp);
    if (!committed.ok()) {
      status = committed;
    }
  });
  return status;
}

}  // namespace

int64_t NextRampTimestamp() {
  static std::atomic<int64_t> global_timestamp{1};
  return global_timestamp.fetch_add(1, std::memory_order_relaxed);
}

RampFastClient::RampFastClient(RampStore& store) : store_(store) {}

Result<int64_t> RampFastClient::WriteTransaction(
    const std::map<std::string, std::string>& writes) {
  if (writes.empty()) {
    return Status::InvalidArgument("empty write transaction");
  }
  stats_.write_txns.fetch_add(1, std::memory_order_relaxed);
  const int64_t timestamp = NextRampTimestamp();
  std::vector<std::string> write_set;
  write_set.reserve(writes.size());
  for (const auto& [key, value] : writes) {
    write_set.push_back(key);
  }
  const std::vector<std::pair<std::string, std::string>> ordered(writes.begin(), writes.end());
  AFT_RETURN_IF_ERROR(TwoRoundWrite(store_, ordered, timestamp,
                                    [&](const std::string&, const std::string& value) {
                                      return RampVersion{timestamp, write_set, "", value};
                                    }));
  return timestamp;
}

Result<std::vector<RampVersion>> RampFastClient::ReadTransaction(
    const std::vector<std::string>& keys) {
  stats_.read_txns.fetch_add(1, std::memory_order_relaxed);
  // Round 1 (parallel): GetLatest for the declared read set.
  store_.ChargeParallelRound(keys.size());
  std::vector<RampVersion> result;
  result.reserve(keys.size());
  for (const std::string& key : keys) {
    AFT_ASSIGN_OR_RETURN(RampVersion version, store_.GetLatest(key));
    result.push_back(std::move(version));
  }
  // Compute v_latest: for each declared key, the highest timestamp among the
  // observed versions whose write sets include it (RAMP-F lines 15-19).
  std::vector<int64_t> required(keys.size(), 0);
  for (const RampVersion& observed : result) {
    if (observed.IsBottom()) {
      continue;
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      const auto& ws = observed.write_set;
      if (std::find(ws.begin(), ws.end(), keys[i]) != ws.end()) {
        required[i] = std::max(required[i], observed.timestamp);
      }
    }
  }
  // Round 2 (parallel): fetch the EXACT version for every key whose observed
  // version is older than required. Prepared-but-uncommitted versions are
  // valid here — their writer's commit is concurrent, and returning them is
  // what makes the read set atomic.
  std::vector<size_t> repairs;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (required[i] > result[i].timestamp) {
      repairs.push_back(i);
    }
  }
  store_.ChargeParallelRound(repairs.size());
  for (size_t index : repairs) {
    AFT_ASSIGN_OR_RETURN(RampVersion version, store_.GetVersion(keys[index], required[index]));
    result[index] = std::move(version);
    stats_.second_round_fetches.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

// ---- RAMP-Small ---------------------------------------------------------------

RampSmallClient::RampSmallClient(RampStore& store) : store_(store) {}

Result<int64_t> RampSmallClient::WriteTransaction(
    const std::map<std::string, std::string>& writes) {
  if (writes.empty()) {
    return Status::InvalidArgument("empty write transaction");
  }
  stats_.write_txns.fetch_add(1, std::memory_order_relaxed);
  const int64_t timestamp = NextRampTimestamp();
  const std::vector<std::pair<std::string, std::string>> ordered(writes.begin(), writes.end());
  // RAMP-Small versions carry no metadata beyond the timestamp.
  AFT_RETURN_IF_ERROR(TwoRoundWrite(store_, ordered, timestamp,
                                    [&](const std::string&, const std::string& value) {
                                      return RampVersion{timestamp, {}, "", value};
                                    }));
  return timestamp;
}

Result<std::vector<RampVersion>> RampSmallClient::ReadTransaction(
    const std::vector<std::string>& keys) {
  stats_.read_txns.fetch_add(1, std::memory_order_relaxed);
  // Round 1 (parallel): collect the latest COMMITTED timestamp per key.
  store_.ChargeParallelRound(keys.size());
  std::vector<int64_t> ts_set;
  ts_set.reserve(keys.size());
  for (const std::string& key : keys) {
    AFT_ASSIGN_OR_RETURN(RampVersion latest, store_.GetLatest(key));
    if (!latest.IsBottom()) {
      ts_set.push_back(latest.timestamp);
    }
  }
  // Round 2 (parallel, ALWAYS): fetch, per key, the newest version whose
  // timestamp is in the observed set — sibling versions prepared by the
  // same transactions are matched by timestamp alone.
  store_.ChargeParallelRound(keys.size());
  std::vector<RampVersion> result;
  result.reserve(keys.size());
  for (const std::string& key : keys) {
    AFT_ASSIGN_OR_RETURN(RampVersion version, store_.GetByTimestampSet(key, ts_set));
    stats_.second_round_fetches.fetch_add(1, std::memory_order_relaxed);
    result.push_back(std::move(version));
  }
  return result;
}

// ---- RAMP-Hybrid --------------------------------------------------------------

RampHybridClient::RampHybridClient(RampStore& store, size_t bloom_bits, int bloom_hashes)
    : store_(store), bloom_bits_(bloom_bits), bloom_hashes_(bloom_hashes) {}

Result<int64_t> RampHybridClient::WriteTransaction(
    const std::map<std::string, std::string>& writes) {
  if (writes.empty()) {
    return Status::InvalidArgument("empty write transaction");
  }
  stats_.write_txns.fetch_add(1, std::memory_order_relaxed);
  const int64_t timestamp = NextRampTimestamp();
  BloomFilter filter(bloom_bits_, bloom_hashes_);
  for (const auto& [key, value] : writes) {
    filter.Add(key);
  }
  const std::string bloom = filter.Serialize();
  const std::vector<std::pair<std::string, std::string>> ordered(writes.begin(), writes.end());
  AFT_RETURN_IF_ERROR(TwoRoundWrite(store_, ordered, timestamp,
                                    [&](const std::string&, const std::string& value) {
                                      return RampVersion{timestamp, {}, bloom, value};
                                    }));
  return timestamp;
}

Result<std::vector<RampVersion>> RampHybridClient::ReadTransaction(
    const std::vector<std::string>& keys) {
  stats_.read_txns.fetch_add(1, std::memory_order_relaxed);
  // Round 1 (parallel): GetLatest for the declared read set.
  store_.ChargeParallelRound(keys.size());
  std::vector<RampVersion> result;
  result.reserve(keys.size());
  for (const std::string& key : keys) {
    AFT_ASSIGN_OR_RETURN(RampVersion version, store_.GetLatest(key));
    result.push_back(std::move(version));
  }
  // Sibling detection via Bloom membership: key i may have a missing sibling
  // if some OTHER observed version is newer and its filter (possibly
  // falsely) claims it wrote key i.
  std::vector<int64_t> ts_set;
  std::vector<size_t> flagged;
  for (const RampVersion& observed : result) {
    if (!observed.IsBottom()) {
      ts_set.push_back(observed.timestamp);
    }
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    bool needs_second_round = false;
    for (const RampVersion& observed : result) {
      if (observed.IsBottom() || observed.timestamp <= result[i].timestamp ||
          observed.bloom.empty()) {
        continue;
      }
      bool ok = false;
      BloomFilter filter = BloomFilter::Deserialize(observed.bloom, &ok);
      if (ok && filter.MightContain(keys[i])) {
        needs_second_round = true;
        break;
      }
    }
    if (needs_second_round) {
      flagged.push_back(i);
    }
  }
  // Round 2 (parallel, flagged keys only): RAMP-Small style timestamp-set
  // fetch — naturally tolerant of Bloom false positives (no matching
  // version simply leaves the round-1 result in place).
  store_.ChargeParallelRound(flagged.size());
  for (size_t index : flagged) {
    AFT_ASSIGN_OR_RETURN(RampVersion version, store_.GetByTimestampSet(keys[index], ts_set));
    if (!version.IsBottom() && version.timestamp > result[index].timestamp) {
      result[index] = std::move(version);
    }
    stats_.second_round_fetches.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

}  // namespace aft
