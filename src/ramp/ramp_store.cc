#include "src/ramp/ramp_store.h"

#include <algorithm>
#include <functional>

#include "src/storage/sim_engine_base.h"

namespace aft {

RampStore::RampStore(Clock& clock, RampStoreOptions options) : clock_(clock), options_(options) {
  const size_t n = std::max<size_t>(options_.num_shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

size_t RampStore::ShardOf(const std::string& key) const {
  return std::hash<std::string>{}(key) % shards_.size();
}

RampStore::Shard& RampStore::ShardForKey(const std::string& key) {
  return *shards_[ShardOf(key)];
}

const RampStore::Shard& RampStore::ShardForKey(const std::string& key) const {
  return *shards_[ShardOf(key)];
}

void RampStore::ChargeParallelRound(size_t ops_in_round) {
  if (ops_in_round == 0) {
    return;
  }
  // Parallel fan-out: the round costs the slowest of its ops.
  Duration max_latency = Duration::zero();
  for (size_t i = 0; i < ops_in_round; ++i) {
    max_latency = std::max(max_latency, options_.op_latency.Sample(ThreadLocalRng()));
  }
  if (max_latency > Duration::zero()) {
    clock_.SleepFor(max_latency);
  }
}

void RampStore::StaggeredRound(size_t ops_in_round,
                               const std::function<void(size_t)>& apply_op) {
  if (ops_in_round == 0) {
    return;
  }
  std::vector<std::pair<Duration, size_t>> arrivals;
  arrivals.reserve(ops_in_round);
  for (size_t i = 0; i < ops_in_round; ++i) {
    arrivals.emplace_back(options_.op_latency.Sample(ThreadLocalRng()), i);
  }
  std::sort(arrivals.begin(), arrivals.end());
  Duration elapsed = Duration::zero();
  for (const auto& [arrival, index] : arrivals) {
    if (arrival > elapsed) {
      clock_.SleepFor(arrival - elapsed);
      elapsed = arrival;
    }
    apply_op(index);
  }
}

Status RampStore::Prepare(const RampVersion& version, const std::string& key) {
  Shard& shard = ShardForKey(key);
  MutexLock lock(shard.mu);
  KeyState& state = shard.keys[key];
  state.versions[version.timestamp] = version;
  // Bounded history: prune the oldest versions below last_commit.
  while (state.versions.size() > options_.max_versions_per_key) {
    auto oldest = state.versions.begin();
    if (oldest->first >= state.last_commit) {
      break;  // Never prune the committed frontier or newer.
    }
    state.versions.erase(oldest);
  }
  return Status::Ok();
}

Status RampStore::Commit(const std::string& key, int64_t timestamp) {
  Shard& shard = ShardForKey(key);
  MutexLock lock(shard.mu);
  KeyState& state = shard.keys[key];
  state.last_commit = std::max(state.last_commit, timestamp);
  return Status::Ok();
}

Result<RampVersion> RampStore::GetLatest(const std::string& key) {
  const Shard& shard = ShardForKey(key);
  MutexLock lock(shard.mu);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end() || it->second.last_commit == 0) {
    return RampVersion{};  // Bottom.
  }
  auto version_it = it->second.versions.find(it->second.last_commit);
  if (version_it == it->second.versions.end()) {
    return Status::Internal("lastCommit points at a pruned version");
  }
  return version_it->second;
}

Result<RampVersion> RampStore::GetVersion(const std::string& key, int64_t timestamp) {
  const Shard& shard = ShardForKey(key);
  MutexLock lock(shard.mu);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end()) {
    return Status::NotFound(key);
  }
  auto version_it = it->second.versions.find(timestamp);
  if (version_it == it->second.versions.end()) {
    return Status::NotFound(key + "@" + std::to_string(timestamp));
  }
  return version_it->second;
}

Result<RampVersion> RampStore::GetByTimestampSet(const std::string& key,
                                                 const std::vector<int64_t>& ts_set) {
  const Shard& shard = ShardForKey(key);
  MutexLock lock(shard.mu);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end()) {
    return RampVersion{};
  }
  for (auto rit = it->second.versions.rbegin(); rit != it->second.versions.rend(); ++rit) {
    if (std::find(ts_set.begin(), ts_set.end(), rit->first) != ts_set.end()) {
      return rit->second;
    }
  }
  return RampVersion{};
}

size_t RampStore::VersionCountForTest(const std::string& key) const {
  const Shard& shard = ShardForKey(key);
  MutexLock lock(shard.mu);
  auto it = shard.keys.find(key);
  return it == shard.keys.end() ? 0 : it->second.versions.size();
}

}  // namespace aft
