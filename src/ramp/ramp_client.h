// RAMP-Fast client (Bailis et al., SIGMOD'14 — [4] in the AFT paper).
//
// RAMP-Fast provides read atomic isolation with PRE-DECLARED read and write
// sets over the sharded store in ramp_store.h:
//
//  * Write transactions run two parallel rounds: PREPARE every version (with
//    the full write set as metadata), then COMMIT every key. A reader that
//    observes any committed version can always repair to the cowritten
//    versions because prepared versions are already durable.
//  * Read transactions run one parallel round of GetLatest over the DECLARED
//    read set; the metadata is examined to compute, per key, the highest
//    timestamp among observed cowrites (v_latest), and a second parallel
//    round fetches the exact missing versions. Unlike AFT, RAMP *repairs*
//    mismatches forward — it never returns stale data relative to what it
//    saw, and it never aborts — but it requires the full read set up front
//    and shard-resident protocol logic (the two assumptions AFT drops, §2.2).
//
// This implementation exists as the paper's conceptual baseline: the
// ramp_comparison bench quantifies the §3.6 trade-off (AFT's interactive
// reads can be staler and occasionally abort; RAMP's one-shot reads are
// fresher but pre-declared and storage-invasive).

#ifndef SRC_RAMP_RAMP_CLIENT_H_
#define SRC_RAMP_RAMP_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ramp/ramp_store.h"

namespace aft {

struct RampClientStats {
  std::atomic<uint64_t> write_txns{0};
  std::atomic<uint64_t> read_txns{0};
  std::atomic<uint64_t> second_round_fetches{0};  // Versions repaired in round 2.
};

// Shared timestamp source for all RAMP client variants: unique per
// client-transaction and totally ordered (a real client combines a local
// clock and a client id; a process-wide counter gives the same uniqueness
// in-process).
int64_t NextRampTimestamp();

class RampFastClient {
 public:
  explicit RampFastClient(RampStore& store);

  // Atomically installs `writes` (two parallel rounds). Returns the
  // transaction timestamp.
  Result<int64_t> WriteTransaction(const std::map<std::string, std::string>& writes);

  // Reads the DECLARED `keys` as an atomic set (1-2 parallel rounds). The
  // result vector is aligned with `keys`; bottom versions have timestamp 0.
  Result<std::vector<RampVersion>> ReadTransaction(const std::vector<std::string>& keys);

  const RampClientStats& stats() const { return stats_; }

 private:
  RampStore& store_;
  RampClientStats stats_;
};

// RAMP-Small: constant metadata (timestamps only). Reads ALWAYS take two
// rounds: round 1 collects the latest committed timestamp of every declared
// key; round 2 asks each shard for the newest version whose timestamp is in
// that set. Cheapest metadata, always 2 RTT.
class RampSmallClient {
 public:
  explicit RampSmallClient(RampStore& store);

  Result<int64_t> WriteTransaction(const std::map<std::string, std::string>& writes);
  Result<std::vector<RampVersion>> ReadTransaction(const std::vector<std::string>& keys);

  const RampClientStats& stats() const { return stats_; }

 private:
  RampStore& store_;
  RampClientStats stats_;
};

// RAMP-Hybrid: versions carry a BLOOM FILTER of the write set. Reads detect
// potential siblings via filter membership (false positives possible, false
// negatives impossible) and fall back to a RAMP-Small style timestamp-set
// round for the flagged keys only. Metadata between Small and Fast; second
// rounds only when (possibly spuriously) needed.
class RampHybridClient {
 public:
  // `bloom_bits`/`bloom_hashes` size the per-version filter.
  explicit RampHybridClient(RampStore& store, size_t bloom_bits = 256, int bloom_hashes = 4);

  Result<int64_t> WriteTransaction(const std::map<std::string, std::string>& writes);
  Result<std::vector<RampVersion>> ReadTransaction(const std::vector<std::string>& keys);

  const RampClientStats& stats() const { return stats_; }

 private:
  RampStore& store_;
  const size_t bloom_bits_;
  const int bloom_hashes_;
  RampClientStats stats_;
};

}  // namespace aft

#endif  // SRC_RAMP_RAMP_CLIENT_H_
