#include "src/storage/versioned_map.h"

#include <algorithm>
#include <functional>

namespace aft {

VersionedMap::VersionedMap(size_t num_shards, size_t history_depth)
    : history_depth_(std::max<size_t>(history_depth, 1)) {
  const size_t n = std::max<size_t>(num_shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

VersionedMap::Shard& VersionedMap::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

const VersionedMap::Shard& VersionedMap::ShardFor(const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

void VersionedMap::Put(std::string key, std::string value, TimePoint now) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto& history = shard.data[std::move(key)];
  history.push_back(Entry{std::move(value), now});
  while (history.size() > history_depth_) {
    history.erase(history.begin());
  }
}

std::optional<std::string> VersionedMap::Get(const std::string& key, TimePoint as_of,
                                             bool* was_stale) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.data.find(key);
  if (it == shard.data.end() || it->second.empty()) {
    return std::nullopt;
  }
  const auto& history = it->second;
  // Newest entry with write_time <= as_of. History is append-ordered.
  const Entry* chosen = nullptr;
  for (auto rit = history.rbegin(); rit != history.rend(); ++rit) {
    if (rit->write_time <= as_of) {
      chosen = &*rit;
      break;
    }
  }
  if (chosen == nullptr) {
    // Key created entirely after as_of: invisible to this (stale) read.
    if (was_stale != nullptr) {
      *was_stale = true;
    }
    return std::nullopt;
  }
  if (was_stale != nullptr) {
    *was_stale = (chosen != &history.back());
  }
  return chosen->value;  // May be nullopt if the chosen entry is a tombstone.
}

std::optional<std::string> VersionedMap::GetLatest(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.data.find(key);
  if (it == shard.data.end() || it->second.empty()) {
    return std::nullopt;
  }
  return it->second.back().value;
}

void VersionedMap::Delete(const std::string& key, TimePoint now) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.data.find(key);
  if (it == shard.data.end()) {
    return;
  }
  it->second.push_back(Entry{std::nullopt, now});
  while (it->second.size() > history_depth_) {
    it->second.erase(it->second.begin());
  }
  // If the whole history is tombstones we can drop the key eagerly; this
  // keeps List() and memory usage honest for GC-heavy workloads.
  const bool all_tombstones = std::all_of(it->second.begin(), it->second.end(),
                                          [](const Entry& e) { return !e.value.has_value(); });
  if (all_tombstones) {
    shard.data.erase(it);
  }
}

std::vector<std::string> VersionedMap::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    auto it = shard->data.lower_bound(prefix);
    for (; it != shard->data.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) {
        break;
      }
      if (!it->second.empty() && it->second.back().value.has_value()) {
        out.push_back(it->first);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool VersionedMap::HasHistory(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.data.find(key);
  return it != shard.data.end() && it->second.size() > 1;
}

size_t VersionedMap::ApproximateKeyCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->data.size();
  }
  return total;
}

}  // namespace aft
