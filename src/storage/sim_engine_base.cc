#include "src/storage/sim_engine_base.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>

#include "src/common/histogram.h"

#include "src/common/io_executor.h"

namespace aft {

Rng& ThreadLocalRng() {
  static std::atomic<uint64_t> counter{0x2545f4914f6cdd1dULL};
  thread_local Rng rng(counter.fetch_add(0x9e3779b97f4a7c15ULL));
  return rng;
}

Result<std::string> MaintenanceRead(StorageEngine& storage, const std::string& key) {
  if (auto* sim = dynamic_cast<SimEngineBase*>(&storage); sim != nullptr) {
    auto value = sim->PeekLatest(key);
    if (!value.has_value()) {
      return Status::NotFound(key);
    }
    return std::move(*value);
  }
  return storage.Get(key);
}

SimEngineBase::SimEngineBase(std::string name, Clock& clock, EngineLatencyProfile profile,
                             StalenessModel staleness, size_t map_shards)
    : clock_(clock),
      profile_(profile),
      staleness_(staleness),
      map_(map_shards),
      name_(std::move(name)) {
  auto& reg = obs::MetricsRegistry::Global();
  const obs::MetricLabels labels = {{"engine", name_}};
  auto latency = [&](const char* op, const char* help) {
    obs::MetricLabels op_labels = labels;
    op_labels.emplace_back("op", op);
    return reg.GetHistogram("aft_storage_op_latency_ms", help, DefaultLatencyBoundariesMs(),
                            std::move(op_labels));
  };
  op_latency_get_ = latency("get", "Charged storage latency per operation (ms)");
  op_latency_put_ = latency("put", "Charged storage latency per operation (ms)");
  op_latency_delete_ = latency("delete", "Charged storage latency per operation (ms)");
  op_latency_list_ = latency("list", "Charged storage latency per operation (ms)");
  op_latency_batch_ = latency("batch", "Charged storage latency per operation (ms)");
  auto wrap = [&](const char* metric, const char* help, const std::atomic<uint64_t>& cell) {
    metric_callbacks_.push_back(reg.RegisterCallback(
        metric, help, obs::CallbackType::kCounter, labels,
        [&cell] { return static_cast<double>(cell.load(std::memory_order_relaxed)); }));
  };
  wrap("aft_storage_gets_total", "Storage GET operations", counters_.gets);
  wrap("aft_storage_puts_total", "Storage PUT operations", counters_.puts);
  wrap("aft_storage_batch_puts_total", "Storage batched-write API calls", counters_.batch_puts);
  wrap("aft_storage_deletes_total", "Storage DELETE operations", counters_.deletes);
  wrap("aft_storage_lists_total", "Storage LIST operations", counters_.lists);
  wrap("aft_storage_bytes_read_total", "Payload bytes read from storage", counters_.bytes_read);
  wrap("aft_storage_bytes_written_total", "Payload bytes written to storage",
       counters_.bytes_written);
  wrap("aft_storage_api_calls_total", "Storage API requests issued", counters_.api_calls);
  wrap("aft_storage_stale_reads_total", "Reads served from a stale snapshot",
       counters_.stale_reads);
  wrap("aft_storage_transient_faults_total", "Injected transient storage faults",
       counters_.transient_faults);
}

void SimEngineBase::SetMaxConcurrentRequests(size_t n) {
  MutexLock lock(pool_mu_);
  pool_limit_ = n;
  pool_limit_hint_.store(n, std::memory_order_relaxed);
  pool_cv_.NotifyAll();
}

SimEngineBase::ConnectionSlot::ConnectionSlot(SimEngineBase& engine) : engine_(engine) {
  if (engine_.pool_limit_hint_.load(std::memory_order_relaxed) == 0) {
    return;  // Unbounded pool: no slot accounting at all.
  }
  MutexLock lock(engine_.pool_mu_);
  // Re-check under the lock — the limit may have been cleared meanwhile.
  if (engine_.pool_limit_ == 0) {
    return;
  }
  while (engine_.pool_in_use_ >= engine_.pool_limit_ && engine_.pool_limit_ != 0) {
    engine_.pool_cv_.Wait(lock);
  }
  ++engine_.pool_in_use_;
  acquired_ = true;
}

SimEngineBase::ConnectionSlot::~ConnectionSlot() {
  if (!acquired_) {
    return;
  }
  MutexLock lock(engine_.pool_mu_);
  --engine_.pool_in_use_;
  engine_.pool_cv_.NotifyOne();
}

void SimEngineBase::Charge(const LatencyModel& model, uint64_t bytes, obs::Histogram* latency) {
  const Duration d = model.Sample(ThreadLocalRng(), bytes);
  if (latency != nullptr) {
    // Observe the charged (simulated) latency: in a simulation this IS the
    // engine's per-op service time.
    latency->Observe(std::chrono::duration<double, std::milli>(d).count());
  }
  if (d > Duration::zero()) {
    clock_.SleepFor(d);
  }
}

bool SimEngineBase::ShouldFail() {
  const double p = fault_probability_.load(std::memory_order_relaxed);
  if (p > 0 && ThreadLocalRng().Bernoulli(p)) {
    counters_.transient_faults.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

TimePoint SimEngineBase::SampleReadAsOf(const std::string& key) {
  const TimePoint now = clock_.Now();
  if (staleness_.IsConsistent()) {
    return now;
  }
  Rng& rng = ThreadLocalRng();
  if (!rng.Bernoulli(staleness_.stale_probability)) {
    return now;
  }
  if (!map_.HasHistory(key)) {
    // New-key PUTs are read-after-write consistent; only overwrites go stale.
    return now;
  }
  // Exponential staleness with the configured mean.
  const double mean_ms = ToMillis(staleness_.mean_staleness);
  const double sample_ms = -mean_ms * std::log(1.0 - rng.NextDouble());
  const auto staleness = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double, std::milli>(sample_ms));
  counters_.stale_reads.fetch_add(1, std::memory_order_relaxed);
  return now - staleness;
}

Result<std::string> SimEngineBase::Get(const std::string& key) {
  ConnectionSlot slot(*this);
  counters_.gets.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  Charge(profile_.get, 0, op_latency_get_);
  if (ShouldFail()) {
    return Status::Unavailable("transient storage error (injected)");
  }
  const TimePoint as_of = SampleReadAsOf(key);
  std::optional<std::string> value = map_.Get(key, as_of);
  if (!value.has_value()) {
    return Status::NotFound(key);
  }
  counters_.bytes_read.fetch_add(value->size(), std::memory_order_relaxed);
  return std::move(*value);
}

Result<std::string> SimEngineBase::GetRange(const std::string& key, uint64_t offset,
                                            uint64_t length) {
  ConnectionSlot slot(*this);
  counters_.gets.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  Charge(profile_.get, length, op_latency_get_);
  if (ShouldFail()) {
    return Status::Unavailable("transient storage error (injected)");
  }
  const TimePoint as_of = SampleReadAsOf(key);
  std::optional<std::string> value = map_.Get(key, as_of);
  if (!value.has_value()) {
    return Status::NotFound(key);
  }
  if (offset > value->size()) {
    return Status::InvalidArgument("range offset beyond object size");
  }
  counters_.bytes_read.fetch_add(std::min<uint64_t>(length, value->size() - offset),
                                 std::memory_order_relaxed);
  return value->substr(offset, length);
}

Status SimEngineBase::Put(std::string key, std::string value) {
  ConnectionSlot slot(*this);
  counters_.puts.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_written.fetch_add(value.size(), std::memory_order_relaxed);
  Charge(profile_.put, value.size(), op_latency_put_);
  if (ShouldFail()) {
    return Status::Unavailable("transient storage error (injected)");
  }
  map_.Put(std::move(key), std::move(value), clock_.Now());
  return Status::Ok();
}

std::vector<Result<std::string>> SimEngineBase::MultiGet(std::span<const std::string> keys) {
  if (keys.size() <= 1) {
    return StorageEngine::MultiGet(keys);
  }
  // Pre-size the result vector so the concurrent lanes write disjoint
  // elements; the placeholder is unreachable (every index is filled).
  std::vector<Result<std::string>> results(
      keys.size(), Result<std::string>(Status::Internal("multi-get slot never filled")));
  (void)IoExecutor::Shared().ParallelFor(keys.size(), [this, keys, &results](size_t i) {
    results[i] = Get(keys[i]);
    return Status::Ok();
  });
  return results;
}

Status SimEngineBase::PutBatchChunk(std::span<const WriteOp> chunk) {
  ConnectionSlot slot(*this);
  counters_.batch_puts.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  uint64_t bytes = 0;
  for (const WriteOp& op : chunk) {
    bytes += op.value.size();
  }
  counters_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  Charge(profile_.batch_base, bytes, op_latency_batch_);
  for (size_t i = 0; i < chunk.size(); ++i) {
    Charge(profile_.batch_per_item);
  }
  if (ShouldFail()) {
    return Status::Unavailable("transient storage error (injected)");
  }
  const TimePoint now = clock_.Now();
  for (const WriteOp& op : chunk) {
    map_.Put(op.key, op.value, now);
  }
  return Status::Ok();
}

Status SimEngineBase::BatchPut(std::span<const WriteOp> ops) {
  if (ops.empty()) {
    return Status::Ok();
  }
  if (!SupportsBatchPut()) {
    // No batch API: one PUT per key, dispatched concurrently (§3.3 — "all
    // of the transaction's updates are sent to storage in parallel").
    // `Put` stays the dispatch point so engine subclasses (and the fault
    // injection in tests) intercept each op individually.
    return IoExecutor::Shared().ParallelFor(
        ops.size(), [this, ops](size_t i) { return Put(ops[i].key, ops[i].value); });
  }
  // Chunk by the engine's batch limit (25 for DynamoDB's BatchWriteItem)
  // and issue the chunks concurrently.
  const size_t limit = MaxBatchSize();
  const size_t chunks = (ops.size() + limit - 1) / limit;
  return IoExecutor::Shared().ParallelFor(chunks, [this, ops, limit](size_t c) {
    const size_t start = c * limit;
    return PutBatchChunk(ops.subspan(start, std::min(limit, ops.size() - start)));
  });
}

Status SimEngineBase::PutBatchChunkConsume(std::span<WriteOp> chunk) {
  ConnectionSlot slot(*this);
  counters_.batch_puts.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  uint64_t bytes = 0;
  for (const WriteOp& op : chunk) {
    bytes += op.value.size();
  }
  counters_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  Charge(profile_.batch_base, bytes, op_latency_batch_);
  for (size_t i = 0; i < chunk.size(); ++i) {
    Charge(profile_.batch_per_item);
  }
  if (ShouldFail()) {
    return Status::Unavailable("transient storage error (injected)");
  }
  const TimePoint now = clock_.Now();
  for (WriteOp& op : chunk) {
    map_.Put(std::move(op.key), std::move(op.value), now);
  }
  return Status::Ok();
}

Status SimEngineBase::BatchPutConsume(std::span<WriteOp> ops) {
  if (ops.empty()) {
    return Status::Ok();
  }
  if (!SupportsBatchPut()) {
    if (ops.size() == 1) {
      // Inline fast path: the executor runs n==1 inline anyway, so skip its
      // std::function wrapper. Still the virtual Put, so interception holds.
      return Put(std::move(ops[0].key), std::move(ops[0].value));
    }
    return IoExecutor::Shared().ParallelFor(ops.size(), [this, ops](size_t i) {
      return Put(std::move(ops[i].key), std::move(ops[i].value));
    });
  }
  const size_t limit = MaxBatchSize();
  if (ops.size() <= limit) {
    return PutBatchChunkConsume(ops);
  }
  const size_t chunks = (ops.size() + limit - 1) / limit;
  return IoExecutor::Shared().ParallelFor(chunks, [this, ops, limit](size_t c) {
    const size_t start = c * limit;
    return PutBatchChunkConsume(ops.subspan(start, std::min(limit, ops.size() - start)));
  });
}

void SimEngineBase::BatchPutEach(std::span<WriteOp> ops, std::span<Status> statuses) {
  if (ops.empty()) {
    return;
  }
  if (!SupportsBatchPut()) {
    if (ops.size() == 1) {
      statuses[0] = Put(std::move(ops[0].key), std::move(ops[0].value));
      return;
    }
    // Per-key PUTs in parallel, each op's own outcome recorded positionally.
    // The per-op misses live in `statuses`, never the executor's latch.
    (void)IoExecutor::Shared().ParallelFor(ops.size(), [this, ops, statuses](size_t i) {
      statuses[i] = Put(std::move(ops[i].key), std::move(ops[i].value));
      return Status::Ok();
    });
    return;
  }
  const size_t limit = MaxBatchSize();
  if (ops.size() <= limit) {
    const Status chunk_status = PutBatchChunkConsume(ops);
    for (Status& s : statuses) {
      s = chunk_status;
    }
    return;
  }
  const size_t chunks = (ops.size() + limit - 1) / limit;
  // Chunk outcomes fan out to every op in the chunk: a failed batch API
  // call fails all of its items, exactly like BatchWriteItem.
  (void)IoExecutor::Shared().ParallelFor(chunks, [this, ops, statuses, limit](size_t c) {
    const size_t start = c * limit;
    const size_t n = std::min(limit, ops.size() - start);
    const Status chunk_status = PutBatchChunkConsume(ops.subspan(start, n));
    for (size_t i = start; i < start + n; ++i) {
      statuses[i] = chunk_status;
    }
    return Status::Ok();
  });
}

Status SimEngineBase::Delete(const std::string& key) {
  ConnectionSlot slot(*this);
  counters_.deletes.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  Charge(profile_.erase, 0, op_latency_delete_);
  if (ShouldFail()) {
    return Status::Unavailable("transient storage error (injected)");
  }
  map_.Delete(key, clock_.Now());
  return Status::Ok();
}

Status SimEngineBase::DeleteBatchChunk(std::span<const std::string> chunk) {
  ConnectionSlot slot(*this);
  counters_.deletes.fetch_add(chunk.size(), std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  Charge(profile_.batch_base, 0, op_latency_batch_);
  const TimePoint now = clock_.Now();
  for (const std::string& key : chunk) {
    map_.Delete(key, now);
  }
  return Status::Ok();
}

Status SimEngineBase::BatchDelete(std::span<const std::string> keys) {
  if (keys.empty()) {
    return Status::Ok();
  }
  if (!SupportsBatchPut()) {
    return IoExecutor::Shared().ParallelFor(keys.size(),
                                            [this, keys](size_t i) { return Delete(keys[i]); });
  }
  const size_t limit = MaxBatchSize();
  const size_t chunks = (keys.size() + limit - 1) / limit;
  return IoExecutor::Shared().ParallelFor(chunks, [this, keys, limit](size_t c) {
    const size_t start = c * limit;
    return DeleteBatchChunk(keys.subspan(start, std::min(limit, keys.size() - start)));
  });
}

Result<std::vector<std::string>> SimEngineBase::List(const std::string& prefix) {
  ConnectionSlot slot(*this);
  counters_.lists.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  Charge(profile_.list, 0, op_latency_list_);
  return map_.List(prefix);
}

}  // namespace aft
