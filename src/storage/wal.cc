#include "src/storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/crc32.h"
#include "src/common/logging.h"

namespace aft {
namespace wal {

namespace {

// Safely below IOV_MAX on every platform we run on; writev windows this size.
constexpr size_t kIovWindow = 512;

bool ParseDigits(std::string_view s, uint32_t* out) {
  if (s.empty() || s.size() > 9) {
    return false;
  }
  uint32_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  *out = value;
  return true;
}

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::string WalFileName(uint64_t file_key) {
  char buf[48];
  const uint32_t seq = FileSeq(file_key);
  const uint32_t gen = FileGen(file_key);
  if (gen == 0) {
    std::snprintf(buf, sizeof(buf), "wal-%06u.log", seq);
  } else {
    std::snprintf(buf, sizeof(buf), "wal-%06u.c%u.log", seq, gen);
  }
  return buf;
}

std::string WalFilePath(const std::string& dir, uint64_t file_key) {
  return dir + "/" + WalFileName(file_key);
}

bool ParseWalFileName(std::string_view name, uint64_t* file_key) {
  if (!name.starts_with("wal-") || !name.ends_with(".log")) {
    return false;
  }
  std::string_view body = name.substr(4, name.size() - 8);
  uint32_t gen = 0;
  const size_t dot = body.find('.');
  if (dot != std::string_view::npos) {
    std::string_view gen_part = body.substr(dot + 1);
    if (gen_part.size() < 2 || gen_part[0] != 'c' || !ParseDigits(gen_part.substr(1), &gen) ||
        gen == 0 || gen > kMaxCompactionGen) {
      return false;
    }
    body = body.substr(0, dot);
  }
  uint32_t seq = 0;
  if (!ParseDigits(body, &seq)) {
    return false;
  }
  *file_key = MakeFileKey(seq, gen);
  return true;
}

bool DecodeRecordPayload(std::string_view payload, RecordView* out) {
  BinaryReader reader(payload);
  uint8_t op = 0;
  if (!reader.GetU8(&op)) {
    return false;
  }
  if (op != static_cast<uint8_t>(RecordOp::kPut) && op != static_cast<uint8_t>(RecordOp::kDelete)) {
    return false;
  }
  std::string_view key;
  std::string_view value;
  if (!reader.GetStringView(&key)) {
    return false;
  }
  if (op == static_cast<uint8_t>(RecordOp::kPut) && !reader.GetStringView(&value)) {
    return false;
  }
  if (!reader.AtEnd()) {
    return false;
  }
  out->op = static_cast<RecordOp>(op);
  out->key = key;
  out->value = value;
  return true;
}

namespace {

// CRC of a record payload computed from its source fields (never from the
// encoded bytes — the hot path does not have them contiguously).
uint32_t RecordPayloadCrc(RecordOp op, std::string_view key, std::string_view value) {
  uint32_t crc = Crc32Begin();
  const uint8_t opb = static_cast<uint8_t>(op);
  crc = Crc32Feed(crc, &opb, 1);
  const uint32_t klen = static_cast<uint32_t>(key.size());
  crc = Crc32Feed(crc, &klen, 4);
  crc = Crc32Feed(crc, key.data(), key.size());
  if (op == RecordOp::kPut) {
    const uint32_t vlen = static_cast<uint32_t>(value.size());
    crc = Crc32Feed(crc, &vlen, 4);
    crc = Crc32Feed(crc, value.data(), value.size());
  }
  return Crc32End(crc);
}

// 64-bit on purpose: a key+value totaling more than 4 GiB must arrive at the
// kMaxRecordPayload check un-wrapped. Callers validate against the limit
// before narrowing to the 32-bit wire field.
uint64_t RecordPayloadLen(RecordOp op, std::string_view key, std::string_view value) {
  return 1ull + 4 + key.size() + (op == RecordOp::kPut ? 4 + value.size() : 0);
}

}  // namespace

void AppendRecordTo(BinaryWriter& out, RecordOp op, std::string_view key, std::string_view value) {
  // Callers only re-encode records that already passed AppendBatch's
  // kMaxRecordPayload check, so the narrowing below cannot wrap.
  out.PutU32(static_cast<uint32_t>(RecordPayloadLen(op, key, value)));
  out.PutU32(RecordPayloadCrc(op, key, value));
  out.PutU8(static_cast<uint8_t>(op));
  out.PutString(key);
  if (op == RecordOp::kPut) {
    out.PutString(value);
  }
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Unavailable(ErrnoMessage("open wal dir for fsync"));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable(ErrnoMessage("fsync wal dir"));
  }
  return Status::Ok();
}

}  // namespace wal

namespace {

// Walks a SegmentBuffer's spans front to back, emitting byte ranges as
// iovecs. Ranges must be requested in buffer order (which AppendBatch's
// second pass does), so the whole batch is one O(spans) walk.
class SpanCursor {
 public:
  explicit SpanCursor(const SegmentBuffer& buf) : buf_(buf) {}

  void Emit(size_t len, std::vector<struct iovec>& iov) {
    while (len > 0) {
      const auto [data, span_len] = buf_.Span(span_);
      const size_t avail = span_len - span_off_;
      if (avail == 0) {
        ++span_;
        span_off_ = 0;
        continue;
      }
      const size_t n = len < avail ? len : avail;
      iov.push_back({const_cast<char*>(data) + span_off_, n});
      span_off_ += n;
      len -= n;
    }
  }

 private:
  const SegmentBuffer& buf_;
  size_t span_ = 0;
  size_t span_off_ = 0;
};

}  // namespace

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options), meta_(options.pool) {}

Result<std::unique_ptr<Wal>> Wal::Open(std::string dir, uint32_t first_seq, WalOptions options) {
  std::unique_ptr<Wal> wal(new Wal(std::move(dir), options));
  {
    MutexLock lock(wal->append_mu_);
    AFT_RETURN_IF_ERROR(wal->OpenActiveLocked(first_seq));
  }
  wal->flusher_ = std::thread(&Wal::FlusherMain, wal.get());
  return wal;
}

Wal::~Wal() {
  {
    MutexLock lock(flush_mu_);
    stop_ = true;
    flush_cv_.NotifyAll();
    durable_cv_.NotifyAll();
  }
  if (flusher_.joinable()) {
    flusher_.join();
  }
  MutexLock lock(append_mu_);
  if (active_fd_ >= 0) {
    if (options_.fdatasync) {
      ::fdatasync(active_fd_);
    }
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

Status Wal::OpenActiveLocked(uint32_t seq) {
  const uint64_t key = wal::MakeFileKey(seq, 0);
  const std::string path = wal::WalFilePath(dir_, key);
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Unavailable("open wal file " + path + ": " + std::strerror(errno));
  }
  // The file NAME must be durable too, or a crash could lose a whole log
  // file whose data blocks were flushed.
  if (options_.fdatasync) {
    const Status dir_status = wal::FsyncDir(dir_);
    if (!dir_status.ok()) {
      ::close(fd);
      ::unlink(path.c_str());
      return dir_status;
    }
  }
  active_fd_ = fd;
  active_key_ = key;
  active_size_ = 0;
  return Status::Ok();
}

Result<uint64_t> Wal::AppendBatch(std::span<const AppendOp> ops, AppendedLoc* locs) {
  if (ops.empty()) {
    MutexLock lock(flush_mu_);
    return appended_lsn_;
  }
  MutexLock lock(append_mu_);
  if (poisoned_) {
    return Status::Unavailable("wal poisoned by an earlier write or fsync error");
  }
  if (active_fd_ < 0) {
    return Status::Internal("wal has no active file");
  }

  // Pass 1: encode per-record metadata (everything but the value bytes) into
  // the reused arena chain, compute headers and index locations.
  meta_.Clear();
  headers_.clear();
  headers_.resize(ops.size() * wal::kRecordHeaderSize);
  uint64_t cursor = active_size_;
  for (size_t i = 0; i < ops.size(); ++i) {
    const AppendOp& op = ops[i];
    const uint64_t payload_len = wal::RecordPayloadLen(op.op, op.key, op.value);
    if (payload_len > wal::kMaxRecordPayload) {
      return Status::InvalidArgument("wal record payload of " + std::to_string(payload_len) +
                                     " bytes exceeds the " +
                                     std::to_string(wal::kMaxRecordPayload) + "-byte limit");
    }
    const uint32_t payload_len32 = static_cast<uint32_t>(payload_len);
    const uint32_t crc = wal::RecordPayloadCrc(op.op, op.key, op.value);
    char* header = headers_.data() + i * wal::kRecordHeaderSize;
    std::memcpy(header, &payload_len32, 4);
    std::memcpy(header + 4, &crc, 4);

    const uint8_t opb = static_cast<uint8_t>(op.op);
    const uint32_t klen = static_cast<uint32_t>(op.key.size());
    meta_.Append(&opb, 1);
    meta_.Append(&klen, 4);
    meta_.Append(op.key.data(), op.key.size());
    if (op.op == wal::RecordOp::kPut) {
      const uint32_t vlen = static_cast<uint32_t>(op.value.size());
      meta_.Append(&vlen, 4);
    }

    locs[i].file_key = active_key_;
    locs[i].value_offset = cursor + wal::ValueOffsetInRecord(op.key.size());
    locs[i].value_len = static_cast<uint32_t>(op.value.size());
    locs[i].record_bytes = wal::kRecordHeaderSize + payload_len;
    cursor += locs[i].record_bytes;
  }

  // Pass 2: scatter-gather header + metadata + caller's value bytes. Spans
  // are stable now (no more Appends until the next batch).
  iov_.clear();
  SpanCursor meta_cursor(meta_);
  for (size_t i = 0; i < ops.size(); ++i) {
    const AppendOp& op = ops[i];
    iov_.push_back({headers_.data() + i * wal::kRecordHeaderSize, wal::kRecordHeaderSize});
    const size_t meta_len =
        1 + 4 + op.key.size() + (op.op == wal::RecordOp::kPut ? 4 : 0);
    meta_cursor.Emit(meta_len, iov_);
    if (op.op == wal::RecordOp::kPut && !op.value.empty()) {
      iov_.push_back({const_cast<char*>(op.value.data()), op.value.size()});
    }
  }

  size_t idx = 0;
  while (idx < iov_.size()) {
    const size_t count = std::min(iov_.size() - idx, wal::kIovWindow);
    const ssize_t n = ::writev(active_fd_, iov_.data() + idx, static_cast<int>(count));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      // A torn record may now sit at the tail; appending past it would make
      // replay silently drop everything after it. Refuse all further appends
      // and let recovery truncate.
      poisoned_ = true;
      return Status::Unavailable(wal::ErrnoMessage("wal writev"));
    }
    size_t advanced = static_cast<size_t>(n);
    while (advanced > 0) {
      struct iovec& v = iov_[idx];
      if (advanced >= v.iov_len) {
        advanced -= v.iov_len;
        ++idx;
      } else {
        v.iov_base = static_cast<char*>(v.iov_base) + advanced;
        v.iov_len -= advanced;
        advanced = 0;
      }
    }
  }

  const uint64_t appended_bytes = cursor - active_size_;
  active_size_ = cursor;
  const uint64_t lsn = lsn_base_ + active_size_;
  {
    MutexLock flock(flush_mu_);
    if (sync_failed_) {
      poisoned_ = true;
      return Status::Unavailable("wal poisoned by an earlier fsync error");
    }
    sync_fd_ = active_fd_;
    appended_lsn_ = lsn;
    stats_.batches += 1;
    stats_.records += ops.size();
    stats_.bytes_appended += appended_bytes;
    if (options_.fdatasync) {
      flush_cv_.NotifyOne();
    } else {
      durable_lsn_ = lsn;
      durable_cv_.NotifyAll();
    }
  }
  if (active_size_ >= options_.max_log_bytes) {
    uint64_t frozen = 0;
    AFT_RETURN_IF_ERROR(RotateLocked(&frozen));
  }
  return lsn;
}

Status Wal::Sync(uint64_t lsn) {
  MutexLock lock(flush_mu_);
  ++sync_waiters_;
  while (durable_lsn_ < lsn && !sync_failed_ && !stop_) {
    flush_cv_.NotifyOne();
    durable_cv_.Wait(lock);
  }
  --sync_waiters_;
  if (durable_lsn_ >= lsn) {
    stats_.sync_waiters_released += 1;
    return Status::Ok();
  }
  return Status::Unavailable("wal sync failed or wal shutting down");
}

Result<uint64_t> Wal::Rotate() {
  MutexLock lock(append_mu_);
  if (poisoned_) {
    return Status::Unavailable("wal poisoned by an earlier write or fsync error");
  }
  if (active_size_ == 0) {
    return static_cast<uint64_t>(0);  // nothing to freeze
  }
  uint64_t frozen = 0;
  AFT_RETURN_IF_ERROR(RotateLocked(&frozen));
  return frozen;
}

Status Wal::RotateLocked(uint64_t* frozen_key) {
  const int old_fd = active_fd_;
  const uint64_t old_key = active_key_;
  const uint64_t frozen_end_lsn = lsn_base_ + active_size_;

  if (options_.fdatasync) {
    int rc;
    do {
      rc = ::fdatasync(old_fd);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      poisoned_ = true;
      return Status::Unavailable(wal::ErrnoMessage("fdatasync on rotation"));
    }
  }
  {
    MutexLock flock(flush_mu_);
    // Never close an fd the flusher is mid-fdatasync on.
    while (fsync_inflight_fd_ == old_fd) {
      fsync_done_cv_.Wait(flock);
    }
    if (durable_lsn_ < frozen_end_lsn) {
      durable_lsn_ = frozen_end_lsn;
    }
    sync_fd_ = -1;  // nothing un-durable remains; next append re-arms
    stats_.rotations += 1;
    durable_cv_.NotifyAll();
  }
  ::close(old_fd);
  active_fd_ = -1;
  lsn_base_ = frozen_end_lsn;

  const Status opened = OpenActiveLocked(wal::FileSeq(old_key) + 1);
  if (!opened.ok()) {
    poisoned_ = true;
    return opened;
  }
  *frozen_key = old_key;
  return Status::Ok();
}

void Wal::FlusherMain() {
  MutexLock lock(flush_mu_);
  while (true) {
    while (!stop_ && (sync_fd_ < 0 || durable_lsn_ >= appended_lsn_ || sync_failed_)) {
      flush_cv_.Wait(lock);
    }
    if (stop_) {
      return;
    }
    // Group-commit accumulation window: let concurrent committers pile onto
    // this fsync before issuing it.
    if (options_.flush_interval > Duration::zero()) {
      flush_cv_.WaitFor(lock, options_.flush_interval);
      if (stop_) {
        return;
      }
      if (sync_fd_ < 0 || durable_lsn_ >= appended_lsn_) {
        continue;  // rotation made everything durable while we slept
      }
    }
    const int fd = sync_fd_;
    const uint64_t target = appended_lsn_;
    fsync_inflight_fd_ = fd;
    lock.Unlock();
    int rc;
    do {
      rc = ::fdatasync(fd);
    } while (rc != 0 && errno == EINTR);
    lock.Lock();
    fsync_inflight_fd_ = -1;
    fsync_done_cv_.NotifyAll();
    stats_.fsyncs += 1;
    if (rc != 0) {
      // fsyncgate rules: after a failed fsync the kernel may have dropped
      // the dirty pages — never report the bytes durable, never retry as if
      // the next fsync could cover them.
      sync_failed_ = true;
      AFT_LOG(Error) << "wal fdatasync failed: " << std::strerror(errno)
                     << "; wal is now append-poisoned";
      durable_cv_.NotifyAll();
      continue;
    }
    if (durable_lsn_ < target) {
      durable_lsn_ = target;
    }
    durable_cv_.NotifyAll();
  }
}

uint64_t Wal::active_file_key() const {
  MutexLock lock(append_mu_);
  return active_key_;
}

uint64_t Wal::active_size() const {
  MutexLock lock(append_mu_);
  return active_size_;
}

Wal::Stats Wal::stats() const {
  MutexLock lock(flush_mu_);
  return stats_;
}

}  // namespace aft
