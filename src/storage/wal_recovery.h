// Crash recovery for the WAL (src/storage/wal.h): scan the log directory in
// replay order and re-apply every intact record.
//
// Recovery rules (docs/PROTOCOLS.md, "Durability contract"):
//
//   1. Files replay in (seq, generation) order; records within a file replay
//      front to back. Later records supersede earlier ones for the same key.
//   2. `*.tmp` staging files (a compaction that crashed before its rename)
//      are deleted before replay — the rename is compaction's commit point.
//   3. The FIRST bad record (bad length, bad CRC, malformed payload, or a
//      torn tail shorter than its header) ends recovery for the whole log:
//      the file is truncated at the bad record's offset and every LATER file
//      is deleted. Nothing after the bad record is replayed.
//
// Rule 3 is what upholds AFT's commit-visibility invariant through a crash.
// The engine appends a transaction's data records strictly before its commit
// record and fsyncs in between (the §3.3 write-ordering barrier), so on disk
// every commit record sits AFTER the data it covers. Replaying only an
// intact prefix therefore can never surface a commit record whose data
// writes were lost. Replaying past a corrupt record could.

#ifndef SRC_STORAGE_WAL_RECOVERY_H_
#define SRC_STORAGE_WAL_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/wal.h"

namespace aft {

struct WalFileInfo {
  uint64_t file_key = 0;
  std::string path;
  uint64_t size = 0;
};

// Lists the directory's WAL files sorted in replay order. Deletes `*.tmp`
// staging files as a side effect (rule 2) and fsyncs the directory when it
// deleted any. Non-WAL file names are ignored.
Result<std::vector<WalFileInfo>> ListWalFiles(const std::string& dir);

// One replayed record. The key/value views alias a buffer reused between
// callbacks — copy anything that must outlive the call.
struct WalRecordEvent {
  uint64_t file_key = 0;
  wal::RecordOp op = wal::RecordOp::kPut;
  std::string_view key;
  std::string_view value;      // empty for deletes
  uint64_t value_offset = 0;   // absolute offset of the value bytes in the file
  uint64_t record_bytes = 0;   // full record size (header included)
};

struct WalReplayStats {
  uint64_t files = 0;    // files replayed (dropped files not included)
  uint64_t records = 0;
  uint64_t bytes = 0;    // record bytes replayed
  bool truncated = false;
  uint64_t truncated_bytes = 0;  // discarded from the file with the bad record
  uint64_t dropped_files = 0;    // later files deleted under rule 3
  uint32_t max_seq = 0;          // highest file seq seen; next active = max_seq + 1
};

// Replays every intact record into `apply`, enforcing the rules above.
// Truncation and deletions are themselves made durable (fdatasync the
// truncated file, fsync the directory) before this returns.
Result<WalReplayStats> ReplayWal(const std::string& dir,
                                 const std::function<void(const WalRecordEvent&)>& apply);

}  // namespace aft

#endif  // SRC_STORAGE_WAL_RECOVERY_H_
