// Durable, WAL-backed local storage engine.
//
// The first non-simulated engine in the tree: a log-structured key/value
// store over a directory of WAL files (src/storage/wal.h), with crash
// recovery (src/storage/wal_recovery.h) and background compaction. It
// implements the full StorageEngine interface, so AFT's commit protocol —
// the §3.3 write-ordering barrier, the IoExecutor parallel flush, the fault
// manager's sweeps — runs over it unchanged.
//
// Data layout:
//   * The WAL is the only on-disk structure; there is no separate value
//     store. Every Put/Delete appends a record; the files are the database.
//   * An in-memory index maps each live key to (file, value offset, length).
//     Reads are one pread(2) of exactly the value bytes; List walks the
//     sorted index under a shared lock.
//   * The index is rebuilt on Open by replaying the log.
//
// Durability contract (docs/PROTOCOLS.md):
//   * A write call returns only after its records are fdatasync-durable
//     (group-committed: concurrent writers share one fsync).
//   * Writes become VISIBLE to concurrent readers when the index is updated,
//     which happens after the writev but before the fsync — the same
//     "acknowledged implies durable, visible may precede acknowledged"
//     semantics AFT assumes of cloud stores (§3.1). A crash can take back a
//     visible-but-unacknowledged write; it can never take back an
//     acknowledged one. Un-acknowledged version records resurface as
//     orphans and are reaped by the fault manager's sweep.
//   * Batches are NOT atomic (BatchWriteItem semantics): each op appends its
//     own record; a mid-batch failure leaves earlier ops applied.
//
// Compaction: deleting or overwriting a key turns its old record into dead
// bytes. When the frozen (non-active) files' dead bytes pass the configured
// ratio, a background pass rewrites their live records into a fresh
// compacted file (named so it REPLAYS in the position of the files it
// replaces — see wal.h on file keys), then atomically renames it in and
// unlinks the inputs. In-flight preads on replaced files stay valid: read
// fds are refcounted and POSIX keeps unlinked-but-open files readable.

#ifndef SRC_STORAGE_LOCAL_ENGINE_H_
#define SRC_STORAGE_LOCAL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/pool_allocator.h"
#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/storage/storage_engine.h"
#include "src/storage/wal.h"
#include "src/storage/wal_recovery.h"

namespace aft {

struct LocalEngineOptions {
  // WAL tuning (see WalOptions).
  uint64_t max_log_bytes = 64ull << 20;
  Duration flush_interval = Duration::zero();
  bool fdatasync = true;

  // Compact when the frozen files' dead bytes exceed BOTH thresholds.
  double compact_min_dead_ratio = 0.5;
  uint64_t compact_min_dead_bytes = 8ull << 20;
  // Background compaction poll cadence (real time). Tests that want
  // deterministic compaction set start_compaction_thread=false and call
  // CompactNow().
  Duration compaction_poll_interval = Millis(500);
  bool start_compaction_thread = true;
};

class LocalEngine final : public StorageEngine {
 public:
  // Creates `data_dir` if missing, replays the WAL into a fresh index
  // (truncating a torn tail per the recovery rules), and opens a new active
  // log file.
  static Result<std::unique_ptr<LocalEngine>> Open(std::string data_dir,
                                                   LocalEngineOptions options = {});
  ~LocalEngine() override;

  Result<std::string> Get(const std::string& key) override;
  // Native ranged read: preads only the requested window of the value.
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override;
  // Concurrent preads on the shared IoExecutor for large key sets.
  std::vector<Result<std::string>> MultiGet(std::span<const std::string> keys) override;
  Status Put(std::string key, std::string value) override;
  Status BatchPut(std::span<const WriteOp> ops) override;
  // Truly consuming is trivially true here: value bytes stream from the
  // caller's buffers into the kernel via writev and are never copied into
  // engine memory at all. Both batch entry points share that path.
  Status BatchPutConsume(std::span<WriteOp> ops) override;
  // Fused group commit: the whole batch — every unit's data versions
  // followed by that unit's commit record — rides ONE WAL append (one
  // writev) and ONE group-committed fsync. Per-unit §3.3 ordering falls out
  // of batch append order plus prefix-truncating replay: a unit's record is
  // appended after its data, so a record that survives recovery implies its
  // data survived. A unit whose write the injector rejects is poisoned: its
  // record is withheld from the batch (already-accepted data ops still
  // append — non-atomic batch semantics — and stay invisible orphans) while
  // its batch-mates commit.
  // Stage mapping for `profile` (fused path — see CommitStageProfile):
  // data_flush = AppendBatch + index publication, record_write = the
  // group-committed fsync (data and records become durable together),
  // barrier = 0 (ordering rides batch append order, no separate wait).
  void CommitUnits(std::span<CommitUnit> units, std::span<Status> results,
                   CommitStageProfile* profile = nullptr) override;
  Status Delete(const std::string& key) override;
  Status BatchDelete(std::span<const std::string> keys) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  std::string_view name() const override { return "local"; }
  bool SupportsBatchPut() const override { return true; }
  size_t MaxBatchSize() const override { return 1024; }
  const StorageCounters& counters() const override { return counters_; }

  // --- maintenance / test surface ---

  // Rotates the active file, then compacts ALL frozen files regardless of
  // thresholds. Blocks until done.
  Status CompactNow();

  // Test hook: every write op's key is offered to `fn` before it is
  // appended; a non-OK status fails that op (the rest of the batch is still
  // attempted, matching the engines' non-atomic batch semantics). Pass
  // nullptr to clear.
  void SetWriteFailureInjector(std::function<Status(std::string_view key)> fn);

  struct FileStats {
    size_t files = 0;          // on-disk log files (active included)
    uint64_t total_bytes = 0;  // record bytes across them
    uint64_t dead_bytes = 0;   // superseded/deleted record bytes
  };
  FileStats file_stats() const;
  Wal::Stats wal_stats() const { return wal_->stats(); }
  uint64_t compactions() const { return compactions_.load(std::memory_order_relaxed); }
  uint64_t compaction_reclaimed_bytes() const {
    return compaction_reclaimed_bytes_.load(std::memory_order_relaxed);
  }
  const std::string& data_dir() const { return data_dir_; }

 private:
  // Where a live key's value bytes sit on disk.
  struct Locator {
    uint64_t file_key = 0;
    uint64_t value_offset = 0;
    uint32_t value_len = 0;
    bool operator==(const Locator&) const = default;
  };
  // Refcounted read fd: preads in flight keep a replaced file's handle (and
  // therefore its unlinked inode) alive until they finish.
  struct FileHandle {
    int fd = -1;
    ~FileHandle();
  };
  struct FileState {
    std::shared_ptr<FileHandle> handle;
    uint64_t total_bytes = 0;
    uint64_t dead_bytes = 0;
  };

  LocalEngine(std::string data_dir, LocalEngineOptions options);

  // The one write path: injector filtering, WAL append (one writev), index
  // update, group-commit sync. `api_calls` charging differs per entry point.
  Status ApplyWrites(std::span<const Wal::AppendOp> ops);
  // The shared tail of every write: one AppendBatch under the compaction
  // gate, index publication, one Sync. Callers have already run the
  // injector over `ops`. Non-null out-params receive the wall-clock split
  // (append+index vs sync) for commit-stage attribution.
  Status AppendIndexSync(std::span<const Wal::AppendOp> ops, double* append_s = nullptr,
                         double* sync_s = nullptr);

  // Index mutation for one applied op; does the dead-byte accounting.
  void ApplyIndexOp(wal::RecordOp op, std::string_view key, const Locator& loc,
                    uint64_t record_bytes) REQUIRES(index_mu_);
  // Recovery callback: one replayed record into the index.
  void ApplyReplayEvent(const WalRecordEvent& event);
  // Registers a file the index is about to reference (opens its read fd).
  Status EnsureFileLocked(uint64_t file_key) REQUIRES(index_mu_);

  // Resolves a key to its locator AND the (refcounted) read handle of the
  // file it lives in, in one critical section — compaction repoints/retires
  // atomically under the writer lock, so the pair is only coherent when
  // looked up together.
  Status ResolveLocked(const std::string& key, Locator* loc,
                       std::shared_ptr<FileHandle>* handle) REQUIRES_SHARED(index_mu_);

  Result<std::string> PreadValue(const FileHandle& handle, const Locator& loc, uint64_t offset,
                                 uint64_t length);

  void CompactorMain();
  // One compaction pass over the current frozen set; no-op when `force` is
  // false and the dead-byte thresholds are not met.
  Status MaybeCompact(bool force);

  const std::string data_dir_;
  const LocalEngineOptions options_;

  std::unique_ptr<Wal> wal_;

  // Index keys and tree nodes are carved from a MemoryPool: a commit's two
  // index inserts (version key + commit-record key) must not touch the
  // global allocator at steady state (the bench gate's allocs/txn ceiling).
  // Transparent string_view comparison keeps lookups allocation-free too.
  using IndexKey = std::basic_string<char, std::char_traits<char>, PoolAllocator<char>>;
  struct IndexKeyLess {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a < b; }
  };
  using IndexMap = std::map<IndexKey, Locator, IndexKeyLess,
                            PoolAllocator<std::pair<const IndexKey, Locator>>>;

  // Barrier between in-flight writes and compaction's input selection. A
  // writer holds it SHARED from its WAL append through its index
  // publication; compaction holds it EXCLUSIVE (briefly) while snapshotting
  // inputs. Without it, a batch whose append froze the file (rotation fires
  // inside AppendBatch) but whose index update has not run yet is invisible
  // to the snapshot — compaction would select and unlink a file holding
  // records the index is about to reference. Writes starting after the
  // snapshot land at or past the active sequence, which the snapshot
  // excludes, so they need no gate. Acquired before index_mu_.
  mutable SharedMutex inflight_mu_{"engine.inflight"};
  mutable SharedMutex index_mu_{"engine.index"};
  std::shared_ptr<MemoryPool> index_pool_ = std::make_shared<MemoryPool>();
  IndexMap index_ GUARDED_BY(index_mu_){
      IndexKeyLess{}, PoolAllocator<std::pair<const IndexKey, Locator>>(index_pool_)};
  std::map<uint64_t, FileState> files_ GUARDED_BY(index_mu_);

  std::atomic<bool> has_injector_{false};
  Mutex injector_mu_;
  std::function<Status(std::string_view)> injector_ GUARDED_BY(injector_mu_);

  // Compaction control + guard: at most one pass runs at a time.
  Mutex compact_mu_;
  CondVar compact_cv_;
  bool stop_compactor_ GUARDED_BY(compact_mu_) = false;
  bool compaction_running_ GUARDED_BY(compact_mu_) = false;
  std::thread compactor_;

  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> compaction_reclaimed_bytes_{0};

  StorageCounters counters_;
  obs::Histogram* op_latency_get_ = nullptr;
  obs::Histogram* op_latency_put_ = nullptr;
  obs::Histogram* op_latency_delete_ = nullptr;
  obs::Histogram* op_latency_list_ = nullptr;
  obs::Histogram* op_latency_batch_ = nullptr;
  std::vector<obs::ScopedMetricCallback> metric_callbacks_;
};

}  // namespace aft

#endif  // SRC_STORAGE_LOCAL_ENGINE_H_
