// Simulated AWS S3: a flat-namespace object store.
//
// Behavioural model (what the paper's evaluation depends on, §6.1.2):
//  * high median latency and a heavy right tail, especially for small-object
//    writes ("S3 is a throughput-oriented object store that has high write
//    latency variance, particularly for small objects");
//  * 4-10x slower than DynamoDB / Redis for this workload;
//  * no batch-write API — every object PUT is its own request;
//  * read-after-write consistency for new-key PUTs, eventual consistency for
//    overwrites (2020-era semantics — the paper predates S3's strong
//    consistency launch of Dec 2020).

#ifndef SRC_STORAGE_SIM_S3_H_
#define SRC_STORAGE_SIM_S3_H_

#include <string>

#include "src/storage/sim_engine_base.h"

namespace aft {

struct SimS3Options {
  // Default latency profile, in simulated milliseconds. Medians/skews chosen
  // so the Plain-vs-AFT ratios of Figure 3 reproduce.
  EngineLatencyProfile profile = {
      /*get=*/LatencyModel(22.0, 0.5, 6.0, 0.03),
      /*put=*/LatencyModel(32.0, 0.8, 10.0, 0.05),
      /*erase=*/LatencyModel(18.0, 0.5, 6.0),
      /*list=*/LatencyModel(40.0, 0.5, 12.0),
      /*batch_base=*/LatencyModel::Zero(),   // No batch API.
      /*batch_per_item=*/LatencyModel::Zero(),
  };
  StalenessModel staleness = {/*stale_probability=*/0.45, /*mean_staleness=*/Millis(80)};
  size_t map_shards = 16;
};

class SimS3 final : public SimEngineBase {
 public:
  explicit SimS3(Clock& clock, SimS3Options options = {})
      : SimEngineBase("s3", clock, options.profile, options.staleness, options.map_shards) {}

  bool SupportsBatchPut() const override { return false; }
  size_t MaxBatchSize() const override { return 1; }
  double client_cpu_factor() const override { return 1.6; }  // HTTPS + XML.
};

}  // namespace aft

#endif  // SRC_STORAGE_SIM_S3_H_
