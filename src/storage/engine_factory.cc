#include "src/storage/engine_factory.h"

#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"
#include "src/storage/sim_s3.h"

namespace aft {

Result<std::unique_ptr<StorageEngine>> MakeStorageEngine(std::string_view name, Clock& clock,
                                                         const EngineFactoryConfig& config) {
  if (name == "s3") {
    return std::unique_ptr<StorageEngine>(std::make_unique<SimS3>(clock));
  }
  if (name == "dynamo") {
    return std::unique_ptr<StorageEngine>(std::make_unique<SimDynamo>(clock));
  }
  if (name == "redis") {
    return std::unique_ptr<StorageEngine>(std::make_unique<SimRedis>(clock));
  }
  if (name == "local") {
    if (config.data_dir.empty()) {
      return Status::InvalidArgument("--engine local needs --data-dir");
    }
    AFT_ASSIGN_OR_RETURN(std::unique_ptr<LocalEngine> engine,
                         LocalEngine::Open(config.data_dir, config.local));
    return std::unique_ptr<StorageEngine>(std::move(engine));
  }
  return Status::InvalidArgument("unknown storage engine '" + std::string(name) +
                                 "' (s3 | dynamo | redis | local)");
}

}  // namespace aft
