#include "src/storage/local_engine.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/common/contention.h"
#include "src/common/histogram.h"
#include "src/common/io_executor.h"
#include "src/common/logging.h"
#include "src/common/serde.h"

namespace aft {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

// Wall-time observation into an aft_storage_op_latency_ms child; a no-op
// when the engine has no registered instrument (tests without metrics).
class LatencyTimer {
 public:
  explicit LatencyTimer(obs::Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~LatencyTimer() {
    if (hist_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      hist_->Observe(std::chrono::duration<double, std::milli>(elapsed).count());
    }
  }

 private:
  obs::Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// MultiGet fans out on the executor only past this size; small reads are
// cheaper issued inline than dispatched.
constexpr size_t kMultiGetParallelThreshold = 8;

// Compaction writes its output through this much buffered memory at a time.
constexpr size_t kCompactionWriteBuffer = 1u << 20;

Status WriteAll(int fd, const char* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, data + done, len - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write compaction output");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

LocalEngine::FileHandle::~FileHandle() {
  if (fd >= 0) {
    ::close(fd);
  }
}

LocalEngine::LocalEngine(std::string data_dir, LocalEngineOptions options)
    : data_dir_(std::move(data_dir)), options_(options) {}

Result<std::unique_ptr<LocalEngine>> LocalEngine::Open(std::string data_dir,
                                                       LocalEngineOptions options) {
  if (data_dir.empty()) {
    return Status::InvalidArgument("local engine needs a data directory");
  }
  if (::mkdir(data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir " + data_dir);
  }
  std::unique_ptr<LocalEngine> engine(new LocalEngine(std::move(data_dir), options));
  LocalEngine* raw = engine.get();

  // Replay the surviving log prefix into the index (recovery truncated any
  // torn tail and dropped anything after a corrupt record before we see it).
  AFT_ASSIGN_OR_RETURN(WalReplayStats replay,
                       ReplayWal(raw->data_dir_, [raw](const WalRecordEvent& event) {
                         raw->ApplyReplayEvent(event);
                       }));
  {
    WriterMutexLock lock(raw->index_mu_);
    // Pick up zero-record files too (an empty rotation output replays no
    // records but still exists on disk), then open every read fd.
    AFT_ASSIGN_OR_RETURN(std::vector<WalFileInfo> on_disk, ListWalFiles(raw->data_dir_));
    for (const WalFileInfo& info : on_disk) {
      raw->files_.try_emplace(info.file_key);
    }
    for (const auto& [file_key, state] : raw->files_) {
      AFT_RETURN_IF_ERROR(raw->EnsureFileLocked(file_key));
    }
  }
  if (replay.truncated) {
    AFT_LOG(Warn) << "local engine " << raw->data_dir_ << ": recovery truncated "
                  << replay.truncated_bytes << " torn bytes and dropped "
                  << replay.dropped_files << " later file(s)";
  }
  WalOptions wal_options;
  wal_options.max_log_bytes = options.max_log_bytes;
  wal_options.flush_interval = options.flush_interval;
  wal_options.fdatasync = options.fdatasync;
  AFT_ASSIGN_OR_RETURN(engine->wal_, Wal::Open(raw->data_dir_, replay.max_seq + 1, wal_options));

  auto& reg = obs::MetricsRegistry::Global();
  const obs::MetricLabels labels = {{"engine", "local"}};
  auto latency = [&](const char* op) {
    obs::MetricLabels op_labels = labels;
    op_labels.emplace_back("op", op);
    return reg.GetHistogram("aft_storage_op_latency_ms",
                            "Charged storage latency per operation (ms)",
                            DefaultLatencyBoundariesMs(), std::move(op_labels));
  };
  engine->op_latency_get_ = latency("get");
  engine->op_latency_put_ = latency("put");
  engine->op_latency_delete_ = latency("delete");
  engine->op_latency_list_ = latency("list");
  engine->op_latency_batch_ = latency("batch");
  auto wrap_counter = [&](const char* metric, const char* help,
                          const std::atomic<uint64_t>& cell) {
    engine->metric_callbacks_.push_back(reg.RegisterCallback(
        metric, help, obs::CallbackType::kCounter, labels,
        [&cell] { return static_cast<double>(cell.load(std::memory_order_relaxed)); }));
  };
  wrap_counter("aft_storage_gets_total", "Storage GET operations", raw->counters_.gets);
  wrap_counter("aft_storage_puts_total", "Storage PUT operations", raw->counters_.puts);
  wrap_counter("aft_storage_batch_puts_total", "Storage batched-write API calls",
               raw->counters_.batch_puts);
  wrap_counter("aft_storage_deletes_total", "Storage DELETE operations", raw->counters_.deletes);
  wrap_counter("aft_storage_lists_total", "Storage LIST operations", raw->counters_.lists);
  wrap_counter("aft_storage_bytes_read_total", "Payload bytes read from storage",
               raw->counters_.bytes_read);
  wrap_counter("aft_storage_bytes_written_total", "Payload bytes written to storage",
               raw->counters_.bytes_written);
  wrap_counter("aft_storage_api_calls_total", "Storage API requests issued",
               raw->counters_.api_calls);
  auto wrap_wal = [&](const char* metric, const char* help, auto getter) {
    engine->metric_callbacks_.push_back(
        reg.RegisterCallback(metric, help, obs::CallbackType::kCounter, labels,
                             [raw, getter] { return getter(raw); }));
  };
  wrap_wal("aft_wal_fsyncs_total", "WAL fdatasync calls (group commits)",
           [](LocalEngine* e) { return static_cast<double>(e->wal_->stats().fsyncs); });
  wrap_wal("aft_wal_records_total", "WAL records appended",
           [](LocalEngine* e) { return static_cast<double>(e->wal_->stats().records); });
  wrap_wal("aft_wal_bytes_appended_total", "WAL bytes appended",
           [](LocalEngine* e) { return static_cast<double>(e->wal_->stats().bytes_appended); });
  wrap_wal("aft_wal_rotations_total", "WAL file rotations",
           [](LocalEngine* e) { return static_cast<double>(e->wal_->stats().rotations); });
  wrap_wal("aft_wal_compactions_total", "WAL compaction passes", [](LocalEngine* e) {
    return static_cast<double>(e->compactions_.load(std::memory_order_relaxed));
  });
  wrap_wal("aft_wal_compaction_reclaimed_bytes_total", "Bytes reclaimed by compaction",
           [](LocalEngine* e) {
             return static_cast<double>(
                 e->compaction_reclaimed_bytes_.load(std::memory_order_relaxed));
           });
  engine->metric_callbacks_.push_back(reg.RegisterCallback(
      "aft_wal_dead_bytes", "Dead (superseded) bytes across WAL files",
      obs::CallbackType::kGauge, labels,
      [raw] { return static_cast<double>(raw->file_stats().dead_bytes); }));
  engine->metric_callbacks_.push_back(
      reg.RegisterCallback("aft_wal_files", "Live WAL file count", obs::CallbackType::kGauge,
                           labels, [raw] { return static_cast<double>(raw->file_stats().files); }));

  if (options.start_compaction_thread) {
    engine->compactor_ = std::thread(&LocalEngine::CompactorMain, engine.get());
  }
  return engine;
}

LocalEngine::~LocalEngine() {
  {
    MutexLock lock(compact_mu_);
    stop_compactor_ = true;
    compact_cv_.NotifyAll();
  }
  if (compactor_.joinable()) {
    compactor_.join();
  }
  // Unregister exposition callbacks before the state they read goes away.
  metric_callbacks_.clear();
  wal_.reset();
}

Status LocalEngine::EnsureFileLocked(uint64_t file_key) {
  auto [it, inserted] = files_.try_emplace(file_key);
  FileState& state = it->second;
  if (state.handle != nullptr) {
    return Status::Ok();
  }
  const std::string path = wal::WalFilePath(data_dir_, file_key);
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (inserted) {
      // Don't strand a handle-less FileState: compaction treats every
      // files_ entry as a readable input.
      files_.erase(it);
    }
    return ErrnoStatus("open " + path + " for reads");
  }
  state.handle = std::make_shared<FileHandle>();
  state.handle->fd = fd;
  return Status::Ok();
}

void LocalEngine::ApplyReplayEvent(const WalRecordEvent& event) {
  WriterMutexLock lock(index_mu_);
  files_.try_emplace(event.file_key);
  ApplyIndexOp(event.op, event.key,
               Locator{event.file_key, event.value_offset,
                       static_cast<uint32_t>(event.value.size())},
               event.record_bytes);
}

void LocalEngine::ApplyIndexOp(wal::RecordOp op, std::string_view key, const Locator& loc,
                               uint64_t record_bytes) {
  files_[loc.file_key].total_bytes += record_bytes;
  if (op == wal::RecordOp::kPut) {
    // find-then-emplace (not try_emplace) so the overwrite path never
    // constructs a key, and the insert path builds it straight in the pool.
    auto it = index_.find(key);
    if (it != index_.end()) {
      const Locator& old = it->second;
      files_[old.file_key].dead_bytes += wal::PutRecordBytes(key.size(), old.value_len);
      it->second = loc;
      return;
    }
    index_.emplace(IndexKey(key.data(), key.size(), PoolAllocator<char>(index_pool_)), loc);
    return;
  }
  // A delete record supersedes the old put AND is itself immediately dead
  // weight (it only matters until the put's file is compacted away).
  files_[loc.file_key].dead_bytes += record_bytes;
  auto it = index_.find(key);
  if (it != index_.end()) {
    const Locator& old = it->second;
    files_[old.file_key].dead_bytes += wal::PutRecordBytes(key.size(), old.value_len);
    index_.erase(it);
  }
}

Status LocalEngine::ApplyWrites(std::span<const Wal::AppendOp> ops) {
  // Reused per-thread scratch keeps the steady-state commit path free of
  // allocations (the alloc-count bench asserts this).
  static thread_local std::vector<Wal::AppendOp> accepted;
  accepted.clear();
  Status first_error = Status::Ok();
  if (has_injector_.load(std::memory_order_acquire)) {
    MutexLock lock(injector_mu_);
    for (const Wal::AppendOp& op : ops) {
      const Status verdict = injector_ ? injector_(op.key) : Status::Ok();
      if (verdict.ok()) {
        accepted.push_back(op);
      } else if (first_error.ok()) {
        first_error = verdict;
      }
    }
  } else {
    accepted.assign(ops.begin(), ops.end());
  }
  if (accepted.empty()) {
    return first_error;
  }
  AFT_RETURN_IF_ERROR(AppendIndexSync(std::span<const Wal::AppendOp>(accepted)));
  return first_error;
}

Status LocalEngine::AppendIndexSync(std::span<const Wal::AppendOp> ops, double* append_s,
                                    double* sync_s) {
  static thread_local std::vector<Wal::AppendedLoc> locs;
  locs.resize(ops.size());
  const bool timed = append_s != nullptr;
  const auto append_start =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  uint64_t batch_lsn = 0;
  {
    // Shared hold spans append -> index publication so compaction's
    // exclusive snapshot can never observe this batch's records appended
    // but not yet indexed (it would unlink their file; see inflight_mu_).
    // Released before Sync: durability needs no coordination with
    // compaction, and fsync waits dominate write latency.
    ReaderMutexLock gate(inflight_mu_);
    auto lsn = wal_->AppendBatch(ops, locs.data());
    if (!lsn.ok()) {
      return lsn.status();
    }
    batch_lsn = *lsn;
    WriterMutexLock lock(index_mu_);
    for (size_t i = 0; i < ops.size(); ++i) {
      AFT_RETURN_IF_ERROR(EnsureFileLocked(locs[i].file_key));
      const Locator loc{locs[i].file_key, locs[i].value_offset, locs[i].value_len};
      ApplyIndexOp(ops[i].op, ops[i].key, loc, locs[i].record_bytes);
    }
  }
  if (timed) {
    const auto sync_start = std::chrono::steady_clock::now();
    *append_s = std::chrono::duration<double>(sync_start - append_start).count();
    const Status synced = wal_->Sync(batch_lsn);
    if (sync_s != nullptr) {
      *sync_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - sync_start)
                    .count();
    }
    return synced;
  }
  return wal_->Sync(batch_lsn);
}

Result<std::string> LocalEngine::PreadValue(const FileHandle& handle, const Locator& loc,
                                            uint64_t offset, uint64_t length) {
  std::string value;
  value.resize(length);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(handle.fd, value.data() + done, length - done,
                              static_cast<off_t>(loc.value_offset + offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pread value");
    }
    if (n == 0) {
      return Status::Internal("short pread: wal file truncated under a live index entry");
    }
    done += static_cast<size_t>(n);
  }
  counters_.bytes_read.fetch_add(length, std::memory_order_relaxed);
  return value;
}

Status LocalEngine::ResolveLocked(const std::string& key, Locator* loc,
                                  std::shared_ptr<FileHandle>* handle) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound(key);
  }
  *loc = it->second;
  auto fit = files_.find(loc->file_key);
  if (fit == files_.end() || fit->second.handle == nullptr) {
    return Status::Internal("index references unknown wal file " +
                            wal::WalFileName(loc->file_key));
  }
  *handle = fit->second.handle;
  return Status::Ok();
}

Result<std::string> LocalEngine::Get(const std::string& key) {
  counters_.gets.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  LatencyTimer timer(op_latency_get_);
  Locator loc;
  std::shared_ptr<FileHandle> handle;
  {
    // Locator and handle resolve under ONE lock acquisition: compaction
    // repoints the index and retires input files atomically under the writer
    // lock, so splitting the lookup would let a concurrent pass invalidate
    // the locator between the two steps.
    ReaderMutexLock lock(index_mu_);
    AFT_RETURN_IF_ERROR(ResolveLocked(key, &loc, &handle));
  }
  return PreadValue(*handle, loc, 0, loc.value_len);
}

Result<std::string> LocalEngine::GetRange(const std::string& key, uint64_t offset,
                                          uint64_t length) {
  counters_.gets.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  LatencyTimer timer(op_latency_get_);
  Locator loc;
  std::shared_ptr<FileHandle> handle;
  {
    ReaderMutexLock lock(index_mu_);
    AFT_RETURN_IF_ERROR(ResolveLocked(key, &loc, &handle));
  }
  if (offset > loc.value_len) {
    return Status::InvalidArgument("range offset beyond object size");
  }
  return PreadValue(*handle, loc, offset, std::min<uint64_t>(length, loc.value_len - offset));
}

std::vector<Result<std::string>> LocalEngine::MultiGet(std::span<const std::string> keys) {
  std::vector<Result<std::string>> results;
  if (keys.size() < kMultiGetParallelThreshold) {
    results.reserve(keys.size());
    for (const std::string& key : keys) {
      results.push_back(Get(key));
    }
    return results;
  }
  results.resize(keys.size(), Status::NotFound(""));
  IoExecutor::Shared().ParallelFor(keys.size(), [&](size_t i) {
    results[i] = Get(keys[i]);
    return Status::Ok();  // per-key misses live in results, not the latch
  });
  return results;
}

Status LocalEngine::Put(std::string key, std::string value) {
  counters_.puts.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_written.fetch_add(value.size(), std::memory_order_relaxed);
  LatencyTimer timer(op_latency_put_);
  const Wal::AppendOp op{wal::RecordOp::kPut, key, value};
  return ApplyWrites(std::span<const Wal::AppendOp>(&op, 1));
}

Status LocalEngine::BatchPut(std::span<const WriteOp> ops) {
  if (ops.empty()) {
    return Status::Ok();
  }
  counters_.batch_puts.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  counters_.puts.fetch_add(ops.size(), std::memory_order_relaxed);
  LatencyTimer timer(op_latency_batch_);
  static thread_local std::vector<Wal::AppendOp> wal_ops;
  wal_ops.clear();
  uint64_t bytes = 0;
  for (const WriteOp& op : ops) {
    wal_ops.push_back(Wal::AppendOp{wal::RecordOp::kPut, op.key, op.value});
    bytes += op.value.size();
  }
  counters_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  return ApplyWrites(std::span<const Wal::AppendOp>(wal_ops));
}

void LocalEngine::CommitUnits(std::span<CommitUnit> units, std::span<Status> results,
                              CommitStageProfile* profile) {
  for (Status& r : results) {
    r = Status::Ok();
  }
  if (units.empty()) {
    return;
  }
  counters_.batch_puts.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  LatencyTimer timer(op_latency_batch_);
  // Fuse every unit into one ordered op vector: [unit data ops..., unit
  // record] per unit. The record trails its data in the log, so
  // prefix-truncating replay can never keep a record whose data was torn
  // away — the §3.3 barrier, paid once per BATCH as a single fsync below.
  static thread_local std::vector<Wal::AppendOp> fused;
  fused.clear();
  size_t max_ops = 0;
  for (const CommitUnit& unit : units) {
    max_ops += unit.data_ops.size() + 1;
  }
  fused.reserve(max_ops);
  uint64_t bytes = 0;
  const bool injecting = has_injector_.load(std::memory_order_acquire);
  // aftlint: hot
  for (size_t u = 0; u < units.size(); ++u) {
    CommitUnit& unit = units[u];
    for (const WriteOp& op : unit.data_ops) {
      if (injecting) {
        Status verdict;
        {
          MutexLock lock(injector_mu_);
          verdict = injector_ ? injector_(op.key) : Status::Ok();
        }
        if (!verdict.ok()) {
          // Poison THIS unit only. Its already-accepted data ops still
          // append (non-atomic batch semantics — in-flight writes cannot be
          // recalled) but stay invisible: the record that would reference
          // them is withheld below.
          if (results[u].ok()) {
            results[u] = std::move(verdict);
          }
          continue;
        }
      }
      fused.push_back(Wal::AppendOp{wal::RecordOp::kPut, op.key, op.value});
      bytes += op.value.size();
    }
    if (!results[u].ok()) {
      continue;
    }
    if (injecting) {
      Status verdict;
      {
        MutexLock lock(injector_mu_);
        verdict = injector_ ? injector_(unit.commit_record.key) : Status::Ok();
      }
      if (!verdict.ok()) {
        results[u] = std::move(verdict);
        continue;
      }
    }
    fused.push_back(
        Wal::AppendOp{wal::RecordOp::kPut, unit.commit_record.key, unit.commit_record.value});
    bytes += unit.commit_record.value.size();
  }
  counters_.puts.fetch_add(fused.size(), std::memory_order_relaxed);
  counters_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  if (fused.empty()) {
    return;
  }
  double* append_out = nullptr;
  double* sync_out = nullptr;
  if (profile != nullptr && contention::StageTimingEnabled()) {
    // Fused-path stage mapping: append + index publish = data_flush, the
    // group-committed fsync = record_write, barrier = 0 (see header).
    append_out = &profile->data_flush_s;
    sync_out = &profile->record_write_s;
  }
  const Status applied =
      AppendIndexSync(std::span<const Wal::AppendOp>(fused), append_out, sync_out);
  if (!applied.ok()) {
    // The append (or its sync) is all-or-nothing for the batch: no unit's
    // record was acknowledged, so every surviving unit fails.
    for (Status& r : results) {
      if (r.ok()) {
        r = applied;
      }
    }
  }
}

Status LocalEngine::BatchPutConsume(std::span<WriteOp> ops) {
  // Nothing to move: the write path streams the caller's bytes straight to
  // the kernel, so the consuming and copying entry points are the same call.
  return BatchPut(std::span<const WriteOp>(ops.data(), ops.size()));
}

Status LocalEngine::Delete(const std::string& key) {
  counters_.deletes.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  LatencyTimer timer(op_latency_delete_);
  const Wal::AppendOp op{wal::RecordOp::kDelete, key, {}};
  return ApplyWrites(std::span<const Wal::AppendOp>(&op, 1));
}

Status LocalEngine::BatchDelete(std::span<const std::string> keys) {
  if (keys.empty()) {
    return Status::Ok();
  }
  counters_.deletes.fetch_add(keys.size(), std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  LatencyTimer timer(op_latency_delete_);
  static thread_local std::vector<Wal::AppendOp> wal_ops;
  wal_ops.clear();
  for (const std::string& key : keys) {
    wal_ops.push_back(Wal::AppendOp{wal::RecordOp::kDelete, key, {}});
  }
  return ApplyWrites(std::span<const Wal::AppendOp>(wal_ops));
}

Result<std::vector<std::string>> LocalEngine::List(const std::string& prefix) {
  counters_.lists.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  LatencyTimer timer(op_latency_list_);
  std::vector<std::string> keys;
  ReaderMutexLock lock(index_mu_);
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (!std::string_view(it->first).starts_with(prefix)) {
      break;
    }
    keys.emplace_back(it->first.data(), it->first.size());
  }
  return keys;
}

void LocalEngine::SetWriteFailureInjector(std::function<Status(std::string_view)> fn) {
  MutexLock lock(injector_mu_);
  injector_ = std::move(fn);
  has_injector_.store(injector_ != nullptr, std::memory_order_release);
}

LocalEngine::FileStats LocalEngine::file_stats() const {
  ReaderMutexLock lock(index_mu_);
  FileStats stats;
  stats.files = files_.size();
  for (const auto& [file_key, state] : files_) {
    stats.total_bytes += state.total_bytes;
    stats.dead_bytes += state.dead_bytes;
  }
  return stats;
}

Status LocalEngine::CompactNow() {
  AFT_RETURN_IF_ERROR(wal_->Rotate().status());
  return MaybeCompact(/*force=*/true);
}

void LocalEngine::CompactorMain() {
  MutexLock lock(compact_mu_);
  while (!stop_compactor_) {
    compact_cv_.WaitFor(lock, options_.compaction_poll_interval);
    if (stop_compactor_) {
      return;
    }
    lock.Unlock();
    const Status status = MaybeCompact(/*force=*/false);
    if (!status.ok()) {
      AFT_LOG(Warn) << "local engine compaction failed: " << status.message();
    }
    lock.Lock();
  }
}

Status LocalEngine::MaybeCompact(bool force) {
  {
    // Single-flight: CompactNow and the background pass must not interleave.
    MutexLock lock(compact_mu_);
    while (compaction_running_) {
      compact_cv_.Wait(lock);
    }
    compaction_running_ = true;
  }
  const Status status = [&]() -> Status {
    // Snapshot the frozen set and (under the shared lock) the live entries
    // pointing into it. Values are pread AFTER the lock drops — frozen
    // records are immutable, and the repoint step below tolerates entries
    // superseded meanwhile.
    struct LiveEntry {
      std::string key;
      Locator old_loc;
      std::shared_ptr<FileHandle> handle;  // pins the input file for the pread
      uint64_t out_offset = 0;             // value offset in the compacted file
    };
    std::vector<LiveEntry> live;
    std::vector<uint64_t> inputs;
    uint64_t input_bytes = 0;
    uint64_t input_dead = 0;
    {
      // Exclusive gate: wait out every write that has appended but not yet
      // indexed, and hold off new ones while inputs are chosen. Combined
      // with the sequence guard below this makes the selection exact — no
      // frozen input can be hiding records the index has not published.
      WriterMutexLock gate(inflight_mu_);
      ReaderMutexLock lock(index_mu_);
      // The active key MUST be read while index_mu_ is held: files_ cannot
      // gain entries while we hold the shared lock, and any file already in
      // files_ was active strictly before the key we read here. A pre-lock
      // snapshot races with rotation — a write could index the new active
      // file and this loop would select the file the WAL is appending to.
      // Guard on the sequence number (not just key equality) so every file
      // at or past the active slot is excluded outright.
      const uint32_t active_seq = wal::FileSeq(wal_->active_file_key());
      for (const auto& [file_key, state] : files_) {
        if (wal::FileSeq(file_key) >= active_seq) {
          continue;
        }
        inputs.push_back(file_key);
        input_bytes += state.total_bytes;
        input_dead += state.dead_bytes;
      }
      if (inputs.empty()) {
        return Status::Ok();
      }
      if (!force && (input_dead < options_.compact_min_dead_bytes ||
                     input_bytes == 0 ||
                     static_cast<double>(input_dead) / static_cast<double>(input_bytes) <
                         options_.compact_min_dead_ratio)) {
        return Status::Ok();
      }
      for (const auto& [key, loc] : index_) {
        if (std::binary_search(inputs.begin(), inputs.end(), loc.file_key)) {
          live.push_back(LiveEntry{std::string(std::string_view(key)), loc,
                                   files_.find(loc.file_key)->second.handle, 0});
        }
      }
    }

    // Output file key: same seq slot as the newest input, next generation —
    // replays after everything it absorbed, before everything newer.
    const uint64_t newest = inputs.back();
    if (wal::FileGen(newest) >= wal::kMaxCompactionGen) {
      return Status::ResourceExhausted("compaction generation limit reached for " +
                                       wal::WalFileName(newest));
    }
    const uint64_t out_key = wal::MakeFileKey(wal::FileSeq(newest), wal::FileGen(newest) + 1);
    const std::string out_path = wal::WalFilePath(data_dir_, out_key);
    const std::string tmp_path = out_path + ".tmp";

    const int out_fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (out_fd < 0) {
      return ErrnoStatus("open " + tmp_path);
    }
    auto fail = [&](Status error) {
      ::close(out_fd);
      ::unlink(tmp_path.c_str());
      return error;
    };

    BinaryWriter buffer;
    uint64_t out_offset = 0;
    uint64_t out_bytes = 0;
    for (LiveEntry& entry : live) {
      auto value = PreadValue(*entry.handle, entry.old_loc, 0, entry.old_loc.value_len);
      if (!value.ok()) {
        return fail(value.status());
      }
      entry.out_offset = out_offset + wal::ValueOffsetInRecord(entry.key.size());
      wal::AppendRecordTo(buffer, wal::RecordOp::kPut, entry.key, *value);
      out_offset += wal::PutRecordBytes(entry.key.size(), value->size());
      if (buffer.data().size() >= kCompactionWriteBuffer) {
        const Status written = WriteAll(out_fd, buffer.data().data(), buffer.data().size());
        if (!written.ok()) {
          return fail(written);
        }
        out_bytes += buffer.data().size();
        buffer.Clear();
      }
    }
    if (!buffer.data().empty()) {
      const Status written = WriteAll(out_fd, buffer.data().data(), buffer.data().size());
      if (!written.ok()) {
        return fail(written);
      }
      out_bytes += buffer.data().size();
    }
    if (options_.fdatasync) {
      int rc;
      do {
        rc = ::fdatasync(out_fd);
      } while (rc != 0 && errno == EINTR);
      if (rc != 0) {
        return fail(ErrnoStatus("fdatasync " + tmp_path));
      }
    }
    ::close(out_fd);

    // Commit point: the rename (made durable by the directory fsync). A
    // crash before this leaves only a .tmp that recovery deletes; after it,
    // replay sees inputs + output back to back, which is state-equivalent.
    if (::rename(tmp_path.c_str(), out_path.c_str()) != 0) {
      ::unlink(tmp_path.c_str());
      return ErrnoStatus("rename " + tmp_path);
    }
    if (options_.fdatasync) {
      AFT_RETURN_IF_ERROR(wal::FsyncDir(data_dir_));
    }

    const int read_fd = ::open(out_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (read_fd < 0) {
      return ErrnoStatus("open " + out_path + " for reads");
    }

    // Repoint surviving index entries; entries superseded or deleted during
    // the pass keep their newer locators (their copy in the output file is
    // dead weight from birth).
    std::vector<std::shared_ptr<FileHandle>> retired;
    {
      WriterMutexLock lock(index_mu_);
      FileState& out_state = files_[out_key];
      out_state.handle = std::make_shared<FileHandle>();
      out_state.handle->fd = read_fd;
      out_state.total_bytes = out_bytes;
      for (const LiveEntry& entry : live) {
        const uint64_t record_bytes =
            wal::PutRecordBytes(entry.key.size(), entry.old_loc.value_len);
        auto it = index_.find(entry.key);
        if (it != index_.end() && it->second == entry.old_loc) {
          it->second = Locator{out_key, entry.out_offset, entry.old_loc.value_len};
        } else {
          out_state.dead_bytes += record_bytes;
        }
      }
      for (uint64_t file_key : inputs) {
        auto it = files_.find(file_key);
        if (it != files_.end()) {
          retired.push_back(std::move(it->second.handle));
          files_.erase(it);
        }
      }
    }
    // In-flight preads still hold refs; unlinked inodes stay readable until
    // the last one drops.
    retired.clear();
    for (uint64_t file_key : inputs) {
      const std::string path = wal::WalFilePath(data_dir_, file_key);
      if (::unlink(path.c_str()) != 0) {
        return ErrnoStatus("unlink " + path);
      }
    }
    if (options_.fdatasync) {
      AFT_RETURN_IF_ERROR(wal::FsyncDir(data_dir_));
    }

    compactions_.fetch_add(1, std::memory_order_relaxed);
    if (input_bytes > out_bytes) {
      compaction_reclaimed_bytes_.fetch_add(input_bytes - out_bytes, std::memory_order_relaxed);
    }
    AFT_LOG(Info) << "local engine compacted " << inputs.size() << " file(s), " << input_bytes
                  << " -> " << out_bytes << " bytes";
    return Status::Ok();
  }();
  {
    MutexLock lock(compact_mu_);
    compaction_running_ = false;
    compact_cv_.NotifyAll();
  }
  return status;
}

}  // namespace aft
