// Append-only write-ahead log backing the durable LocalEngine.
//
// Layout (docs/PROTOCOLS.md, "Durability contract"): a WAL directory holds a
// sequence of log files
//
//     wal-000001.log            rotation outputs (generation 0)
//     wal-000003.c1.log         compaction outputs (generation >= 1)
//
// ordered by (seq, generation). A compaction output re-asserts the live
// prefix of the log, so it sorts AFTER every file it replaced and BEFORE
// every file written since (see wal_recovery.h for why replay stays correct
// through a crash at any point of that protocol).
//
// Every record is CRC-framed:
//
//     offset  size  field
//     0       4     payload length (bytes; <= kMaxRecordPayload)
//     4       4     CRC-32 (IEEE 802.3, src/common/crc32.h) of the payload
//     8       ...   payload
//
// and the payload is src/common/serde.h encoding:
//
//     u8  op               1 = put, 2 = delete
//     u32 key length       | PutString(key)
//     ..  key bytes        |
//     u32 value length     | PutString(value), puts only
//     ..  value bytes      |
//
// The value bytes therefore sit contiguously at a known offset inside the
// file, which is what lets the engine's index serve reads with one pread and
// no framing overhead.
//
// Write path: `AppendBatch` encodes record *metadata* (headers, ops, keys,
// value length prefixes) into a pooled SegmentBuffer (the PR-7 arena) and
// scatter-gathers metadata spans + the caller's value buffers into ONE
// writev(2) per batch — value bytes are never copied into the log's buffers,
// they go caller-memory -> kernel directly. Durability is group-committed: a
// background flusher issues one fdatasync(2) covering every record appended
// since the last sync, and `Sync(lsn)` parks callers on a waiter-batching
// latch until the durable LSN passes theirs. One fsync acknowledges every
// concurrent committer (the classic group commit).
//
// Thread safety: any number of threads may call AppendBatch/Sync
// concurrently. Lock order inside the WAL is append_mu_ -> flush_mu_; no
// caller-visible callback runs under either.

#ifndef SRC_STORAGE_WAL_H_
#define SRC_STORAGE_WAL_H_

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/arena.h"
#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/serde.h"
#include "src/common/status.h"

namespace aft {
namespace wal {

inline constexpr size_t kRecordHeaderSize = 8;
// Guard against corrupt / hostile length fields during replay: a record
// longer than this is treated as corruption, never allocated.
inline constexpr uint32_t kMaxRecordPayload = 256u << 20;  // 256 MiB

enum class RecordOp : uint8_t {
  kPut = 1,
  kDelete = 2,
};

// A file's identity: rotation sequence number plus compaction generation,
// packed so that numeric order == replay order. Generation 0 = a rotation
// output, >= 1 = a compaction output replacing files up to `seq`.
inline constexpr uint32_t kMaxCompactionGen = (1u << 10) - 1;
inline uint64_t MakeFileKey(uint32_t seq, uint32_t gen) {
  return (static_cast<uint64_t>(seq) << 10) | gen;
}
inline uint32_t FileSeq(uint64_t file_key) { return static_cast<uint32_t>(file_key >> 10); }
inline uint32_t FileGen(uint64_t file_key) { return static_cast<uint32_t>(file_key & kMaxCompactionGen); }

// "wal-000007.log" / "wal-000007.c2.log".
std::string WalFileName(uint64_t file_key);
std::string WalFilePath(const std::string& dir, uint64_t file_key);
// Parses a directory entry name; returns false for non-WAL files (including
// the *.tmp staging files compaction writes).
bool ParseWalFileName(std::string_view name, uint64_t* file_key);

// Decoded view of one record payload; views alias the caller's buffer.
struct RecordView {
  RecordOp op = RecordOp::kPut;
  std::string_view key;
  std::string_view value;  // empty for deletes
};

// Parses a record payload (the bytes after the 8-byte header). Returns false
// on malformed input — wrong op, truncated key/value, trailing garbage.
bool DecodeRecordPayload(std::string_view payload, RecordView* out);

// Serialized size of a record, header included.
inline uint64_t PutRecordBytes(size_t key_len, size_t value_len) {
  return kRecordHeaderSize + 1 + 4 + key_len + 4 + value_len;
}
inline uint64_t DeleteRecordBytes(size_t key_len) { return kRecordHeaderSize + 1 + 4 + key_len; }
// Offset of the value bytes relative to the record start (header included).
inline uint64_t ValueOffsetInRecord(size_t key_len) {
  return kRecordHeaderSize + 1 + 4 + key_len + 4;
}

// Appends one complete record (header + payload) to `out`. The buffered,
// copying encoder — used by compaction and tests; the hot path in
// Wal::AppendBatch produces byte-identical output without copying values.
void AppendRecordTo(BinaryWriter& out, RecordOp op, std::string_view key, std::string_view value);

// fsync(2) on the directory itself: makes created/renamed/unlinked file
// NAMES durable. Required after every directory-level mutation of the log.
Status FsyncDir(const std::string& dir);

}  // namespace wal

struct WalOptions {
  // Rotate the active file once it exceeds this size (checked after each
  // batch; one batch may overshoot).
  uint64_t max_log_bytes = 64ull << 20;
  // Group-commit accumulation window: after being woken, the flusher waits
  // this long for more appends to pile in before issuing the fdatasync.
  // Zero = sync as soon as there is anything to sync (concurrency alone
  // forms the batch; lowest latency).
  Duration flush_interval = Duration::zero();
  // When false, Sync() returns as soon as the bytes are written (page cache
  // only, no fdatasync). For measuring fsync cost and for tests that do not
  // crash the machine; kill -9 durability is unaffected (the page cache
  // survives process death), power loss is not. Default on.
  bool fdatasync = true;
  // Arena pool for record metadata; nullptr = the process-wide pool.
  BufferPool* pool = nullptr;
};

// The append side of the log. Recovery (wal_recovery.h) runs BEFORE a Wal is
// opened; Open always starts a fresh active file at `first_seq` so a torn
// tail from a previous run is never appended into.
class Wal {
 public:
  struct AppendOp {
    wal::RecordOp op = wal::RecordOp::kPut;
    std::string_view key;
    std::string_view value;  // must stay alive until AppendBatch returns
  };

  // Where one appended op landed, for the engine's index.
  struct AppendedLoc {
    uint64_t file_key = 0;
    uint64_t value_offset = 0;  // absolute file offset of the value bytes
    uint32_t value_len = 0;
    uint64_t record_bytes = 0;  // full record size (header included)
  };

  struct Stats {
    uint64_t batches = 0;
    uint64_t records = 0;
    uint64_t bytes_appended = 0;
    uint64_t fsyncs = 0;
    uint64_t rotations = 0;
    uint64_t sync_waiters_released = 0;  // across all fsyncs (batch size source)
  };

  static Result<std::unique_ptr<Wal>> Open(std::string dir, uint32_t first_seq,
                                           WalOptions options = {});
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one record per op with a single writev; fills locs[0..ops.size())
  // and returns the batch-end LSN to pass to Sync(). All records of a batch
  // land in the same file. On a write error the WAL is poisoned (every later
  // append fails too): a torn record may sit at the tail, and appending past
  // it would make replay drop the new records silently.
  Result<uint64_t> AppendBatch(std::span<const AppendOp> ops, AppendedLoc* locs);

  // Blocks until every byte appended at or before `lsn` is durable.
  Status Sync(uint64_t lsn);

  // Fsyncs and freezes the active file and opens a fresh one; returns the
  // frozen file's key. Compaction calls this so the compactable set is
  // always a closed prefix of the log.
  Result<uint64_t> Rotate();

  uint64_t active_file_key() const;
  uint64_t active_size() const;
  const std::string& dir() const { return dir_; }
  Stats stats() const;

 private:
  Wal(std::string dir, WalOptions options);

  Status OpenActiveLocked(uint32_t seq) REQUIRES(append_mu_);
  Status RotateLocked(uint64_t* frozen_key) REQUIRES(append_mu_);
  void FlusherMain();

  const std::string dir_;
  const WalOptions options_;

  // Append state: one appender at a time builds + writes its batch.
  mutable Mutex append_mu_{"wal.append"};
  int active_fd_ GUARDED_BY(append_mu_) = -1;
  uint64_t active_key_ GUARDED_BY(append_mu_) = 0;
  uint64_t active_size_ GUARDED_BY(append_mu_) = 0;
  uint64_t lsn_base_ GUARDED_BY(append_mu_) = 0;  // global LSN of active file start
  bool poisoned_ GUARDED_BY(append_mu_) = false;
  // Reused per-batch scratch (amortized allocation-free appends).
  SegmentBuffer meta_ GUARDED_BY(append_mu_);
  std::vector<char> headers_ GUARDED_BY(append_mu_);
  std::vector<struct iovec> iov_ GUARDED_BY(append_mu_);

  // Group-commit latch. (sync_fd_, appended_lsn_) are always written as a
  // pair right after the bytes hit sync_fd_, and rotation fsyncs a file
  // before retiring it, so fdatasync(sync_fd_) covering appended_lsn_ makes
  // everything at or below appended_lsn_ durable.
  mutable Mutex flush_mu_{"wal.flush"};
  CondVar flush_cv_;       // wakes the flusher
  CondVar durable_cv_;     // wakes Sync waiters
  CondVar fsync_done_cv_;  // rotation waits for an in-flight fsync on the fd it retires
  uint64_t appended_lsn_ GUARDED_BY(flush_mu_) = 0;
  uint64_t durable_lsn_ GUARDED_BY(flush_mu_) = 0;
  int sync_fd_ GUARDED_BY(flush_mu_) = -1;
  int fsync_inflight_fd_ GUARDED_BY(flush_mu_) = -1;
  size_t sync_waiters_ GUARDED_BY(flush_mu_) = 0;
  bool sync_failed_ GUARDED_BY(flush_mu_) = false;
  bool stop_ GUARDED_BY(flush_mu_) = false;
  Stats stats_ GUARDED_BY(flush_mu_);

  std::thread flusher_;
};

}  // namespace aft

#endif  // SRC_STORAGE_WAL_H_
