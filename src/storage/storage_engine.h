// Abstract storage engine interface.
//
// AFT's only assumption about the storage layer is that updates are durable
// once acknowledged (§3.1); it explicitly does NOT rely on the engine for
// consistency or immediate visibility. The simulated engines below therefore
// expose the weakest practical semantics of their real counterparts:
//
//  * `SimS3`      — object store; slow, high-variance, no batching; overwrite
//                   PUTs are eventually consistent (2020-era S3 semantics).
//  * `SimDynamo`  — KV store; batch writes up to 25 items; eventually
//                   consistent reads for overwritten items; an optional
//                   serializable transaction mode with conflict aborts.
//  * `SimRedis`   — sharded in-memory store; linearizable per shard; MSET
//                   only within one shard.

#ifndef SRC_STORAGE_STORAGE_ENGINE_H_
#define SRC_STORAGE_STORAGE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace aft {

// A single write in a batch.
struct WriteOp {
  std::string key;
  std::string value;
};

// One transaction's contribution to a fused commit round: its data-version
// writes plus the commit record that makes them visible. CommitUnits()
// persists many units in shared storage rounds while preserving the §3.3
// write-ordering guarantee PER UNIT (see below).
struct CommitUnit {
  std::span<WriteOp> data_ops;  // version/segment objects; may be consumed
  WriteOp commit_record;        // commit-set key + serialized record; may be consumed
};

// Wall-clock decomposition of one CommitUnits call, in seconds. Stages are
// DISJOINT — their sum is the storage portion of the call — so the commit
// path can reconcile per-stage histograms against end-to-end latency:
//   data_flush:   issuing + writing the merged data-version round, excluding
//                 straggler wait (WAL engine: AppendBatch + index publish)
//   barrier:      the §3.3 wait for in-flight data writes to be acknowledged
//                 before any commit record may be written (WAL engine: 0 —
//                 ordering rides the single fused append, see local_engine)
//   record_write: the commit-record round (WAL engine: the group-committed
//                 fsync, which is also what makes the data durable)
// Filled only when a profile is passed AND contention::StageTimingEnabled().
//
// Boundary sharing keeps attribution near-free on µs-scale engines: a caller
// that already read the clock at the instant the call began may pass that
// reading in `start` (the engine then opens data_flush there instead of
// taking its own), and an engine leaves its final clock reading in `end`
// (set only when the record stage actually ran) so the caller can open the
// following stage without re-reading the clock. Shared boundaries keep the
// stages exactly contiguous, so they stay disjoint by construction.
struct CommitStageProfile {
  double data_flush_s = 0;
  double barrier_s = 0;
  double record_write_s = 0;
  std::chrono::steady_clock::time_point start{};
  std::chrono::steady_clock::time_point end{};
};

// Cumulative operation counters, readable while the engine is in use.
struct StorageCounters {
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> batch_puts{0};
  std::atomic<uint64_t> deletes{0};
  std::atomic<uint64_t> lists{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> api_calls{0};
  std::atomic<uint64_t> stale_reads{0};
  std::atomic<uint64_t> transient_faults{0};
};

// Thread-safe storage engine. All calls block for the engine's simulated
// latency before returning.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  // Reads the value of `key`. Returns kNotFound if the key does not exist
  // (or is not yet visible to this read under the engine's consistency
  // model).
  virtual Result<std::string> Get(const std::string& key) = 0;

  // Ranged read: `length` bytes starting at `offset` (S3's Range header).
  // The default fetches the whole object and slices — engines with native
  // range support override this to charge only the bytes transferred.
  virtual Result<std::string> GetRange(const std::string& key, uint64_t offset, uint64_t length);

  // Reads many keys at once; returns one Result per key, positionally
  // (missing keys are kNotFound entries, never a whole-call failure). The
  // default issues sequential Gets; the simulated engines override it to
  // dispatch the gets concurrently, the way real client libraries fan out
  // parallel requests, so a k-key read costs ~one latency sample instead
  // of k.
  virtual std::vector<Result<std::string>> MultiGet(std::span<const std::string> keys);

  // Durably writes `key = value`, overwriting any previous value. Parameters
  // are by-value: the storage boundary owns the bytes, so callers on the
  // commit hot path move their buffers straight through into the engine
  // instead of handing it strings to copy.
  virtual Status Put(std::string key, std::string value) = 0;

  // Writes a set of keys. Engines with native batch support (DynamoDB)
  // charge one batched API call per MaxBatchSize() chunk; engines without
  // (S3, cluster-mode Redis across shards) degrade to sequential puts.
  // The batch is NOT atomic — exactly like BatchWriteItem.
  virtual Status BatchPut(std::span<const WriteOp> ops) = 0;

  // BatchPut that consumes the ops: the engine may move each key/value out
  // (the span's strings are left valid-but-unspecified). The commit flush
  // path uses this so payload bytes transfer into the engine without a copy.
  // The default copies via BatchPut for engines that do not care.
  virtual Status BatchPutConsume(std::span<WriteOp> ops) {
    return BatchPut(std::span<const WriteOp>(ops.data(), ops.size()));
  }

  // Like BatchPutConsume, but reports a PER-OP outcome into `statuses`
  // (statuses.size() == ops.size()) instead of collapsing to the first
  // error, and never short-circuits: every op is attempted. Engines with a
  // chunked batch API report the chunk's outcome for each op in it (a
  // failed BatchWriteItem call fails all items of that request). The
  // default issues sequential consuming Puts.
  virtual void BatchPutEach(std::span<WriteOp> ops, std::span<Status> statuses);

  // Cross-transaction group commit: persists `units` in (at most) two
  // merged rounds — one for every unit's data ops, then one for the commit
  // records of the units whose data all landed — filling results[i] per
  // unit (results.size() == units.size()). The §3.3 ordering holds PER
  // UNIT: unit i's commit record is written only after ALL of unit i's
  // data ops were durably acknowledged. A unit with any failed data op is
  // POISONED — results[i] carries the first error and its commit record is
  // never written — without failing batch-mates; stray data versions a
  // poisoned unit did land are invisible orphans (no record references
  // them) left to the fault manager's sweep. Ops may be consumed like
  // BatchPutConsume. A single-unit call degenerates to exactly the legacy
  // unbatched commit (one BatchPutConsume + one Put), so the solo fast
  // path costs nothing extra. Engines may override to fuse the rounds
  // further — the local engine rides a whole batch on one WAL append and
  // one group-committed fsync. A non-null `profile` receives the per-stage
  // wall-clock split documented on CommitStageProfile.
  virtual void CommitUnits(std::span<CommitUnit> units, std::span<Status> results,
                           CommitStageProfile* profile = nullptr);

  // Deletes `key`. Deleting a missing key is OK (idempotent).
  virtual Status Delete(const std::string& key) = 0;

  // Deletes many keys; may be batched like BatchPut.
  virtual Status BatchDelete(std::span<const std::string> keys) = 0;

  // Returns all live keys with the given prefix, in lexicographic order.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) = 0;

  // Engine identification / capabilities.
  virtual std::string_view name() const = 0;
  virtual bool SupportsBatchPut() const = 0;
  virtual size_t MaxBatchSize() const = 0;

  // Relative CPU cost of this engine's client library per request, as seen
  // by the process issuing the IO (an AFT node). Redis' RESP protocol is the
  // baseline (1.0); HTTPS + JSON marshalling (DynamoDB) and XML object
  // protocols (S3) cost considerably more. This drives the engine-dependent
  // single-node throughput ceilings of §6.5.1.
  virtual double client_cpu_factor() const { return 1.0; }

  virtual const StorageCounters& counters() const = 0;
};

inline Result<std::string> StorageEngine::GetRange(const std::string& key, uint64_t offset,
                                                   uint64_t length) {
  AFT_ASSIGN_OR_RETURN(std::string whole, Get(key));
  if (offset > whole.size()) {
    return Status::InvalidArgument("range offset beyond object size");
  }
  return whole.substr(offset, length);
}

inline std::vector<Result<std::string>> StorageEngine::MultiGet(
    std::span<const std::string> keys) {
  std::vector<Result<std::string>> results;
  results.reserve(keys.size());
  for (const std::string& key : keys) {
    results.push_back(Get(key));
  }
  return results;
}

}  // namespace aft

#endif  // SRC_STORAGE_STORAGE_ENGINE_H_
