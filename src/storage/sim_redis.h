// Simulated Redis in cluster mode (as deployed via AWS ElastiCache).
//
// Behavioural model (§6.1.2, §6.3):
//  * very low IO latency (memory-speed KVS);
//  * linearizable within a shard, no guarantees across shards — reads are
//    never stale, but multi-key operations are not atomic across shards;
//  * MSET exists but "can only modify keys in a single shard", so a client
//    writing arbitrary keys cannot batch: BatchPut degrades to one SET per
//    write (1 API call each, issued concurrently), exactly as the paper
//    describes for AFT-R.

#ifndef SRC_STORAGE_SIM_REDIS_H_
#define SRC_STORAGE_SIM_REDIS_H_

#include <functional>
#include <string>

#include "src/storage/sim_engine_base.h"

namespace aft {

struct SimRedisOptions {
  // Paper default: cluster mode with 2 shards.
  size_t num_shards = 2;
  EngineLatencyProfile profile = {
      /*get=*/LatencyModel(0.55, 0.25, 0.2, 0.01),
      /*put=*/LatencyModel(0.65, 0.25, 0.25, 0.015),
      /*erase=*/LatencyModel(0.6, 0.25, 0.2),
      /*list=*/LatencyModel(2.0, 0.3, 0.5),
      /*batch_base=*/LatencyModel(0.8, 0.25, 0.3),      // MSET, single shard only.
      /*batch_per_item=*/LatencyModel(0.02, 0.0),
  };
  size_t map_shards = 16;
};

class SimRedis final : public SimEngineBase {
 public:
  explicit SimRedis(Clock& clock, SimRedisOptions options = {})
      : SimEngineBase("redis", clock, options.profile,
                      StalenessModel{},  // Linearizable per shard: never stale.
                      options.map_shards),
        num_shards_(options.num_shards == 0 ? 1 : options.num_shards) {}

  // Cluster-mode Redis cannot batch across shards; AFT therefore issues one
  // SET per write (§6.1.2 "cannot consistently batch updates").
  bool SupportsBatchPut() const override { return false; }
  size_t MaxBatchSize() const override { return 1; }

  // The hash slot (shard) serving `key`.
  size_t ShardOf(const std::string& key) const {
    return std::hash<std::string>{}(key) % num_shards_;
  }

  // MSET: atomic multi-key write *within one shard*. Returns
  // kInvalidArgument (CROSSSLOT in real Redis) if the keys span shards.
  Status MSet(std::span<const WriteOp> ops);

  size_t num_shards() const { return num_shards_; }

 private:
  const size_t num_shards_;
};

}  // namespace aft

#endif  // SRC_STORAGE_SIM_REDIS_H_
