#include "src/storage/storage_engine.h"

#include <utility>

#include "src/common/small_vector.h"

namespace aft {

void StorageEngine::BatchPutEach(std::span<WriteOp> ops, std::span<Status> statuses) {
  for (size_t i = 0; i < ops.size(); ++i) {
    statuses[i] = Put(std::move(ops[i].key), std::move(ops[i].value));
  }
}

void StorageEngine::CommitUnits(std::span<CommitUnit> units, std::span<Status> results) {
  for (Status& r : results) {
    r = Status::Ok();
  }
  if (units.empty()) {
    return;
  }
  if (units.size() == 1) {
    // Solo fast path: identical to the legacy unbatched commit sequence
    // (data flush, then the record once the flush is acknowledged), so a
    // single writer pays no batching overhead — and no extra allocations.
    Status flushed = BatchPutConsume(units[0].data_ops);
    if (!flushed.ok()) {
      results[0] = std::move(flushed);
      return;
    }
    results[0] = Put(std::move(units[0].commit_record.key),
                     std::move(units[0].commit_record.value));
    return;
  }

  // Round 1: every unit's data versions in one merged write. `owner` maps
  // each flattened op back to its unit so a per-op failure poisons exactly
  // that unit.
  SmallVector<WriteOp, 16> flat;
  SmallVector<size_t, 16> owner;
  for (size_t u = 0; u < units.size(); ++u) {
    for (WriteOp& op : units[u].data_ops) {
      flat.push_back(std::move(op));
      owner.push_back(u);
    }
  }
  SmallVector<Status, 16> op_status;
  op_status.reserve(flat.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    op_status.push_back(Status::Ok());
  }
  BatchPutEach(std::span<WriteOp>(flat.data(), flat.size()),
               std::span<Status>(op_status.data(), op_status.size()));
  for (size_t i = 0; i < op_status.size(); ++i) {
    if (!op_status[i].ok() && results[owner[i]].ok()) {
      results[owner[i]] = std::move(op_status[i]);
    }
  }

  // Round 2: commit records of the surviving units only. BatchPutEach
  // returns after every round-1 write completed (the engines' batch calls
  // are synchronous), so this round starts strictly after each survivor's
  // data is durable — the §3.3 barrier, paid once for the whole batch.
  SmallVector<WriteOp, 16> records;
  SmallVector<size_t, 16> record_owner;
  for (size_t u = 0; u < units.size(); ++u) {
    if (results[u].ok()) {
      records.push_back(std::move(units[u].commit_record));
      record_owner.push_back(u);
    }
  }
  if (records.empty()) {
    return;
  }
  SmallVector<Status, 16> record_status;
  record_status.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    record_status.push_back(Status::Ok());
  }
  BatchPutEach(std::span<WriteOp>(records.data(), records.size()),
               std::span<Status>(record_status.data(), record_status.size()));
  for (size_t i = 0; i < record_status.size(); ++i) {
    results[record_owner[i]] = std::move(record_status[i]);
  }
}

}  // namespace aft
