#include "src/storage/storage_engine.h"

#include <chrono>
#include <utility>

#include "src/common/contention.h"
#include "src/common/io_executor.h"
#include "src/common/small_vector.h"

namespace aft {

namespace {

using StageClock = std::chrono::steady_clock;

}  // namespace

void StorageEngine::BatchPutEach(std::span<WriteOp> ops, std::span<Status> statuses) {
  for (size_t i = 0; i < ops.size(); ++i) {
    statuses[i] = Put(std::move(ops[i].key), std::move(ops[i].value));
  }
}

void StorageEngine::CommitUnits(std::span<CommitUnit> units, std::span<Status> results,
                                CommitStageProfile* profile) {
  for (Status& r : results) {
    r = Status::Ok();
  }
  if (units.empty()) {
    return;
  }
  // Stage attribution (both rounds): wall time of the data round minus the
  // ParallelFor straggler wait is data_flush, the straggler wait itself is
  // the §3.3 barrier, and the record round's wall time is record_write.
  // The engines' concurrent batch dispatch runs ParallelFor on THIS thread,
  // so the thread-local latch accumulator attributes correctly; consuming
  // it up front discards any stale remainder from unrelated calls.
  const bool timed = profile != nullptr && contention::StageTimingEnabled();
  if (timed) {
    IoExecutor::ConsumeLatchWaitNanos();
  }
  if (units.size() == 1) {
    // Solo fast path: identical to the legacy unbatched commit sequence
    // (data flush, then the record once the flush is acknowledged), so a
    // single writer pays no batching overhead — and no extra allocations.
    // Stage boundaries are shared clock readings (see CommitStageProfile):
    // two reads total when the caller supplied `start`.
    const auto flush_start =
        !timed ? StageClock::time_point{}
        : profile->start != StageClock::time_point{} ? profile->start
                                                     : StageClock::now();
    Status flushed = BatchPutConsume(units[0].data_ops);
    StageClock::time_point flush_end{};
    if (timed) {
      flush_end = StageClock::now();
      const double flush_wall_s = std::chrono::duration<double>(flush_end - flush_start).count();
      profile->barrier_s = static_cast<double>(IoExecutor::ConsumeLatchWaitNanos()) * 1e-9;
      profile->data_flush_s = flush_wall_s - profile->barrier_s;
    }
    if (!flushed.ok()) {
      results[0] = std::move(flushed);
      return;
    }
    results[0] = Put(std::move(units[0].commit_record.key),
                     std::move(units[0].commit_record.value));
    if (timed) {
      profile->end = StageClock::now();
      profile->record_write_s = std::chrono::duration<double>(profile->end - flush_end).count();
    }
    return;
  }

  // Round 1: every unit's data versions in one merged write. `owner` maps
  // each flattened op back to its unit so a per-op failure poisons exactly
  // that unit.
  SmallVector<WriteOp, 16> flat;
  SmallVector<size_t, 16> owner;
  for (size_t u = 0; u < units.size(); ++u) {
    for (WriteOp& op : units[u].data_ops) {
      flat.push_back(std::move(op));
      owner.push_back(u);
    }
  }
  SmallVector<Status, 16> op_status;
  op_status.reserve(flat.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    op_status.push_back(Status::Ok());
  }
  const auto flush_start =
      !timed ? StageClock::time_point{}
      : profile->start != StageClock::time_point{} ? profile->start
                                                   : StageClock::now();
  BatchPutEach(std::span<WriteOp>(flat.data(), flat.size()),
               std::span<Status>(op_status.data(), op_status.size()));
  StageClock::time_point flush_end{};
  if (timed) {
    flush_end = StageClock::now();
    const double flush_wall_s = std::chrono::duration<double>(flush_end - flush_start).count();
    profile->barrier_s = static_cast<double>(IoExecutor::ConsumeLatchWaitNanos()) * 1e-9;
    profile->data_flush_s = flush_wall_s - profile->barrier_s;
  }
  for (size_t i = 0; i < op_status.size(); ++i) {
    if (!op_status[i].ok() && results[owner[i]].ok()) {
      results[owner[i]] = std::move(op_status[i]);
    }
  }

  // Round 2: commit records of the surviving units only. BatchPutEach
  // returns after every round-1 write completed (the engines' batch calls
  // are synchronous), so this round starts strictly after each survivor's
  // data is durable — the §3.3 barrier, paid once for the whole batch.
  SmallVector<WriteOp, 16> records;
  SmallVector<size_t, 16> record_owner;
  for (size_t u = 0; u < units.size(); ++u) {
    if (results[u].ok()) {
      records.push_back(std::move(units[u].commit_record));
      record_owner.push_back(u);
    }
  }
  if (records.empty()) {
    return;
  }
  SmallVector<Status, 16> record_status;
  record_status.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    record_status.push_back(Status::Ok());
  }
  BatchPutEach(std::span<WriteOp>(records.data(), records.size()),
               std::span<Status>(record_status.data(), record_status.size()));
  if (timed) {
    // record_write opens at the shared flush boundary (absorbing the
    // record-assembly loop above) and its internal straggler wait is part of
    // writing the records, not a second barrier; fold it in and reset the
    // accumulator.
    profile->end = StageClock::now();
    profile->record_write_s = std::chrono::duration<double>(profile->end - flush_end).count();
    IoExecutor::ConsumeLatchWaitNanos();
  }
  for (size_t i = 0; i < record_status.size(); ++i) {
    results[record_owner[i]] = std::move(record_status[i]);
  }
}

}  // namespace aft
