// Shared machinery for the simulated cloud storage engines: latency charging,
// staleness sampling, counters, and the versioned backing map.

#ifndef SRC_STORAGE_SIM_ENGINE_BASE_H_
#define SRC_STORAGE_SIM_ENGINE_BASE_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/latency.h"
#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/storage/storage_engine.h"
#include "src/storage/versioned_map.h"

namespace aft {

// Latency models per operation class. Batched writes cost
// `batch_base + batch_per_item * n` (sampled jointly).
struct EngineLatencyProfile {
  LatencyModel get;
  LatencyModel put;
  LatencyModel erase;
  LatencyModel list;
  LatencyModel batch_base;
  LatencyModel batch_per_item;
};

// Returns the calling thread's private generator, seeded once per thread.
Rng& ThreadLocalRng();

// Bulk maintenance read: bypasses latency charging on the simulated engines
// (falls back to a regular Get otherwise). Used by off-critical-path
// streaming scans — node bootstrap and the fault manager's commit-set scan —
// whose cost is either irrelevant to any measurement or modelled explicitly
// (the §6.7 cache-warm delay).
Result<std::string> MaintenanceRead(StorageEngine& storage, const std::string& key);

class SimEngineBase : public StorageEngine {
 public:
  SimEngineBase(std::string name, Clock& clock, EngineLatencyProfile profile,
                StalenessModel staleness, size_t map_shards);

  // Transient-fault injection: every subsequent operation independently
  // fails with `probability` (HTTP 500 / throttling). Reads fail after
  // charging latency; writes fail BEFORE mutating state (the conservative
  // model — a request that failed after applying behaves like a success
  // whose ack was lost, which AFT's idempotent retries already cover).
  void InjectTransientFaults(double probability) {
    fault_probability_.store(probability, std::memory_order_relaxed);
  }

  // Models the client SDK's bounded connection pool: at most `n` API calls
  // may be in flight against this engine simultaneously; extra callers
  // queue for a free slot, exactly like callers of a saturated HTTP
  // connection pool. 0 (the default) = unbounded, which preserves the
  // historical behaviour of every existing bench and test. A bounded pool
  // is the shared resource that makes cross-transaction commit batching
  // pay on the simulated engines: k concurrent transactions issuing one
  // merged call pass the pool once instead of k times.
  void SetMaxConcurrentRequests(size_t n);

  Result<std::string> Get(const std::string& key) override;
  // Native ranged read: charges the get latency for `length` bytes only.
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override;
  // Concurrent per-key Gets on the shared IoExecutor (a real client fans
  // out parallel requests); k keys cost ~one get-latency sample, not k.
  std::vector<Result<std::string>> MultiGet(std::span<const std::string> keys) override;
  Status Put(std::string key, std::string value) override;
  // Multi-op writes dispatch concurrently on the shared IoExecutor: engines
  // without a batch API issue per-key Puts in parallel, batch engines issue
  // their MaxBatchSize() chunks in parallel. Like the real APIs, the batch
  // is NOT atomic — every op is attempted even after one fails (in-flight
  // parallel writes cannot be recalled) and the first error by op index is
  // returned.
  Status BatchPut(std::span<const WriteOp> ops) override;
  // Consuming variant: identical charging and dispatch, but key/value move
  // through into the backing map. Single-chunk batches skip the executor's
  // std::function indirection entirely (the executor runs n==1 inline
  // anyway), which keeps the commit flush allocation-free. Per-key dispatch
  // still goes through the virtual Put so subclass interception (fault
  // injection in tests) keeps working.
  Status BatchPutConsume(std::span<WriteOp> ops) override;
  // Per-op-outcome variant feeding CommitUnits: same concurrent dispatch as
  // BatchPutConsume, but each op's (or its chunk's) status lands in
  // `statuses` so one transaction's failed write poisons only that
  // transaction, never its batch-mates.
  void BatchPutEach(std::span<WriteOp> ops, std::span<Status> statuses) override;
  Status Delete(const std::string& key) override;
  Status BatchDelete(std::span<const std::string> keys) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;

  std::string_view name() const override { return name_; }
  const StorageCounters& counters() const override { return counters_; }

  // Maintenance hooks for dataset loading and tests: bypass latency,
  // staleness and counters entirely.
  std::optional<std::string> PeekLatest(const std::string& key) const {
    return map_.GetLatest(key);
  }
  void DirectPut(const std::string& key, const std::string& value) {
    map_.Put(key, value, clock_.Now());
  }
  size_t ApproximateKeyCount() const { return map_.ApproximateKeyCount(); }

  Clock& clock() { return clock_; }

 protected:
  // Sleeps for one sample of `model` with the given payload size. When
  // `latency` is given, the sampled duration is also observed into that
  // per-op histogram (aft_storage_op_latency_ms{engine=,op=}).
  void Charge(const LatencyModel& model, uint64_t bytes = 0,
              obs::Histogram* latency = nullptr);

  // Per-op latency instruments (get/put/delete/list/batch), shared by every
  // engine instance with the same name.
  obs::Histogram* op_latency_get_ = nullptr;
  obs::Histogram* op_latency_put_ = nullptr;
  obs::Histogram* op_latency_delete_ = nullptr;
  obs::Histogram* op_latency_list_ = nullptr;
  obs::Histogram* op_latency_batch_ = nullptr;

  // One batched API call covering `chunk` (size <= MaxBatchSize()).
  Status PutBatchChunk(std::span<const WriteOp> chunk);
  // Same charging, but moves each op's key/value into the backing map.
  Status PutBatchChunkConsume(std::span<WriteOp> chunk);
  Status DeleteBatchChunk(std::span<const std::string> chunk);

  // The timestamp this read observes the store at: `Now()` for consistent
  // engines / fresh reads, an earlier instant for stale reads. Staleness is
  // only applied to keys that have been overwritten (see VersionedMap).
  TimePoint SampleReadAsOf(const std::string& key);

  // Rolls the transient-fault die; true == this operation fails.
  bool ShouldFail();

  Clock& clock_;
  const EngineLatencyProfile profile_;
  const StalenessModel staleness_;
  VersionedMap map_;
  StorageCounters counters_;

  // RAII pool slot around one charged API call. No-op while the pool is
  // unbounded (one relaxed atomic load), so the default configuration adds
  // nothing to the hot path.
  class ConnectionSlot {
   public:
    explicit ConnectionSlot(SimEngineBase& engine);
    ~ConnectionSlot();
    ConnectionSlot(const ConnectionSlot&) = delete;
    ConnectionSlot& operator=(const ConnectionSlot&) = delete;

   private:
    SimEngineBase& engine_;
    bool acquired_ = false;
  };

 private:
  const std::string name_;
  std::atomic<double> fault_probability_{0.0};
  // Connection pool (see SetMaxConcurrentRequests). `pool_limit_hint_`
  // mirrors the guarded limit so the unbounded fast path never locks.
  std::atomic<size_t> pool_limit_hint_{0};
  Mutex pool_mu_;
  CondVar pool_cv_;
  size_t pool_limit_ GUARDED_BY(pool_mu_) = 0;
  size_t pool_in_use_ GUARDED_BY(pool_mu_) = 0;
  // Callback metrics wrapping `counters_` ({engine=name_} labels); values
  // are read from this instance's atomics at exposition time.
  std::vector<obs::ScopedMetricCallback> metric_callbacks_;
};

}  // namespace aft

#endif  // SRC_STORAGE_SIM_ENGINE_BASE_H_
