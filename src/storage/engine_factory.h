// Engine selection by name, shared by aft_server's --engine flag, benches
// and tests.

#ifndef SRC_STORAGE_ENGINE_FACTORY_H_
#define SRC_STORAGE_ENGINE_FACTORY_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/storage/local_engine.h"
#include "src/storage/storage_engine.h"

namespace aft {

struct EngineFactoryConfig {
  // Required for the "local" engine; ignored by the simulated ones.
  std::string data_dir;
  LocalEngineOptions local;
};

// Known names: "s3", "dynamo", "redis" (simulated; driven by `clock`) and
// "local" (durable WAL engine under config.data_dir; real time).
Result<std::unique_ptr<StorageEngine>> MakeStorageEngine(std::string_view name, Clock& clock,
                                                         const EngineFactoryConfig& config = {});

}  // namespace aft

#endif  // SRC_STORAGE_ENGINE_FACTORY_H_
