#include "src/storage/sim_dynamo.h"

#include <algorithm>

namespace aft {

bool SimDynamo::TryLockAll(std::span<const std::string> keys) {
  MutexLock lock(lock_table_mu_);
  for (const std::string& key : keys) {
    if (locked_keys_.contains(key)) {
      return false;
    }
  }
  for (const std::string& key : keys) {
    locked_keys_.insert(key);
  }
  return true;
}

void SimDynamo::UnlockAll(std::span<const std::string> keys) {
  MutexLock lock(lock_table_mu_);
  for (const std::string& key : keys) {
    locked_keys_.erase(key);
  }
}

Result<std::vector<std::optional<std::string>>> SimDynamo::TransactGet(
    std::span<const std::string> keys) {
  txn_counters_.txn_gets.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::string> key_vec(keys.begin(), keys.end());
  // Items stay locked for the duration of the transaction protocol (the API
  // call), which is what makes concurrent transactions on hot keys conflict —
  // the effect Figure 4 measures under high skew.
  if (!TryLockAll(key_vec)) {
    txn_counters_.txn_conflicts.fetch_add(1, std::memory_order_relaxed);
    Charge(txn_call_.Scaled(0.5));  // The cancelled request still round-trips.
    return Status::Aborted("TransactionCanceledException: TransactionConflict");
  }
  Charge(txn_call_);
  // Transactional reads are strongly consistent: read the latest value while
  // holding the item locks.
  std::vector<std::optional<std::string>> out;
  out.reserve(key_vec.size());
  for (const std::string& key : key_vec) {
    auto value = map_.GetLatest(key);
    if (value.has_value()) {
      counters_.bytes_read.fetch_add(value->size(), std::memory_order_relaxed);
    }
    out.push_back(std::move(value));
  }
  UnlockAll(key_vec);
  return out;
}

Status SimDynamo::TransactWrite(std::span<const WriteOp> ops) {
  txn_counters_.txn_writes.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  uint64_t bytes = 0;
  std::vector<std::string> key_vec;
  key_vec.reserve(ops.size());
  for (const WriteOp& op : ops) {
    key_vec.push_back(op.key);
    bytes += op.value.size();
  }
  if (!TryLockAll(key_vec)) {
    txn_counters_.txn_conflicts.fetch_add(1, std::memory_order_relaxed);
    Charge(txn_call_.Scaled(0.5));  // The cancelled request still round-trips.
    return Status::Aborted("TransactionCanceledException: TransactionConflict");
  }
  Charge(txn_call_, bytes);
  counters_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  const TimePoint now = clock_.Now();
  for (const WriteOp& op : ops) {
    map_.Put(op.key, op.value, now);
  }
  UnlockAll(key_vec);
  return Status::Ok();
}

}  // namespace aft
