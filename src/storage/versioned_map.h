// Sharded in-memory backing store with per-key version history.
//
// Every simulated engine is backed by one of these. The version history (a
// short list of <value, write time> entries per key) exists solely to model
// *eventual consistency*: a stale read is served the value that was current
// at `now - staleness` for a sampled staleness. AFT itself never overwrites
// keys, so its own data is immune to staleness by construction — exactly the
// property the paper's protocols rely on (each key version maps to a unique
// storage key, §3.3).

#ifndef SRC_STORAGE_VERSIONED_MAP_H_
#define SRC_STORAGE_VERSIONED_MAP_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/pool_allocator.h"
#include "src/common/small_vector.h"

namespace aft {

// Staleness model for eventually consistent reads. A read is stale with
// probability `stale_probability`; a stale read observes the state as of
// `now - Exp(mean_staleness)`. Staleness applies only to keys that have been
// overwritten (new-key PUTs are read-after-write consistent, matching
// 2020-era S3 and making AFT's never-overwrite layout immune).
struct StalenessModel {
  double stale_probability = 0.0;
  Duration mean_staleness = Duration::zero();

  bool IsConsistent() const { return stale_probability <= 0.0; }
};

class VersionedMap {
 public:
  // `num_shards` bounds lock contention; `history_depth` bounds the per-key
  // version list used for stale reads.
  explicit VersionedMap(size_t num_shards = 16, size_t history_depth = 8);

  // Writes `key = value` at time `now`. By-value: hot callers move exact-
  // sized buffers straight into the map (a fresh key's string and first
  // history entry land inline / pooled without a copy).
  void Put(std::string key, std::string value, TimePoint now);

  // Returns the value visible at time `as_of` (the newest entry written at
  // or before `as_of`); nullopt if the key did not exist then. `was_stale`
  // (optional) reports whether an older-than-latest entry was served.
  std::optional<std::string> Get(const std::string& key, TimePoint as_of,
                                 bool* was_stale = nullptr) const;

  // Returns the latest value regardless of as_of.
  std::optional<std::string> GetLatest(const std::string& key) const;

  // Removes the key at time `now` (writes a tombstone so in-flight stale
  // reads can still see the pre-delete value).
  void Delete(const std::string& key, TimePoint now);

  // Lexicographically ordered live keys with the given prefix.
  std::vector<std::string> List(const std::string& prefix) const;

  // True if the key has been overwritten at least once (drives the
  // staleness-only-on-overwrite rule).
  bool HasHistory(const std::string& key) const;

  size_t ApproximateKeyCount() const;
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    std::optional<std::string> value;  // nullopt == tombstone.
    TimePoint write_time;
  };
  // AFT's own data never overwrites a key (§3.3), so the history of almost
  // every key is exactly one entry — stored inline in the map node. Tree
  // nodes recycle through a per-shard pool, so steady-state Put/Delete churn
  // stops hitting the global heap.
  using History = SmallVector<Entry, 1>;
  using ShardMap = std::map<std::string, History, std::less<>,
                            PoolAllocator<std::pair<const std::string, History>>>;
  struct Shard {
    mutable Mutex mu;
    ShardMap data GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  const size_t history_depth_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace aft

#endif  // SRC_STORAGE_VERSIONED_MAP_H_
