// Simulated AWS DynamoDB.
//
// Behavioural model:
//  * per-item GET/PUT with single-digit-millisecond medians;
//  * BatchWriteItem: up to 25 items per request, non-atomic, far cheaper than
//    sequential PUTs (this is the batching AFT's commit protocol exploits,
//    Figure 2);
//  * eventually consistent reads for overwritten items (DynamoDB's default
//    read mode) — drives the Plain-DynamoDB anomaly counts of Table 2;
//  * transaction mode (§6.1.2, [13]): TransactGetItems / TransactWriteItems,
//    serializable, read-only XOR write-only, one API call per transaction,
//    proactive conflict aborts (TransactionCanceledException) that the
//    caller must retry.

#ifndef SRC_STORAGE_SIM_DYNAMO_H_
#define SRC_STORAGE_SIM_DYNAMO_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"
#include "src/storage/sim_engine_base.h"

namespace aft {

struct SimDynamoOptions {
  EngineLatencyProfile profile = {
      /*get=*/LatencyModel(4.0, 0.3, 1.2, 0.02),
      /*put=*/LatencyModel(4.5, 0.32, 1.5, 0.03),
      /*erase=*/LatencyModel(4.0, 0.3, 1.2),
      /*list=*/LatencyModel(12.0, 0.4, 4.0),
      /*batch_base=*/LatencyModel(4.8, 0.35, 1.8, 0.01),
      /*batch_per_item=*/LatencyModel(0.15, 0.2),
  };
  // Default (eventually consistent) reads can observe slightly stale data
  // for overwritten items.
  StalenessModel staleness = {/*stale_probability=*/0.35, /*mean_staleness=*/Millis(35)};
  // One TransactWriteItems/TransactGetItems call costs roughly 2-3x a plain
  // op (two-phase item locking inside DynamoDB).
  LatencyModel txn_call = LatencyModel(12.0, 0.4, 4.0, 0.03);
  size_t map_shards = 16;
};

// Counters specific to transaction mode.
struct DynamoTxnCounters {
  std::atomic<uint64_t> txn_gets{0};
  std::atomic<uint64_t> txn_writes{0};
  std::atomic<uint64_t> txn_conflicts{0};
};

class SimDynamo final : public SimEngineBase {
 public:
  explicit SimDynamo(Clock& clock, SimDynamoOptions options = {})
      : SimEngineBase("dynamodb", clock, options.profile, options.staleness, options.map_shards),
        txn_call_(options.txn_call) {}

  bool SupportsBatchPut() const override { return true; }
  size_t MaxBatchSize() const override { return 25; }  // BatchWriteItem limit.
  double client_cpu_factor() const override { return 1.45; }  // HTTPS + JSON.

  // ---- Transaction mode ----------------------------------------------------
  // Serializable multi-item read. Returns one entry per key (nullopt for
  // missing keys), or kAborted if any key is locked by an in-flight
  // transactional write.
  Result<std::vector<std::optional<std::string>>> TransactGet(
      std::span<const std::string> keys);

  // Serializable atomic multi-item write. Returns kAborted on conflict with
  // a concurrent transactional operation on any of the keys.
  Status TransactWrite(std::span<const WriteOp> ops);

  const DynamoTxnCounters& txn_counters() const { return txn_counters_; }

 private:
  // Acquires all keys or none. Returns false on conflict.
  bool TryLockAll(std::span<const std::string> keys);
  void UnlockAll(std::span<const std::string> keys);

  const LatencyModel txn_call_;
  DynamoTxnCounters txn_counters_;
  Mutex lock_table_mu_;
  std::unordered_set<std::string> locked_keys_ GUARDED_BY(lock_table_mu_);
};

}  // namespace aft

#endif  // SRC_STORAGE_SIM_DYNAMO_H_
