#include "src/storage/sim_redis.h"

namespace aft {

Status SimRedis::MSet(std::span<const WriteOp> ops) {
  if (ops.empty()) {
    return Status::Ok();
  }
  const size_t shard = ShardOf(ops.front().key);
  for (const WriteOp& op : ops) {
    if (ShardOf(op.key) != shard) {
      return Status::InvalidArgument("CROSSSLOT keys in request don't hash to the same slot");
    }
  }
  counters_.batch_puts.fetch_add(1, std::memory_order_relaxed);
  counters_.api_calls.fetch_add(1, std::memory_order_relaxed);
  uint64_t bytes = 0;
  for (const WriteOp& op : ops) {
    bytes += op.value.size();
  }
  counters_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  Charge(profile_.batch_base, bytes);
  for (size_t i = 0; i < ops.size(); ++i) {
    Charge(profile_.batch_per_item);
  }
  const TimePoint now = clock_.Now();
  for (const WriteOp& op : ops) {
    map_.Put(op.key, op.value, now);
  }
  return Status::Ok();
}

}  // namespace aft
