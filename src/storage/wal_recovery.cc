#include "src/storage/wal_recovery.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/crc32.h"
#include "src/common/logging.h"

namespace aft {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

// Reads exactly [offset, offset+len) or reports corruption/IO trouble.
Status PreadExact(int fd, char* dst, size_t len, uint64_t offset, const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, dst + done, len - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pread " + path);
    }
    if (n == 0) {
      return Status::Internal("short read in " + path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<WalFileInfo>> ListWalFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return ErrnoStatus("opendir " + dir);
  }
  std::vector<WalFileInfo> files;
  bool removed_tmp = false;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string_view name(entry->d_name);
    if (name == "." || name == "..") {
      continue;
    }
    if (name.ends_with(".tmp")) {
      const std::string path = dir + "/" + std::string(name);
      if (::unlink(path.c_str()) == 0) {
        AFT_LOG(Warn) << "wal recovery: removed staging file " << path
                      << " (compaction crashed before its rename)";
        removed_tmp = true;
      }
      continue;
    }
    uint64_t file_key = 0;
    if (!wal::ParseWalFileName(name, &file_key)) {
      continue;
    }
    const std::string path = dir + "/" + std::string(name);
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0) {
      ::closedir(d);
      return ErrnoStatus("stat " + path);
    }
    files.push_back(WalFileInfo{file_key, path, static_cast<uint64_t>(st.st_size)});
  }
  ::closedir(d);
  if (removed_tmp) {
    AFT_RETURN_IF_ERROR(wal::FsyncDir(dir));
  }
  std::sort(files.begin(), files.end(),
            [](const WalFileInfo& a, const WalFileInfo& b) { return a.file_key < b.file_key; });
  return files;
}

Result<WalReplayStats> ReplayWal(const std::string& dir,
                                 const std::function<void(const WalRecordEvent&)>& apply) {
  AFT_ASSIGN_OR_RETURN(std::vector<WalFileInfo> files, ListWalFiles(dir));
  WalReplayStats stats;
  std::string payload;  // reused across records; event views alias it
  bool corrupt = false;
  for (const WalFileInfo& file : files) {
    stats.max_seq = std::max(stats.max_seq, wal::FileSeq(file.file_key));
    if (corrupt) {
      // Rule 3: nothing after the first bad record may replay, and leaving
      // these files on disk would resurrect it on the NEXT recovery.
      if (::unlink(file.path.c_str()) != 0) {
        return ErrnoStatus("unlink " + file.path);
      }
      AFT_LOG(Warn) << "wal recovery: dropped " << file.path << " (follows a corrupt record)";
      stats.dropped_files += 1;
      continue;
    }
    const int fd = ::open(file.path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) {
      return ErrnoStatus("open " + file.path);
    }
    uint64_t offset = 0;
    while (offset < file.size) {
      if (offset + wal::kRecordHeaderSize > file.size) {
        corrupt = true;  // torn header at the tail
        break;
      }
      char header[wal::kRecordHeaderSize];
      Status read = PreadExact(fd, header, wal::kRecordHeaderSize, offset, file.path);
      if (!read.ok()) {
        ::close(fd);
        return read;
      }
      uint32_t payload_len = 0;
      uint32_t crc = 0;
      std::memcpy(&payload_len, header, 4);
      std::memcpy(&crc, header + 4, 4);
      if (payload_len > wal::kMaxRecordPayload ||
          offset + wal::kRecordHeaderSize + payload_len > file.size) {
        corrupt = true;  // hostile/corrupt length or torn payload
        break;
      }
      payload.resize(payload_len);
      read = PreadExact(fd, payload.data(), payload_len, offset + wal::kRecordHeaderSize,
                        file.path);
      if (!read.ok()) {
        ::close(fd);
        return read;
      }
      wal::RecordView view;
      if (Crc32(payload) != crc || !wal::DecodeRecordPayload(payload, &view)) {
        corrupt = true;
        break;
      }
      WalRecordEvent event;
      event.file_key = file.file_key;
      event.op = view.op;
      event.key = view.key;
      event.value = view.value;
      event.value_offset = offset + wal::ValueOffsetInRecord(view.key.size());
      event.record_bytes = wal::kRecordHeaderSize + payload_len;
      apply(event);
      stats.records += 1;
      stats.bytes += event.record_bytes;
      offset += event.record_bytes;
    }
    if (corrupt) {
      stats.truncated = true;
      stats.truncated_bytes = file.size - offset;
      AFT_LOG(Warn) << "wal recovery: truncating " << file.path << " at offset " << offset
                    << " (" << stats.truncated_bytes << " bytes after the first bad record)";
      if (::ftruncate(fd, static_cast<off_t>(offset)) != 0) {
        ::close(fd);
        return ErrnoStatus("ftruncate " + file.path);
      }
      int rc;
      do {
        rc = ::fdatasync(fd);
      } while (rc != 0 && errno == EINTR);
      if (rc != 0) {
        ::close(fd);
        return ErrnoStatus("fdatasync " + file.path);
      }
    }
    ::close(fd);
    stats.files += 1;
  }
  if (stats.dropped_files > 0) {
    AFT_RETURN_IF_ERROR(wal::FsyncDir(dir));
  }
  return stats;
}

}  // namespace aft
