#include "src/net/frame.h"

#include <array>
#include <cstring>

#include "src/common/serde.h"

namespace aft {
namespace net {

namespace {

struct ParsedHeader {
  uint8_t version = 0;
  MessageType type = MessageType::kPing;
  uint8_t flags = 0;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};

// Header-only validation; payload length/CRC are checked against the actual
// payload by the caller once the bytes are in hand.
Result<ParsedHeader> ParseHeader(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    return Status::InvalidArgument("truncated frame header (" + std::to_string(bytes.size()) +
                                   " of " + std::to_string(kFrameHeaderSize) + " bytes)");
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  ParsedHeader header;
  header.version = static_cast<uint8_t>(bytes[4]);
  if (header.version != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " + std::to_string(header.version) +
                                   " (this peer speaks " + std::to_string(kWireVersion) + ")");
  }
  header.type = static_cast<MessageType>(bytes[5]);
  if (!IsKnownMessageType(header.type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(static_cast<int>(header.type)));
  }
  // Unknown flag bits are ignored on read (versioning rules); known ones are
  // honored below when the payload is in hand.
  header.flags = static_cast<uint8_t>(bytes[6]);
  std::memcpy(&header.payload_len, bytes.data() + 8, 4);
  if (header.payload_len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " + std::to_string(header.payload_len) +
                                   " bytes exceeds the " + std::to_string(kMaxFramePayload) +
                                   "-byte limit");
  }
  std::memcpy(&header.crc, bytes.data() + 12, 4);
  return header;
}

// Pulls the 8-byte trace-id prefix off an already-CRC-verified payload.
Status StripTracePrefix(Frame* frame) {
  if (frame->payload.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("trace-flagged frame shorter than its trace id");
  }
  std::memcpy(&frame->trace_id, frame->payload.data(), sizeof(uint64_t));
  frame->payload.erase(0, sizeof(uint64_t));
  return Status::Ok();
}

}  // namespace

bool IsKnownMessageType(MessageType type) {
  const uint8_t base = static_cast<uint8_t>(RequestOf(type));
  return base >= static_cast<uint8_t>(MessageType::kStartTxn) &&
         base <= static_cast<uint8_t>(MessageType::kGetMetrics);
}

std::string_view MessageTypeName(MessageType type) {
  switch (RequestOf(type)) {
    case MessageType::kStartTxn:
      return "StartTxn";
    case MessageType::kAdoptTxn:
      return "AdoptTxn";
    case MessageType::kGet:
      return "Get";
    case MessageType::kMultiGet:
      return "MultiGet";
    case MessageType::kPut:
      return "Put";
    case MessageType::kPutBatch:
      return "PutBatch";
    case MessageType::kCommit:
      return "Commit";
    case MessageType::kAbort:
      return "Abort";
    case MessageType::kApplyCommits:
      return "ApplyCommits";
    case MessageType::kPing:
      return "Ping";
    case MessageType::kGetMetrics:
      return "GetMetrics";
    default:
      return "Unknown";
  }
}

std::string EncodeFrame(MessageType type, std::string_view payload, uint64_t trace_id) {
  std::string traced_payload;
  if (trace_id != 0) {
    traced_payload.reserve(sizeof(uint64_t) + payload.size());
    traced_payload.append(reinterpret_cast<const char*>(&trace_id), sizeof(uint64_t));
    traced_payload.append(payload);
    payload = traced_payload;
  }
  BinaryWriter writer;
  writer.PutU32(kFrameMagic);
  writer.PutU8(kWireVersion);
  writer.PutU8(static_cast<uint8_t>(type));
  writer.PutU8(trace_id != 0 ? kFrameFlagTraceContext : 0);  // flags
  writer.PutU8(0);                                           // reserved
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  writer.PutU32(Crc32(payload));
  std::string bytes = std::move(writer).TakeData();
  bytes.append(payload);
  return bytes;
}

Result<Frame> DecodeFrame(std::string_view bytes) {
  AFT_ASSIGN_OR_RETURN(ParsedHeader header, ParseHeader(bytes));
  const std::string_view payload = bytes.substr(kFrameHeaderSize);
  if (payload.size() < header.payload_len) {
    return Status::InvalidArgument("truncated frame payload (" + std::to_string(payload.size()) +
                                   " of " + std::to_string(header.payload_len) + " bytes)");
  }
  Frame frame;
  frame.type = header.type;
  frame.payload.assign(payload.data(), header.payload_len);
  if (Crc32(frame.payload) != header.crc) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  if ((header.flags & kFrameFlagTraceContext) != 0) {
    AFT_RETURN_IF_ERROR(StripTracePrefix(&frame));
  }
  return frame;
}

Result<size_t> DecodeFrameFromBuffer(std::string_view buffer, Frame* out) {
  if (buffer.size() < kFrameHeaderSize) {
    return static_cast<size_t>(0);
  }
  AFT_ASSIGN_OR_RETURN(ParsedHeader header, ParseHeader(buffer));
  const size_t total = kFrameHeaderSize + header.payload_len;
  if (buffer.size() < total) {
    return static_cast<size_t>(0);
  }
  out->type = header.type;
  out->trace_id = 0;
  out->payload.assign(buffer.data() + kFrameHeaderSize, header.payload_len);
  if (Crc32(out->payload) != header.crc) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  if ((header.flags & kFrameFlagTraceContext) != 0) {
    AFT_RETURN_IF_ERROR(StripTracePrefix(out));
  }
  return total;
}

Result<FrameBytes> SealFrame(MessageType type, SegmentBuffer payload, uint64_t trace_id) {
  const size_t trace_len = trace_id != 0 ? sizeof(uint64_t) : 0;
  const size_t wire_payload_len = trace_len + payload.size();
  if (wire_payload_len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " + std::to_string(wire_payload_len) +
                                   " bytes exceeds the " + std::to_string(kMaxFramePayload) +
                                   "-byte limit");
  }
  // Length and CRC cover the trace prefix + payload, exactly as EncodeFrame.
  uint32_t crc_state = Crc32Begin();
  if (trace_len != 0) {
    crc_state = Crc32Feed(crc_state, &trace_id, trace_len);
  }
  payload.ForEachSpan([&crc_state](const char* data, size_t len) {
    crc_state = Crc32Feed(crc_state, data, len);
  });
  const uint32_t crc = Crc32End(crc_state);

  FrameBytes frame;
  frame.type = type;
  const uint32_t magic = kFrameMagic;
  std::memcpy(frame.head, &magic, 4);
  frame.head[4] = static_cast<char>(kWireVersion);
  frame.head[5] = static_cast<char>(type);
  frame.head[6] = static_cast<char>(trace_len != 0 ? kFrameFlagTraceContext : 0);
  frame.head[7] = 0;  // reserved
  const uint32_t len32 = static_cast<uint32_t>(wire_payload_len);
  std::memcpy(frame.head + 8, &len32, 4);
  std::memcpy(frame.head + 12, &crc, 4);
  frame.head_len = kFrameHeaderSize;
  if (trace_len != 0) {
    std::memcpy(frame.head + kFrameHeaderSize, &trace_id, trace_len);
    frame.head_len += trace_len;
  }
  frame.payload = std::move(payload);
  return frame;
}

size_t FillFrameIovecs(const FrameBytes& frame, size_t skip, struct iovec* iov, size_t max_iov) {
  size_t count = 0;
  if (skip < frame.head_len && count < max_iov) {
    iov[count].iov_base = const_cast<char*>(frame.head) + skip;
    iov[count].iov_len = frame.head_len - skip;
    ++count;
    skip = 0;
  } else {
    skip -= frame.head_len;
  }
  const size_t spans = frame.payload.SpanCount();
  for (size_t i = 0; i < spans && count < max_iov; ++i) {
    const auto [data, len] = frame.payload.Span(i);
    if (skip >= len) {
      skip -= len;
      continue;
    }
    iov[count].iov_base = const_cast<char*>(data) + skip;
    iov[count].iov_len = len - skip;
    ++count;
    skip = 0;
  }
  return count;
}

Status WriteFrame(Socket& socket, MessageType type, std::string_view payload,
                  uint64_t trace_id) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " + std::to_string(payload.size()) +
                                   " bytes exceeds the " + std::to_string(kMaxFramePayload) +
                                   "-byte limit");
  }
  return socket.SendAll(EncodeFrame(type, payload, trace_id));
}

Status WriteFrameBytes(Socket& socket, const FrameBytes& frame) {
  size_t sent = 0;
  const size_t total = frame.size();
  while (sent < total) {
    struct iovec iov[64];
    const size_t count = FillFrameIovecs(frame, sent, iov, 64);
    AFT_RETURN_IF_ERROR(socket.SendAllV(iov, count));
    for (size_t i = 0; i < count; ++i) {
      sent += iov[i].iov_len;
    }
  }
  return Status::Ok();
}

Result<Frame> ReadFrame(Socket& socket) {
  char header_bytes[kFrameHeaderSize];
  AFT_RETURN_IF_ERROR(socket.RecvAll(header_bytes, kFrameHeaderSize));
  AFT_ASSIGN_OR_RETURN(ParsedHeader header,
                       ParseHeader(std::string_view(header_bytes, kFrameHeaderSize)));
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    AFT_RETURN_IF_ERROR(socket.RecvAll(frame.payload.data(), header.payload_len));
  }
  if (Crc32(frame.payload) != header.crc) {
    return Status::InvalidArgument("frame CRC mismatch");
  }
  if ((header.flags & kFrameFlagTraceContext) != 0) {
    AFT_RETURN_IF_ERROR(StripTracePrefix(&frame));
  }
  return frame;
}

}  // namespace net
}  // namespace aft
