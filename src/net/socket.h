// Thin RAII wrappers over POSIX TCP sockets (loopback transport, §4).
//
// The net layer is the only part of the tree that touches real file
// descriptors; everything above it speaks `Status`. Deadlines are real-time
// (SO_RCVTIMEO / SO_SNDTIMEO): unlike the simulated storage latencies, wire
// I/O is genuinely asynchronous hardware, so the `Clock` abstraction does not
// apply here.
//
// Error mapping:
//   * connection refused / reset / EOF mid-read  -> kUnavailable
//   * deadline exceeded (EAGAIN under SO_*TIMEO) -> kTimeout
//   * anything else                              -> kInternal

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <sys/uio.h>

#include <cstdint>
#include <string>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace aft {
namespace net {

// A host:port pair. The in-repo deployments only ever bind loopback; the
// host field exists so a RemoteAftClient config reads like a real one.
struct NetEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
};

// Owns one connected stream socket. Move-only. The fd is fixed for the
// lifetime of the object (no rebind), so concurrent Shutdown() from another
// thread — the clean-shutdown idiom used by the server — is race-free.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Sends exactly `len` bytes (MSG_NOSIGNAL: a dead peer surfaces as EPIPE,
  // never as a process-killing SIGPIPE).
  Status SendAll(const char* data, size_t len);
  Status SendAll(const std::string& data) { return SendAll(data.data(), data.size()); }

  // Receives exactly `len` bytes. EOF before `len` is kUnavailable: with a
  // length-prefixed framing a short read is always a torn frame or a closed
  // peer, never a legal message boundary.
  Status RecvAll(char* data, size_t len);

  // Single-shot partial I/O for the non-blocking event loop. Both return the
  // byte count actually moved (>= 1), or:
  //   * kTimeout      — the operation would block (EAGAIN); try again after
  //                     the next readiness event;
  //   * kUnavailable  — orderly EOF (recv) or a dead peer;
  //   * kInternal     — anything else.
  Result<size_t> RecvSome(char* data, size_t len);
  Result<size_t> SendSome(const char* data, size_t len);

  // Scatter-gather variants (sendmsg with MSG_NOSIGNAL): the zero-copy path
  // hands frame header + arena payload segments to the kernel as iovecs, so
  // a multi-segment frame costs one syscall and no coalescing copy.
  // SendSomeV is the single-shot non-blocking form (same error mapping as
  // SendSome); SendAllV loops until every byte of every iovec is out,
  // windowing past the kernel's per-call IOV_MAX. Both clamp `iovcnt`
  // internally; SendAllV does not modify the caller's array.
  Result<size_t> SendSomeV(const struct iovec* iov, size_t iovcnt);
  Status SendAllV(const struct iovec* iov, size_t iovcnt);

  // Switches the fd between blocking (the default) and non-blocking mode.
  Status SetNonBlocking(bool enabled);

  // Per-operation deadlines. Duration::zero() disables the deadline.
  Status SetRecvTimeout(Duration d);
  Status SetSendTimeout(Duration d);

  // Disables Nagle: every frame is a complete request or response, so
  // coalescing only adds latency.
  Status SetNoDelay();

  // Half-duplex teardown from any thread: wakes a peer (or our own handler
  // thread) blocked in recv() with an orderly EOF. Does NOT close the fd —
  // the owning thread still does that, so there is no close/use race.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

// Blocking connect with a real-time deadline (non-blocking connect + poll).
Result<Socket> TcpConnect(const NetEndpoint& endpoint, Duration timeout);

// A listening socket bound to loopback. `Accept` blocks until a connection
// arrives or `Shutdown` is called from another thread (shutdown-then-join is
// the server's clean exit path; see AftServiceServer::Stop).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) { other.fd_ = -1; }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) with
  // SO_REUSEADDR so a restarted server can take over the address.
  static Result<Listener> Bind(uint16_t port);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

  // kUnavailable once Shutdown() has been called.
  Result<Socket> Accept();

  // Wakes a blocked Accept. Callable from any thread; idempotent.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_SOCKET_H_
