// Length-prefixed, versioned, checksummed binary framing (wire protocol v1).
//
// Every message on an AFT connection — request, response, or commit
// multicast — travels as one frame:
//
//     offset  size  field
//     0       4     magic      0x41465431 ("AFT1", little-endian on the wire)
//     4       1     version    kWireVersion; bump on incompatible change
//     5       1     type       MessageType
//     6       1     flags      bit 0 = trace context present (see below);
//                              other bits reserved, written 0, ignored on read
//     7       1     reserved   must be 0 (future flags)
//     8       4     payload length (bytes; <= kMaxFramePayload)
//     12      4     CRC-32 (IEEE 802.3) of the payload
//     16      ...   payload (src/common/serde.h encoding, see message.h)
//
// Trace context: when header flag bit 0 is set, the payload begins with an
// 8-byte little-endian trace id (the sampled obs::TraceContext travelling
// with the transaction) followed by the message encoding; the length and CRC
// fields cover the prefixed payload. Decoders strip the prefix into
// Frame::trace_id, so message deserializers never see it.
//
// Versioning rules:
//   * The 16-byte header layout is frozen forever — a peer of ANY version can
//     parse the header, decide the frame is not for it, and fail cleanly.
//   * Payload encodings may only change together with a version bump; a
//     receiver rejects frames whose version it does not speak
//     (kInvalidArgument, "unsupported wire version").
//   * Reserved header bytes must be written as zero and ignored on read, so
//     a future version can assign them without breaking old parsers.
//
// A decode error means the byte stream can no longer be trusted: callers
// must close the connection after surfacing the error (there is no way to
// resynchronize a corrupt length-prefixed stream).

#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/arena.h"
#include "src/common/crc32.h"
#include "src/common/status.h"
#include "src/net/socket.h"

namespace aft {
namespace net {

inline constexpr uint32_t kFrameMagic = 0x41465431u;  // "AFT1"
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderSize = 16;
// Guard against hostile / corrupt length fields: never allocate more than
// this for one frame. Large commits are chunked by the layers above.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

// One octet on the wire. Responses are `request | kResponseBit` so a client
// can verify a reply matches what it asked for.
inline constexpr uint8_t kResponseBit = 0x80;

// Header flags (offset 6). Senders must only set kFrameFlagTraceContext
// toward peers known to speak it; both sides ship from this tree.
inline constexpr uint8_t kFrameFlagTraceContext = 0x01;

enum class MessageType : uint8_t {
  kStartTxn = 1,
  kAdoptTxn = 2,
  kGet = 3,
  kMultiGet = 4,
  kPut = 5,
  kPutBatch = 6,
  kCommit = 7,
  kAbort = 8,
  kApplyCommits = 9,  // Inter-node commit multicast (§4.1).
  kPing = 10,
  kGetMetrics = 11,   // Prometheus exposition snapshot of the node's registry.
};

inline MessageType ResponseType(MessageType request) {
  return static_cast<MessageType>(static_cast<uint8_t>(request) | kResponseBit);
}
inline bool IsResponse(MessageType type) {
  return (static_cast<uint8_t>(type) & kResponseBit) != 0;
}
inline MessageType RequestOf(MessageType response) {
  return static_cast<MessageType>(static_cast<uint8_t>(response) & ~kResponseBit);
}
// True iff `type` (with the response bit stripped) names a known message.
bool IsKnownMessageType(MessageType type);
std::string_view MessageTypeName(MessageType type);

// CRC-32 (IEEE reflected polynomial 0xEDB88320), the Ethernet/zip checksum.
// The implementation lives in src/common/crc32.h (shared with the durable
// WAL's record framing); these aliases keep existing net call sites intact.
inline uint32_t Crc32(std::string_view data) { return ::aft::Crc32(data); }

// Streaming variant for payloads held as segment chains: feed spans in order,
// no coalescing. `Crc32End(Crc32Feed(Crc32Begin(), d, n))` == `Crc32({d,n})`.
inline uint32_t Crc32Begin() { return ::aft::Crc32Begin(); }
inline uint32_t Crc32Feed(uint32_t state, const void* data, size_t len) {
  return ::aft::Crc32Feed(state, data, len);
}
inline uint32_t Crc32End(uint32_t state) { return ::aft::Crc32End(state); }

struct Frame {
  MessageType type = MessageType::kPing;
  std::string payload;
  // Sampled trace id carried by the frame; 0 = no trace context on the wire.
  uint64_t trace_id = 0;
};

// Builds the complete on-wire bytes (header + payload) for one frame.
// A non-zero `trace_id` sets kFrameFlagTraceContext and prefixes the payload
// with the 8-byte id.
std::string EncodeFrame(MessageType type, std::string_view payload, uint64_t trace_id = 0);

// A sealed, ready-to-send frame in scatter-gather form: the 16-byte header
// (plus the 8-byte trace-id prefix when present) lives inline in `head`, the
// message payload stays in its arena segments. The bytes on the wire are
// exactly EncodeFrame's — v1 receivers cannot tell the two apart — but
// nothing is ever coalesced: senders walk head + payload spans via iovecs.
// Sealing is the last time the payload may change; a sealed frame is
// immutable and safe to send repeatedly (client retries reuse it verbatim).
struct FrameBytes {
  char head[kFrameHeaderSize + sizeof(uint64_t)] = {};
  size_t head_len = 0;
  MessageType type = MessageType::kPing;
  SegmentBuffer payload;

  size_t size() const { return head_len + payload.size(); }
};

// Seals `payload` into a frame: computes length + CRC over the (trace-prefixed)
// payload with the streaming CRC and fills the inline head. Rejects payloads
// over kMaxFramePayload.
Result<FrameBytes> SealFrame(MessageType type, SegmentBuffer payload, uint64_t trace_id = 0);

// Fills up to `max_iov` iovecs with the frame's bytes after skipping the
// first `skip` bytes (partially-sent frames); returns the count filled.
// The iovecs alias the frame — valid while the frame is alive.
size_t FillFrameIovecs(const FrameBytes& frame, size_t skip, struct iovec* iov, size_t max_iov);

// Parses one complete frame from an in-memory buffer. Rejects bad magic,
// unsupported versions, oversized or truncated payloads, and CRC mismatches
// with a descriptive error — never crashes, never reads past `bytes`.
Result<Frame> DecodeFrame(std::string_view bytes);

// Incremental variant for a streaming read buffer (the event-loop server
// accumulates bytes as they arrive): examines the FRONT of `buffer` and
//   * returns the byte count consumed (header + payload) with `*out` filled
//     when a complete frame is present;
//   * returns 0 when the buffer merely needs more bytes (nothing consumed);
//   * returns the DecodeFrame errors for corrupt data — same contract: the
//     stream cannot be resynchronized and must be dropped.
// Header fields are validated as soon as the 16 header bytes are in hand, so
// a hostile length field is rejected before any payload accumulates.
Result<size_t> DecodeFrameFromBuffer(std::string_view buffer, Frame* out);

// Stream variants: write/read one frame over a connected socket. ReadFrame
// returns kUnavailable when the peer closes cleanly between frames, and the
// DecodeFrame errors above for torn or corrupt frames.
Status WriteFrame(Socket& socket, MessageType type, std::string_view payload,
                  uint64_t trace_id = 0);
// Scatter-gather write of a sealed frame: header + payload segments go out
// via one writev-style call per IOV window, no coalescing copy. Blocking;
// safe to call repeatedly with the same frame (retries).
Status WriteFrameBytes(Socket& socket, const FrameBytes& frame);
Result<Frame> ReadFrame(Socket& socket);

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_FRAME_H_
