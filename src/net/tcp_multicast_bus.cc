#include "src/net/tcp_multicast_bus.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/net/frame.h"
#include "src/net/message.h"

namespace aft {
namespace net {

TcpMulticastBus::TcpMulticastBus(Clock& clock, Duration interval, TcpMulticastBusOptions options)
    : MulticastBus(clock, interval), options_(options) {}

TcpMulticastBus::~TcpMulticastBus() { Stop(); }

void TcpMulticastBus::RegisterNode(AftNode* node) {
  MutexLock lock(mu_);
  for (const auto& peer : peers_) {
    if (peer->node == node) {
      return;
    }
  }
  auto peer = std::make_unique<Peer>(node);
  peer->server = std::make_unique<AftServiceServer>(*node);
  const Status started = peer->server->Start();
  if (!started.ok()) {
    AFT_LOG(Error) << "tcp bus: cannot serve node " << node->node_id() << ": "
                   << started.ToString();
    return;
  }
  AFT_LOG(Info) << "tcp bus: node " << node->node_id() << " serving on "
                << peer->server->endpoint().ToString();
  peers_.push_back(std::move(peer));
}

void TcpMulticastBus::UnregisterNode(AftNode* node) {
  std::unique_ptr<Peer> removed;
  {
    MutexLock lock(mu_);
    auto it = std::find_if(peers_.begin(), peers_.end(),
                           [node](const auto& peer) { return peer->node == node; });
    if (it == peers_.end()) {
      return;
    }
    removed = std::move(*it);
    peers_.erase(it);
  }
  removed->server->Stop();
}

void TcpMulticastBus::SetFaultManagerSink(FaultManagerSink sink) {
  MutexLock lock(mu_);
  fault_manager_sink_ = std::move(sink);
}

NetEndpoint TcpMulticastBus::EndpointOf(const AftNode* node) const {
  MutexLock lock(mu_);
  for (const auto& peer : peers_) {
    if (peer->node == node) {
      return peer->server->endpoint();
    }
  }
  return NetEndpoint{};
}

std::vector<NetEndpoint> TcpMulticastBus::Endpoints() const {
  MutexLock lock(mu_);
  std::vector<NetEndpoint> endpoints;
  endpoints.reserve(peers_.size());
  for (const auto& peer : peers_) {
    endpoints.push_back(peer->server->endpoint());
  }
  return endpoints;
}

void TcpMulticastBus::KillEndpoint(const AftNode* node) {
  MutexLock lock(mu_);
  for (auto& peer : peers_) {
    if (peer->node == node) {
      peer->server->Stop();
      peer->socket.Close();
      peer->connected = false;
      return;
    }
  }
}

Status TcpMulticastBus::DeliverTo(Peer& peer, const std::string& request) {
  if (!peer.connected) {
    auto socket = TcpConnect(peer.server->endpoint(), options_.connect_timeout);
    if (!socket.ok()) {
      return socket.status();
    }
    peer.socket = std::move(socket).value();
    (void)peer.socket.SetNoDelay();
    (void)peer.socket.SetSendTimeout(options_.rpc_timeout);
    (void)peer.socket.SetRecvTimeout(options_.rpc_timeout);
    peer.connected = true;
  }
  Status status = WriteFrame(peer.socket, MessageType::kApplyCommits, request);
  if (status.ok()) {
    auto frame = ReadFrame(peer.socket);
    if (!frame.ok()) {
      status = frame.status();
    } else if (frame->type != ResponseType(MessageType::kApplyCommits)) {
      status = Status::Unavailable("gossip ack had wrong message type");
    } else {
      status = ApplyCommitsResponse::Deserialize(frame->payload).status();
    }
  }
  if (!status.ok()) {
    peer.socket.Close();
    peer.connected = false;
  }
  return status;
}

void TcpMulticastBus::RunOnce() {
  MutexLock lock(mu_);
  stats_.rounds.fetch_add(1, std::memory_order_relaxed);
  const bool prune = pruning_enabled();
  for (auto& sender : peers_) {
    if (!sender->node->alive()) {
      continue;  // A dead node cannot gossip; the fault manager's storage
                 // scan recovers anything it committed but never broadcast.
    }
    std::vector<CommitRecordPtr> pruned;
    std::vector<CommitRecordPtr> unpruned;
    sender->node->DrainRecentCommits(prune ? &pruned : nullptr, &unpruned);
    if (unpruned.empty()) {
      continue;
    }
    if (fault_manager_sink_) {
      fault_manager_sink_(unpruned);
      stats_.records_to_fault_manager.fetch_add(unpruned.size(), std::memory_order_relaxed);
    }
    std::vector<CommitRecordPtr>& outgoing = prune ? pruned : unpruned;
    stats_.records_broadcast.fetch_add(outgoing.size(), std::memory_order_relaxed);
    stats_.records_pruned.fetch_add(unpruned.size() - outgoing.size(),
                                    std::memory_order_relaxed);
    if (outgoing.empty()) {
      continue;
    }
    ApplyCommitsRequest request;
    request.records = std::move(outgoing);
    const std::string payload = request.Serialize();
    for (auto& receiver : peers_) {
      if (receiver.get() == sender.get() || !receiver->node->alive()) {
        continue;
      }
      const Status delivered = DeliverTo(*receiver, payload);
      if (!delivered.ok()) {
        stats_.delivery_errors.fetch_add(1, std::memory_order_relaxed);
        AFT_LOG(Warn) << "tcp bus: delivery " << sender->node->node_id() << " -> "
                      << receiver->node->node_id() << " failed: " << delivered.ToString();
      }
    }
  }
}

}  // namespace net
}  // namespace aft
