#include "src/net/tcp_multicast_bus.h"

#include <algorithm>
#include <utility>

#include "src/common/io_executor.h"
#include "src/common/logging.h"
#include "src/common/histogram.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/obs/trace.h"

namespace aft {
namespace net {

TcpMulticastBus::TcpMulticastBus(Clock& clock, Duration interval, TcpMulticastBusOptions options)
    : MulticastBus(clock, interval), options_(options) {
  auto& reg = obs::MetricsRegistry::Global();
  metrics_.rounds = reg.GetCounter("aft_gossip_rounds_total", "Gossip rounds run");
  metrics_.records_broadcast =
      reg.GetCounter("aft_gossip_records_broadcast_total", "Commit records put on the wire");
  metrics_.records_pruned = reg.GetCounter(
      "aft_gossip_records_pruned_total", "Commit records dropped by supersedence pruning");
  metrics_.delivery_errors =
      reg.GetCounter("aft_gossip_delivery_errors_total", "Gossip deliveries that failed");
  metrics_.batch_records =
      reg.GetHistogram("aft_gossip_batch_records", "Records per coalesced ApplyCommits frame",
                       ExponentialBoundaries(1.0, 2.0, 12));
}

TcpMulticastBus::~TcpMulticastBus() { Stop(); }

void TcpMulticastBus::RegisterNode(AftNode* node) {
  MutexLock lock(mu_);
  for (const auto& peer : peers_) {
    if (peer->node == node) {
      return;
    }
  }
  auto peer = std::make_shared<Peer>(node);
  peer->server = std::make_unique<AftServiceServer>(*node, options_.server_options);
  const Status started = peer->server->Start();
  if (!started.ok()) {
    AFT_LOG(Error) << "tcp bus: cannot serve node " << node->node_id() << ": "
                   << started.ToString();
    return;
  }
  AFT_LOG(Info) << "tcp bus: node " << node->node_id() << " serving on "
                << peer->server->endpoint().ToString();
  peers_.push_back(std::move(peer));
}

void TcpMulticastBus::UnregisterNode(AftNode* node) {
  std::shared_ptr<Peer> removed;
  {
    MutexLock lock(mu_);
    auto it = std::find_if(peers_.begin(), peers_.end(),
                           [node](const auto& peer) { return peer->node == node; });
    if (it == peers_.end()) {
      return;
    }
    removed = std::move(*it);
    peers_.erase(it);
  }
  // A round that snapshotted the old list still holds the peer alive; its
  // delivery either completes or fails cleanly against the stopped server.
  removed->server->Stop();
}

void TcpMulticastBus::SetFaultManagerSink(FaultManagerSink sink) {
  MutexLock lock(mu_);
  fault_manager_sink_ = std::move(sink);
}

NetEndpoint TcpMulticastBus::EndpointOf(const AftNode* node) const {
  MutexLock lock(mu_);
  for (const auto& peer : peers_) {
    if (peer->node == node) {
      return peer->server->endpoint();
    }
  }
  return NetEndpoint{};
}

std::vector<NetEndpoint> TcpMulticastBus::Endpoints() const {
  MutexLock lock(mu_);
  std::vector<NetEndpoint> endpoints;
  endpoints.reserve(peers_.size());
  for (const auto& peer : peers_) {
    endpoints.push_back(peer->server->endpoint());
  }
  return endpoints;
}

void TcpMulticastBus::KillEndpoint(const AftNode* node) {
  std::shared_ptr<Peer> peer;
  {
    MutexLock lock(mu_);
    for (auto& candidate : peers_) {
      if (candidate->node == node) {
        peer = candidate;
        break;
      }
    }
  }
  if (!peer) {
    return;
  }
  peer->server->Stop();
  MutexLock lock(peer->send_mu);
  peer->socket.Close();
  peer->connected = false;
}

Status TcpMulticastBus::DeliverTo(Peer& peer, const FrameBytes& frame) {
  MutexLock lock(peer.send_mu);
  if (!peer.connected) {
    auto socket = TcpConnect(peer.server->endpoint(), options_.connect_timeout);
    if (!socket.ok()) {
      return socket.status();
    }
    peer.socket = std::move(socket).value();
    (void)peer.socket.SetNoDelay();
    (void)peer.socket.SetSendTimeout(options_.rpc_timeout);
    (void)peer.socket.SetRecvTimeout(options_.rpc_timeout);
    peer.connected = true;
  }
  Status status = WriteFrameBytes(peer.socket, frame);
  if (status.ok()) {
    auto frame = ReadFrame(peer.socket);
    if (!frame.ok()) {
      status = frame.status();
    } else if (frame->type != ResponseType(MessageType::kApplyCommits)) {
      status = Status::Unavailable("gossip ack had wrong message type");
    } else {
      status = ApplyCommitsResponse::Deserialize(frame->payload).status();
    }
  }
  if (!status.ok()) {
    peer.socket.Close();
    peer.connected = false;
  }
  return status;
}

void TcpMulticastBus::RunOnce() {
  stats_.rounds.fetch_add(1, std::memory_order_relaxed);
  metrics_.rounds->Increment();
  const bool prune = pruning_enabled();
  std::vector<std::shared_ptr<Peer>> peers;
  FaultManagerSink sink;
  {
    MutexLock lock(mu_);
    peers = peers_;
    sink = fault_manager_sink_;
  }
  // Phase 1 — drain + prune, all in-memory. Each sender's stream is pruned
  // against its OWN commit index (§4.1), so superseded transactions never
  // reach the wire; the unpruned stream still goes to the fault manager,
  // which must see every commit.
  struct Outgoing {
    Peer* sender;
    size_t record_count = 0;
    // The sender's pruned stream pre-encoded ONCE as the length-prefixed
    // record sequence of the ApplyCommits body (everything after the leading
    // count). Receivers share these bytes: a per-receiver payload is the
    // total count plus the other senders' chunks, so each record is encoded
    // exactly once per round no matter how many peers receive it.
    std::string chunk;
    // First sampled trace among the drained commits (0 = none): carried on
    // the coalesced frame so the remote apply joins the commit's trace.
    obs::TraceContext trace;
  };
  std::vector<Outgoing> outgoing;
  for (const auto& sender : peers) {
    if (!sender->node->alive()) {
      continue;  // A dead node cannot gossip; the fault manager's storage
                 // scan recovers anything it committed but never broadcast.
    }
    std::vector<CommitRecordPtr> pruned;
    std::vector<CommitRecordPtr> unpruned;
    obs::TraceContext trace;
    sender->node->DrainRecentCommits(prune ? &pruned : nullptr, &unpruned, &trace);
    if (unpruned.empty()) {
      continue;
    }
    if (sink) {
      sink(unpruned);
      stats_.records_to_fault_manager.fetch_add(unpruned.size(), std::memory_order_relaxed);
    }
    std::vector<CommitRecordPtr>& out = prune ? pruned : unpruned;
    stats_.records_broadcast.fetch_add(out.size(), std::memory_order_relaxed);
    stats_.records_pruned.fetch_add(unpruned.size() - out.size(), std::memory_order_relaxed);
    metrics_.records_broadcast->Increment(out.size());
    metrics_.records_pruned->Increment(unpruned.size() - out.size());
    if (!out.empty()) {
      BinaryWriter chunk;
      for (const CommitRecordPtr& record : out) {
        chunk.PutString(record->Serialize());
      }
      outgoing.push_back(Outgoing{sender.get(), out.size(), std::move(chunk).TakeData(), trace});
    }
  }
  if (outgoing.empty()) {
    return;
  }
  // Phase 2 — coalesce per receiver: every other sender's pruned stream in
  // one batched ApplyCommits frame. The per-sender chunks were encoded in
  // phase 1; assembling a receiver's payload is a count prefix plus chunk
  // appends into arena segments — no record is re-serialized here.
  struct Delivery {
    std::shared_ptr<Peer> receiver;
    FrameBytes frame;
    size_t record_count = 0;
    obs::TraceContext trace;
  };
  std::vector<Delivery> deliveries;
  for (const auto& receiver : peers) {
    if (!receiver->node->alive()) {
      continue;
    }
    size_t record_count = 0;
    obs::TraceContext trace;
    for (const Outgoing& out : outgoing) {
      if (out.sender == receiver.get()) {
        continue;
      }
      record_count += out.record_count;
      if (!trace.sampled()) {
        trace = out.trace;
      }
    }
    if (record_count == 0) {
      continue;
    }
    ArenaWriter payload;
    payload.PutU32(static_cast<uint32_t>(record_count));
    for (const Outgoing& out : outgoing) {
      if (out.sender != receiver.get()) {
        payload.PutBytes(out.chunk.data(), out.chunk.size());
      }
    }
    auto sealed = SealFrame(MessageType::kApplyCommits, std::move(payload).TakeBuffer(),
                            trace.trace_id);
    if (!sealed.ok()) {
      // Only reachable past the 64 MiB frame cap; the records stay queued on
      // no one (same no-retry contract as a failed delivery — §4.2's storage
      // scan is the recovery path).
      stats_.delivery_errors.fetch_add(1, std::memory_order_relaxed);
      metrics_.delivery_errors->Increment();
      AFT_LOG(Warn) << "tcp bus: cannot seal gossip frame for "
                    << receiver->node->node_id() << ": " << sealed.status().ToString();
      continue;
    }
    metrics_.batch_records->Observe(static_cast<double>(record_count));
    deliveries.push_back(Delivery{receiver, std::move(*sealed), record_count, trace});
  }
  if (deliveries.empty()) {
    return;
  }
  // Phase 3 — deliver to all receivers concurrently. A failed delivery is
  // counted and NOT retried (the record set is not re-queued; §4.2's scan is
  // the recovery path); the connection itself is re-dialed next round. The
  // per-delivery error handling keeps one dead peer's timeout from ever
  // serializing before — or aborting — the deliveries to healthy peers.
  (void)IoExecutor::Shared().ParallelFor(deliveries.size(), [&](size_t i) -> Status {
    Delivery& delivery = deliveries[i];
    obs::TraceSpan span(delivery.trace, "GossipBroadcast", delivery.receiver->node->node_id());
    span.AddArg("records", std::to_string(delivery.record_count));
    const Status delivered = DeliverTo(*delivery.receiver, delivery.frame);
    if (!delivered.ok()) {
      stats_.delivery_errors.fetch_add(1, std::memory_order_relaxed);
      metrics_.delivery_errors->Increment();
      obs::MetricsRegistry::Global()
          .GetCounter("aft_gossip_peer_delivery_errors_total",
                      "Gossip deliveries that failed, by destination peer",
                      {{"peer", delivery.receiver->node->node_id()}})
          ->Increment();
      AFT_LOG(Warn) << "tcp bus: delivery of " << delivery.record_count << " records to "
                    << delivery.receiver->node->node_id()
                    << " failed: " << delivered.ToString();
    }
    return Status::Ok();
  });
}

}  // namespace net
}  // namespace aft
