#include "src/net/server.h"

#include "src/common/logging.h"
#include "src/net/message.h"

namespace aft {
namespace net {

AftServiceServer::AftServiceServer(AftNode& node, AftServiceServerOptions options)
    : node_(node), options_(options) {}

AftServiceServer::~AftServiceServer() { Stop(); }

Status AftServiceServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server already running");
  }
  auto listener = Listener::Bind(options_.port);
  if (!listener.ok()) {
    running_.store(false);
    return listener.status();
  }
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void AftServiceServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  listener_.Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.Close();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    conn->socket.Shutdown();
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
}

void AftServiceServer::AbandonConnections() {
  MutexLock lock(mu_);
  for (auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) {
      conn->socket.Shutdown();
    }
  }
}

void AftServiceServer::ReapFinished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
}

void AftServiceServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (!running_.load(std::memory_order_acquire)) {
        return;  // Clean shutdown woke the accept.
      }
      continue;  // Transient (e.g. peer aborted the handshake).
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    ReapFinished();
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    (void)conn->socket.SetSendTimeout(options_.send_timeout);
    Connection* raw = conn.get();
    {
      MutexLock lock(mu_);
      connections_.push_back(std::move(conn));
    }
    // The thread is created AFTER the connection is registered so Stop()
    // cannot miss it; the handler only touches its own Connection fields.
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void AftServiceServer::ServeConnection(Connection* conn) {
  while (running_.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(conn->socket);
    if (!frame.ok()) {
      // kUnavailable: peer hung up (normal). kInvalidArgument: stream-level
      // corruption — the length prefix can no longer be trusted, so the only
      // safe move is to drop the connection.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        AFT_LOG(Warn) << "aft server (" << node_.node_id()
                      << "): dropping connection: " << frame.status().ToString();
      }
      break;
    }
    if (IsResponse(frame->type)) {
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      break;  // A client sending response frames is not speaking the protocol.
    }
    bool bad_frame = false;
    const std::string response = HandleRequest(frame->type, frame->payload, &bad_frame);
    if (bad_frame) {
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
    if (!WriteFrame(conn->socket, ResponseType(frame->type), response).ok()) {
      break;
    }
  }
  // Send FIN now so the peer sees EOF immediately; the fd itself is closed
  // when the Connection is reaped (Shutdown never races Close).
  conn->socket.Shutdown();
  conn->done.store(true, std::memory_order_release);
}

std::string AftServiceServer::HandleRequest(MessageType type, const std::string& payload,
                                            bool* bad_frame) {
  // A frame that passed CRC but fails request decoding is a protocol bug on
  // the peer, not stream corruption: reply with the decode error and keep
  // the connection (framing is still in sync).
  switch (type) {
    case MessageType::kStartTxn: {
      auto request = StartTxnRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      auto txid = node_.StartTransaction();
      StartTxnResponse response;
      if (txid.ok()) {
        response.txid = *txid;
      }
      return response.Serialize(txid.status());
    }
    case MessageType::kAdoptTxn: {
      auto request = AdoptTxnRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      return SerializeEmptyResponse(node_.AdoptTransaction(request->txid));
    }
    case MessageType::kGet: {
      auto request = GetRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      auto read = node_.GetVersioned(request->txid, request->key);
      GetResponse response;
      if (read.ok()) {
        response.read = std::move(read).value();
      }
      return response.Serialize(read.status());
    }
    case MessageType::kMultiGet: {
      auto request = MultiGetRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      auto reads = node_.MultiGet(request->txid, request->keys);
      MultiGetResponse response;
      if (reads.ok()) {
        response.reads = std::move(reads).value();
      }
      return response.Serialize(reads.status());
    }
    case MessageType::kPut: {
      auto request = PutRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      return SerializeEmptyResponse(
          node_.Put(request->txid, request->key, std::move(request->value)));
    }
    case MessageType::kPutBatch: {
      auto request = PutBatchRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      for (WriteOp& op : request->ops) {
        const Status status = node_.Put(request->txid, op.key, std::move(op.value));
        if (!status.ok()) {
          return SerializeEmptyResponse(status);
        }
      }
      return SerializeEmptyResponse(Status::Ok());
    }
    case MessageType::kCommit: {
      auto request = CommitRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      auto id = node_.CommitTransaction(request->txid);
      CommitResponse response;
      if (id.ok()) {
        response.id = *id;
      }
      return response.Serialize(id.status());
    }
    case MessageType::kAbort: {
      auto request = AbortRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      return SerializeEmptyResponse(node_.AbortTransaction(request->txid));
    }
    case MessageType::kApplyCommits: {
      auto request = ApplyCommitsRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      node_.ApplyRemoteCommits(request->records);
      ApplyCommitsResponse response;
      response.applied = request->records.size();
      return response.Serialize(Status::Ok());
    }
    case MessageType::kPing: {
      auto request = PingRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        return SerializeEmptyResponse(request.status());
      }
      PingResponse response;
      response.node_id = node_.node_id();
      const Status status = node_.alive()
          ? Status::Ok()
          : Status::Unavailable("aft node " + node_.node_id() + " is down");
      return response.Serialize(status);
    }
    default:
      *bad_frame = true;
      return SerializeEmptyResponse(Status::InvalidArgument(
          "unhandled message type " + std::to_string(static_cast<int>(type))));
  }
}

}  // namespace net
}  // namespace aft
