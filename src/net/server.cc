#include "src/net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <unordered_map>

#include "src/common/histogram.h"
#include "src/common/io_executor.h"
#include "src/common/logging.h"
#include "src/net/message.h"
#include "src/obs/trace.h"

namespace aft {
namespace net {

ServerThreading DefaultServerThreading() {
  if (const char* env = std::getenv("AFT_NET_THREADING")) {
    const std::string_view value(env);
    if (value == "thread" || value == "thread_per_conn") {
      return ServerThreading::kThreadPerConn;
    }
    if (value == "event" || value == "event_loop" || value == "epoll") {
      return ServerThreading::kEventLoop;
    }
    AFT_LOG(Warn) << "unrecognized AFT_NET_THREADING value '" << value
                  << "' (want 'thread' or 'event'); using event loop";
  }
  return ServerThreading::kEventLoop;
}

// One connection owned by an event loop. Field ownership is split two ways:
//   * loop-thread-only (no lock): the socket fd for read/write/epoll_ctl, the
//     read buffer, dispatch sequencing, and epoll interest bookkeeping;
//   * `mu`-guarded: everything worker tasks touch — the response re-sequencing
//     map and the outgoing byte buffer.
// The only cross-thread socket operation is Shutdown(), which is race-free by
// design (the fd cannot be closed underneath it: the last shared_ptr owner
// closes it, and every toucher holds a shared_ptr).
struct AftServiceServer::EventConnection {
  Socket socket;
  size_t loop_index = 0;

  // ---- loop-thread-only ----
  std::string inbuf;
  uint64_t next_dispatch_seq = 0;  // seq assigned to the next decoded request
  bool reads_paused = false;
  bool want_write = false;  // partial write pending; EPOLLOUT wanted
  uint32_t armed_events = EPOLLIN;

  // Set once (under the loop's ownership or by loop exit); checked by worker
  // tasks to skip flush-queue churn for dead connections.
  std::atomic<bool> closed{false};

  Mutex mu;
  // Next seq to enter the wire queue: responses leave in request order even
  // when handlers finish out of order.
  uint64_t next_send_seq GUARDED_BY(mu) = 0;
  std::map<uint64_t, FrameBytes> out_of_order GUARDED_BY(mu);
  // Sealed response frames awaiting the socket. Frames keep their payload in
  // arena segments end to end — the flush path gathers header + segments into
  // one writev, so response bytes are never coalesced into a flat buffer.
  std::deque<FrameBytes> outq GUARDED_BY(mu);
  size_t outq_off GUARDED_BY(mu) = 0;   // bytes of outq.front() already sent
  size_t out_bytes GUARDED_BY(mu) = 0;  // total un-sent bytes across outq
};

struct AftServiceServer::EventLoop {
  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd; registered in epoll with data.ptr == nullptr
  std::thread thread;
  std::atomic<bool> stop{false};

  Mutex mu;
  std::vector<std::shared_ptr<EventConnection>> incoming GUARDED_BY(mu);
  std::vector<std::shared_ptr<EventConnection>> flush_queue GUARDED_BY(mu);

  // ---- loop-thread-only ----
  std::unordered_map<int, std::shared_ptr<EventConnection>> conns;  // by fd
  // Connections closed during the current event batch. Cleared only after the
  // batch completes, so the raw data.ptr in already-fetched epoll events stays
  // valid even when an earlier event in the same batch closed the connection.
  std::vector<std::shared_ptr<EventConnection>> graveyard;

  ~EventLoop() {
    if (epoll_fd >= 0) {
      ::close(epoll_fd);
    }
    if (wake_fd >= 0) {
      ::close(wake_fd);
    }
  }

  void Wake() {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
  }
};

namespace {

// Counts one in-flight request for the lifetime of a HandleRequest call.
class InflightGuard {
 public:
  explicit InflightGuard(std::atomic<uint64_t>& count) : count_(count) {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  ~InflightGuard() { count_.fetch_sub(1, std::memory_order_relaxed); }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<uint64_t>& count_;
};

}  // namespace

AftServiceServer::AftServiceServer(AftNode& node, AftServiceServerOptions options)
    : node_(node), options_(options) {
  auto& reg = obs::MetricsRegistry::Global();
  const obs::MetricLabels labels = {{"node", node_.node_id()}};
  for (uint8_t t = 1; t < rpc_latency_.size(); ++t) {
    const auto type = static_cast<MessageType>(t);
    if (!IsKnownMessageType(type)) {
      continue;
    }
    obs::MetricLabels method_labels = labels;
    method_labels.emplace_back("method", std::string(MessageTypeName(type)));
    rpc_latency_[t] =
        reg.GetHistogram("aft_net_rpc_latency_ms", "Server-side RPC service time (ms)",
                         DefaultLatencyBoundariesMs(), std::move(method_labels));
  }
  auto wrap = [&](const char* metric, const char* help, const std::atomic<uint64_t>& cell) {
    metric_callbacks_.push_back(reg.RegisterCallback(
        metric, help, obs::CallbackType::kCounter, labels,
        [&cell] { return static_cast<double>(cell.load(std::memory_order_relaxed)); }));
  };
  wrap("aft_net_connections_accepted_total", "TCP connections accepted",
       stats_.connections_accepted);
  wrap("aft_net_requests_served_total", "Requests dispatched to a handler",
       stats_.requests_served);
  wrap("aft_net_bad_frames_total", "Frames rejected before dispatch", stats_.bad_frames);
  wrap("aft_net_backpressure_pauses_total", "Connections paused for backpressure",
       stats_.backpressure_pauses);
  wrap("aft_net_backpressure_resumes_total", "Paused connections re-armed after draining",
       stats_.backpressure_resumes);
  metric_callbacks_.push_back(reg.RegisterCallback(
      "aft_net_requests_inflight", "Requests currently executing in a handler",
      obs::CallbackType::kGauge, labels, [this] {
        return static_cast<double>(requests_inflight_.load(std::memory_order_relaxed));
      }));
}

AftServiceServer::~AftServiceServer() { Stop(); }

Status AftServiceServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("server already running");
  }
  auto listener = Listener::Bind(options_.port);
  if (!listener.ok()) {
    running_.store(false);
    return listener.status();
  }
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  if (options_.threading == ServerThreading::kEventLoop) {
    Status status = StartEventLoops();
    if (!status.ok()) {
      StopEventLoops();
      workers_.reset();
      loops_.clear();
      listener_.Close();
      running_.store(false);
      return status;
    }
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void AftServiceServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  listener_.Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.Close();
  if (options_.threading == ServerThreading::kEventLoop) {
    // Join the loops first (their exit path shuts every connection down, so
    // blocked clients see EOF), then wait out in-flight worker tasks — they
    // may still queue responses into dead connections, which is harmless.
    // Only after that is it safe to drop the loop and connection objects.
    StopEventLoops();
    {
      MutexLock lock(inflight_mu_);
      while (inflight_ > 0) {
        inflight_cv_.Wait(lock);
      }
    }
    workers_.reset();  // All tasks done; joins the (now idle) worker threads.
    loops_.clear();
    MutexLock lock(mu_);
    event_connections_.clear();
    return;
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    MutexLock lock(mu_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    conn->socket.Shutdown();
  }
  for (auto& conn : connections) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
}

void AftServiceServer::AbandonConnections() {
  MutexLock lock(mu_);
  for (auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) {
      conn->socket.Shutdown();
    }
  }
  // Event connections: shutdown(2) tears the stream under the loop — pending
  // response sends fail with EPIPE and reads see EOF, so the loop closes the
  // connection exactly as if the process had died mid-frame.
  for (auto& conn : event_connections_) {
    conn->socket.Shutdown();
  }
}

void AftServiceServer::ReapFinished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    MutexLock lock(mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    std::erase_if(event_connections_, [](const std::shared_ptr<EventConnection>& conn) {
      return conn->closed.load(std::memory_order_acquire);
    });
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
}

void AftServiceServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (!running_.load(std::memory_order_acquire)) {
        return;  // Clean shutdown woke the accept.
      }
      continue;  // Transient (e.g. peer aborted the handshake).
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    ReapFinished();
    if (options_.threading == ServerThreading::kEventLoop) {
      AdoptEventConnection(std::move(accepted).value());
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(accepted).value();
    (void)conn->socket.SetSendTimeout(options_.send_timeout);
    Connection* raw = conn.get();
    {
      MutexLock lock(mu_);
      connections_.push_back(std::move(conn));
    }
    // The thread is created AFTER the connection is registered so Stop()
    // cannot miss it; the handler only touches its own Connection fields.
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void AftServiceServer::ServeConnection(Connection* conn) {
  while (running_.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(conn->socket);
    if (!frame.ok()) {
      // kUnavailable: peer hung up (normal). kInvalidArgument: stream-level
      // corruption — the length prefix can no longer be trusted, so the only
      // safe move is to drop the connection.
      if (frame.status().code() == StatusCode::kInvalidArgument) {
        stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
        AFT_LOG(Warn) << "aft server (" << node_.node_id()
                      << "): dropping connection: " << frame.status().ToString();
      }
      break;
    }
    if (IsResponse(frame->type)) {
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      break;  // A client sending response frames is not speaking the protocol.
    }
    bool bad_frame = false;
    ArenaWriter response;
    HandleRequest(frame->type, frame->payload, frame->trace_id, &bad_frame, response);
    if (bad_frame) {
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
    auto sealed = SealFrame(ResponseType(frame->type), std::move(response).TakeBuffer());
    if (!sealed.ok() || !WriteFrameBytes(conn->socket, *sealed).ok()) {
      break;
    }
  }
  // Send FIN now so the peer sees EOF immediately; the fd itself is closed
  // when the Connection is reaped (Shutdown never races Close).
  conn->socket.Shutdown();
  conn->done.store(true, std::memory_order_release);
}

// ---- Event-loop mode --------------------------------------------------------

Status AftServiceServer::StartEventLoops() {
  // Named so the contention profiler exposes the pool's queue wait and run
  // time as "net_workers.queue" / "net_workers.run" sites.
  workers_ = std::make_unique<IoExecutor>(
      options_.num_workers > 0 ? options_.num_workers : 8, "net_workers");
  size_t n = options_.num_event_loops;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) {
      n = 1;
    }
    if (n > 8) {
      n = 8;  // I/O loops saturate well before core count on this workload.
    }
  }
  for (size_t i = 0; i < n; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) {
      return Status::Internal(std::string("epoll_create1: ") + std::strerror(errno));
    }
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->wake_fd < 0) {
      return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // Sentinel: "this readiness is the wake eventfd".
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) != 0) {
      return Status::Internal(std::string("epoll_ctl(wake): ") + std::strerror(errno));
    }
    loops_.push_back(std::move(loop));
  }
  // Threads start only once every loop constructed, so a failure above never
  // leaves a running thread behind.
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { EventLoopMain(raw); });
  }
  return Status::Ok();
}

void AftServiceServer::StopEventLoops() {
  for (auto& loop : loops_) {
    loop->stop.store(true, std::memory_order_release);
    loop->Wake();
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) {
      loop->thread.join();
    }
  }
}

void AftServiceServer::AdoptEventConnection(Socket socket) {
  const Status nonblocking = socket.SetNonBlocking(true);
  if (!nonblocking.ok()) {
    // A blocking socket would stall its whole loop thread — and every
    // connection that loop owns — on the first recv/send. Refuse it; the fd
    // closes when `socket` goes out of scope.
    AFT_LOG(Warn) << "aft server (" << node_.node_id()
                  << "): rejecting connection (cannot set non-blocking): "
                  << nonblocking.ToString();
    socket.Shutdown();
    return;
  }
  auto conn = std::make_shared<EventConnection>();
  conn->socket = std::move(socket);
  conn->loop_index = next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  {
    MutexLock lock(mu_);
    event_connections_.push_back(conn);
  }
  EventLoop* loop = loops_[conn->loop_index].get();
  {
    MutexLock lock(loop->mu);
    loop->incoming.push_back(std::move(conn));
  }
  loop->Wake();
}

void AftServiceServer::EventLoopMain(EventLoop* loop) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!loop->stop.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop->epoll_fd, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      AFT_LOG(Warn) << "aft server (" << node_.node_id()
                    << "): epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        uint64_t drained;
        // aftlint-allow(loop-blocking): wake_fd is a non-blocking eventfd; read drains and EAGAINs
        while (::read(loop->wake_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto* raw = static_cast<EventConnection*>(events[i].data.ptr);
      if (raw->closed.load(std::memory_order_acquire)) {
        continue;  // Closed by an earlier event in this batch; in graveyard.
      }
      auto it = loop->conns.find(raw->socket.fd());
      if (it == loop->conns.end()) {
        continue;
      }
      const std::shared_ptr<EventConnection> conn = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 && conn->reads_paused) {
        // epoll reports error/hangup regardless of the armed interest mask,
        // but a paused (backpressured) connection bounces off HandleReadable's
        // reads_paused guard — the dead fd would level-trigger this loop hot
        // until the flush path happened to fail it. The peer is gone either
        // way; close it now.
        CloseEventConnection(loop, conn);
        continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        HandleReadable(loop, conn);
      }
      if (!conn->closed.load(std::memory_order_acquire) &&
          (events[i].events & EPOLLOUT) != 0) {
        ServiceWritable(loop, conn);
      }
    }
    // Control work handed over by the accept thread and worker tasks. The
    // wake eventfd was drained above, so anything enqueued after the swap
    // re-triggers epoll_wait immediately — no lost wakeups.
    std::vector<std::shared_ptr<EventConnection>> incoming;
    std::vector<std::shared_ptr<EventConnection>> flush;
    {
      MutexLock lock(loop->mu);
      incoming.swap(loop->incoming);
      flush.swap(loop->flush_queue);
    }
    for (auto& conn : incoming) {
      const int fd = conn->socket.fd();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        conn->closed.store(true, std::memory_order_release);
        conn->socket.Shutdown();
        continue;
      }
      conn->armed_events = EPOLLIN;
      loop->conns.emplace(fd, std::move(conn));
    }
    for (auto& conn : flush) {
      ServiceWritable(loop, conn);
    }
    loop->graveyard.clear();
  }
  // Loop exit: tear every owned connection down so blocked peers see EOF.
  // The fds close once the registry (and any in-flight worker task) drops
  // the last shared_ptr.
  for (auto& [fd, conn] : loop->conns) {
    conn->closed.store(true, std::memory_order_release);
    conn->socket.Shutdown();
  }
  loop->conns.clear();
  loop->graveyard.clear();
}

void AftServiceServer::HandleReadable(EventLoop* loop,
                                      const std::shared_ptr<EventConnection>& conn) {
  if (conn->closed.load(std::memory_order_acquire) || conn->reads_paused) {
    return;  // Stale readiness from earlier in the batch.
  }
  char buf[64 * 1024];
  while (true) {
    auto got = conn->socket.RecvSome(buf, sizeof(buf));
    if (!got.ok()) {
      if (got.status().code() == StatusCode::kTimeout) {
        break;  // Drained; wait for the next readiness event.
      }
      if (got.status().code() != StatusCode::kUnavailable) {
        AFT_LOG(Warn) << "aft server (" << node_.node_id()
                      << "): dropping connection: " << got.status().ToString();
      }
      CloseEventConnection(loop, conn);
      return;
    }
    conn->inbuf.append(buf, *got);
  }
  if (!ParseAndDispatch(conn)) {
    CloseEventConnection(loop, conn);
    return;
  }
  UpdateInterest(loop, conn);
}

void AftServiceServer::ServiceWritable(EventLoop* loop,
                                       const std::shared_ptr<EventConnection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) {
    return;
  }
  if (!FlushEventConnection(loop, conn)) {
    CloseEventConnection(loop, conn);
    return;
  }
  UpdateInterest(loop, conn);
  // Draining the write backlog may have lifted backpressure; requests parked
  // in the read buffer while paused must be pumped now — no EPOLLIN will fire
  // for bytes we already hold.
  if (!conn->reads_paused && !conn->inbuf.empty()) {
    if (!ParseAndDispatch(conn)) {
      CloseEventConnection(loop, conn);
      return;
    }
    UpdateInterest(loop, conn);
  }
}

bool AftServiceServer::ParseAndDispatch(const std::shared_ptr<EventConnection>& conn) {
  size_t consumed = 0;
  // aftlint: hot
  while (true) {
    uint64_t sequenced;
    {
      MutexLock lock(conn->mu);
      sequenced = conn->next_send_seq;
    }
    if (conn->next_dispatch_seq - sequenced >= options_.max_pipeline_depth) {
      break;  // Pipeline full; UpdateInterest pauses reads until it drains.
    }
    Frame frame;
    auto n = DecodeFrameFromBuffer(std::string_view(conn->inbuf).substr(consumed), &frame);
    if (!n.ok()) {
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      // aftlint-allow(obs-hot-log): teardown path — logs once, then the connection dies
      AFT_LOG(Warn) << "aft server (" << node_.node_id()
                    << "): dropping connection: " << n.status().ToString();
      conn->inbuf.erase(0, consumed);
      return false;
    }
    if (*n == 0) {
      break;  // Need more bytes.
    }
    consumed += *n;
    if (IsResponse(frame.type)) {
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
      conn->inbuf.erase(0, consumed);
      return false;  // A client sending response frames is off-protocol.
    }
    DispatchRequest(conn, conn->next_dispatch_seq++, frame.type, std::move(frame.payload),
                    frame.trace_id);
  }
  conn->inbuf.erase(0, consumed);
  return true;
}

void AftServiceServer::DispatchRequest(const std::shared_ptr<EventConnection>& conn,
                                       uint64_t seq, MessageType type, std::string payload,
                                       uint64_t trace_id) {
  {
    MutexLock lock(inflight_mu_);
    ++inflight_;
  }
  auto task = [this, conn, seq, type, trace_id, payload = std::move(payload)]() mutable {
    bool bad_frame = false;
    ArenaWriter response;
    HandleRequest(type, payload, trace_id, &bad_frame, response);
    if (bad_frame) {
      stats_.bad_frames.fetch_add(1, std::memory_order_relaxed);
    }
    stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
    // Seal can only fail on a >64 MiB response, which no handler produces;
    // ship an empty-payload frame of the right type if it ever does, so the
    // sequencing chain never stalls waiting on a hole.
    auto sealed = SealFrame(ResponseType(type), std::move(response).TakeBuffer());
    QueueResponse(conn, seq, sealed.ok() ? std::move(*sealed) : FrameBytes());
    MutexLock lock(inflight_mu_);
    if (--inflight_ == 0) {
      inflight_cv_.NotifyAll();
    }
  };
  // Pool missing or shut down ⇒ run inline on the loop thread; slower but
  // never lost. Same contract as IoExecutor::ParallelFor.
  if (workers_ == nullptr || !workers_->Submit(task)) {
    task();
  }
}

void AftServiceServer::QueueResponse(const std::shared_ptr<EventConnection>& conn, uint64_t seq,
                                     FrameBytes frame) {
  bool appended = false;
  {
    MutexLock lock(conn->mu);
    conn->out_of_order[seq] = std::move(frame);
    // Drain the run of consecutive ready responses into the wire queue —
    // this is the FIFO re-sequencing point. Frames MOVE (header + segment
    // pointers); no response byte is copied here.
    while (true) {
      auto it = conn->out_of_order.find(conn->next_send_seq);
      if (it == conn->out_of_order.end()) {
        break;
      }
      conn->out_bytes += it->second.size();
      conn->outq.push_back(std::move(it->second));
      conn->out_of_order.erase(it);
      ++conn->next_send_seq;
      appended = true;
    }
  }
  if (!appended || conn->closed.load(std::memory_order_acquire)) {
    return;
  }
  EventLoop* loop = loops_[conn->loop_index].get();
  {
    MutexLock lock(loop->mu);
    loop->flush_queue.push_back(conn);
  }
  loop->Wake();
}

bool AftServiceServer::FlushEventConnection(EventLoop* /*loop*/,
                                            const std::shared_ptr<EventConnection>& conn) {
  MutexLock lock(conn->mu);
  // aftlint: hot
  while (!conn->outq.empty()) {
    // Gather up to 64 spans across the queued frames into one writev: each
    // frame contributes its header block plus its payload segments, straight
    // from the arena — no coalescing copy on the way out.
    struct iovec iov[64];
    size_t count = 0;
    size_t skip = conn->outq_off;
    for (const FrameBytes& frame : conn->outq) {
      if (count >= 64) {
        break;
      }
      count += FillFrameIovecs(frame, skip, iov + count, 64 - count);
      skip = 0;
    }
    auto sent = conn->socket.SendSomeV(iov, count);
    if (!sent.ok()) {
      if (sent.status().code() == StatusCode::kTimeout) {
        break;  // Kernel buffer full; EPOLLOUT will resume us.
      }
      return false;
    }
    conn->out_bytes -= *sent;
    conn->outq_off += *sent;
    while (!conn->outq.empty() && conn->outq_off >= conn->outq.front().size()) {
      conn->outq_off -= conn->outq.front().size();
      conn->outq.pop_front();  // Frame done; its segments return to the pool.
    }
  }
  conn->want_write = !conn->outq.empty();
  return true;
}

void AftServiceServer::UpdateInterest(EventLoop* loop,
                                      const std::shared_ptr<EventConnection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) {
    return;
  }
  size_t pending_bytes;
  uint64_t sequenced;
  {
    MutexLock lock(conn->mu);
    pending_bytes = conn->out_bytes;
    sequenced = conn->next_send_seq;
  }
  const uint64_t depth = conn->next_dispatch_seq - sequenced;
  // Hysteresis: pause at the caps, resume at half — a connection hovering at
  // the limit does not thrash epoll_ctl.
  bool want_read;
  if (conn->reads_paused) {
    want_read = pending_bytes <= options_.max_write_buffer_bytes / 2 &&
                depth <= options_.max_pipeline_depth / 2;
  } else {
    want_read = pending_bytes <= options_.max_write_buffer_bytes &&
                depth < options_.max_pipeline_depth;
  }
  if (!want_read && !conn->reads_paused) {
    stats_.backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
  } else if (want_read && conn->reads_paused) {
    stats_.backpressure_resumes.fetch_add(1, std::memory_order_relaxed);
  }
  conn->reads_paused = !want_read;
  const uint32_t desired =
      (want_read ? EPOLLIN : 0u) | (conn->want_write ? EPOLLOUT : 0u);
  if (desired != conn->armed_events) {
    epoll_event ev{};
    ev.events = desired;
    ev.data.ptr = conn.get();
    (void)::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->socket.fd(), &ev);
    conn->armed_events = desired;
  }
}

void AftServiceServer::CloseEventConnection(EventLoop* loop,
                                            const std::shared_ptr<EventConnection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  const int fd = conn->socket.fd();
  (void)::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  conn->socket.Shutdown();
  auto it = loop->conns.find(fd);
  if (it != loop->conns.end()) {
    loop->graveyard.push_back(std::move(it->second));
    loop->conns.erase(it);
  }
}

void AftServiceServer::HandleRequest(MessageType type, const std::string& payload,
                                     uint64_t trace_id, bool* bad_frame, ArenaWriter& out) {
  const InflightGuard inflight(requests_inflight_);
  const uint8_t type_index = static_cast<uint8_t>(type);
  obs::ScopedHistogramTimer rpc_timer(
      type_index < rpc_latency_.size() ? rpc_latency_[type_index] : nullptr);
  // A frame that passed CRC but fails request decoding is a protocol bug on
  // the peer, not stream corruption: reply with the decode error and keep
  // the connection (framing is still in sync).
  switch (type) {
    case MessageType::kStartTxn: {
      auto request = StartTxnRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      // Adopt the client-minted trace context (0 = unsampled) so the
      // transaction's server-side lifecycle joins the client's trace.
      auto txid = node_.StartTransaction(obs::TraceContext{trace_id});
      StartTxnResponse response;
      if (txid.ok()) {
        response.txid = *txid;
      }
      response.SerializeTo(out, txid.status());
      return;
    }
    case MessageType::kAdoptTxn: {
      auto request = AdoptTxnRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      SerializeEmptyResponseTo(out, node_.AdoptTransaction(request->txid));
      return;
    }
    case MessageType::kGet: {
      auto request = GetRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      auto read = node_.GetVersioned(request->txid, request->key);
      GetResponse response;
      if (read.ok()) {
        response.read = std::move(read).value();
      }
      response.SerializeTo(out, read.status());
      return;
    }
    case MessageType::kMultiGet: {
      auto request = MultiGetRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      auto reads = node_.MultiGet(request->txid, request->keys);
      MultiGetResponse response;
      if (reads.ok()) {
        response.reads = std::move(reads).value();
      }
      response.SerializeTo(out, reads.status());
      return;
    }
    case MessageType::kPut: {
      auto request = PutRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      SerializeEmptyResponseTo(out,
                               node_.Put(request->txid, request->key, std::move(request->value)));
      return;
    }
    case MessageType::kPutBatch: {
      auto request = PutBatchRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      for (WriteOp& op : request->ops) {
        const Status status = node_.Put(request->txid, op.key, std::move(op.value));
        if (!status.ok()) {
          SerializeEmptyResponseTo(out, status);
          return;
        }
      }
      SerializeEmptyResponseTo(out, Status::Ok());
      return;
    }
    case MessageType::kCommit: {
      auto request = CommitRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      auto id = node_.CommitTransaction(request->txid);
      CommitResponse response;
      if (id.ok()) {
        response.id = *id;
      }
      response.SerializeTo(out, id.status());
      return;
    }
    case MessageType::kAbort: {
      auto request = AbortRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      SerializeEmptyResponseTo(out, node_.AbortTransaction(request->txid));
      return;
    }
    case MessageType::kApplyCommits: {
      auto request = ApplyCommitsRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      {
        obs::TraceSpan span(obs::TraceContext{trace_id}, "RemoteApply", node_.node_id());
        span.AddArg("records", std::to_string(request->records.size()));
        node_.ApplyRemoteCommits(request->records);
      }
      ApplyCommitsResponse response;
      response.applied = request->records.size();
      response.SerializeTo(out, Status::Ok());
      return;
    }
    case MessageType::kGetMetrics: {
      auto request = GetMetricsRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      GetMetricsResponse response;
      response.text = obs::MetricsRegistry::Global().Exposition();
      response.SerializeTo(out, Status::Ok());
      return;
    }
    case MessageType::kPing: {
      auto request = PingRequest::Deserialize(payload);
      if (!request.ok()) {
        *bad_frame = true;
        SerializeEmptyResponseTo(out, request.status());
        return;
      }
      PingResponse response;
      response.node_id = node_.node_id();
      const Status status = node_.alive()
          ? Status::Ok()
          : Status::Unavailable("aft node " + node_.node_id() + " is down");
      response.SerializeTo(out, status);
      return;
    }
    default:
      *bad_frame = true;
      SerializeEmptyResponseTo(out, Status::InvalidArgument(
          "unhandled message type " + std::to_string(static_cast<int>(type))));
      return;
  }
}

}  // namespace net
}  // namespace aft
