// Wire payload encodings for the AFT service (frame.h carries these bytes).
//
// One struct per request/response, each with `Serialize()` and a static
// `Deserialize` returning a `Status` on malformed input — the same explicit
// serde style as `CommitRecord` (src/core/records.cc), built on
// src/common/serde.h. Every decoder tolerates truncated and garbage bytes:
// the wire robustness tests feed it both.
//
// Response payloads always begin with an encoded Status. A non-OK status
// means the body is absent; the client surfaces the status verbatim, so
// server-side semantic errors (kAborted from Algorithm 1, kUnavailable from
// a killed node) travel losslessly across the wire.

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/arena.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/core/aft_node.h"
#include "src/core/records.h"
#include "src/core/txn_id.h"
#include "src/storage/storage_engine.h"

namespace aft {
namespace net {

// ---- Field-level helpers (shared by the structs and the bus) ---------------
// Encoders are templates over the writer so the legacy flat-string
// `BinaryWriter` and the segment-emitting `ArenaWriter` run the SAME body —
// the two paths are byte-identical by construction, which is what the wire
// compatibility golden tests pin down.
template <typename W>
void EncodeUuid(W& writer, const Uuid& id) {
  writer.PutU64(id.hi());
  writer.PutU64(id.lo());
}
bool DecodeUuid(BinaryReader& reader, Uuid* out);

template <typename W>
void EncodeTxnId(W& writer, const TxnId& id) {
  writer.PutI64(id.timestamp);
  EncodeUuid(writer, id.uuid);
}
bool DecodeTxnId(BinaryReader& reader, TxnId* out);

template <typename W>
void EncodeStatus(W& writer, const Status& status) {
  writer.PutU8(static_cast<uint8_t>(status.code()));
  writer.PutString(status.message());
}
bool DecodeStatus(BinaryReader& reader, Status* out);

template <typename W>
void EncodeVersionedRead(W& writer, const AftNode::VersionedRead& read) {
  writer.PutU8(read.value.has_value() ? 1 : 0);
  if (read.value.has_value()) {
    writer.PutString(*read.value);
  }
  EncodeTxnId(writer, read.version);
  // The commit record rides along so harness-style clients can audit read
  // atomicity remotely; absent for NULL-version and write-buffer reads.
  writer.PutU8(read.record != nullptr ? 1 : 0);
  if (read.record != nullptr) {
    writer.PutString(read.record->Serialize());
  }
}
bool DecodeVersionedRead(BinaryReader& reader, AftNode::VersionedRead* out);

// ---- Requests --------------------------------------------------------------
// `Serialize()` returns the legacy flat string; `SerializeTo(ArenaWriter&)`
// appends the identical bytes into arena segments (the transport hot path —
// the frame layer sends the segments via writev, nothing is coalesced).

struct StartTxnRequest {
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<StartTxnRequest> Deserialize(std::string_view bytes);
};

struct AdoptTxnRequest {
  Uuid txid;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<AdoptTxnRequest> Deserialize(std::string_view bytes);
};

struct GetRequest {
  Uuid txid;
  std::string key;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<GetRequest> Deserialize(std::string_view bytes);
};

struct MultiGetRequest {
  Uuid txid;
  std::vector<std::string> keys;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<MultiGetRequest> Deserialize(std::string_view bytes);
};

struct PutRequest {
  Uuid txid;
  std::string key;
  std::string value;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<PutRequest> Deserialize(std::string_view bytes);
};

struct PutBatchRequest {
  Uuid txid;
  std::vector<WriteOp> ops;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<PutBatchRequest> Deserialize(std::string_view bytes);
};

struct CommitRequest {
  Uuid txid;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<CommitRequest> Deserialize(std::string_view bytes);
};

struct AbortRequest {
  Uuid txid;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<AbortRequest> Deserialize(std::string_view bytes);
};

// Inter-node commit multicast (§4.1): a batch of commit records, each nested
// as one length-prefixed `CommitRecord::Serialize()` blob.
struct ApplyCommitsRequest {
  std::vector<CommitRecordPtr> records;
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<ApplyCommitsRequest> Deserialize(std::string_view bytes);
};

struct PingRequest {
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<PingRequest> Deserialize(std::string_view bytes);
};

// Metrics scrape: the server answers with its registry's Prometheus text
// exposition (see docs/OBSERVABILITY.md for the families).
struct GetMetricsRequest {
  std::string Serialize() const;
  void SerializeTo(ArenaWriter& writer) const;
  static Result<GetMetricsRequest> Deserialize(std::string_view bytes);
};

// ---- Responses -------------------------------------------------------------
// Each Serialize()/SerializeTo() takes the call's Status; Deserialize returns
// the DECODED status when the frame itself was well-formed (the body is
// engaged only on OK) and a decode error Status when it was not.

struct StartTxnResponse {
  Uuid txid;
  std::string Serialize(const Status& status) const;
  void SerializeTo(ArenaWriter& writer, const Status& status) const;
  static Result<StartTxnResponse> Deserialize(std::string_view bytes);
};

struct GetResponse {
  AftNode::VersionedRead read;
  std::string Serialize(const Status& status) const;
  void SerializeTo(ArenaWriter& writer, const Status& status) const;
  static Result<GetResponse> Deserialize(std::string_view bytes);
};

struct MultiGetResponse {
  std::vector<AftNode::VersionedRead> reads;
  std::string Serialize(const Status& status) const;
  void SerializeTo(ArenaWriter& writer, const Status& status) const;
  static Result<MultiGetResponse> Deserialize(std::string_view bytes);
};

struct CommitResponse {
  TxnId id;
  std::string Serialize(const Status& status) const;
  void SerializeTo(ArenaWriter& writer, const Status& status) const;
  static Result<CommitResponse> Deserialize(std::string_view bytes);
};

struct ApplyCommitsResponse {
  uint64_t applied = 0;
  std::string Serialize(const Status& status) const;
  void SerializeTo(ArenaWriter& writer, const Status& status) const;
  static Result<ApplyCommitsResponse> Deserialize(std::string_view bytes);
};

struct PingResponse {
  std::string node_id;
  std::string Serialize(const Status& status) const;
  void SerializeTo(ArenaWriter& writer, const Status& status) const;
  static Result<PingResponse> Deserialize(std::string_view bytes);
};

struct GetMetricsResponse {
  std::string text;  // Prometheus exposition format 0.0.4.
  std::string Serialize(const Status& status) const;
  void SerializeTo(ArenaWriter& writer, const Status& status) const;
  static Result<GetMetricsResponse> Deserialize(std::string_view bytes);
};

// Status-only reply (AdoptTxn, Put, PutBatch, Abort). `Deserialize` returns
// the decoded status itself — kInternal with a "malformed" message on
// garbage bytes.
std::string SerializeEmptyResponse(const Status& status);
void SerializeEmptyResponseTo(ArenaWriter& writer, const Status& status);
Status DeserializeEmptyResponse(std::string_view bytes);

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_MESSAGE_H_
