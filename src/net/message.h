// Wire payload encodings for the AFT service (frame.h carries these bytes).
//
// One struct per request/response, each with `Serialize()` and a static
// `Deserialize` returning a `Status` on malformed input — the same explicit
// serde style as `CommitRecord` (src/core/records.cc), built on
// src/common/serde.h. Every decoder tolerates truncated and garbage bytes:
// the wire robustness tests feed it both.
//
// Response payloads always begin with an encoded Status. A non-OK status
// means the body is absent; the client surfaces the status verbatim, so
// server-side semantic errors (kAborted from Algorithm 1, kUnavailable from
// a killed node) travel losslessly across the wire.

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/core/aft_node.h"
#include "src/core/records.h"
#include "src/core/txn_id.h"
#include "src/storage/storage_engine.h"

namespace aft {
namespace net {

// ---- Field-level helpers (shared by the structs and the bus) ---------------
void EncodeUuid(BinaryWriter& writer, const Uuid& id);
bool DecodeUuid(BinaryReader& reader, Uuid* out);
void EncodeTxnId(BinaryWriter& writer, const TxnId& id);
bool DecodeTxnId(BinaryReader& reader, TxnId* out);
void EncodeStatus(BinaryWriter& writer, const Status& status);
bool DecodeStatus(BinaryReader& reader, Status* out);
void EncodeVersionedRead(BinaryWriter& writer, const AftNode::VersionedRead& read);
bool DecodeVersionedRead(BinaryReader& reader, AftNode::VersionedRead* out);

// ---- Requests --------------------------------------------------------------

struct StartTxnRequest {
  std::string Serialize() const;
  static Result<StartTxnRequest> Deserialize(const std::string& bytes);
};

struct AdoptTxnRequest {
  Uuid txid;
  std::string Serialize() const;
  static Result<AdoptTxnRequest> Deserialize(const std::string& bytes);
};

struct GetRequest {
  Uuid txid;
  std::string key;
  std::string Serialize() const;
  static Result<GetRequest> Deserialize(const std::string& bytes);
};

struct MultiGetRequest {
  Uuid txid;
  std::vector<std::string> keys;
  std::string Serialize() const;
  static Result<MultiGetRequest> Deserialize(const std::string& bytes);
};

struct PutRequest {
  Uuid txid;
  std::string key;
  std::string value;
  std::string Serialize() const;
  static Result<PutRequest> Deserialize(const std::string& bytes);
};

struct PutBatchRequest {
  Uuid txid;
  std::vector<WriteOp> ops;
  std::string Serialize() const;
  static Result<PutBatchRequest> Deserialize(const std::string& bytes);
};

struct CommitRequest {
  Uuid txid;
  std::string Serialize() const;
  static Result<CommitRequest> Deserialize(const std::string& bytes);
};

struct AbortRequest {
  Uuid txid;
  std::string Serialize() const;
  static Result<AbortRequest> Deserialize(const std::string& bytes);
};

// Inter-node commit multicast (§4.1): a batch of commit records, each nested
// as one length-prefixed `CommitRecord::Serialize()` blob.
struct ApplyCommitsRequest {
  std::vector<CommitRecordPtr> records;
  std::string Serialize() const;
  static Result<ApplyCommitsRequest> Deserialize(const std::string& bytes);
};

struct PingRequest {
  std::string Serialize() const;
  static Result<PingRequest> Deserialize(const std::string& bytes);
};

// Metrics scrape: the server answers with its registry's Prometheus text
// exposition (see docs/OBSERVABILITY.md for the families).
struct GetMetricsRequest {
  std::string Serialize() const;
  static Result<GetMetricsRequest> Deserialize(const std::string& bytes);
};

// ---- Responses -------------------------------------------------------------
// Each Serialize() takes the call's Status; Deserialize returns the DECODED
// status when the frame itself was well-formed (the body is engaged only on
// OK) and a decode error Status when it was not.

struct StartTxnResponse {
  Uuid txid;
  std::string Serialize(const Status& status) const;
  static Result<StartTxnResponse> Deserialize(const std::string& bytes);
};

struct GetResponse {
  AftNode::VersionedRead read;
  std::string Serialize(const Status& status) const;
  static Result<GetResponse> Deserialize(const std::string& bytes);
};

struct MultiGetResponse {
  std::vector<AftNode::VersionedRead> reads;
  std::string Serialize(const Status& status) const;
  static Result<MultiGetResponse> Deserialize(const std::string& bytes);
};

struct CommitResponse {
  TxnId id;
  std::string Serialize(const Status& status) const;
  static Result<CommitResponse> Deserialize(const std::string& bytes);
};

struct ApplyCommitsResponse {
  uint64_t applied = 0;
  std::string Serialize(const Status& status) const;
  static Result<ApplyCommitsResponse> Deserialize(const std::string& bytes);
};

struct PingResponse {
  std::string node_id;
  std::string Serialize(const Status& status) const;
  static Result<PingResponse> Deserialize(const std::string& bytes);
};

struct GetMetricsResponse {
  std::string text;  // Prometheus exposition format 0.0.4.
  std::string Serialize(const Status& status) const;
  static Result<GetMetricsResponse> Deserialize(const std::string& bytes);
};

// Status-only reply (AdoptTxn, Put, PutBatch, Abort). `Deserialize` returns
// the decoded status itself — kInternal with a "malformed" message on
// garbage bytes.
std::string SerializeEmptyResponse(const Status& status);
Status DeserializeEmptyResponse(const std::string& bytes);

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_MESSAGE_H_
