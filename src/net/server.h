// The AFT service server: one shim node behind a real TCP socket (§4).
//
// A thread-per-connection loopback server hosting the full Table-1 API
// (StartTransaction / Get / MultiGet / Put / PutBatch / Commit / Abort) plus
// the inter-node ApplyCommits multicast endpoint and a Ping health check,
// all against one local `AftNode`. This is the process boundary the paper's
// deployment actually has: `RemoteAftClient` and `TcpMulticastBus` are its
// two client populations.
//
// Shutdown protocol (no self-pipe needed): `Stop` calls shutdown(2) on the
// listening socket — which wakes the blocked accept(2) — joins the accept
// thread, then shutdown(2)s every live connection — which wakes their
// blocked recv(2)s with EOF — and joins the handler threads. No thread is
// ever detached, so TSan sees every exit.

#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/core/aft_node.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

namespace aft {
namespace net {

struct AftServiceServerOptions {
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral port.
  // Connection-level send deadline: a client that stops draining its socket
  // cannot wedge a handler thread forever. Reads are deadline-free — an idle
  // connection is legal; Stop() wakes blocked readers via shutdown(2).
  Duration send_timeout = std::chrono::seconds(30);
};

struct AftServiceServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_served{0};
  // Frames rejected before dispatch: bad magic/version/CRC, unknown type,
  // oversized payload, undecodable request body.
  std::atomic<uint64_t> bad_frames{0};
};

class AftServiceServer {
 public:
  explicit AftServiceServer(AftNode& node, AftServiceServerOptions options = {});
  ~AftServiceServer();

  AftServiceServer(const AftServiceServer&) = delete;
  AftServiceServer& operator=(const AftServiceServer&) = delete;

  // Binds and starts accepting. Idempotent failure: a dead port returns the
  // bind error and leaves the server stopped.
  Status Start();

  // Clean shutdown: stops accepting, tears down live connections, joins all
  // threads. Safe to call twice.
  void Stop();

  // Test-only crash simulation ("kill -9 between two frames"): shutdown(2)
  // every live connection socket immediately WITHOUT joining handlers, so
  // in-flight requests observe a torn connection exactly as if the process
  // died. Callable from inside a handler (e.g. an AftNode crash hook).
  void AbandonConnections();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port; valid after a successful Start.
  uint16_t port() const { return port_; }
  NetEndpoint endpoint() const { return NetEndpoint{"127.0.0.1", port_}; }
  AftNode& node() { return node_; }
  const AftServiceServerStats& stats() const { return stats_; }

 private:
  // One live connection. The handler thread owns the Socket; Stop and
  // AbandonConnections only call Shutdown() on it (fd stays valid until the
  // object dies after join), so there is no close/use race.
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  // Decodes + dispatches one request, returns the response payload (encoded
  // status + body) or an error when the connection must be dropped.
  std::string HandleRequest(MessageType type, const std::string& payload, bool* bad_frame);
  // Joins finished handler threads (called opportunistically per accept).
  void ReapFinished();

  AftNode& node_;
  const AftServiceServerOptions options_;
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  Listener listener_;
  std::thread accept_thread_;

  Mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_ GUARDED_BY(mu_);

  AftServiceServerStats stats_;
};

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_SERVER_H_
