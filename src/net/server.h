// The AFT service server: one shim node behind a real TCP socket (§4).
//
// Hosts the full Table-1 API (StartTransaction / Get / MultiGet / Put /
// PutBatch / Commit / Abort) plus the inter-node ApplyCommits multicast
// endpoint and a Ping health check, all against one local `AftNode`. This is
// the process boundary the paper's deployment actually has: `RemoteAftClient`
// and `TcpMulticastBus` are its two client populations.
//
// Two threading models, selected by `AftServiceServerOptions::threading`:
//
//  * kThreadPerConn — the original model: one blocking handler thread per
//    accepted connection, one request in flight per connection. Simple, and
//    kept as the reference implementation the event loop is differentially
//    tested against.
//  * kEventLoop — N epoll-driven I/O loop threads (default = hardware
//    concurrency) own all sockets in non-blocking mode; decoded requests are
//    handed to the server's own bounded worker pool (an `IoExecutor` instance
//    — NOT the process-shared one, which clients park blocking fan-out chunks
//    on; sharing it lets saturated client calls starve the very responses
//    they are waiting for), and responses are re-sequenced per connection so
//    they leave the socket in request order even though handlers complete out
//    of order. This is what
//    makes client-side pipelining pay: one connection can have many requests
//    in flight, and one slow request does not block the loop, only its
//    followers' responses. The wire format is identical in both modes.
//
// Backpressure (kEventLoop): a connection whose un-sent response bytes exceed
// `max_write_buffer_bytes`, or which has `max_pipeline_depth` requests in
// flight, stops being read (its EPOLLIN is disarmed) until the backlog drains
// below half the cap — a client that stops draining responses or floods
// requests throttles itself, never the server.
//
// Shutdown protocol: `Stop` wakes the blocked accept(2) via shutdown(2) on
// the listener, joins the accept thread, then per model: thread-per-conn
// shuts every live connection down and joins the handler threads; event-loop
// signals each loop's eventfd, joins the loop threads, and waits for every
// in-flight worker task to finish. No thread is ever detached, so TSan sees
// every exit.

#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/io_executor.h"
#include "src/common/mutex.h"
#include "src/core/aft_node.h"
#include "src/net/frame.h"
#include "src/obs/metrics.h"
#include "src/net/socket.h"

namespace aft {
namespace net {

enum class ServerThreading {
  kThreadPerConn,
  kEventLoop,
};

// Process-wide default: the AFT_NET_THREADING environment variable ("thread"
// or "event"; the CI matrix dimension), falling back to kEventLoop.
ServerThreading DefaultServerThreading();

struct AftServiceServerOptions {
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral port.
  ServerThreading threading = DefaultServerThreading();
  // kEventLoop: number of epoll loop threads; 0 = hardware concurrency
  // (clamped to [1, 8] — loops are I/O bound, not compute bound).
  size_t num_event_loops = 0;
  // kEventLoop: worker lanes executing decoded requests (handlers may sleep
  // on simulated storage latency, so the width can exceed core count);
  // 0 = default (8).
  size_t num_workers = 0;
  // kEventLoop backpressure knobs (see header comment).
  size_t max_write_buffer_bytes = 4u << 20;
  size_t max_pipeline_depth = 256;
  // Connection-level send deadline (kThreadPerConn only): a client that stops
  // draining its socket cannot wedge a handler thread forever. The event loop
  // never blocks on send — backpressure covers the same failure there. Reads
  // are deadline-free — an idle connection is legal; Stop() wakes blocked
  // readers via shutdown(2).
  Duration send_timeout = std::chrono::seconds(30);
};

struct AftServiceServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> requests_served{0};
  // Frames rejected before dispatch: bad magic/version/CRC, unknown type,
  // oversized payload, undecodable request body.
  std::atomic<uint64_t> bad_frames{0};
  // kEventLoop: times a connection's reads were paused for backpressure.
  std::atomic<uint64_t> backpressure_pauses{0};
  // kEventLoop: times a paused connection drained below the hysteresis
  // threshold and had its reads re-armed.
  std::atomic<uint64_t> backpressure_resumes{0};
};

class AftServiceServer {
 public:
  explicit AftServiceServer(AftNode& node, AftServiceServerOptions options = {});
  ~AftServiceServer();

  AftServiceServer(const AftServiceServer&) = delete;
  AftServiceServer& operator=(const AftServiceServer&) = delete;

  // Binds and starts accepting. Idempotent failure: a dead port returns the
  // bind error and leaves the server stopped.
  Status Start();

  // Clean shutdown: stops accepting, tears down live connections, joins all
  // threads (and, in kEventLoop mode, drains in-flight worker tasks). Safe to
  // call twice.
  void Stop();

  // Test-only crash simulation ("kill -9 between two frames"): shutdown(2)
  // every live connection socket immediately WITHOUT joining handlers, so
  // in-flight requests observe a torn connection exactly as if the process
  // died. Callable from inside a handler (e.g. an AftNode crash hook).
  void AbandonConnections();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port; valid after a successful Start.
  uint16_t port() const { return port_; }
  NetEndpoint endpoint() const { return NetEndpoint{"127.0.0.1", port_}; }
  AftNode& node() { return node_; }
  ServerThreading threading() const { return options_.threading; }
  const AftServiceServerStats& stats() const { return stats_; }

 private:
  // ---- kThreadPerConn ------------------------------------------------------
  // One live connection. The handler thread owns the Socket; Stop and
  // AbandonConnections only call Shutdown() on it (fd stays valid until the
  // object dies after join), so there is no close/use race.
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  // ---- kEventLoop ----------------------------------------------------------
  // Defined in server.cc; the loop thread owns each connection's fd and read
  // buffer, worker tasks only touch the mutex-guarded response state.
  struct EventConnection;
  struct EventLoop;

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  // Decodes + dispatches one request; the response payload (encoded status +
  // body) is appended into `out` as arena segments — the frame layer sends
  // them with writev, no flat-string coalescing on the response path.
  void HandleRequest(MessageType type, const std::string& payload, uint64_t trace_id,
                     bool* bad_frame, ArenaWriter& out);
  // Joins finished handler threads / reaps closed event connections (called
  // opportunistically per accept).
  void ReapFinished();

  // Event-loop internals (all defined in server.cc).
  Status StartEventLoops();
  void StopEventLoops();
  void EventLoopMain(EventLoop* loop);
  void AdoptEventConnection(Socket socket);
  void HandleReadable(EventLoop* loop, const std::shared_ptr<EventConnection>& conn);
  // Flush + interest update + resume-paused-reads, the post-write pump.
  void ServiceWritable(EventLoop* loop, const std::shared_ptr<EventConnection>& conn);
  bool ParseAndDispatch(const std::shared_ptr<EventConnection>& conn);
  void DispatchRequest(const std::shared_ptr<EventConnection>& conn, uint64_t seq,
                       MessageType type, std::string payload, uint64_t trace_id);
  void QueueResponse(const std::shared_ptr<EventConnection>& conn, uint64_t seq,
                     FrameBytes frame);
  // Returns false when the connection died mid-flush.
  bool FlushEventConnection(EventLoop* loop, const std::shared_ptr<EventConnection>& conn);
  void UpdateInterest(EventLoop* loop, const std::shared_ptr<EventConnection>& conn);
  void CloseEventConnection(EventLoop* loop, const std::shared_ptr<EventConnection>& conn);

  AftNode& node_;
  const AftServiceServerOptions options_;
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  Listener listener_;
  std::thread accept_thread_;

  Mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<EventConnection>> event_connections_ GUARDED_BY(mu_);

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<size_t> next_loop_{0};
  // kEventLoop request-execution lanes. Per-server, never the process-shared
  // executor: shared-pool workers block inside client fan-out RPCs, and a
  // server queued behind them could never produce the responses that would
  // unblock them.
  std::unique_ptr<IoExecutor> workers_;

  // In-flight worker tasks (kEventLoop); Stop blocks until zero so a task can
  // never outlive the server object it references.
  Mutex inflight_mu_;
  CondVar inflight_cv_;
  size_t inflight_ GUARDED_BY(inflight_mu_) = 0;

  AftServiceServerStats stats_;

  // Per-method service latency (aft_net_rpc_latency_ms{node=,method=}),
  // indexed by the request MessageType octet; nullptr for unknown types.
  std::array<obs::Histogram*, 16> rpc_latency_{};
  // Requests currently inside HandleRequest, both threading modes; exposed
  // as the aft_net_requests_inflight gauge.
  std::atomic<uint64_t> requests_inflight_{0};
  std::vector<obs::ScopedMetricCallback> metric_callbacks_;
};

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_SERVER_H_
