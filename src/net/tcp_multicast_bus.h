// Commit-set multicast over real loopback TCP (§4.1).
//
// Same gossip protocol as `InProcMulticastBus` — drain each node's recent
// commits, forward the unpruned stream to the fault manager, broadcast the
// pruned stream to every peer — but delivery crosses an actual socket
// boundary: each registered node gets its own `AftServiceServer`, and the bus
// ships records to peers as framed, checksummed `ApplyCommits` RPCs against
// those servers, awaiting the ack so a gossip round is deterministic.
//
// Round shape (RunOnce): drains and per-sender supersedence pruning run
// first (cheap, in-memory — pruned txns never reach the wire, §4.1); then
// every receiver's records are COALESCED into one batched ApplyCommits frame
// (the union of all other senders' pruned streams), encoded once, and all
// receivers are delivered to CONCURRENTLY on the shared IoExecutor. The
// committer thread is never blocked behind a slow peer, and one dead peer
// costs only its own timeout — never delays delivery to healthy peers.
//
// Failure model: a delivery that fails in the transport (connection refused /
// reset / timeout) increments `stats().delivery_errors` and is NOT retried —
// the fault manager's storage scan is the recovery path for anything gossip
// loses, exactly as in the paper (§4.2). The failed peer's connection is
// re-dialed on the next round. `KillEndpoint` tears one node's server down
// without touching the node, simulating a machine whose network died after
// acking a commit to its client.

#ifndef SRC_NET_TCP_MULTICAST_BUS_H_
#define SRC_NET_TCP_MULTICAST_BUS_H_

#include <memory>
#include <vector>

#include "src/cluster/multicast_bus.h"
#include "src/common/mutex.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"

namespace aft {
namespace net {

struct TcpMulticastBusOptions {
  // Real-time budgets for one gossip delivery (loopback: generous).
  Duration connect_timeout = std::chrono::seconds(2);
  Duration rpc_timeout = std::chrono::seconds(10);
  // Options for the per-node AftServiceServers the bus hosts (threading
  // model, backpressure knobs) — plumbed from the cluster deployment.
  AftServiceServerOptions server_options;
};

class TcpMulticastBus : public MulticastBus {
 public:
  explicit TcpMulticastBus(Clock& clock, Duration interval = Millis(1000),
                           TcpMulticastBusOptions options = {});
  ~TcpMulticastBus() override;

  // Creates and starts an AftServiceServer for `node` on an ephemeral
  // loopback port. Registration failure (no free port) is logged and the
  // node is left unregistered.
  void RegisterNode(AftNode* node) override;
  void UnregisterNode(AftNode* node) override;
  void SetFaultManagerSink(FaultManagerSink sink) override;
  void RunOnce() override;

  // The service endpoint for a registered node (port 0 if unknown). Clients
  // (RemoteAftClient) connect here; so does peer gossip.
  NetEndpoint EndpointOf(const AftNode* node) const;
  // All registered service endpoints, in registration order.
  std::vector<NetEndpoint> Endpoints() const;

  // Test hook: stop `node`'s server (sockets die, port closes) WITHOUT
  // unregistering the node — the network failed, not the bus membership.
  void KillEndpoint(const AftNode* node);

 private:
  struct Peer {
    explicit Peer(AftNode* n) : node(n) {}
    AftNode* node;
    std::unique_ptr<AftServiceServer> server;
    // Pooled gossip connection TO this peer's server; re-dialed on error.
    // Guarded by its own lock so concurrent deliveries to DIFFERENT peers
    // never serialize on the membership lock.
    Mutex send_mu;
    Socket socket GUARDED_BY(send_mu);
    bool connected GUARDED_BY(send_mu) = false;
  };

  // Sends one sealed ApplyCommits frame to `peer`'s server and awaits the
  // ack. Serialized per peer under peer.send_mu. The trace id (if any) was
  // baked into the frame at seal time so the receiver's RemoteApply span
  // joins the trace.
  Status DeliverTo(Peer& peer, const FrameBytes& frame);

  const TcpMulticastBusOptions options_;

  // Registry counters mirroring the base-class stats, plus the per-round
  // coalesced batch size distribution.
  struct Instruments {
    obs::Counter* rounds = nullptr;
    obs::Counter* records_broadcast = nullptr;
    obs::Counter* records_pruned = nullptr;
    obs::Counter* delivery_errors = nullptr;
    obs::Histogram* batch_records = nullptr;
  };
  Instruments metrics_;

  // Guards membership and the sink only. Gossip rounds snapshot the peer list
  // (shared_ptr) and run OUTSIDE this lock, so Register/Unregister/Kill are
  // never blocked behind a slow delivery, and a peer removed mid-round stays
  // alive until the round's deliveries finish.
  mutable Mutex mu_;
  std::vector<std::shared_ptr<Peer>> peers_ GUARDED_BY(mu_);
  FaultManagerSink fault_manager_sink_ GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_TCP_MULTICAST_BUS_H_
