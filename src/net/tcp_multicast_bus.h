// Commit-set multicast over real loopback TCP (§4.1).
//
// Same gossip protocol as `InProcMulticastBus` — drain each node's recent
// commits, forward the unpruned stream to the fault manager, broadcast the
// pruned stream to every peer — but delivery crosses an actual socket
// boundary: each registered node gets its own `AftServiceServer`, and the bus
// ships records to peers as framed, checksummed `ApplyCommits` RPCs against
// those servers, awaiting the ack so a gossip round is deterministic.
//
// Failure model: a delivery that fails in the transport (connection refused /
// reset / timeout) increments `stats().delivery_errors` and is NOT retried —
// the fault manager's storage scan is the recovery path for anything gossip
// loses, exactly as in the paper (§4.2). `KillEndpoint` tears one node's
// server down without touching the node, simulating a machine whose network
// died after acking a commit to its client.

#ifndef SRC_NET_TCP_MULTICAST_BUS_H_
#define SRC_NET_TCP_MULTICAST_BUS_H_

#include <memory>
#include <vector>

#include "src/cluster/multicast_bus.h"
#include "src/common/mutex.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/socket.h"

namespace aft {
namespace net {

struct TcpMulticastBusOptions {
  // Real-time budgets for one gossip delivery (loopback: generous).
  Duration connect_timeout = std::chrono::seconds(2);
  Duration rpc_timeout = std::chrono::seconds(10);
};

class TcpMulticastBus : public MulticastBus {
 public:
  explicit TcpMulticastBus(Clock& clock, Duration interval = Millis(1000),
                           TcpMulticastBusOptions options = {});
  ~TcpMulticastBus() override;

  // Creates and starts an AftServiceServer for `node` on an ephemeral
  // loopback port. Registration failure (no free port) is logged and the
  // node is left unregistered.
  void RegisterNode(AftNode* node) override;
  void UnregisterNode(AftNode* node) override;
  void SetFaultManagerSink(FaultManagerSink sink) override;
  void RunOnce() override;

  // The service endpoint for a registered node (port 0 if unknown). Clients
  // (RemoteAftClient) connect here; so does peer gossip.
  NetEndpoint EndpointOf(const AftNode* node) const;
  // All registered service endpoints, in registration order.
  std::vector<NetEndpoint> Endpoints() const;

  // Test hook: stop `node`'s server (sockets die, port closes) WITHOUT
  // unregistering the node — the network failed, not the bus membership.
  void KillEndpoint(const AftNode* node);

 private:
  struct Peer {
    explicit Peer(AftNode* n) : node(n) {}
    AftNode* node;
    std::unique_ptr<AftServiceServer> server;
    // Pooled gossip connection TO this peer's server; re-dialed on error.
    Socket socket;
    bool connected = false;
  };

  // Sends one ApplyCommits RPC to `peer`'s server and awaits the ack.
  Status DeliverTo(Peer& peer, const std::string& request) REQUIRES(mu_);

  const TcpMulticastBusOptions options_;

  // One lock serializes membership changes and gossip rounds: RunOnce holds
  // it across deliveries so UnregisterNode can never free a peer mid-send.
  // Register/unregister are rare control-plane events, so the coarse lock is
  // never contended on the data path.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<Peer>> peers_ GUARDED_BY(mu_);
  FaultManagerSink fault_manager_sink_ GUARDED_BY(mu_);
};

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_TCP_MULTICAST_BUS_H_
