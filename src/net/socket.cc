#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace aft {
namespace net {

namespace {

std::string Errno(const std::string& what) { return what + ": " + std::strerror(errno); }

Status SetSocketTimeout(int fd, int option, Duration d) {
  timeval tv{};
  if (d > Duration::zero()) {
    const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    tv.tv_sec = static_cast<time_t>(usec / 1'000'000);
    tv.tv_usec = static_cast<suseconds_t>(usec % 1'000'000);
    // A zero timeval means "no timeout" to the kernel; round sub-microsecond
    // deadlines up so they still behave as deadlines.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) {
      tv.tv_usec = 1;
    }
  }
  if (setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return Status::Internal(Errno("setsockopt(SO_*TIMEO)"));
  }
  return Status::Ok();
}

sockaddr_in LoopbackAddr(const NetEndpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Socket::SendAll(const char* data, size_t len) {
  if (!valid()) {
    return Status::Unavailable("send on closed socket");
  }
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("send deadline exceeded");
      }
      if (errno == EPIPE || errno == ECONNRESET || errno == ENOTCONN) {
        return Status::Unavailable(Errno("peer closed connection"));
      }
      return Status::Internal(Errno("send"));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status Socket::RecvAll(char* data, size_t len) {
  if (!valid()) {
    return Status::Unavailable("recv on closed socket");
  }
  size_t received = 0;
  while (received < len) {
    const ssize_t n = ::recv(fd_, data + received, len - received, 0);
    if (n == 0) {
      return Status::Unavailable("connection closed by peer");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Timeout("recv deadline exceeded");
      }
      if (errno == ECONNRESET || errno == ENOTCONN) {
        return Status::Unavailable(Errno("peer reset connection"));
      }
      return Status::Internal(Errno("recv"));
    }
    received += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<size_t> Socket::RecvSome(char* data, size_t len) {
  if (!valid()) {
    return Status::Unavailable("recv on closed socket");
  }
  while (true) {
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n > 0) {
      return static_cast<size_t>(n);
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by peer");
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("recv would block");
    }
    if (errno == ECONNRESET || errno == ENOTCONN) {
      return Status::Unavailable(Errno("peer reset connection"));
    }
    return Status::Internal(Errno("recv"));
  }
}

Result<size_t> Socket::SendSome(const char* data, size_t len) {
  if (!valid()) {
    return Status::Unavailable("send on closed socket");
  }
  while (true) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("send would block");
    }
    if (errno == EPIPE || errno == ECONNRESET || errno == ENOTCONN) {
      return Status::Unavailable(Errno("peer closed connection"));
    }
    return Status::Internal(Errno("send"));
  }
}

Result<size_t> Socket::SendSomeV(const struct iovec* iov, size_t iovcnt) {
  if (!valid()) {
    return Status::Unavailable("send on closed socket");
  }
  if (iovcnt > IOV_MAX) {
    iovcnt = IOV_MAX;
  }
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = iovcnt;
  while (true) {
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n >= 0) {
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Timeout("send would block");
    }
    if (errno == EPIPE || errno == ECONNRESET || errno == ENOTCONN) {
      return Status::Unavailable(Errno("peer closed connection"));
    }
    return Status::Internal(Errno("sendmsg"));
  }
}

Status Socket::SendAllV(const struct iovec* iov, size_t iovcnt) {
  size_t index = 0;   // first iovec not fully sent
  size_t offset = 0;  // bytes of iov[index] already sent
  while (index < iovcnt) {
    // Window of unsent iovecs, the first adjusted for the partial send.
    struct iovec window[64];
    size_t wcount = 0;
    for (size_t i = index; i < iovcnt && wcount < 64; ++i, ++wcount) {
      window[wcount] = iov[i];
      if (i == index) {
        window[wcount].iov_base = static_cast<char*>(window[wcount].iov_base) + offset;
        window[wcount].iov_len -= offset;
      }
    }
    auto sent = SendSomeV(window, wcount);
    if (!sent.ok()) {
      if (sent.status().code() == StatusCode::kTimeout) {
        // Blocking-socket deadline (SO_SNDTIMEO): same mapping as SendAll.
        return Status::Timeout("send deadline exceeded");
      }
      return sent.status();
    }
    size_t n = *sent;
    while (n > 0 && index < iovcnt) {
      const size_t left = iov[index].iov_len - offset;
      if (n < left) {
        offset += n;
        n = 0;
      } else {
        n -= left;
        ++index;
        offset = 0;
      }
    }
    // Step over exhausted (including zero-length) iovecs so the next window
    // always starts with real bytes — a window of empties would spin forever.
    while (index < iovcnt && offset == iov[index].iov_len) {
      ++index;
      offset = 0;
    }
  }
  return Status::Ok();
}

Status Socket::SetNonBlocking(bool enabled) {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) {
    return Status::Internal(Errno("fcntl(F_GETFL)"));
  }
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_, F_SETFL, wanted) != 0) {
    return Status::Internal(Errno("fcntl(F_SETFL)"));
  }
  return Status::Ok();
}

Status Socket::SetRecvTimeout(Duration d) { return SetSocketTimeout(fd_, SO_RCVTIMEO, d); }

Status Socket::SetSendTimeout(Duration d) { return SetSocketTimeout(fd_, SO_SNDTIMEO, d); }

Status Socket::SetNoDelay() {
  const int one = 1;
  if (setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::Internal(Errno("setsockopt(TCP_NODELAY)"));
  }
  return Status::Ok();
}

void Socket::Shutdown() {
  if (valid()) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Socket::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> TcpConnect(const NetEndpoint& endpoint, Duration timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(Errno("socket"));
  }
  Socket sock(fd);
  // Non-blocking connect so the deadline is enforceable; loopback normally
  // completes immediately or fails with ECONNREFUSED.
  const int flags = fcntl(fd, F_GETFL, 0);
  (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr = LoopbackAddr(endpoint);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Unavailable(Errno("connect to " + endpoint.ToString()));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = timeout > Duration::zero()
        ? static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(timeout).count())
        : -1;
    const int ready = ::poll(&pfd, 1, timeout_ms == 0 ? 1 : timeout_ms);
    if (ready == 0) {
      return Status::Timeout("connect to " + endpoint.ToString() + " timed out");
    }
    if (ready < 0) {
      return Status::Internal(Errno("poll(connect)"));
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      errno = err;
      return Status::Unavailable(Errno("connect to " + endpoint.ToString()));
    }
  }
  (void)fcntl(fd, F_SETFL, flags);  // Back to blocking for SendAll/RecvAll.
  (void)sock.SetNoDelay();
  return sock;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Listener> Listener::Bind(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(Errno("socket"));
  }
  Listener listener;
  listener.fd_ = fd;
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Unavailable(Errno("bind 127.0.0.1:" + std::to_string(port)));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    return Status::Internal(Errno("listen"));
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return Status::Internal(Errno("getsockname"));
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  if (!valid()) {
    return Status::Unavailable("listener closed");
  }
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    // EINVAL is what Linux returns once shutdown() disabled the listener —
    // the clean-exit signal, not an error worth logging.
    if (errno == EINTR) {
      return Accept();
    }
    return Status::Unavailable(Errno("accept"));
  }
  Socket sock(fd);
  (void)sock.SetNoDelay();
  return sock;
}

void Listener::Shutdown() {
  if (valid()) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void Listener::Close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace net
}  // namespace aft
