// aft_server: one AFT shim node behind a TCP socket.
//
// Runs a single AftNode over a simulated storage engine and serves the full
// AFT API (StartTransaction / Get / MultiGet / Put / Commit / Abort) on a
// loopback port, speaking the wire protocol in docs/PROTOCOLS.md. Connect
// with a RemoteAftClient (see examples/net_quickstart.cpp).
//
//   $ ./build/src/net/aft_server --port 7654 --engine dynamo --node-id aft-0
//   aft-server: node aft-0 (dynamodb) listening on 127.0.0.1:7654
//
// Flags:
//   --port N        listen port (default 7654; 0 = kernel-assigned, printed)
//   --engine E      s3 | dynamo | redis | local (default dynamo). `local` is
//                   the durable WAL-backed engine and requires --data-dir;
//                   on restart it recovers its state from the log.
//   --data-dir D    data directory for --engine local (created if missing)
//   --node-id ID    node identifier used in commit records (default aft-0)
//   --threading M   thread | event (default: AFT_NET_THREADING env var, then
//                   event) — thread-per-connection vs. epoll event loop; see
//                   docs/PROTOCOLS.md "Server concurrency model"
//   --metrics-port N  also serve plaintext HTTP on this port: GET /metrics
//                   returns the Prometheus exposition of the process registry,
//                   GET /traces the chrome://tracing JSON ring (0 = kernel-
//                   assigned, printed; omit to disable)
//   --trace-sample N  sample every Nth transaction into the lifecycle tracer
//                   (default 0 = tracing off)
//   --smoke-traffic N  self-test traffic: a background RemoteAftClient issues
//                   N put/commit transactions against this server's own TCP
//                   endpoint, paced ~10ms apart (default 0 = none). Gives a
//                   metrics scraper something non-zero and monotone to watch;
//                   used by the CI metrics smoke.
//   --commit-batching on|off  cross-transaction commit batching (group
//                   commit at the AFT layer; default on). "off" pins the
//                   legacy one-round-trip-set-per-transaction sequence —
//                   the baseline the bench gate compares against.
//   --contention-sample N  sample every Nth lock/queue acquisition into the
//                   contention profiler (default 64; 0 = off, 1 = every).
//                   Results surface on /debug/contention and as the
//                   aft_lock_* metric families.
//
// Every flag (and the env defaults it consulted) is echoed to /varz on the
// metrics exporter, so scrape-side tooling can tell node configurations
// apart; /readyz aggregates engine_recovered / server_accepting / node_alive
// (plus gossip_live on clustered binaries).
//
// SIGINT / SIGTERM trigger a clean shutdown: stop accepting, drain handler
// threads, stop the node's background sweeps, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "src/common/clock.h"
#include "src/common/contention.h"
#include "src/core/aft_node.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_http.h"
#include "src/obs/trace.h"
#include "src/storage/engine_factory.h"

namespace {

// Written by the signal handler, polled by main. sig_atomic_t keeps the
// handler async-signal-safe.
volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--engine s3|dynamo|redis|local] [--data-dir D] "
               "[--node-id ID] [--threading thread|event] [--metrics-port N] "
               "[--trace-sample N] [--smoke-traffic N] [--commit-batching on|off] "
               "[--contention-sample N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aft;

  uint16_t port = 7654;
  std::string engine = "dynamo";
  std::string data_dir;
  std::string node_id = "aft-0";
  net::ServerThreading threading = net::DefaultServerThreading();
  int metrics_port = -1;  // -1 = exporter disabled; 0 = kernel-assigned.
  uint64_t trace_sample = 0;
  uint64_t smoke_traffic = 0;
  bool commit_batching = true;
  // Cheap enough to leave on by default (1/64 sampling; see bench_obs).
  uint32_t contention_sample = 64;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      engine = v;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      data_dir = v;
    } else if (arg == "--node-id") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      node_id = v;
    } else if (arg == "--threading") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "thread") == 0) {
        threading = net::ServerThreading::kThreadPerConn;
      } else if (v != nullptr && std::strcmp(v, "event") == 0) {
        threading = net::ServerThreading::kEventLoop;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--metrics-port") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      metrics_port = std::atoi(v);
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      trace_sample = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--smoke-traffic") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      smoke_traffic = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--commit-batching") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "on") == 0) {
        commit_batching = true;
      } else if (v != nullptr && std::strcmp(v, "off") == 0) {
        commit_batching = false;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--contention-sample") {
      const char* v = next();
      if (v == nullptr) { Usage(argv[0]); return 2; }
      contention_sample = static_cast<uint32_t>(std::atoll(v));
    } else {
      Usage(argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }

  obs::Tracer::Global().SetSampleEveryN(trace_sample);
  contention::SetSampleEveryN(contention_sample);

  // /varz flag echo: every flag value as resolved, plus the env defaults the
  // resolution consulted. Scrape-side tooling (aft_top, the CI smoke) reads
  // these to tell node configurations apart without parsing command lines.
  const char* env_threading = std::getenv("AFT_NET_THREADING");
  const char* env_io_threads = std::getenv("AFT_IO_THREADS");
  obs::SetVarz("flag.port", std::to_string(port));
  obs::SetVarz("flag.engine", engine);
  obs::SetVarz("flag.data_dir", data_dir.empty() ? "(none)" : data_dir);
  obs::SetVarz("flag.node_id", node_id);
  obs::SetVarz("flag.threading",
               threading == net::ServerThreading::kEventLoop ? "event" : "thread");
  obs::SetVarz("flag.metrics_port", std::to_string(metrics_port));
  obs::SetVarz("flag.trace_sample", std::to_string(trace_sample));
  obs::SetVarz("flag.smoke_traffic", std::to_string(smoke_traffic));
  obs::SetVarz("flag.commit_batching", commit_batching ? "on" : "off");
  obs::SetVarz("flag.contention_sample", std::to_string(contention_sample));
  obs::SetVarz("env.AFT_NET_THREADING", env_threading != nullptr ? env_threading : "(unset)");
  obs::SetVarz("env.AFT_IO_THREADS", env_io_threads != nullptr ? env_io_threads : "(unset)");

  RealClock& clock = RealClock::Default();
  EngineFactoryConfig engine_config;
  engine_config.data_dir = data_dir;
  auto storage_or = MakeStorageEngine(engine, clock, engine_config);
  if (!storage_or.ok()) {
    std::fprintf(stderr, "aft-server: %s\n", storage_or.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<StorageEngine> storage = std::move(*storage_or);
  // Registered only after MakeStorageEngine returned ok — for --engine local
  // that is after WAL replay, so /readyz says "recovered", not "constructed".
  obs::ScopedReadyCheck engine_ready = obs::RegisterReadyCheck(
      "engine_recovered", [engine] { return std::make_pair(true, engine); });

  AftNodeOptions node_options;
  node_options.enable_commit_batching = commit_batching;
  AftNode node(node_id, *storage, clock, node_options);
  if (!node.Start().ok()) {
    std::fprintf(stderr, "aft-server: failed to start node\n");
    return 1;
  }

  net::AftServiceServerOptions server_options;
  server_options.port = port;
  server_options.threading = threading;
  net::AftServiceServer server(node, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "aft-server: %s\n", started.ToString().c_str());
    return 1;
  }
  obs::ScopedReadyCheck server_ready =
      obs::RegisterReadyCheck("server_accepting", [&server] {
        return std::make_pair(server.running(), server.endpoint().ToString());
      });
  obs::ScopedReadyCheck node_ready = obs::RegisterReadyCheck(
      "node_alive", [&node] { return std::make_pair(node.alive(), std::string()); });
  std::printf("aft-server: node %s (%s) listening on %s (%s mode)\n", node_id.c_str(),
              engine.c_str(), server.endpoint().ToString().c_str(),
              threading == net::ServerThreading::kEventLoop ? "event-loop" : "thread-per-conn");

  obs::MetricsHttpServer metrics_server(obs::MetricsRegistry::Global(), obs::Tracer::Global());
  if (metrics_port >= 0) {
    const Status metrics_started =
        metrics_server.Start(static_cast<uint16_t>(metrics_port));
    if (!metrics_started.ok()) {
      std::fprintf(stderr, "aft-server: metrics exporter: %s\n",
                   metrics_started.ToString().c_str());
      server.Stop();
      node.Kill();
      return 1;
    }
    std::printf("aft-server: metrics on http://127.0.0.1:%u/metrics (traces on /traces)\n",
                metrics_server.port());
  }
  std::fflush(stdout);

  // Optional self-test traffic: real wire traffic through the same TCP path
  // an external client would use, paced so a scraper sees counters move.
  std::thread smoke_thread;
  if (smoke_traffic > 0) {
    smoke_thread = std::thread([&server, smoke_traffic] {
      net::RemoteAftClient client({server.endpoint()});
      for (uint64_t i = 0; i < smoke_traffic && g_shutdown == 0; ++i) {
        auto session = client.StartTransaction();
        if (!session.ok()) {
          continue;
        }
        (void)client.Put(*session, "smoke:" + std::to_string(i % 64), std::to_string(i));
        (void)client.Commit(*session);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    // The accept/handler threads do all the work; main just waits for a
    // signal. A short real sleep keeps shutdown latency low without a
    // self-pipe.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("aft-server: shutting down (%llu connections, %llu requests)\n",
              static_cast<unsigned long long>(server.stats().connections_accepted.load()),
              static_cast<unsigned long long>(server.stats().requests_served.load()));
  if (smoke_thread.joinable()) {
    smoke_thread.join();
  }
  metrics_server.Stop();
  server.Stop();
  node.Kill();
  return 0;
}
