// RemoteAftClient: the AftClient surface over real TCP.
//
// Mirrors src/cluster/aft_client.h call-for-call — StartTransaction / Resume /
// Get / GetVersioned / MultiGet / Put / PutBatch / Commit / Abort — but every
// call is one framed request/response RPC against an `AftServiceServer`.
// Transactions are pinned to the endpoint chosen (round-robin) at
// StartTransaction, exactly as the in-proc client pins to a node.
//
// Failure handling:
//   * per-call wall-clock deadline (`call_timeout`) enforced with real time —
//     the wire is real hardware, so no SimClock here;
//   * connect + capped exponential backoff (initial_backoff doubling up to
//     max_backoff) across at most `max_attempts` tries per call;
//   * reconnect-on-EPIPE: a torn pooled connection (server restart, reset) is
//     closed and re-dialed transparently on the next attempt. Retry happens
//     only on TRANSPORT errors (kUnavailable / kTimeout from the socket
//     layer); semantic statuses from the server (kAborted, kNotFound, ...)
//     pass through verbatim. All AFT ops are safe to retry: Commit is
//     idempotent on the server (committed-UUID dedup) and a replayed
//     StartTransaction merely starts an extra txn that times out server-side.

#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/core/aft_node.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/net/socket.h"

namespace aft {
namespace net {

struct RemoteAftClientOptions {
  Duration connect_timeout = std::chrono::seconds(2);
  // Overall wall-clock budget for one API call, spanning every retry.
  Duration call_timeout = std::chrono::seconds(10);
  Duration initial_backoff = std::chrono::milliseconds(10);
  Duration max_backoff = std::chrono::milliseconds(500);
  int max_attempts = 4;
};

struct RemoteAftClientStats {
  std::atomic<uint64_t> rpcs_sent{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> reconnects{0};
};

// A remote transaction session: which endpoint serves the transaction, plus
// its UUID. Same value-type role as cluster::TxnSession.
struct RemoteTxnSession {
  size_t endpoint = 0;
  Uuid txid;
  bool started = false;

  bool valid() const { return started; }
};

class RemoteAftClient {
 public:
  explicit RemoteAftClient(std::vector<NetEndpoint> endpoints,
                           RemoteAftClientOptions options = {});
  ~RemoteAftClient();

  RemoteAftClient(const RemoteAftClient&) = delete;
  RemoteAftClient& operator=(const RemoteAftClient&) = delete;

  // Begins a transaction on the next endpoint in round-robin order.
  Result<RemoteTxnSession> StartTransaction();

  // Re-attaches to a transaction after a function handoff or retry (§3.3.1).
  Status Resume(const RemoteTxnSession& session);

  Result<std::optional<std::string>> Get(const RemoteTxnSession& session, const std::string& key);
  Result<AftNode::VersionedRead> GetVersioned(const RemoteTxnSession& session,
                                              const std::string& key);
  Result<std::vector<AftNode::VersionedRead>> MultiGet(const RemoteTxnSession& session,
                                                       std::span<const std::string> keys);

  Status Put(const RemoteTxnSession& session, const std::string& key, std::string value);
  Status PutBatch(const RemoteTxnSession& session, std::span<const WriteOp> ops);

  Result<TxnId> Commit(const RemoteTxnSession& session);
  Status Abort(const RemoteTxnSession& session);

  // Liveness probe of one endpoint; returns the remote node id.
  Result<std::string> Ping(size_t endpoint);

  size_t endpoint_count() const { return channels_.size(); }
  const RemoteAftClientStats& stats() const { return stats_; }

 private:
  // One pooled connection per endpoint; serialized under its own mutex so a
  // session's request/response pairs can never interleave on the stream.
  struct Channel {
    explicit Channel(NetEndpoint ep) : endpoint(std::move(ep)) {}
    const NetEndpoint endpoint;
    Mutex mu;
    Socket socket GUARDED_BY(mu);
    bool connected GUARDED_BY(mu) = false;
    // Distinguishes a first dial from a re-dial after a torn connection
    // (only the latter counts as a reconnect in stats).
    bool ever_connected GUARDED_BY(mu) = false;
  };

  // One RPC with connect/retry/backoff/deadline handling. Returns the raw
  // response payload (status still encoded inside).
  Result<std::string> Call(size_t endpoint, MessageType type, const std::string& request);
  // One attempt on an (already locked) channel; transport errors tear the
  // pooled connection down so the next attempt re-dials.
  Result<std::string> CallOnce(Channel& channel, MessageType type, const std::string& request,
                               Duration remaining) REQUIRES(channel.mu);
  Status CheckSession(const RemoteTxnSession& session) const;

  std::vector<std::unique_ptr<Channel>> channels_;
  const RemoteAftClientOptions options_;
  std::atomic<size_t> next_endpoint_{0};
  RemoteAftClientStats stats_;
};

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_CLIENT_H_
