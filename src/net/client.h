// RemoteAftClient: the AftClient surface over real TCP.
//
// Mirrors src/cluster/aft_client.h call-for-call — StartTransaction / Resume /
// Get / GetVersioned / MultiGet / Put / PutBatch / Commit / Abort — but every
// call is one framed request/response RPC against an `AftServiceServer`.
// Transactions are pinned to the endpoint chosen (round-robin) at
// StartTransaction, exactly as the in-proc client pins to a node.
//
// Throughput machinery (see docs/PROTOCOLS.md, "Pipelining contract"):
//   * CONNECTION POOL — `connections_per_endpoint` sockets per endpoint;
//     a call picks its stripe by hashing the calling thread, so concurrent
//     callers spread over the pool without coordination.
//   * PIPELINING — up to `max_inflight` requests may be outstanding on one
//     connection. The wire carries no request IDs: responses are matched to
//     requests strictly FIFO (the server guarantees in-order responses), via
//     a per-channel waiter queue and a leader/follower reader — whichever
//     waiter is blocked first reads the stream and delivers responses to the
//     queue heads until its own arrives, then hands the reader role off.
//     A waiter whose deadline expires marks itself abandoned but STAYS in the
//     queue, so stream sync survives; its late response is read and dropped.
//   * FAN-OUT — MultiGet/PutBatch with enough keys are split into chunks
//     issued concurrently over distinct pool stripes. Chunked reads on one
//     txn are equivalent to an interleaving of sequential MultiGets: the
//     server folds every read into the transaction's read set under the txn
//     lock (Algorithm 1 runs per chunk against the accumulated set), so the
//     union observes the same atomicity guarantee as one big MultiGet.
//
// Failure handling:
//   * per-call wall-clock deadline (`call_timeout`) enforced with real time —
//     the wire is real hardware, so no SimClock here;
//   * connect + FULL-JITTER capped exponential backoff (uniform in
//     [0, min(max_backoff, initial_backoff · 2^attempt)]) across at most
//     `max_attempts` tries per call — jitter spreads the retry stampede of
//     many lambdas hammering a recovering node;
//   * reconnect-on-EPIPE: a torn pooled connection (server restart, reset)
//     fails every in-flight call on that connection only, is closed, and is
//     re-dialed transparently on the next attempt. Retry happens only on
//     TRANSPORT errors (kUnavailable / kTimeout from the socket layer);
//     semantic statuses from the server (kAborted, kNotFound, ...) pass
//     through verbatim. All AFT ops are safe to retry: Commit is idempotent
//     on the server (committed-UUID dedup) and a replayed StartTransaction
//     merely starts an extra txn that times out server-side.

#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/core/aft_node.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/net/socket.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aft {
namespace net {

struct RemoteAftClientOptions {
  Duration connect_timeout = std::chrono::seconds(2);
  // Overall wall-clock budget for one API call, spanning every retry.
  Duration call_timeout = std::chrono::seconds(10);
  Duration initial_backoff = std::chrono::milliseconds(10);
  Duration max_backoff = std::chrono::milliseconds(500);
  int max_attempts = 4;
  // Pool width per endpoint. 1 reproduces the old single-connection client.
  size_t connections_per_endpoint = 4;
  // Outstanding requests per connection. 1 = single-flight (a request waits
  // for its response before the next may be sent on that connection).
  size_t max_inflight = 32;
  // MultiGet/PutBatch fan-out kicks in once a chunk would carry at least this
  // many ops; below that the syscall savings don't pay for the coordination.
  size_t fanout_min_chunk = 4;
  // Seed for the backoff jitter RNG (deterministic tests pin this).
  uint64_t jitter_seed = 0x5eed5eed5eed5eedULL;
};

struct RemoteAftClientStats {
  std::atomic<uint64_t> rpcs_sent{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> reconnects{0};
  // Calls that fanned out over multiple pool stripes (MultiGet/PutBatch).
  std::atomic<uint64_t> fanouts{0};
};

// Full-jitter capped exponential backoff: uniform in
// [0, min(max_backoff, initial_backoff * 2^attempt)], attempt counted from 0.
// Free function so the bound is unit-testable.
Duration BackoffWithJitter(Duration initial_backoff, Duration max_backoff, int attempt, Rng& rng);

// A remote transaction session: which endpoint serves the transaction, plus
// its UUID. Same value-type role as cluster::TxnSession.
struct RemoteTxnSession {
  size_t endpoint = 0;
  Uuid txid;
  bool started = false;
  // Client-minted trace context (0 = unsampled); travels on every frame of
  // this transaction so the server-side lifecycle joins the client's trace.
  obs::TraceContext trace;

  bool valid() const { return started; }
};

class RemoteAftClient {
 public:
  explicit RemoteAftClient(std::vector<NetEndpoint> endpoints,
                           RemoteAftClientOptions options = {});
  ~RemoteAftClient();

  RemoteAftClient(const RemoteAftClient&) = delete;
  RemoteAftClient& operator=(const RemoteAftClient&) = delete;

  // Begins a transaction on the next endpoint in round-robin order.
  Result<RemoteTxnSession> StartTransaction();

  // Re-attaches to a transaction after a function handoff or retry (§3.3.1).
  Status Resume(const RemoteTxnSession& session);

  Result<std::optional<std::string>> Get(const RemoteTxnSession& session, const std::string& key);
  Result<AftNode::VersionedRead> GetVersioned(const RemoteTxnSession& session,
                                              const std::string& key);
  Result<std::vector<AftNode::VersionedRead>> MultiGet(const RemoteTxnSession& session,
                                                       std::span<const std::string> keys);

  Status Put(const RemoteTxnSession& session, const std::string& key, std::string value);
  Status PutBatch(const RemoteTxnSession& session, std::span<const WriteOp> ops);

  Result<TxnId> Commit(const RemoteTxnSession& session);
  Status Abort(const RemoteTxnSession& session);

  // Liveness probe of one endpoint; returns the remote node id.
  Result<std::string> Ping(size_t endpoint);

  // Prometheus exposition snapshot of the remote process's metrics registry.
  Result<std::string> GetMetrics(size_t endpoint);

  size_t endpoint_count() const { return pools_.size(); }
  const RemoteAftClientStats& stats() const { return stats_; }

 private:
  // One outstanding request on a channel, queued in send order. `abandoned`
  // waiters (deadline expired) keep their queue slot: the reader still pops
  // them against their responses, preserving FIFO stream sync.
  struct Waiter {
    MessageType expected = MessageType::kPing;
    std::string response;
    Status status = Status::Ok();
    bool done = false;
    bool abandoned = false;
  };

  // One pooled connection. Sends are serialized under `mu`; at most one
  // thread at a time is the READER (reads the socket with `mu` released —
  // `reader_active` excludes re-dials while it runs). Teardown only ever
  // calls Shutdown() on the socket; the fd is closed by the next dialer once
  // no reader is active, so there is no close/use race.
  struct Channel {
    explicit Channel(NetEndpoint ep) : endpoint(std::move(ep)) {}
    const NetEndpoint endpoint;
    Mutex mu;
    CondVar cv;
    Socket socket GUARDED_BY(mu);
    bool connected GUARDED_BY(mu) = false;
    bool reader_active GUARDED_BY(mu) = false;
    // Distinguishes a first dial from a re-dial after a torn connection
    // (only the latter counts as a reconnect in stats).
    bool ever_connected GUARDED_BY(mu) = false;
    std::deque<std::shared_ptr<Waiter>> waiters GUARDED_BY(mu);
  };

  struct EndpointPool {
    std::vector<std::unique_ptr<Channel>> channels;
  };

  // One RPC with connect/retry/backoff/deadline handling against the calling
  // thread's pool stripe. Takes the request as a SEALED frame (header + CRC +
  // arena payload, trace id baked in): sealed once per API call, the same
  // immutable frame is re-sent verbatim on every retry — serialization and
  // CRC never run twice. Returns the raw response payload (status still
  // encoded inside).
  Result<std::string> Call(size_t endpoint, const FrameBytes& request);
  // Same, but on an explicit stripe (fan-out issues chunks on distinct
  // stripes so they actually travel on different connections).
  Result<std::string> CallOnStripe(size_t endpoint, size_t stripe, const FrameBytes& request);
  // One pipelined attempt on a channel: dial if needed, send, wait FIFO.
  Result<std::string> CallOnce(Channel& channel, const FrameBytes& request, Duration remaining);
  // Fails every in-flight waiter and tears the connection down (Shutdown,
  // not Close — the reader may still be blocked in recv on the fd).
  void FailChannelLocked(Channel& channel, const Status& status) REQUIRES(channel.mu);
  // Tears the channel down when nobody is left to drain it: no reader is
  // active and every queued waiter has been abandoned. Without this the
  // abandoned slots would stay occupied forever (the reader role is only
  // ever taken by a thread that has a waiter queued), wedging the pipeline.
  void FailChannelIfOrphanedLocked(Channel& channel) REQUIRES(channel.mu);
  // Reads responses off the socket, delivering to queue heads, until `own` is
  // done or the channel fails. Called with `lock` (on channel.mu) held and
  // reader_active set; drops the lock around each blocking ReadFrame.
  // (Opaque to the thread-safety analysis because of that unlock/relock.)
  void RunReader(Channel& channel, MutexLock& lock, const std::shared_ptr<Waiter>& own,
                 std::chrono::steady_clock::time_point deadline) NO_THREAD_SAFETY_ANALYSIS;
  Status CheckSession(const RemoteTxnSession& session) const;
  size_t StripeForThisThread() const;

  std::vector<EndpointPool> pools_;
  const RemoteAftClientOptions options_;
  std::atomic<size_t> next_endpoint_{0};
  Mutex rng_mu_;
  Rng rng_ GUARDED_BY(rng_mu_);
  RemoteAftClientStats stats_;

  // Registry instruments mirroring `stats_` (plain counters, shared by every
  // client in the process) plus per-method call latency and in-flight gauge.
  struct Instruments {
    obs::Counter* rpcs_sent = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* fanouts = nullptr;
    obs::Gauge* inflight = nullptr;
    std::array<obs::Histogram*, 16> rpc_latency{};
  };
  Instruments metrics_;
};

}  // namespace net
}  // namespace aft

#endif  // SRC_NET_CLIENT_H_
