#include "src/net/client.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/common/contention.h"
#include "src/common/histogram.h"
#include "src/common/io_executor.h"

namespace aft {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kUnavailable || status.code() == StatusCode::kTimeout;
}

Duration TimeLeft(SteadyClock::time_point deadline) {
  return std::chrono::duration_cast<Duration>(deadline - SteadyClock::now());
}

// +1 on construction, -1 on destruction (the aft_net_client_rpcs_inflight
// gauge); tolerates a null gauge.
class ScopedGaugeDelta {
 public:
  explicit ScopedGaugeDelta(obs::Gauge* gauge) : gauge_(gauge) {
    if (gauge_ != nullptr) {
      gauge_->Add(1);
    }
  }
  ~ScopedGaugeDelta() {
    if (gauge_ != nullptr) {
      gauge_->Sub(1);
    }
  }
  ScopedGaugeDelta(const ScopedGaugeDelta&) = delete;
  ScopedGaugeDelta& operator=(const ScopedGaugeDelta&) = delete;

 private:
  obs::Gauge* gauge_;
};

// Encodes the request into arena segments and seals the frame (header + CRC,
// trace id baked in). Done ONCE per API call; Call re-sends the sealed frame
// verbatim on every retry attempt.
template <typename Request>
Result<FrameBytes> SealRequest(MessageType type, const Request& request, uint64_t trace_id = 0) {
  ArenaWriter writer;
  request.SerializeTo(writer);
  return SealFrame(type, std::move(writer).TakeBuffer(), trace_id);
}

}  // namespace

Duration BackoffWithJitter(Duration initial_backoff, Duration max_backoff, int attempt,
                           Rng& rng) {
  if (initial_backoff <= Duration::zero() || max_backoff <= Duration::zero()) {
    return Duration::zero();
  }
  // Grow the ceiling multiplicatively, stopping at the cap (also prevents
  // overflow for large attempt counts).
  Duration ceiling = initial_backoff;
  for (int i = 0; i < attempt && ceiling < max_backoff; ++i) {
    ceiling *= 2;
  }
  ceiling = std::min(ceiling, max_backoff);
  // Full jitter: uniform over [0, ceiling] — decorrelates the retry storms
  // of many clients that failed at the same instant.
  return Duration(rng.Below(static_cast<uint64_t>(ceiling.count()) + 1));
}

RemoteAftClient::RemoteAftClient(std::vector<NetEndpoint> endpoints,
                                 RemoteAftClientOptions options)
    : options_(options), rng_(options.jitter_seed) {
  const size_t width = std::max<size_t>(options_.connections_per_endpoint, 1);
  pools_.reserve(endpoints.size());
  for (NetEndpoint& endpoint : endpoints) {
    EndpointPool pool;
    pool.channels.reserve(width);
    for (size_t i = 0; i < width; ++i) {
      pool.channels.push_back(std::make_unique<Channel>(endpoint));
    }
    pools_.push_back(std::move(pool));
  }
  auto& reg = obs::MetricsRegistry::Global();
  metrics_.rpcs_sent = reg.GetCounter("aft_net_client_rpcs_sent_total", "RPC frames sent");
  metrics_.retries = reg.GetCounter("aft_net_client_retries_total", "RPC attempts after the first");
  metrics_.reconnects =
      reg.GetCounter("aft_net_client_reconnects_total", "Pooled connections re-dialed");
  metrics_.fanouts =
      reg.GetCounter("aft_net_client_fanouts_total", "Batched calls split over pool stripes");
  metrics_.inflight =
      reg.GetGauge("aft_net_client_rpcs_inflight", "Client RPCs currently awaiting a response");
  for (uint8_t t = 1; t < metrics_.rpc_latency.size(); ++t) {
    const auto type = static_cast<MessageType>(t);
    if (!IsKnownMessageType(type)) {
      continue;
    }
    metrics_.rpc_latency[t] = reg.GetHistogram(
        "aft_net_client_rpc_latency_ms", "Client-observed RPC latency incl. retries (ms)",
        DefaultLatencyBoundariesMs(), {{"method", std::string(MessageTypeName(type))}});
  }
}

RemoteAftClient::~RemoteAftClient() = default;

size_t RemoteAftClient::StripeForThisThread() const {
  // Stable per thread, so one caller's request/response pairs reuse one warm
  // connection while concurrent threads spread over the pool.
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void RemoteAftClient::FailChannelLocked(Channel& channel, const Status& status) {
  // Shutdown, not Close: the reader may be blocked in recv on this fd, and a
  // sender may be mid-write. shutdown(2) wakes both; the fd is recycled by
  // the next dialer once the reader has drained out.
  channel.socket.Shutdown();
  channel.connected = false;
  for (auto& waiter : channel.waiters) {
    if (!waiter->done) {
      waiter->status = status;
      waiter->done = true;
    }
  }
  channel.waiters.clear();
  channel.cv.NotifyAll();
}

void RemoteAftClient::FailChannelIfOrphanedLocked(Channel& channel) {
  if (!channel.connected || channel.reader_active || channel.waiters.empty()) {
    return;  // A reader is draining, or there is nothing queued to drain.
  }
  for (const auto& waiter : channel.waiters) {
    if (!waiter->done && !waiter->abandoned) {
      return;  // A live waiter remains; it will take the reader role.
    }
  }
  // Every queued waiter's caller has returned. Nobody will ever read their
  // responses, so the slots would stay occupied until max_inflight new calls
  // wedge behind them. Tear the stream down; the next call re-dials clean.
  FailChannelLocked(channel,
                    Status::Unavailable("connection to " + channel.endpoint.ToString() +
                                        " dropped: every in-flight call abandoned"));
}

void RemoteAftClient::RunReader(Channel& channel, MutexLock& lock,
                                const std::shared_ptr<Waiter>& own,
                                const SteadyClock::time_point deadline) {
  while (channel.connected && !own->done && !channel.waiters.empty()) {
    const Duration left = TimeLeft(deadline);
    if (left <= Duration::zero()) {
      return;  // Caller abandons its slot; a follower takes the reader role.
    }
    // FIFO matching: the head of the queue owns the next response frame.
    const std::shared_ptr<Waiter> front = channel.waiters.front();
    (void)channel.socket.SetRecvTimeout(left);
    lock.Unlock();
    Result<Frame> frame = ReadFrame(channel.socket);
    lock.Lock();
    if (!channel.connected) {
      return;  // Torn down while we read; every waiter already failed.
    }
    if (frame.ok() && frame->type != ResponseType(front->expected)) {
      // A reply of the wrong type means the stream is out of sync; the only
      // safe recovery is a fresh connection.
      frame = Status::Unavailable(std::string("response type mismatch: expected ") +
                                  std::string(MessageTypeName(ResponseType(front->expected))) +
                                  ", got " + std::string(MessageTypeName(frame->type)));
    }
    if (!frame.ok()) {
      FailChannelLocked(channel, frame.status());
      return;
    }
    channel.waiters.pop_front();
    // An abandoned head still consumed its response (keeping the stream in
    // sync); the payload just has no one left to read it.
    front->response = std::move(frame->payload);
    front->done = true;
    channel.cv.NotifyAll();
  }
}

Result<std::string> RemoteAftClient::CallOnce(Channel& channel, const FrameBytes& request,
                                              Duration remaining) {
  const SteadyClock::time_point deadline = SteadyClock::now() + remaining;
  MutexLock lock(channel.mu);
  // 1. Ensure a live connection. A reader may still be draining a torn
  //    stream; the fd can only be closed + re-dialed once it has exited.
  while (!channel.connected) {
    const Duration left = TimeLeft(deadline);
    if (left <= Duration::zero()) {
      return Status::Timeout("call deadline exceeded before attempt to " +
                             channel.endpoint.ToString());
    }
    if (channel.reader_active) {
      channel.cv.WaitFor(lock, left);
      continue;
    }
    channel.socket.Close();
    auto socket = TcpConnect(channel.endpoint, std::min(left, options_.connect_timeout));
    if (!socket.ok()) {
      return socket.status();
    }
    channel.socket = std::move(socket).value();
    (void)channel.socket.SetNoDelay();
    channel.connected = true;
    if (channel.ever_connected) {
      stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
      metrics_.reconnects->Increment();
    }
    channel.ever_connected = true;
  }
  // 2. Bounded pipelining: wait for an in-flight slot. A sampled queue-
  //    contention site: when the bounded pipeline is the bottleneck,
  //    /debug/contention ranks "client.pipeline" against server-side locks.
  const size_t max_inflight = std::max<size_t>(options_.max_inflight, 1);
  if (channel.waiters.size() >= max_inflight) {
    static contention::ContentionSite* const pipeline_site =
        contention::QueueSite("client.pipeline");
    const bool sampled = contention::ShouldSample();
    const SteadyClock::time_point slot_wait_start = SteadyClock::now();
    while (channel.connected && channel.waiters.size() >= max_inflight) {
      const Duration left = TimeLeft(deadline);
      if (left <= Duration::zero()) {
        return Status::Timeout("call deadline exceeded awaiting pipeline slot to " +
                               channel.endpoint.ToString());
      }
      channel.cv.WaitFor(lock, left);
    }
    if (sampled) {
      pipeline_site->RecordWait(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                               slot_wait_start)
              .count()));
    }
  }
  if (!channel.connected) {
    return Status::Unavailable("connection to " + channel.endpoint.ToString() +
                               " torn down while awaiting pipeline slot");
  }
  // 3. Send. The write runs under the lock, so the send order and the
  //    waiter-queue order are the same order — the FIFO invariant. The frame
  //    was sealed by the caller; this scatter-gathers its header + payload
  //    segments into sendmsg without touching the bytes.
  const Duration send_left = TimeLeft(deadline);
  if (send_left <= Duration::zero()) {
    return Status::Timeout("call deadline exceeded before send to " +
                           channel.endpoint.ToString());
  }
  (void)channel.socket.SetSendTimeout(send_left);
  stats_.rpcs_sent.fetch_add(1, std::memory_order_relaxed);
  metrics_.rpcs_sent->Increment();
  const Status sent = WriteFrameBytes(channel.socket, request);
  if (!sent.ok()) {
    // A partial send leaves the stream unframed: fail everything in flight.
    FailChannelLocked(channel, sent);
    return sent;
  }
  auto waiter = std::make_shared<Waiter>();
  waiter->expected = request.type;
  channel.waiters.push_back(waiter);
  // 4. Wait for our response: become the reader when the role is free,
  //    otherwise follow until notified (or our deadline expires).
  while (!waiter->done) {
    // Deadline first, BEFORE any claim on the reader role: an expired
    // claimer would bounce straight off RunReader's own deadline check and
    // spin claim/release forever with the mutex held, wedging the channel.
    const Duration left = TimeLeft(deadline);
    if (left <= Duration::zero()) {
      // Abandon in place: the slot stays queued so the reader still matches
      // our (late) response to it and the stream stays in sync.
      waiter->abandoned = true;
      FailChannelIfOrphanedLocked(channel);
      return Status::Timeout("call deadline exceeded awaiting response from " +
                             channel.endpoint.ToString());
    }
    if (!channel.reader_active) {
      channel.reader_active = true;
      RunReader(channel, lock, waiter, deadline);
      channel.reader_active = false;
      // Our exit may leave only abandoned waiters behind (e.g. our own
      // response arrived after a follower abandoned); nobody else will
      // become the reader for them, so fail the channel now if so.
      FailChannelIfOrphanedLocked(channel);
      channel.cv.NotifyAll();
      continue;
    }
    channel.cv.WaitFor(lock, left);
  }
  if (!waiter->status.ok()) {
    return waiter->status;
  }
  return std::move(waiter->response);
}

Result<std::string> RemoteAftClient::Call(size_t endpoint, const FrameBytes& request) {
  return CallOnStripe(endpoint, StripeForThisThread(), request);
}

Result<std::string> RemoteAftClient::CallOnStripe(size_t endpoint, size_t stripe,
                                                  const FrameBytes& request) {
  if (endpoint >= pools_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  const uint8_t type_index = static_cast<uint8_t>(request.type);
  obs::ScopedHistogramTimer latency(
      type_index < metrics_.rpc_latency.size() ? metrics_.rpc_latency[type_index] : nullptr);
  const ScopedGaugeDelta inflight(metrics_.inflight);
  EndpointPool& pool = pools_[endpoint];
  Channel& channel = *pool.channels[stripe % pool.channels.size()];
  const SteadyClock::time_point deadline = SteadyClock::now() + options_.call_timeout;
  Status last = Status::Timeout("call budget exhausted before first attempt");
  const int max_attempts = std::max(options_.max_attempts, 1);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      metrics_.retries->Increment();
    }
    Result<std::string> payload = CallOnce(channel, request, TimeLeft(deadline));
    if (payload.ok() || !IsTransportError(payload.status())) {
      return payload;
    }
    last = payload.status();
    // Full-jitter capped exponential backoff, never sleeping past the
    // call deadline.
    const Duration sleep = [&] {
      MutexLock lock(rng_mu_);
      return BackoffWithJitter(options_.initial_backoff, options_.max_backoff, attempt, rng_);
    }();
    if (TimeLeft(deadline) <= sleep) {
      break;
    }
    if (sleep > Duration::zero()) {
      std::this_thread::sleep_for(sleep);
    }
  }
  return Status(last.code(),
                "rpc to " + channel.endpoint.ToString() + " failed after retries: " + last.message());
}

Status RemoteAftClient::CheckSession(const RemoteTxnSession& session) const {
  if (!session.valid()) {
    return Status::InvalidArgument("invalid session: no transaction started");
  }
  if (session.endpoint >= pools_.size()) {
    return Status::InvalidArgument("invalid session: endpoint index out of range");
  }
  return Status::Ok();
}

Result<RemoteTxnSession> RemoteAftClient::StartTransaction() {
  if (pools_.empty()) {
    return Status::FailedPrecondition("no endpoints configured");
  }
  const size_t endpoint = next_endpoint_.fetch_add(1, std::memory_order_relaxed) % pools_.size();
  // Mint the trace context on the client: the server adopts it in its
  // StartTransaction handler, so the whole lifecycle shares one trace id.
  const obs::TraceContext trace = obs::Tracer::Global().StartTrace();
  obs::TraceSpan span(trace, "ClientStartTxn", "client");
  AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                       SealRequest(MessageType::kStartTxn, StartTxnRequest{}, trace.trace_id));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(endpoint, frame));
  AFT_ASSIGN_OR_RETURN(StartTxnResponse response, StartTxnResponse::Deserialize(payload));
  RemoteTxnSession session;
  session.endpoint = endpoint;
  session.txid = response.txid;
  session.started = true;
  session.trace = trace;
  return session;
}

Status RemoteAftClient::Resume(const RemoteTxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  AdoptTxnRequest request;
  request.txid = session.txid;
  AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                       SealRequest(MessageType::kAdoptTxn, request, session.trace.trace_id));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(session.endpoint, frame));
  return DeserializeEmptyResponse(payload);
}

Result<std::optional<std::string>> RemoteAftClient::Get(const RemoteTxnSession& session,
                                                        const std::string& key) {
  AFT_ASSIGN_OR_RETURN(AftNode::VersionedRead read, GetVersioned(session, key));
  return std::move(read.value);
}

Result<AftNode::VersionedRead> RemoteAftClient::GetVersioned(const RemoteTxnSession& session,
                                                             const std::string& key) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  GetRequest request;
  request.txid = session.txid;
  request.key = key;
  AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                       SealRequest(MessageType::kGet, request, session.trace.trace_id));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(session.endpoint, frame));
  AFT_ASSIGN_OR_RETURN(GetResponse response, GetResponse::Deserialize(payload));
  return std::move(response.read);
}

Result<std::vector<AftNode::VersionedRead>> RemoteAftClient::MultiGet(
    const RemoteTxnSession& session, std::span<const std::string> keys) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  const size_t pool_width = pools_[session.endpoint].channels.size();
  const size_t min_chunk = std::max<size_t>(options_.fanout_min_chunk, 1);
  const size_t num_chunks = std::min(pool_width, keys.size() / min_chunk);
  if (num_chunks < 2) {
    MultiGetRequest request;
    request.txid = session.txid;
    request.keys.assign(keys.begin(), keys.end());
    AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                         SealRequest(MessageType::kMultiGet, request, session.trace.trace_id));
    AFT_ASSIGN_OR_RETURN(std::string payload, Call(session.endpoint, frame));
    AFT_ASSIGN_OR_RETURN(MultiGetResponse response, MultiGetResponse::Deserialize(payload));
    return std::move(response.reads);
  }
  // Fan the batch out over distinct pool stripes. Chunked reads on one txn
  // are an interleaving of sequential MultiGets: the server folds each chunk
  // into the txn's read set under the txn lock, so the union carries the same
  // Algorithm-1 atomicity guarantee as one monolithic call (see header).
  stats_.fanouts.fetch_add(1, std::memory_order_relaxed);
  metrics_.fanouts->Increment();
  std::vector<std::pair<size_t, size_t>> ranges;  // {offset, length}
  const size_t base = keys.size() / num_chunks;
  const size_t extra = keys.size() % num_chunks;
  for (size_t c = 0, off = 0; c < num_chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    ranges.emplace_back(off, len);
    off += len;
  }
  std::vector<AftNode::VersionedRead> reads(keys.size());
  const size_t stripe0 = StripeForThisThread();
  const Status status = IoExecutor::Shared().ParallelFor(
      num_chunks, [&](size_t c) -> Status {
        const auto [off, len] = ranges[c];
        MultiGetRequest request;
        request.txid = session.txid;
        request.keys.assign(keys.begin() + off, keys.begin() + off + len);
        AFT_ASSIGN_OR_RETURN(FrameBytes frame, SealRequest(MessageType::kMultiGet, request,
                                                           session.trace.trace_id));
        AFT_ASSIGN_OR_RETURN(std::string payload,
                             CallOnStripe(session.endpoint, stripe0 + c, frame));
        AFT_ASSIGN_OR_RETURN(MultiGetResponse response, MultiGetResponse::Deserialize(payload));
        if (response.reads.size() != len) {
          return Status::Internal("multiget chunk returned " +
                                  std::to_string(response.reads.size()) + " reads for " +
                                  std::to_string(len) + " keys");
        }
        std::move(response.reads.begin(), response.reads.end(), reads.begin() + off);
        return Status::Ok();
      });
  AFT_RETURN_IF_ERROR(status);
  return reads;
}

Status RemoteAftClient::Put(const RemoteTxnSession& session, const std::string& key,
                            std::string value) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  PutRequest request;
  request.txid = session.txid;
  request.key = key;
  request.value = std::move(value);
  AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                       SealRequest(MessageType::kPut, request, session.trace.trace_id));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(session.endpoint, frame));
  return DeserializeEmptyResponse(payload);
}

Status RemoteAftClient::PutBatch(const RemoteTxnSession& session, std::span<const WriteOp> ops) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  const size_t pool_width = pools_[session.endpoint].channels.size();
  const size_t min_chunk = std::max<size_t>(options_.fanout_min_chunk, 1);
  size_t num_chunks = std::min(pool_width, ops.size() / min_chunk);
  if (num_chunks >= 2) {
    // Concurrent chunks lose the batch's internal ordering, which only
    // matters when one key appears twice (last write would no longer
    // deterministically win) — fall back to one call in that case.
    std::unordered_set<std::string_view> seen;
    seen.reserve(ops.size());
    for (const WriteOp& op : ops) {
      if (!seen.insert(op.key).second) {
        num_chunks = 1;
        break;
      }
    }
  }
  if (num_chunks < 2) {
    PutBatchRequest request;
    request.txid = session.txid;
    request.ops.assign(ops.begin(), ops.end());
    AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                         SealRequest(MessageType::kPutBatch, request, session.trace.trace_id));
    AFT_ASSIGN_OR_RETURN(std::string payload, Call(session.endpoint, frame));
    return DeserializeEmptyResponse(payload);
  }
  // Buffered writes land in the txn's private write set, so concurrent
  // chunks of distinct keys commute; atomicity is decided at Commit, which
  // still sees the union (same guarantee as the sequential loop the server
  // runs for one big batch).
  stats_.fanouts.fetch_add(1, std::memory_order_relaxed);
  metrics_.fanouts->Increment();
  std::vector<std::pair<size_t, size_t>> ranges;
  const size_t base = ops.size() / num_chunks;
  const size_t extra = ops.size() % num_chunks;
  for (size_t c = 0, off = 0; c < num_chunks; ++c) {
    const size_t len = base + (c < extra ? 1 : 0);
    ranges.emplace_back(off, len);
    off += len;
  }
  const size_t stripe0 = StripeForThisThread();
  return IoExecutor::Shared().ParallelFor(num_chunks, [&](size_t c) -> Status {
    const auto [off, len] = ranges[c];
    PutBatchRequest request;
    request.txid = session.txid;
    request.ops.assign(ops.begin() + off, ops.begin() + off + len);
    AFT_ASSIGN_OR_RETURN(FrameBytes frame, SealRequest(MessageType::kPutBatch, request,
                                                       session.trace.trace_id));
    AFT_ASSIGN_OR_RETURN(std::string payload, CallOnStripe(session.endpoint, stripe0 + c, frame));
    return DeserializeEmptyResponse(payload);
  });
}

Result<TxnId> RemoteAftClient::Commit(const RemoteTxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  obs::TraceSpan span(session.trace, "ClientCommit", "client");
  CommitRequest request;
  request.txid = session.txid;
  AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                       SealRequest(MessageType::kCommit, request, session.trace.trace_id));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(session.endpoint, frame));
  AFT_ASSIGN_OR_RETURN(CommitResponse response, CommitResponse::Deserialize(payload));
  return response.id;
}

Status RemoteAftClient::Abort(const RemoteTxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  AbortRequest request;
  request.txid = session.txid;
  AFT_ASSIGN_OR_RETURN(FrameBytes frame,
                       SealRequest(MessageType::kAbort, request, session.trace.trace_id));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(session.endpoint, frame));
  return DeserializeEmptyResponse(payload);
}

Result<std::string> RemoteAftClient::Ping(size_t endpoint) {
  AFT_ASSIGN_OR_RETURN(FrameBytes frame, SealRequest(MessageType::kPing, PingRequest{}));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(endpoint, frame));
  AFT_ASSIGN_OR_RETURN(PingResponse response, PingResponse::Deserialize(payload));
  return std::move(response.node_id);
}

Result<std::string> RemoteAftClient::GetMetrics(size_t endpoint) {
  AFT_ASSIGN_OR_RETURN(FrameBytes frame, SealRequest(MessageType::kGetMetrics, GetMetricsRequest{}));
  AFT_ASSIGN_OR_RETURN(std::string payload, Call(endpoint, frame));
  AFT_ASSIGN_OR_RETURN(GetMetricsResponse response, GetMetricsResponse::Deserialize(payload));
  return std::move(response.text);
}

}  // namespace net
}  // namespace aft
