#include "src/net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace aft {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kUnavailable || status.code() == StatusCode::kTimeout;
}

}  // namespace

RemoteAftClient::RemoteAftClient(std::vector<NetEndpoint> endpoints,
                                 RemoteAftClientOptions options)
    : options_(options) {
  channels_.reserve(endpoints.size());
  for (NetEndpoint& endpoint : endpoints) {
    channels_.push_back(std::make_unique<Channel>(std::move(endpoint)));
  }
}

RemoteAftClient::~RemoteAftClient() = default;

Result<std::string> RemoteAftClient::CallOnce(Channel& channel, MessageType type,
                                              const std::string& request, Duration remaining) {
  if (remaining <= Duration::zero()) {
    return Status::Timeout("call deadline exceeded before attempt to " +
                           channel.endpoint.ToString());
  }
  if (!channel.connected) {
    const Duration dial_budget = std::min(remaining, options_.connect_timeout);
    auto socket = TcpConnect(channel.endpoint, dial_budget);
    if (!socket.ok()) {
      return socket.status();
    }
    channel.socket = std::move(socket).value();
    (void)channel.socket.SetNoDelay();
    channel.connected = true;
    if (channel.ever_connected) {
      stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
    }
    channel.ever_connected = true;
  }
  (void)channel.socket.SetSendTimeout(remaining);
  (void)channel.socket.SetRecvTimeout(remaining);
  stats_.rpcs_sent.fetch_add(1, std::memory_order_relaxed);
  const Status sent = WriteFrame(channel.socket, type, request);
  Result<Frame> frame = sent.ok() ? ReadFrame(channel.socket) : Result<Frame>(sent);
  if (frame.ok() && frame->type != ResponseType(type)) {
    // A reply for the wrong request means the stream is out of sync; the
    // only safe recovery is a fresh connection.
    frame = Status::Unavailable(std::string("response type mismatch: expected ") +
                                std::string(MessageTypeName(ResponseType(type))) + ", got " +
                                std::string(MessageTypeName(frame->type)));
  }
  if (!frame.ok()) {
    // Any failure mid-RPC leaves the stream unusable (a late reply would be
    // matched to the wrong request): tear the pooled connection down so the
    // next attempt re-dials.
    channel.socket.Close();
    channel.connected = false;
    return frame.status();
  }
  return std::move(frame->payload);
}

Result<std::string> RemoteAftClient::Call(size_t endpoint, MessageType type,
                                          const std::string& request) {
  if (endpoint >= channels_.size()) {
    return Status::InvalidArgument("endpoint index out of range");
  }
  Channel& channel = *channels_[endpoint];
  const SteadyClock::time_point deadline = SteadyClock::now() + options_.call_timeout;
  Duration backoff = options_.initial_backoff;
  Status last = Status::Timeout("call budget exhausted before first attempt");
  const int max_attempts = std::max(options_.max_attempts, 1);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
    }
    Result<std::string> payload = [&]() -> Result<std::string> {
      const Duration remaining =
          std::chrono::duration_cast<Duration>(deadline - SteadyClock::now());
      MutexLock lock(channel.mu);
      return CallOnce(channel, type, request, remaining);
    }();
    if (payload.ok() || !IsTransportError(payload.status())) {
      return payload;
    }
    last = payload.status();
    // Capped exponential backoff, but never sleep past the call deadline.
    const Duration remaining = std::chrono::duration_cast<Duration>(deadline - SteadyClock::now());
    if (remaining <= backoff) {
      break;
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, options_.max_backoff);
  }
  return Status(last.code(),
                "rpc to " + channel.endpoint.ToString() + " failed after retries: " + last.message());
}

Status RemoteAftClient::CheckSession(const RemoteTxnSession& session) const {
  if (!session.valid()) {
    return Status::InvalidArgument("invalid session: no transaction started");
  }
  if (session.endpoint >= channels_.size()) {
    return Status::InvalidArgument("invalid session: endpoint index out of range");
  }
  return Status::Ok();
}

Result<RemoteTxnSession> RemoteAftClient::StartTransaction() {
  if (channels_.empty()) {
    return Status::FailedPrecondition("no endpoints configured");
  }
  const size_t endpoint = next_endpoint_.fetch_add(1, std::memory_order_relaxed) % channels_.size();
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(endpoint, MessageType::kStartTxn, StartTxnRequest{}.Serialize()));
  AFT_ASSIGN_OR_RETURN(StartTxnResponse response, StartTxnResponse::Deserialize(payload));
  RemoteTxnSession session;
  session.endpoint = endpoint;
  session.txid = response.txid;
  session.started = true;
  return session;
}

Status RemoteAftClient::Resume(const RemoteTxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  AdoptTxnRequest request;
  request.txid = session.txid;
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(session.endpoint, MessageType::kAdoptTxn, request.Serialize()));
  return DeserializeEmptyResponse(payload);
}

Result<std::optional<std::string>> RemoteAftClient::Get(const RemoteTxnSession& session,
                                                        const std::string& key) {
  AFT_ASSIGN_OR_RETURN(AftNode::VersionedRead read, GetVersioned(session, key));
  return std::move(read.value);
}

Result<AftNode::VersionedRead> RemoteAftClient::GetVersioned(const RemoteTxnSession& session,
                                                             const std::string& key) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  GetRequest request;
  request.txid = session.txid;
  request.key = key;
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(session.endpoint, MessageType::kGet, request.Serialize()));
  AFT_ASSIGN_OR_RETURN(GetResponse response, GetResponse::Deserialize(payload));
  return std::move(response.read);
}

Result<std::vector<AftNode::VersionedRead>> RemoteAftClient::MultiGet(
    const RemoteTxnSession& session, std::span<const std::string> keys) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  MultiGetRequest request;
  request.txid = session.txid;
  request.keys.assign(keys.begin(), keys.end());
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(session.endpoint, MessageType::kMultiGet, request.Serialize()));
  AFT_ASSIGN_OR_RETURN(MultiGetResponse response, MultiGetResponse::Deserialize(payload));
  return std::move(response.reads);
}

Status RemoteAftClient::Put(const RemoteTxnSession& session, const std::string& key,
                            std::string value) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  PutRequest request;
  request.txid = session.txid;
  request.key = key;
  request.value = std::move(value);
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(session.endpoint, MessageType::kPut, request.Serialize()));
  return DeserializeEmptyResponse(payload);
}

Status RemoteAftClient::PutBatch(const RemoteTxnSession& session, std::span<const WriteOp> ops) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  PutBatchRequest request;
  request.txid = session.txid;
  request.ops.assign(ops.begin(), ops.end());
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(session.endpoint, MessageType::kPutBatch, request.Serialize()));
  return DeserializeEmptyResponse(payload);
}

Result<TxnId> RemoteAftClient::Commit(const RemoteTxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  CommitRequest request;
  request.txid = session.txid;
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(session.endpoint, MessageType::kCommit, request.Serialize()));
  AFT_ASSIGN_OR_RETURN(CommitResponse response, CommitResponse::Deserialize(payload));
  return response.id;
}

Status RemoteAftClient::Abort(const RemoteTxnSession& session) {
  AFT_RETURN_IF_ERROR(CheckSession(session));
  AbortRequest request;
  request.txid = session.txid;
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(session.endpoint, MessageType::kAbort, request.Serialize()));
  return DeserializeEmptyResponse(payload);
}

Result<std::string> RemoteAftClient::Ping(size_t endpoint) {
  AFT_ASSIGN_OR_RETURN(std::string payload,
                       Call(endpoint, MessageType::kPing, PingRequest{}.Serialize()));
  AFT_ASSIGN_OR_RETURN(PingResponse response, PingResponse::Deserialize(payload));
  return std::move(response.node_id);
}

}  // namespace net
}  // namespace aft
