#include "src/net/message.h"

namespace aft {
namespace net {

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what + " payload");
}

// Requires the reader to be fully consumed: trailing bytes mean the sender
// and receiver disagree about the encoding, which must not pass silently.
bool Finish(BinaryReader& reader) { return reader.AtEnd(); }

// ---- Shared encode bodies --------------------------------------------------
// One body per wire type, templated over the writer, instantiated for both
// BinaryWriter (legacy flat string) and ArenaWriter (segments). Serialize()
// and SerializeTo() below both run these, so their bytes cannot diverge —
// the wire-compat golden tests pin the equality down.

template <typename W>
void AdoptTxnBody(W& w, const AdoptTxnRequest& r) {
  EncodeUuid(w, r.txid);
}

template <typename W>
void GetBody(W& w, const GetRequest& r) {
  EncodeUuid(w, r.txid);
  w.PutString(r.key);
}

template <typename W>
void MultiGetBody(W& w, const MultiGetRequest& r) {
  EncodeUuid(w, r.txid);
  w.PutStringVector(r.keys);
}

template <typename W>
void PutBody(W& w, const PutRequest& r) {
  EncodeUuid(w, r.txid);
  w.PutString(r.key);
  w.PutString(r.value);
}

template <typename W>
void PutBatchBody(W& w, const PutBatchRequest& r) {
  EncodeUuid(w, r.txid);
  w.PutU32(static_cast<uint32_t>(r.ops.size()));
  for (const WriteOp& op : r.ops) {
    w.PutString(op.key);
    w.PutString(op.value);
  }
}

template <typename W>
void CommitBody(W& w, const CommitRequest& r) {
  EncodeUuid(w, r.txid);
}

template <typename W>
void AbortBody(W& w, const AbortRequest& r) {
  EncodeUuid(w, r.txid);
}

template <typename W>
void ApplyCommitsBody(W& w, const ApplyCommitsRequest& r) {
  w.PutU32(static_cast<uint32_t>(r.records.size()));
  for (const CommitRecordPtr& record : r.records) {
    w.PutString(record->Serialize());
  }
}

template <typename W>
void StartTxnResponseBody(W& w, const StartTxnResponse& r, const Status& status) {
  EncodeStatus(w, status);
  if (status.ok()) {
    EncodeUuid(w, r.txid);
  }
}

template <typename W>
void GetResponseBody(W& w, const GetResponse& r, const Status& status) {
  EncodeStatus(w, status);
  if (status.ok()) {
    EncodeVersionedRead(w, r.read);
  }
}

template <typename W>
void MultiGetResponseBody(W& w, const MultiGetResponse& r, const Status& status) {
  EncodeStatus(w, status);
  if (status.ok()) {
    w.PutU32(static_cast<uint32_t>(r.reads.size()));
    for (const AftNode::VersionedRead& read : r.reads) {
      EncodeVersionedRead(w, read);
    }
  }
}

template <typename W>
void CommitResponseBody(W& w, const CommitResponse& r, const Status& status) {
  EncodeStatus(w, status);
  if (status.ok()) {
    EncodeTxnId(w, r.id);
  }
}

template <typename W>
void ApplyCommitsResponseBody(W& w, const ApplyCommitsResponse& r, const Status& status) {
  EncodeStatus(w, status);
  if (status.ok()) {
    w.PutU64(r.applied);
  }
}

template <typename W>
void PingResponseBody(W& w, const PingResponse& r, const Status& status) {
  EncodeStatus(w, status);
  if (status.ok()) {
    w.PutString(r.node_id);
  }
}

template <typename W>
void GetMetricsResponseBody(W& w, const GetMetricsResponse& r, const Status& status) {
  EncodeStatus(w, status);
  if (status.ok()) {
    w.PutString(r.text);
  }
}

}  // namespace

// ---- Field helpers ---------------------------------------------------------

bool DecodeUuid(BinaryReader& reader, Uuid* out) {
  uint64_t hi = 0;
  uint64_t lo = 0;
  if (!reader.GetU64(&hi) || !reader.GetU64(&lo)) {
    return false;
  }
  *out = Uuid(hi, lo);
  return true;
}

bool DecodeTxnId(BinaryReader& reader, TxnId* out) {
  int64_t ts = 0;
  Uuid uuid;
  if (!reader.GetI64(&ts) || !DecodeUuid(reader, &uuid)) {
    return false;
  }
  *out = TxnId(ts, uuid);
  return true;
}

bool DecodeStatus(BinaryReader& reader, Status* out) {
  uint8_t code = 0;
  std::string message;
  if (!reader.GetU8(&code) || !reader.GetString(&message)) {
    return false;
  }
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return false;
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

bool DecodeVersionedRead(BinaryReader& reader, AftNode::VersionedRead* out) {
  uint8_t has_value = 0;
  if (!reader.GetU8(&has_value)) {
    return false;
  }
  if (has_value) {
    std::string value;
    if (!reader.GetString(&value)) {
      return false;
    }
    out->value = std::move(value);
  } else {
    out->value.reset();
  }
  if (!DecodeTxnId(reader, &out->version)) {
    return false;
  }
  uint8_t has_record = 0;
  if (!reader.GetU8(&has_record)) {
    return false;
  }
  out->record = nullptr;
  if (has_record) {
    // Parse the nested record in place over the enclosing payload — the
    // CommitRecord's own fields copy out, the intermediate blob does not.
    std::string_view bytes;
    if (!reader.GetStringView(&bytes)) {
      return false;
    }
    auto record = CommitRecord::Deserialize(bytes);
    if (!record.ok()) {
      return false;
    }
    out->record = std::make_shared<const CommitRecord>(std::move(record).value());
  }
  return true;
}

// ---- Requests --------------------------------------------------------------

std::string StartTxnRequest::Serialize() const { return std::string(); }
void StartTxnRequest::SerializeTo(ArenaWriter&) const {}

Result<StartTxnRequest> StartTxnRequest::Deserialize(std::string_view bytes) {
  if (!bytes.empty()) {
    return Malformed("StartTxn");
  }
  return StartTxnRequest{};
}

std::string AdoptTxnRequest::Serialize() const {
  BinaryWriter writer;
  AdoptTxnBody(writer, *this);
  return std::move(writer).TakeData();
}
void AdoptTxnRequest::SerializeTo(ArenaWriter& writer) const { AdoptTxnBody(writer, *this); }

Result<AdoptTxnRequest> AdoptTxnRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  AdoptTxnRequest request;
  if (!DecodeUuid(reader, &request.txid) || !Finish(reader)) {
    return Malformed("AdoptTxn");
  }
  return request;
}

std::string GetRequest::Serialize() const {
  BinaryWriter writer;
  GetBody(writer, *this);
  return std::move(writer).TakeData();
}
void GetRequest::SerializeTo(ArenaWriter& writer) const { GetBody(writer, *this); }

Result<GetRequest> GetRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  GetRequest request;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetString(&request.key) || !Finish(reader)) {
    return Malformed("Get");
  }
  return request;
}

std::string MultiGetRequest::Serialize() const {
  BinaryWriter writer;
  MultiGetBody(writer, *this);
  return std::move(writer).TakeData();
}
void MultiGetRequest::SerializeTo(ArenaWriter& writer) const { MultiGetBody(writer, *this); }

Result<MultiGetRequest> MultiGetRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  MultiGetRequest request;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetStringVector(&request.keys) ||
      !Finish(reader)) {
    return Malformed("MultiGet");
  }
  return request;
}

std::string PutRequest::Serialize() const {
  BinaryWriter writer;
  PutBody(writer, *this);
  return std::move(writer).TakeData();
}
void PutRequest::SerializeTo(ArenaWriter& writer) const { PutBody(writer, *this); }

Result<PutRequest> PutRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  PutRequest request;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetString(&request.key) ||
      !reader.GetString(&request.value) || !Finish(reader)) {
    return Malformed("Put");
  }
  return request;
}

std::string PutBatchRequest::Serialize() const {
  BinaryWriter writer;
  PutBatchBody(writer, *this);
  return std::move(writer).TakeData();
}
void PutBatchRequest::SerializeTo(ArenaWriter& writer) const { PutBatchBody(writer, *this); }

Result<PutBatchRequest> PutBatchRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  PutBatchRequest request;
  uint32_t count = 0;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetU32(&count)) {
    return Malformed("PutBatch");
  }
  // Each op carries two length-prefixed strings (>= 8 bytes); a count the
  // remaining payload cannot back is corrupt — reject before reserving.
  if (count > reader.remaining() / 8) {
    return Malformed("PutBatch");
  }
  request.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WriteOp op;
    if (!reader.GetString(&op.key) || !reader.GetString(&op.value)) {
      return Malformed("PutBatch");
    }
    request.ops.push_back(std::move(op));
  }
  if (!Finish(reader)) {
    return Malformed("PutBatch");
  }
  return request;
}

std::string CommitRequest::Serialize() const {
  BinaryWriter writer;
  CommitBody(writer, *this);
  return std::move(writer).TakeData();
}
void CommitRequest::SerializeTo(ArenaWriter& writer) const { CommitBody(writer, *this); }

Result<CommitRequest> CommitRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  CommitRequest request;
  if (!DecodeUuid(reader, &request.txid) || !Finish(reader)) {
    return Malformed("Commit");
  }
  return request;
}

std::string AbortRequest::Serialize() const {
  BinaryWriter writer;
  AbortBody(writer, *this);
  return std::move(writer).TakeData();
}
void AbortRequest::SerializeTo(ArenaWriter& writer) const { AbortBody(writer, *this); }

Result<AbortRequest> AbortRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  AbortRequest request;
  if (!DecodeUuid(reader, &request.txid) || !Finish(reader)) {
    return Malformed("Abort");
  }
  return request;
}

std::string ApplyCommitsRequest::Serialize() const {
  BinaryWriter writer;
  ApplyCommitsBody(writer, *this);
  return std::move(writer).TakeData();
}
void ApplyCommitsRequest::SerializeTo(ArenaWriter& writer) const {
  ApplyCommitsBody(writer, *this);
}

Result<ApplyCommitsRequest> ApplyCommitsRequest::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return Malformed("ApplyCommits");
  }
  if (count > reader.remaining() / 4) {  // >= one length prefix per record
    return Malformed("ApplyCommits");
  }
  ApplyCommitsRequest request;
  request.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    // In-place nested parse: the record blob is bounds-checked as a view of
    // the enclosing payload, never copied out first.
    std::string_view record_bytes;
    if (!reader.GetStringView(&record_bytes)) {
      return Malformed("ApplyCommits");
    }
    auto record = CommitRecord::Deserialize(record_bytes);
    if (!record.ok()) {
      return record.status();
    }
    request.records.push_back(std::make_shared<const CommitRecord>(std::move(record).value()));
  }
  if (!Finish(reader)) {
    return Malformed("ApplyCommits");
  }
  return request;
}

std::string PingRequest::Serialize() const { return std::string(); }
void PingRequest::SerializeTo(ArenaWriter&) const {}

Result<PingRequest> PingRequest::Deserialize(std::string_view bytes) {
  if (!bytes.empty()) {
    return Malformed("Ping");
  }
  return PingRequest{};
}

std::string GetMetricsRequest::Serialize() const { return std::string(); }
void GetMetricsRequest::SerializeTo(ArenaWriter&) const {}

Result<GetMetricsRequest> GetMetricsRequest::Deserialize(std::string_view bytes) {
  if (!bytes.empty()) {
    return Malformed("GetMetrics");
  }
  return GetMetricsRequest{};
}

// ---- Responses -------------------------------------------------------------

std::string StartTxnResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  StartTxnResponseBody(writer, *this, status);
  return std::move(writer).TakeData();
}
void StartTxnResponse::SerializeTo(ArenaWriter& writer, const Status& status) const {
  StartTxnResponseBody(writer, *this, status);
}

Result<StartTxnResponse> StartTxnResponse::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("StartTxn response");
  }
  if (!status.ok()) {
    return status;
  }
  StartTxnResponse response;
  if (!DecodeUuid(reader, &response.txid) || !Finish(reader)) {
    return Malformed("StartTxn response");
  }
  return response;
}

std::string GetResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  GetResponseBody(writer, *this, status);
  return std::move(writer).TakeData();
}
void GetResponse::SerializeTo(ArenaWriter& writer, const Status& status) const {
  GetResponseBody(writer, *this, status);
}

Result<GetResponse> GetResponse::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("Get response");
  }
  if (!status.ok()) {
    return status;
  }
  GetResponse response;
  if (!DecodeVersionedRead(reader, &response.read) || !Finish(reader)) {
    return Malformed("Get response");
  }
  return response;
}

std::string MultiGetResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  MultiGetResponseBody(writer, *this, status);
  return std::move(writer).TakeData();
}
void MultiGetResponse::SerializeTo(ArenaWriter& writer, const Status& status) const {
  MultiGetResponseBody(writer, *this, status);
}

Result<MultiGetResponse> MultiGetResponse::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("MultiGet response");
  }
  if (!status.ok()) {
    return status;
  }
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return Malformed("MultiGet response");
  }
  // A VersionedRead is at least two flag bytes plus a TxnId (26 bytes).
  if (count > reader.remaining() / 26) {
    return Malformed("MultiGet response");
  }
  MultiGetResponse response;
  response.reads.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AftNode::VersionedRead read;
    if (!DecodeVersionedRead(reader, &read)) {
      return Malformed("MultiGet response");
    }
    response.reads.push_back(std::move(read));
  }
  if (!Finish(reader)) {
    return Malformed("MultiGet response");
  }
  return response;
}

std::string CommitResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  CommitResponseBody(writer, *this, status);
  return std::move(writer).TakeData();
}
void CommitResponse::SerializeTo(ArenaWriter& writer, const Status& status) const {
  CommitResponseBody(writer, *this, status);
}

Result<CommitResponse> CommitResponse::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("Commit response");
  }
  if (!status.ok()) {
    return status;
  }
  CommitResponse response;
  if (!DecodeTxnId(reader, &response.id) || !Finish(reader)) {
    return Malformed("Commit response");
  }
  return response;
}

std::string ApplyCommitsResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  ApplyCommitsResponseBody(writer, *this, status);
  return std::move(writer).TakeData();
}
void ApplyCommitsResponse::SerializeTo(ArenaWriter& writer, const Status& status) const {
  ApplyCommitsResponseBody(writer, *this, status);
}

Result<ApplyCommitsResponse> ApplyCommitsResponse::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("ApplyCommits response");
  }
  if (!status.ok()) {
    return status;
  }
  ApplyCommitsResponse response;
  if (!reader.GetU64(&response.applied) || !Finish(reader)) {
    return Malformed("ApplyCommits response");
  }
  return response;
}

std::string PingResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  PingResponseBody(writer, *this, status);
  return std::move(writer).TakeData();
}
void PingResponse::SerializeTo(ArenaWriter& writer, const Status& status) const {
  PingResponseBody(writer, *this, status);
}

Result<PingResponse> PingResponse::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("Ping response");
  }
  if (!status.ok()) {
    return status;
  }
  PingResponse response;
  if (!reader.GetString(&response.node_id) || !Finish(reader)) {
    return Malformed("Ping response");
  }
  return response;
}

std::string GetMetricsResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  GetMetricsResponseBody(writer, *this, status);
  return std::move(writer).TakeData();
}
void GetMetricsResponse::SerializeTo(ArenaWriter& writer, const Status& status) const {
  GetMetricsResponseBody(writer, *this, status);
}

Result<GetMetricsResponse> GetMetricsResponse::Deserialize(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("GetMetrics response");
  }
  if (!status.ok()) {
    return status;
  }
  GetMetricsResponse response;
  if (!reader.GetString(&response.text) || !Finish(reader)) {
    return Malformed("GetMetrics response");
  }
  return response;
}

std::string SerializeEmptyResponse(const Status& status) {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  return std::move(writer).TakeData();
}

void SerializeEmptyResponseTo(ArenaWriter& writer, const Status& status) {
  EncodeStatus(writer, status);
}

Status DeserializeEmptyResponse(std::string_view bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status) || !reader.AtEnd()) {
    return Status::InvalidArgument("malformed status-only response payload");
  }
  return status;
}

}  // namespace net
}  // namespace aft
