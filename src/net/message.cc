#include "src/net/message.h"

namespace aft {
namespace net {

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what + " payload");
}

// Requires the reader to be fully consumed: trailing bytes mean the sender
// and receiver disagree about the encoding, which must not pass silently.
bool Finish(BinaryReader& reader) { return reader.AtEnd(); }

}  // namespace

// ---- Field helpers ---------------------------------------------------------

void EncodeUuid(BinaryWriter& writer, const Uuid& id) {
  writer.PutU64(id.hi());
  writer.PutU64(id.lo());
}

bool DecodeUuid(BinaryReader& reader, Uuid* out) {
  uint64_t hi = 0;
  uint64_t lo = 0;
  if (!reader.GetU64(&hi) || !reader.GetU64(&lo)) {
    return false;
  }
  *out = Uuid(hi, lo);
  return true;
}

void EncodeTxnId(BinaryWriter& writer, const TxnId& id) {
  writer.PutI64(id.timestamp);
  EncodeUuid(writer, id.uuid);
}

bool DecodeTxnId(BinaryReader& reader, TxnId* out) {
  int64_t ts = 0;
  Uuid uuid;
  if (!reader.GetI64(&ts) || !DecodeUuid(reader, &uuid)) {
    return false;
  }
  *out = TxnId(ts, uuid);
  return true;
}

void EncodeStatus(BinaryWriter& writer, const Status& status) {
  writer.PutU8(static_cast<uint8_t>(status.code()));
  writer.PutString(status.message());
}

bool DecodeStatus(BinaryReader& reader, Status* out) {
  uint8_t code = 0;
  std::string message;
  if (!reader.GetU8(&code) || !reader.GetString(&message)) {
    return false;
  }
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return false;
  }
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

void EncodeVersionedRead(BinaryWriter& writer, const AftNode::VersionedRead& read) {
  writer.PutU8(read.value.has_value() ? 1 : 0);
  if (read.value.has_value()) {
    writer.PutString(*read.value);
  }
  EncodeTxnId(writer, read.version);
  // The commit record rides along so harness-style clients can audit read
  // atomicity remotely; absent for NULL-version and write-buffer reads.
  writer.PutU8(read.record != nullptr ? 1 : 0);
  if (read.record != nullptr) {
    writer.PutString(read.record->Serialize());
  }
}

bool DecodeVersionedRead(BinaryReader& reader, AftNode::VersionedRead* out) {
  uint8_t has_value = 0;
  if (!reader.GetU8(&has_value)) {
    return false;
  }
  if (has_value) {
    std::string value;
    if (!reader.GetString(&value)) {
      return false;
    }
    out->value = std::move(value);
  } else {
    out->value.reset();
  }
  if (!DecodeTxnId(reader, &out->version)) {
    return false;
  }
  uint8_t has_record = 0;
  if (!reader.GetU8(&has_record)) {
    return false;
  }
  out->record = nullptr;
  if (has_record) {
    std::string bytes;
    if (!reader.GetString(&bytes)) {
      return false;
    }
    auto record = CommitRecord::Deserialize(bytes);
    if (!record.ok()) {
      return false;
    }
    out->record = std::make_shared<const CommitRecord>(std::move(record).value());
  }
  return true;
}

// ---- Requests --------------------------------------------------------------

std::string StartTxnRequest::Serialize() const { return std::string(); }

Result<StartTxnRequest> StartTxnRequest::Deserialize(const std::string& bytes) {
  if (!bytes.empty()) {
    return Malformed("StartTxn");
  }
  return StartTxnRequest{};
}

std::string AdoptTxnRequest::Serialize() const {
  BinaryWriter writer;
  EncodeUuid(writer, txid);
  return std::move(writer).TakeData();
}

Result<AdoptTxnRequest> AdoptTxnRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  AdoptTxnRequest request;
  if (!DecodeUuid(reader, &request.txid) || !Finish(reader)) {
    return Malformed("AdoptTxn");
  }
  return request;
}

std::string GetRequest::Serialize() const {
  BinaryWriter writer;
  EncodeUuid(writer, txid);
  writer.PutString(key);
  return std::move(writer).TakeData();
}

Result<GetRequest> GetRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  GetRequest request;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetString(&request.key) || !Finish(reader)) {
    return Malformed("Get");
  }
  return request;
}

std::string MultiGetRequest::Serialize() const {
  BinaryWriter writer;
  EncodeUuid(writer, txid);
  writer.PutStringVector(keys);
  return std::move(writer).TakeData();
}

Result<MultiGetRequest> MultiGetRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  MultiGetRequest request;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetStringVector(&request.keys) ||
      !Finish(reader)) {
    return Malformed("MultiGet");
  }
  return request;
}

std::string PutRequest::Serialize() const {
  BinaryWriter writer;
  EncodeUuid(writer, txid);
  writer.PutString(key);
  writer.PutString(value);
  return std::move(writer).TakeData();
}

Result<PutRequest> PutRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  PutRequest request;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetString(&request.key) ||
      !reader.GetString(&request.value) || !Finish(reader)) {
    return Malformed("Put");
  }
  return request;
}

std::string PutBatchRequest::Serialize() const {
  BinaryWriter writer;
  EncodeUuid(writer, txid);
  writer.PutU32(static_cast<uint32_t>(ops.size()));
  for (const WriteOp& op : ops) {
    writer.PutString(op.key);
    writer.PutString(op.value);
  }
  return std::move(writer).TakeData();
}

Result<PutBatchRequest> PutBatchRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  PutBatchRequest request;
  uint32_t count = 0;
  if (!DecodeUuid(reader, &request.txid) || !reader.GetU32(&count)) {
    return Malformed("PutBatch");
  }
  // Each op carries two length-prefixed strings (>= 8 bytes); a count the
  // remaining payload cannot back is corrupt — reject before reserving.
  if (count > reader.remaining() / 8) {
    return Malformed("PutBatch");
  }
  request.ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    WriteOp op;
    if (!reader.GetString(&op.key) || !reader.GetString(&op.value)) {
      return Malformed("PutBatch");
    }
    request.ops.push_back(std::move(op));
  }
  if (!Finish(reader)) {
    return Malformed("PutBatch");
  }
  return request;
}

std::string CommitRequest::Serialize() const {
  BinaryWriter writer;
  EncodeUuid(writer, txid);
  return std::move(writer).TakeData();
}

Result<CommitRequest> CommitRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  CommitRequest request;
  if (!DecodeUuid(reader, &request.txid) || !Finish(reader)) {
    return Malformed("Commit");
  }
  return request;
}

std::string AbortRequest::Serialize() const {
  BinaryWriter writer;
  EncodeUuid(writer, txid);
  return std::move(writer).TakeData();
}

Result<AbortRequest> AbortRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  AbortRequest request;
  if (!DecodeUuid(reader, &request.txid) || !Finish(reader)) {
    return Malformed("Abort");
  }
  return request;
}

std::string ApplyCommitsRequest::Serialize() const {
  BinaryWriter writer;
  writer.PutU32(static_cast<uint32_t>(records.size()));
  for (const CommitRecordPtr& record : records) {
    writer.PutString(record->Serialize());
  }
  return std::move(writer).TakeData();
}

Result<ApplyCommitsRequest> ApplyCommitsRequest::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return Malformed("ApplyCommits");
  }
  if (count > reader.remaining() / 4) {  // >= one length prefix per record
    return Malformed("ApplyCommits");
  }
  ApplyCommitsRequest request;
  request.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string record_bytes;
    if (!reader.GetString(&record_bytes)) {
      return Malformed("ApplyCommits");
    }
    auto record = CommitRecord::Deserialize(record_bytes);
    if (!record.ok()) {
      return record.status();
    }
    request.records.push_back(std::make_shared<const CommitRecord>(std::move(record).value()));
  }
  if (!Finish(reader)) {
    return Malformed("ApplyCommits");
  }
  return request;
}

std::string PingRequest::Serialize() const { return std::string(); }

Result<PingRequest> PingRequest::Deserialize(const std::string& bytes) {
  if (!bytes.empty()) {
    return Malformed("Ping");
  }
  return PingRequest{};
}

std::string GetMetricsRequest::Serialize() const { return std::string(); }

Result<GetMetricsRequest> GetMetricsRequest::Deserialize(const std::string& bytes) {
  if (!bytes.empty()) {
    return Malformed("GetMetrics");
  }
  return GetMetricsRequest{};
}

// ---- Responses -------------------------------------------------------------

std::string StartTxnResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  if (status.ok()) {
    EncodeUuid(writer, txid);
  }
  return std::move(writer).TakeData();
}

Result<StartTxnResponse> StartTxnResponse::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("StartTxn response");
  }
  if (!status.ok()) {
    return status;
  }
  StartTxnResponse response;
  if (!DecodeUuid(reader, &response.txid) || !Finish(reader)) {
    return Malformed("StartTxn response");
  }
  return response;
}

std::string GetResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  if (status.ok()) {
    EncodeVersionedRead(writer, read);
  }
  return std::move(writer).TakeData();
}

Result<GetResponse> GetResponse::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("Get response");
  }
  if (!status.ok()) {
    return status;
  }
  GetResponse response;
  if (!DecodeVersionedRead(reader, &response.read) || !Finish(reader)) {
    return Malformed("Get response");
  }
  return response;
}

std::string MultiGetResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  if (status.ok()) {
    writer.PutU32(static_cast<uint32_t>(reads.size()));
    for (const AftNode::VersionedRead& read : reads) {
      EncodeVersionedRead(writer, read);
    }
  }
  return std::move(writer).TakeData();
}

Result<MultiGetResponse> MultiGetResponse::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("MultiGet response");
  }
  if (!status.ok()) {
    return status;
  }
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return Malformed("MultiGet response");
  }
  // A VersionedRead is at least two flag bytes plus a TxnId (26 bytes).
  if (count > reader.remaining() / 26) {
    return Malformed("MultiGet response");
  }
  MultiGetResponse response;
  response.reads.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AftNode::VersionedRead read;
    if (!DecodeVersionedRead(reader, &read)) {
      return Malformed("MultiGet response");
    }
    response.reads.push_back(std::move(read));
  }
  if (!Finish(reader)) {
    return Malformed("MultiGet response");
  }
  return response;
}

std::string CommitResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  if (status.ok()) {
    EncodeTxnId(writer, id);
  }
  return std::move(writer).TakeData();
}

Result<CommitResponse> CommitResponse::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("Commit response");
  }
  if (!status.ok()) {
    return status;
  }
  CommitResponse response;
  if (!DecodeTxnId(reader, &response.id) || !Finish(reader)) {
    return Malformed("Commit response");
  }
  return response;
}

std::string ApplyCommitsResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  if (status.ok()) {
    writer.PutU64(applied);
  }
  return std::move(writer).TakeData();
}

Result<ApplyCommitsResponse> ApplyCommitsResponse::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("ApplyCommits response");
  }
  if (!status.ok()) {
    return status;
  }
  ApplyCommitsResponse response;
  if (!reader.GetU64(&response.applied) || !Finish(reader)) {
    return Malformed("ApplyCommits response");
  }
  return response;
}

std::string PingResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  if (status.ok()) {
    writer.PutString(node_id);
  }
  return std::move(writer).TakeData();
}

Result<PingResponse> PingResponse::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("Ping response");
  }
  if (!status.ok()) {
    return status;
  }
  PingResponse response;
  if (!reader.GetString(&response.node_id) || !Finish(reader)) {
    return Malformed("Ping response");
  }
  return response;
}

std::string GetMetricsResponse::Serialize(const Status& status) const {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  if (status.ok()) {
    writer.PutString(text);
  }
  return std::move(writer).TakeData();
}

Result<GetMetricsResponse> GetMetricsResponse::Deserialize(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status)) {
    return Malformed("GetMetrics response");
  }
  if (!status.ok()) {
    return status;
  }
  GetMetricsResponse response;
  if (!reader.GetString(&response.text) || !Finish(reader)) {
    return Malformed("GetMetrics response");
  }
  return response;
}

std::string SerializeEmptyResponse(const Status& status) {
  BinaryWriter writer;
  EncodeStatus(writer, status);
  return std::move(writer).TakeData();
}

Status DeserializeEmptyResponse(const std::string& bytes) {
  BinaryReader reader(bytes);
  Status status;
  if (!DecodeStatus(reader, &status) || !reader.AtEnd()) {
    return Status::InvalidArgument("malformed status-only response payload");
  }
  return status;
}

}  // namespace net
}  // namespace aft
