// Persistent record formats and the storage key layout.
//
// AFT persists two kinds of records (§3.3):
//
//  * key versions   — "v/<user key>/<uuid>". Each transaction's update of a
//                     key goes to a unique storage key (never overwritten),
//                     so concurrent AFT nodes cannot clobber each other. The
//                     stored bytes are a `VersionedValue`: the payload plus
//                     the writing transaction's ID and cowritten-key set.
//  * commit records — "c/<zero-padded ts>_<uuid>" in the Transaction Commit
//                     Set. Written strictly AFTER all of the transaction's
//                     key versions are durable; its presence is what makes
//                     the transaction's updates visible.
//
// The version key uses only the UUID (not the commit timestamp) because
// saturated write buffers may spill versions to storage *before* the commit
// timestamp is assigned (§3.3).

#ifndef SRC_CORE_RECORDS_H_
#define SRC_CORE_RECORDS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/core/txn_id.h"

namespace aft {

// Storage key prefixes.
inline constexpr char kVersionPrefix[] = "v/";
inline constexpr char kCommitPrefix[] = "c/";
inline constexpr char kSegmentPrefix[] = "s/";

// "v/<key>/<uuid>".
std::string VersionStorageKey(const std::string& key, const Uuid& writer);

// "s/<uuid>.<index>" — one PACKED SEGMENT holding many payloads of one
// transaction (the log-structured layout of §8: S3 is slow for many small
// objects, so a commit can write a single segment object plus locators in
// the commit record; readers use ranged GETs).
std::string SegmentStorageKey(const Uuid& writer, uint32_t index);

// Extracts the writer UUID from a segment storage key (nil on mismatch).
Uuid WriterFromSegmentStorageKey(const std::string& storage_key);

// "c/<encoded txn id>".
std::string CommitStorageKey(const TxnId& id);

// Extracts the transaction ID back out of a commit storage key.
TxnId TxnIdFromCommitStorageKey(const std::string& storage_key);

// Where a payload lives inside a packed segment.
struct VersionLocator {
  std::string key;
  uint32_t segment_index = 0;  // Which of the transaction's segments.
  uint32_t offset = 0;
  uint32_t length = 0;
};

// A committed transaction: its ID and write set (key names; the versions are
// implied — every version in a transaction carries the transaction's ID).
// The cowritten set of any version ki equals Ti's write set (§3.2).
//
// With the packed layout, the record additionally carries the number of
// segment objects and a locator per key; `packed()` distinguishes layouts.
struct CommitRecord {
  TxnId id;
  std::vector<std::string> write_set;
  uint32_t segment_count = 0;
  std::vector<VersionLocator> locators;

  bool packed() const { return segment_count > 0; }
  const VersionLocator* FindLocator(const std::string& key) const;

  std::string Serialize() const;
  static Result<CommitRecord> Deserialize(std::string_view bytes);
};

// One stored key version: payload plus the metadata Algorithm 1 needs.
struct VersionedValue {
  TxnId writer;                        // Assigned at commit; zero while spilled.
  std::vector<std::string> cowritten;  // == writer's write set.
  std::string payload;

  std::string Serialize() const;
  static Result<VersionedValue> Deserialize(std::string_view bytes);
};

// ---- Direct-field encoders (the allocation-free commit path) ---------------
// Append the exact Serialize() byte sequences straight from the caller's
// fields, without materializing a CommitRecord / VersionedValue first. The
// struct Serialize() methods call these same bodies, so the two can never
// diverge. Templates over the writer: both the flat BinaryWriter and the
// segment-backed ArenaWriter (src/common/arena.h) instantiate them.

namespace record_detail {
inline constexpr uint8_t kCommitRecordTag = 0xC1;
inline constexpr uint8_t kVersionedValueTag = 0xD2;
// tag + timestamp + uuid hi + uuid lo.
inline constexpr size_t kRecordHeaderBytes = 1 + 8 + 8 + 8;
}  // namespace record_detail

// Encoded size of a PutStringVector over `keys` — lets Serialize() reserve
// the exact output size so the hot path allocates its buffer exactly once.
template <typename Keys>
size_t EncodedStringVectorBytes(const Keys& keys) {
  size_t bytes = 4;
  for (const auto& key : keys) {
    bytes += 4 + std::string_view(key).size();
  }
  return bytes;
}

// `Keys` is any sized range of string-view-convertible elements: the stored
// vector of a materialized record, or a keys view straight over the
// transaction's write buffer (the allocation-free commit path encodes from
// the buffer without building an intermediate vector).
template <typename W, typename Keys>
void EncodeCommitRecordFields(W& w, const TxnId& id, const Keys& write_set,
                              uint32_t segment_count, const std::vector<VersionLocator>& locators) {
  w.PutU8(record_detail::kCommitRecordTag);
  w.PutI64(id.timestamp);
  w.PutU64(id.uuid.hi());
  w.PutU64(id.uuid.lo());
  w.PutStringVector(write_set);
  w.PutU32(segment_count);
  w.PutU32(static_cast<uint32_t>(locators.size()));
  for (const VersionLocator& locator : locators) {
    w.PutString(locator.key);
    w.PutU32(locator.segment_index);
    w.PutU32(locator.offset);
    w.PutU32(locator.length);
  }
}

template <typename W, typename Keys>
void EncodeVersionedValueFields(W& w, const TxnId& writer, const Keys& cowritten,
                                std::string_view payload) {
  w.PutU8(record_detail::kVersionedValueTag);
  w.PutI64(writer.timestamp);
  w.PutU64(writer.uuid.hi());
  w.PutU64(writer.uuid.lo());
  w.PutStringVector(cowritten);
  w.PutString(payload);
}

}  // namespace aft

#endif  // SRC_CORE_RECORDS_H_
