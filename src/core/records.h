// Persistent record formats and the storage key layout.
//
// AFT persists two kinds of records (§3.3):
//
//  * key versions   — "v/<user key>/<uuid>". Each transaction's update of a
//                     key goes to a unique storage key (never overwritten),
//                     so concurrent AFT nodes cannot clobber each other. The
//                     stored bytes are a `VersionedValue`: the payload plus
//                     the writing transaction's ID and cowritten-key set.
//  * commit records — "c/<zero-padded ts>_<uuid>" in the Transaction Commit
//                     Set. Written strictly AFTER all of the transaction's
//                     key versions are durable; its presence is what makes
//                     the transaction's updates visible.
//
// The version key uses only the UUID (not the commit timestamp) because
// saturated write buffers may spill versions to storage *before* the commit
// timestamp is assigned (§3.3).

#ifndef SRC_CORE_RECORDS_H_
#define SRC_CORE_RECORDS_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/txn_id.h"

namespace aft {

// Storage key prefixes.
inline constexpr char kVersionPrefix[] = "v/";
inline constexpr char kCommitPrefix[] = "c/";
inline constexpr char kSegmentPrefix[] = "s/";

// "v/<key>/<uuid>".
std::string VersionStorageKey(const std::string& key, const Uuid& writer);

// "s/<uuid>.<index>" — one PACKED SEGMENT holding many payloads of one
// transaction (the log-structured layout of §8: S3 is slow for many small
// objects, so a commit can write a single segment object plus locators in
// the commit record; readers use ranged GETs).
std::string SegmentStorageKey(const Uuid& writer, uint32_t index);

// Extracts the writer UUID from a segment storage key (nil on mismatch).
Uuid WriterFromSegmentStorageKey(const std::string& storage_key);

// "c/<encoded txn id>".
std::string CommitStorageKey(const TxnId& id);

// Extracts the transaction ID back out of a commit storage key.
TxnId TxnIdFromCommitStorageKey(const std::string& storage_key);

// Where a payload lives inside a packed segment.
struct VersionLocator {
  std::string key;
  uint32_t segment_index = 0;  // Which of the transaction's segments.
  uint32_t offset = 0;
  uint32_t length = 0;
};

// A committed transaction: its ID and write set (key names; the versions are
// implied — every version in a transaction carries the transaction's ID).
// The cowritten set of any version ki equals Ti's write set (§3.2).
//
// With the packed layout, the record additionally carries the number of
// segment objects and a locator per key; `packed()` distinguishes layouts.
struct CommitRecord {
  TxnId id;
  std::vector<std::string> write_set;
  uint32_t segment_count = 0;
  std::vector<VersionLocator> locators;

  bool packed() const { return segment_count > 0; }
  const VersionLocator* FindLocator(const std::string& key) const;

  std::string Serialize() const;
  static Result<CommitRecord> Deserialize(const std::string& bytes);
};

// One stored key version: payload plus the metadata Algorithm 1 needs.
struct VersionedValue {
  TxnId writer;                        // Assigned at commit; zero while spilled.
  std::vector<std::string> cowritten;  // == writer's write set.
  std::string payload;

  std::string Serialize() const;
  static Result<VersionedValue> Deserialize(const std::string& bytes);
};

}  // namespace aft

#endif  // SRC_CORE_RECORDS_H_
