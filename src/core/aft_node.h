// An AFT node: the fault-tolerance shim of the paper (§3).
//
// Each node is composed of a transaction manager, an Atomic Write Buffer and
// local metadata/data caches, and sits in front of a shared storage engine.
// All operations of one transaction are served by one node; nodes never
// coordinate on the critical path (§4) — they learn about each other's
// commits via the multicast hooks at the bottom of this interface, which the
// cluster layer (src/cluster) drives.

#ifndef SRC_CORE_AFT_NODE_H_
#define SRC_CORE_AFT_NODE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/pool_allocator.h"
#include "src/common/status.h"
#include "src/common/throttle.h"
#include "src/core/commit_batcher.h"
#include "src/core/commit_set_cache.h"
#include "src/core/data_cache.h"
#include "src/core/key_version_index.h"
#include "src/core/read_algorithm.h"
#include "src/core/read_pin_table.h"
#include "src/core/records.h"
#include "src/core/transaction.h"
#include "src/core/txn_id.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/storage_engine.h"

namespace aft {

// Deterministic crash points used by fault-injection tests to kill a node at
// the worst possible moments of the commit protocol (§3.3.1).
enum class CrashPoint {
  kBeforeDataWrite,
  kAfterDataWrite,    // Data persisted, commit record NOT yet written.
  kAfterCommitWrite,  // Commit record persisted, local caches NOT updated.
};

struct AftNodeOptions {
  // Data cache budget; 0 disables read caching (the "No Caching" bars of
  // Figure 4).
  uint64_t data_cache_bytes = 64ull * 1024 * 1024;

  // Write-buffer spill threshold (§3.3: a saturated Atomic Write Buffer
  // proactively writes intermediary data to storage).
  uint64_t spill_threshold_bytes = 4ull * 1024 * 1024;

  // Packed (log-structured) data layout — the §8 "Efficient Data Layout"
  // future work: a commit writes ONE segment object holding all payloads
  // plus per-key locators in the commit record; readers use ranged GETs.
  // Built for S3, whose per-object costs dominate the key-per-version
  // layout; works over any engine.
  bool packed_layout = false;

  // Running transactions older than this are aborted by the sweeper
  // ("its transaction will be aborted after a timeout", §3.3.1).
  Duration txn_timeout = std::chrono::seconds(60);

  // Background local-GC sweep period (§5.1) and per-sweep cap.
  Duration local_gc_interval = Millis(1000);
  size_t local_gc_max_per_sweep = 4096;
  bool enable_background_threads = false;

  // How many of the newest commit records to load when bootstrapping the
  // metadata cache from the Transaction Commit Set (§3.1).
  size_t bootstrap_commit_limit = 100000;

  // Retries for fetching a version payload that the metadata says exists.
  int storage_read_retries = 4;
  Duration storage_read_backoff = Millis(2);

  // Node service capacity (§6.5.1): each API operation occupies one of
  // `service_cores` virtual cores for one sample of `service_time`. This is
  // what caps a single node's throughput (the paper's 4-core c5.2xlarge
  // plateaus around 600-900 txn/s). Set service_cores = 0 to disable.
  // The base is scaled by the engine's client_cpu_factor() — DynamoDB's
  // HTTPS/JSON client burns more node CPU per op than Redis' RESP.
  size_t service_cores = 4;
  LatencyModel service_time = LatencyModel(0.5, 0.2, 0.15);

  // How many (uuid -> commit id) entries to remember for idempotent commit
  // retries.
  size_t committed_uuid_memory = 65536;

  // Cross-transaction commit batching (src/core/commit_batcher.h):
  // concurrent CommitTransaction calls coalesce into shared storage rounds
  // — one merged data flush, one §3.3 barrier, one batched commit-record
  // write — with per-transaction poisoning. A lone committer takes a solo
  // fast path identical to the unbatched sequence. Automatically bypassed
  // for the packed layout (its segment flush mutates per-txn state
  // mid-write) and when a crash_hook is installed (the crash-point tests
  // pin the exact legacy write sequence).
  bool enable_commit_batching = true;

  // Fault-injection hook: return true to crash the node at this point.
  std::function<bool(CrashPoint)> crash_hook;
};

// Point-in-time snapshot of one node's cumulative counters. The live values
// are registry-backed instruments (the `aft_node_*` families of
// docs/OBSERVABILITY.md, labeled by node id) exposed via kGetMetrics /
// --metrics-port; `stats()` materializes them into this view. Each cell
// mimics the former `std::atomic` field's `load()` so existing call sites
// compile unchanged.
struct AftNodeStats {
  struct Cell {
    uint64_t value = 0;
    uint64_t load(std::memory_order = std::memory_order_relaxed) const { return value; }
  };
  Cell txns_started;
  Cell txns_committed;
  Cell txns_aborted;
  Cell reads;
  Cell writes;
  Cell null_reads;
  Cell read_aborts;   // kNoValidVersion outcomes.
  Cell spills;
  Cell gc_records_removed;
  Cell remote_commits_applied;
  Cell remote_commits_skipped_superseded;
};

class AftNode {
 public:
  AftNode(std::string node_id, StorageEngine& storage, Clock& clock, AftNodeOptions options = {});
  ~AftNode();

  AftNode(const AftNode&) = delete;
  AftNode& operator=(const AftNode&) = delete;

  // Warms the metadata cache from the Transaction Commit Set in storage;
  // called on node start / recovery (§3.1). Also starts background threads
  // when enabled.
  Status Start();

  // Simulates a node failure: all subsequent API calls fail with
  // kUnavailable and background threads stop. In-flight transactions that
  // had not committed are lost (§3.3.1).
  void Kill();
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  // ---- Table 1 API ----------------------------------------------------------
  // Begins a transaction and returns its UUID. The commit timestamp (and so
  // the total-order TxnId) is assigned at commit. The no-argument form mints
  // a fresh (possibly sampled) trace context; the other adopts one that
  // arrived over the wire so client-side sampling decides once per
  // transaction.
  Result<Uuid> StartTransaction();
  Result<Uuid> StartTransaction(const obs::TraceContext& trace);

  // Continues a transaction after a function failure using the same ID
  // (§3.3.1) — registers `txid` if this node has never seen it.
  Status AdoptTransaction(const Uuid& txid);

  // Reads `key`. Returns nullopt for the NULL version (key absent under the
  // transaction's snapshot); kAborted when no valid version exists and the
  // transaction must retry (§3.6).
  Result<std::optional<std::string>> Get(const Uuid& txid, const std::string& key);

  // Like Get, but also reports WHICH version was read — used by the
  // evaluation harness to validate read atomicity with the same anomaly
  // checker that audits the baselines (Table 2).
  struct VersionedRead {
    std::optional<std::string> value;
    // Null for NULL-version reads; TxnId(0, txid) for reads served from the
    // transaction's own write buffer.
    TxnId version;
    CommitRecordPtr record;  // The version's commit record; may be nullptr.
  };
  Result<VersionedRead> GetVersioned(const Uuid& txid, const std::string& key);

  // Table-1-style multi-key read: plans Algorithm 1 for every key in one
  // pass (each selection folded into the read set the next key sees, so the
  // batch equals the sequential composition), then fetches all cache-missing
  // payloads concurrently on the shared IoExecutor. Results are positional.
  // kNoValidVersion on ANY key aborts the whole call (kAborted), exactly
  // like the sequential read (§3.6).
  Result<std::vector<VersionedRead>> MultiGet(const Uuid& txid,
                                              std::span<const std::string> keys);

  // Buffers an update. Keys must be non-empty and must not contain '/'.
  Status Put(const Uuid& txid, const std::string& key, std::string value);

  // Discards the transaction's buffered updates (and any spilled ones).
  Status AbortTransaction(const Uuid& txid);

  // Atomically persists the transaction's updates (write-ordering protocol,
  // §3.3) and returns the commit ID. Acknowledged only after all data AND
  // the commit record are durable. Idempotent for recently committed UUIDs.
  Result<TxnId> CommitTransaction(const Uuid& txid);

  // ---- Multicast hooks (driven by src/cluster, §4) --------------------------
  // Drains transactions committed locally since the last call. `pruned` gets
  // the supersedence-filtered list for node-to-node multicast (§4.1);
  // `unpruned` the full list for the fault manager (§4.2). When `trace` is
  // non-null it receives the first sampled trace context among the drained
  // commits (if any), so the gossip layer can stamp its broadcast frame.
  void DrainRecentCommits(std::vector<CommitRecordPtr>* pruned,
                          std::vector<CommitRecordPtr>* unpruned,
                          obs::TraceContext* trace = nullptr);

  // Merges commit records learned from a peer or the fault manager; locally
  // superseded records are skipped (§4.1).
  void ApplyRemoteCommits(const std::vector<CommitRecordPtr>& records);

  // Registers a callback fired once per commit round (by the round leader,
  // no node locks held) right after the round's records were staged for
  // broadcast. The cluster layer uses it to nudge the gossip bus into an
  // immediate coalesced round instead of waiting out the multicast
  // interval. Set-once, before traffic starts; pass nullptr never.
  void SetCommitBatchListener(std::function<void()> listener);

  // ---- Garbage collection (§5) ----------------------------------------------
  // One local metadata GC sweep; returns the number of records removed.
  size_t RunLocalGcOnce();

  // Global-GC protocol: has this node locally dropped `id`'s metadata?
  bool HasLocallyDeleted(const TxnId& id) const;
  // Global GC committed the deletion; forget the tombstone.
  void AcknowledgeGlobalDelete(const TxnId& id);
  // The safety predicate the global GC needs from each node before deleting
  // `id`'s data: this node holds no metadata for it and no running
  // transaction has read from it. Subsumes "locally deleted" and also covers
  // records this node pruned on receipt and so never cached.
  bool CanGloballyDelete(const TxnId& id);

  // Aborts running transactions older than options.txn_timeout.
  size_t SweepTimedOutTransactions();

  // ---- Introspection ---------------------------------------------------------
  const std::string& node_id() const { return node_id_; }
  // Snapshot of the node's registry-backed counters (see AftNodeStats).
  AftNodeStats stats() const;
  // Number of currently open (uncommitted, unaborted) transactions — used by
  // the autoscaler to drain a node before decommissioning it.
  size_t RunningTransactionCount() const;
  const DataCache& data_cache() const { return data_cache_; }
  size_t CommitSetSize() const { return commits_.size(); }
  size_t KeyVersionCount() const { return index_.TotalVersionCount(); }
  StorageEngine& storage() { return storage_; }
  bool IsSuperseded(const CommitRecord& record) const {
    return IsTransactionSuperseded(record, index_);
  }

 private:
  using TxnPtr = std::shared_ptr<TransactionState>;

  Status CheckAlive() const;
  Result<TxnPtr> FindTransaction(const Uuid& txid);
  // Writes the buffer's dirty entries to storage as version objects.
  // `final_flush` marks the commit-time flush: the spilled-key bookkeeping
  // (only ever consumed by abort's cleanup) is skipped — any versions
  // orphaned by a failed commit are left to the orphan sweep, which the
  // write-ordering barrier already relies on for partial flush failures.
  Status FlushVersions(TransactionState& txn, const TxnId& writer_id, bool final_flush = false)
      REQUIRES(txn.mu);
  // Fetches a version payload through the data cache with bounded retries.
  // `record` supplies the locators needed for the packed layout.
  Result<std::string> ReadVersionPayload(const std::string& key, const TxnId& version,
                                         const CommitRecordPtr& record);
  // Batcher round publisher: stages every committed member's record (and
  // trace) for broadcast under ONE broadcast_mu_ hold, then fires the batch
  // listener once for the whole round.
  void PublishCommittedRound(std::span<CommitBatcher::Pending* const> committed);
  // True when some running transaction has read from `id` (GC guard, §5.1).
  // O(1) via the read pin table.
  bool AnyRunningTransactionReadsFrom(const TxnId& id);
  // Releases the transaction's read pins (commit/abort epilogue).
  void UnpinReads(const TransactionState& txn) REQUIRES(txn.mu);
  // Shared post-commit bookkeeping (no locks held on entry): idempotence
  // memory, transaction-table erase, counters.
  void FinishCommittedTransaction(const Uuid& txid, const TxnId& commit_id);
  void BackgroundLoop();
  bool MaybeCrash(CrashPoint point);

  const std::string node_id_;
  StorageEngine& storage_;
  Clock& clock_;
  const AftNodeOptions options_;

  std::atomic<bool> alive_{true};
  std::atomic<bool> stop_background_{false};
  std::thread background_;

  // Transaction table.
  mutable Mutex txns_mu_{"node.txns"};
  std::unordered_map<Uuid, TxnPtr> txns_ GUARDED_BY(txns_mu_);

  // Idempotent-commit memory: uuid -> commit id, bounded FIFO. Pooled nodes:
  // the steady-state insert+evict churn recycles blocks instead of hitting
  // the heap once per commit.
  Mutex committed_mu_{"node.committed"};
  std::unordered_map<Uuid, TxnId, std::hash<Uuid>, std::equal_to<Uuid>,
                     PoolAllocator<std::pair<const Uuid, TxnId>>>
      committed_uuids_ GUARDED_BY(committed_mu_);
  std::vector<Uuid> committed_order_ GUARDED_BY(committed_mu_);
  size_t committed_next_evict_ GUARDED_BY(committed_mu_) = 0;
  // Commit records are allocate_shared'd from this pool (object + control
  // block in one recycled block); the pool is thread-safe, so records may be
  // released from gossip / fault-manager threads.
  PoolAllocator<CommitRecord> record_alloc_;

  // Metadata + data caches.
  CommitSetCache commits_;
  KeyVersionIndex index_;
  DataCache data_cache_;
  ServiceThrottle throttle_;
  ReadPinTable read_pins_;

  // Recently committed records not yet drained for broadcast; guarded by
  // broadcast_mu_. Local GC will not drop records still pending broadcast.
  // pending_broadcast_traces_ carries each record's trace context (parallel
  // vector) so a sampled transaction can be followed into the gossip round.
  Mutex broadcast_mu_{"node.broadcast"};
  std::vector<CommitRecordPtr> pending_broadcast_ GUARDED_BY(broadcast_mu_);
  std::vector<obs::TraceContext> pending_broadcast_traces_ GUARDED_BY(broadcast_mu_);

  // Group commit across transactions (see enable_commit_batching). The
  // listener is read lock-free on the commit hot path: the flag is only
  // ever set once, before traffic, so the std::function itself is stable.
  CommitBatcher batcher_;
  std::function<void()> batch_listener_;
  std::atomic<bool> has_batch_listener_{false};

  // Registry-backed instruments, looked up once at construction (labels:
  // {node=node_id_}). Counters/histograms are owned by the global registry;
  // callbacks_ keeps the point-in-time gauges (cache sizes, write-buffer
  // bytes) registered for this node's lifetime.
  struct Instruments {
    obs::Counter* txns_started;
    obs::Counter* txns_committed;
    obs::Counter* txns_aborted;
    obs::Counter* reads;
    obs::Counter* writes;
    obs::Counter* null_reads;
    obs::Counter* read_aborts;
    obs::Counter* spills;
    obs::Counter* gc_records_removed;
    obs::Counter* remote_commits_applied;
    obs::Counter* remote_commits_skipped_superseded;
    obs::Histogram* commit_latency_ms;
    obs::Histogram* read_latency_ms;
    obs::Histogram* read_walk_depth;
    // aft_commit_stage_seconds children (shared with batcher_ — same
    // registry keys). The node observes txn_lock_wait on every commit and
    // the storage/publish stages on the legacy unbatched path; the batcher
    // observes the queue and round stages on the batched path.
    CommitStageHistograms stages;
  };
  Instruments metrics_;
  std::vector<obs::ScopedMetricCallback> metric_callbacks_;
  // Registry counters are cumulative per (name, labels) for the process
  // lifetime — a re-created node with the same id keeps counting up, which
  // is what a scraper expects. stats() subtracts this construction-time
  // baseline so the snapshot stays per-instance, as the old raw atomics
  // were. (Two *concurrently live* nodes sharing an id would still blend.)
  AftNodeStats baseline_;
};

}  // namespace aft

#endif  // SRC_CORE_AFT_NODE_H_
