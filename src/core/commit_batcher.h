// Cross-transaction commit batching: group commit at the AFT protocol layer.
//
// CommitTransaction's storage cost is two serialized rounds against the
// shared engine — flush the data versions, then (after the §3.3 barrier)
// write the commit record. Under concurrency every transaction pays both
// rounds by itself. The batcher coalesces them the way the WAL's group
// commit coalesces fsyncs (latch-and-piggyback): the first committer
// through becomes the round LEADER and executes the storage rounds for
// everyone queued behind it; followers park on a condvar and wake with
// their verdict already decided. Batches form adaptively — while a round
// is in flight new arrivals queue, and whatever depth accumulated by round
// completion IS the next batch. No timer, so a lone committer pays zero
// added latency: the solo fast path never touches the queue and its
// storage sequence (see StorageEngine::CommitUnits) is exactly the legacy
// unbatched commit.
//
// Per-transaction semantics are preserved, not averaged: unit-level §3.3
// ordering (a member's record is written only after ALL of that member's
// data is durable) and per-unit poisoning (one member's failed flush
// aborts that member alone — its record is never written — while its
// batch-mates commit).

#ifndef SRC_CORE_COMMIT_BATCHER_H_
#define SRC_CORE_COMMIT_BATCHER_H_

#include <functional>
#include <span>
#include <string>

#include "src/common/mutex.h"
#include "src/common/small_vector.h"
#include "src/common/status.h"
#include "src/core/commit_set_cache.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/storage_engine.h"

namespace aft {

// The aft_commit_stage_seconds{node=,stage=} family: one histogram child per
// commit-path stage. Stages are DISJOINT slices of one transaction's
// end-to-end commit latency (aft_node_commit_latency_ms), so per-commit
// stage observations sum to (at most) the e2e time — the reconciliation
// contract in docs/OBSERVABILITY.md. Exactly one of the queue_wait_* stages
// applies per commit, keyed by the transaction's batch role. Registered
// find-or-create, so the node and its batcher share children.
struct CommitStageHistograms {
  obs::Histogram* txn_lock_wait;        // acquiring the transaction's lock
  obs::Histogram* queue_wait_leader;    // batcher queue, txn led its round
  obs::Histogram* queue_wait_follower;  // batcher queue, txn piggybacked
  obs::Histogram* data_flush;           // data-version round, minus barrier
  obs::Histogram* barrier;              // §3.3 straggler wait
  obs::Histogram* record_write;         // commit-record round / WAL fsync
  obs::Histogram* gossip_publish;       // staging the round for broadcast

  static CommitStageHistograms ForNode(const std::string& node_id);
};

class CommitBatcher {
 public:
  // One transaction's contribution to a round, fully prepared by the caller
  // (under its transaction lock) before submission. The batcher owns the
  // struct from Commit() entry until Commit() returns; `data_ops` and
  // `commit_record` may be consumed by the storage engine either way.
  struct Pending {
    std::span<WriteOp> data_ops;  // serialized version objects
    WriteOp commit_record;        // commit-set key + serialized record
    CommitRecordPtr record;       // in-memory record, for the publisher
    obs::TraceContext trace;      // transaction's trace, follows into gossip
    Status result;                // verdict, written by the round leader
    bool done = false;            // round-completion flag (batcher mutex)
    uint64_t enqueued_ns = 0;     // steady ns at enqueue; 0 = solo, never queued
  };

  // Invoked by the round leader — with no batcher lock held — once per
  // round that committed anything, with exactly the members whose commit
  // records were durably written. The node stages them for broadcast under
  // one lock hold and nudges the gossip bus once for the whole round.
  using RoundPublisher = std::function<void(std::span<Pending* const> committed)>;

  CommitBatcher(const std::string& node_id, StorageEngine& storage, RoundPublisher publisher);

  CommitBatcher(const CommitBatcher&) = delete;
  CommitBatcher& operator=(const CommitBatcher&) = delete;

  // Commits `pending` as part of some round (possibly alone) and returns
  // its individual verdict; blocks until the round containing it completes.
  // On failure the member's commit record was NOT written, so the caller's
  // transaction stays retryable.
  Status Commit(Pending& pending);

 private:
  // Executes one merged storage round for `members`; `leader` is the member
  // whose thread runs the round (it observes the queue_wait_leader stage,
  // the rest queue_wait_follower). No batcher lock held: the engine call is
  // the slow part, and running it unlatched is what lets the next batch
  // form meanwhile.
  void ExecuteRound(std::span<Pending* const> members, const Pending* leader);

  // Stamps the legacy per-phase lifecycle spans ("CommitFlush",
  // "CommitRecordWrite") over [start_us, end_us] for every sampled member.
  // The fused round persists data versions and commit records in one engine
  // call, so both stages share the round's window; keeping the stage names
  // keeps sampled traces readable by the same consumers as unbatched runs.
  void RecordRoundSpans(std::span<Pending* const> members, uint64_t start_us,
                        uint64_t end_us) const;

  // Per-member stage attribution for one executed round: observes the
  // round's CommitStageProfile (plus the publish time) into the
  // aft_commit_stage_seconds children for EVERY member, and emits Stage*
  // child trace spans for sampled members. `round_start_ns` is steady-clock
  // (queue-wait math), `span_start_us` is tracer-clock (span layout).
  void ObserveRoundStages(std::span<Pending* const> members, const CommitStageProfile& profile,
                          double publish_s, uint64_t round_start_ns,
                          uint64_t span_start_us) const;

  const std::string node_id_;
  StorageEngine& storage_;
  const RoundPublisher publisher_;

  Mutex mu_{"batcher.queue"};
  CondVar cv_;
  // True while a leader is off executing a round; arrivals queue behind it.
  bool round_in_flight_ GUARDED_BY(mu_) = false;
  SmallVector<Pending*, 16> queue_ GUARDED_BY(mu_);

  // aft_commit_batch_* families (docs/OBSERVABILITY.md), labeled {node=}.
  obs::Histogram* batch_size_;
  obs::Counter* rounds_;
  obs::Counter* leader_commits_;
  obs::Counter* follower_commits_;
  CommitStageHistograms stages_;
};

}  // namespace aft

#endif  // SRC_CORE_COMMIT_BATCHER_H_
