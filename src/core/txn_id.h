// Transaction identifiers.
//
// Every transaction is assigned a globally unique UUID at StartTransaction
// and a commit timestamp (local system clock, microseconds) at commit (§3.1).
// The <timestamp, uuid> pair is the transaction's ID. Correctness never
// depends on clock synchronization; timestamps provide relative freshness
// and ties are broken by lexicographic UUID comparison.

#ifndef SRC_CORE_TXN_ID_H_
#define SRC_CORE_TXN_ID_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "src/common/uuid.h"

namespace aft {

struct TxnId {
  int64_t timestamp = 0;  // Microseconds since epoch; 0 == the NULL version.
  Uuid uuid;

  constexpr TxnId() = default;
  constexpr TxnId(int64_t ts, Uuid id) : timestamp(ts), uuid(id) {}

  // The distinguished ID older than every committed transaction; reads of
  // keys with no visible version observe this.
  static constexpr TxnId Null() { return TxnId(); }
  bool IsNull() const { return timestamp == 0 && uuid.IsNil(); }

  // Total order: timestamp first, UUID lexicographically on ties (§3.1).
  friend auto operator<=>(const TxnId& a, const TxnId& b) = default;

  // "00000000000000001234_<uuid>": zero-padded so the string order equals
  // the ID order — commit records listed by prefix come back time-ordered.
  std::string Encode() const;
  // The same characters appended to `out`; always kEncodedLength of them.
  static constexpr size_t kEncodedLength = 20 + 1 + Uuid::kStringLength;
  void EncodeTo(std::string& out) const;
  static TxnId Decode(const std::string& text);

  std::string ToString() const { return Encode(); }
};

}  // namespace aft

template <>
struct std::hash<aft::TxnId> {
  size_t operator()(const aft::TxnId& id) const noexcept {
    return std::hash<aft::Uuid>{}(id.uuid) ^ std::hash<int64_t>{}(id.timestamp);
  }
};

#endif  // SRC_CORE_TXN_ID_H_
