#include "src/core/commit_set_cache.h"

namespace aft {

bool CommitSetCache::Add(CommitRecordPtr record) {
  const TxnId id = record->id;
  Shard& shard = ShardFor(id);
  WriterMutexLock lock(shard.mu);
  return shard.records.emplace(id, std::move(record)).second;
}

void CommitSetCache::Remove(const TxnId& id) {
  Shard& shard = ShardFor(id);
  WriterMutexLock lock(shard.mu);
  if (shard.records.erase(id) > 0) {
    shard.locally_deleted.insert(id);
  }
}

CommitRecordPtr CommitSetCache::Lookup(const TxnId& id) const {
  const Shard& shard = ShardFor(id);
  ReaderMutexLock lock(shard.mu);
  auto it = shard.records.find(id);
  if (it == shard.records.end()) {
    lookup_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  lookup_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool CommitSetCache::Contains(const TxnId& id) const {
  const Shard& shard = ShardFor(id);
  ReaderMutexLock lock(shard.mu);
  return shard.records.contains(id);
}

std::vector<CommitRecordPtr> CommitSetCache::Snapshot() const {
  std::vector<CommitRecordPtr> out;
  for (const Shard& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    out.reserve(out.size() + shard.records.size());
    for (const auto& [id, record] : shard.records) {
      out.push_back(record);
    }
  }
  return out;
}

void CommitSetCache::NoteLocalCommit(const TxnId& id) {
  MutexLock lock(recent_mu_);
  recent_commits_.push_back(id);
}

std::vector<TxnId> CommitSetCache::TakeRecentCommits() {
  MutexLock lock(recent_mu_);
  std::vector<TxnId> out;
  out.swap(recent_commits_);
  return out;
}

bool CommitSetCache::HasLocallyDeleted(const TxnId& id) const {
  const Shard& shard = ShardFor(id);
  ReaderMutexLock lock(shard.mu);
  return shard.locally_deleted.contains(id);
}

void CommitSetCache::ForgetLocallyDeleted(const TxnId& id) {
  Shard& shard = ShardFor(id);
  WriterMutexLock lock(shard.mu);
  shard.locally_deleted.erase(id);
}

size_t CommitSetCache::LocallyDeletedCount() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    total += shard.locally_deleted.size();
  }
  return total;
}

size_t CommitSetCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    total += shard.records.size();
  }
  return total;
}

size_t CommitSetCache::ShardSize(size_t i) const {
  const Shard& shard = shards_[i % kNumShards];
  ReaderMutexLock lock(shard.mu);
  return shard.records.size();
}

}  // namespace aft
