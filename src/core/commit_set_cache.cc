#include "src/core/commit_set_cache.h"


namespace aft {

bool CommitSetCache::Add(CommitRecordPtr record) {
  WriterMutexLock lock(mu_);
  const TxnId id = record->id;
  return records_.emplace(id, std::move(record)).second;
}

void CommitSetCache::Remove(const TxnId& id) {
  WriterMutexLock lock(mu_);
  if (records_.erase(id) > 0) {
    locally_deleted_.insert(id);
  }
}

CommitRecordPtr CommitSetCache::Lookup(const TxnId& id) const {
  ReaderMutexLock lock(mu_);
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second;
}

bool CommitSetCache::Contains(const TxnId& id) const {
  ReaderMutexLock lock(mu_);
  return records_.contains(id);
}

std::vector<CommitRecordPtr> CommitSetCache::Snapshot() const {
  ReaderMutexLock lock(mu_);
  std::vector<CommitRecordPtr> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) {
    out.push_back(record);
  }
  return out;
}

void CommitSetCache::NoteLocalCommit(const TxnId& id) {
  WriterMutexLock lock(mu_);
  recent_commits_.push_back(id);
}

std::vector<TxnId> CommitSetCache::TakeRecentCommits() {
  WriterMutexLock lock(mu_);
  std::vector<TxnId> out;
  out.swap(recent_commits_);
  return out;
}

bool CommitSetCache::HasLocallyDeleted(const TxnId& id) const {
  ReaderMutexLock lock(mu_);
  return locally_deleted_.contains(id);
}

void CommitSetCache::ForgetLocallyDeleted(const TxnId& id) {
  WriterMutexLock lock(mu_);
  locally_deleted_.erase(id);
}

size_t CommitSetCache::LocallyDeletedCount() const {
  ReaderMutexLock lock(mu_);
  return locally_deleted_.size();
}

size_t CommitSetCache::size() const {
  ReaderMutexLock lock(mu_);
  return records_.size();
}

}  // namespace aft
