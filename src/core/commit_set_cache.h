// Local cache of committed-transaction metadata (the Commit Set Cache, §3.1).
//
// Maps transaction IDs to their commit records. Records are shared_ptr so a
// running transaction can pin the cowritten sets of versions it has read even
// if the GC drops them from the cache concurrently. Also tracks the list of
// transactions committed locally since the last multicast round (§4) and the
// set of locally GC-deleted transaction IDs the global GC asks about (§5.2).

#ifndef SRC_CORE_COMMIT_SET_CACHE_H_
#define SRC_CORE_COMMIT_SET_CACHE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"
#include "src/core/records.h"
#include "src/core/txn_id.h"

namespace aft {

using CommitRecordPtr = std::shared_ptr<const CommitRecord>;

class CommitSetCache {
 public:
  CommitSetCache() = default;

  // Inserts a record; returns false if it was already present.
  bool Add(CommitRecordPtr record);

  // Removes a record (local metadata GC). The ID is remembered in the
  // locally-deleted set until the global GC acknowledges it.
  void Remove(const TxnId& id);

  CommitRecordPtr Lookup(const TxnId& id) const;
  bool Contains(const TxnId& id) const;

  // All currently cached records (GC sweep iterates this snapshot).
  std::vector<CommitRecordPtr> Snapshot() const;

  // ---- Multicast bookkeeping (§4) -----------------------------------------
  // Appends to the recently-committed list consumed by the broadcast thread.
  void NoteLocalCommit(const TxnId& id);
  // Drains and returns the recently-committed IDs.
  std::vector<TxnId> TakeRecentCommits();

  // ---- Global GC bookkeeping (§5.2) ----------------------------------------
  bool HasLocallyDeleted(const TxnId& id) const;
  // The global GC confirmed deletion; we can forget the tombstone.
  void ForgetLocallyDeleted(const TxnId& id);
  size_t LocallyDeletedCount() const;

  size_t size() const;

 private:
  mutable SharedMutex mu_;
  std::unordered_map<TxnId, CommitRecordPtr> records_ GUARDED_BY(mu_);
  std::vector<TxnId> recent_commits_ GUARDED_BY(mu_);
  std::unordered_set<TxnId> locally_deleted_ GUARDED_BY(mu_);
};

}  // namespace aft

#endif  // SRC_CORE_COMMIT_SET_CACHE_H_
