// Local cache of committed-transaction metadata (the Commit Set Cache, §3.1).
//
// Maps transaction IDs to their commit records. Records are shared_ptr so a
// running transaction can pin the cowritten sets of versions it has read even
// if the GC drops them from the cache concurrently. Also tracks the list of
// transactions committed locally since the last multicast round (§4) and the
// set of locally GC-deleted transaction IDs the global GC asks about (§5.2).
//
// Concurrency: the record map and the locally-deleted set are split into K
// lock-striped shards hashed by TxnId, so the per-key lookups Algorithm 1
// issues on every read no longer serialize on one global lock against the
// commit path's inserts. The visibility contract is unchanged: callers only
// Add() a record AFTER its commit record has persisted in storage (§3.3's
// write-ordering barrier / §3.4), so a transaction becomes visible in this
// index — on whichever shard it hashes to — only once it is durable.
// The recent-commits list is a plain append/drain queue with its own mutex
// (two uncontended points: one writer per commit, one drain per gossip tick).

#ifndef SRC_CORE_COMMIT_SET_CACHE_H_
#define SRC_CORE_COMMIT_SET_CACHE_H_

#include <array>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/pool_allocator.h"
#include "src/core/records.h"
#include "src/core/txn_id.h"

namespace aft {

using CommitRecordPtr = std::shared_ptr<const CommitRecord>;

class CommitSetCache {
 public:
  // Shard count: enough stripes that 16+ service threads rarely collide,
  // small enough that Snapshot()/size() sweeps stay cheap.
  static constexpr size_t kNumShards = 16;

  CommitSetCache() = default;

  // Inserts a record; returns false if it was already present.
  bool Add(CommitRecordPtr record);

  // Removes a record (local metadata GC). The ID is remembered in the
  // locally-deleted set until the global GC acknowledges it.
  void Remove(const TxnId& id);

  CommitRecordPtr Lookup(const TxnId& id) const;
  bool Contains(const TxnId& id) const;

  // All currently cached records (GC sweep iterates this snapshot). Shards
  // are snapshotted one at a time: the result is a union of per-shard
  // consistent views, which is all the GC/liveness sweeps ever needed (the
  // old single-lock snapshot raced concurrent Add/Remove the same way).
  std::vector<CommitRecordPtr> Snapshot() const;

  // ---- Multicast bookkeeping (§4) -----------------------------------------
  // Appends to the recently-committed list consumed by the broadcast thread.
  void NoteLocalCommit(const TxnId& id);
  // Drains and returns the recently-committed IDs.
  std::vector<TxnId> TakeRecentCommits();

  // ---- Global GC bookkeeping (§5.2) ----------------------------------------
  bool HasLocallyDeleted(const TxnId& id) const;
  // The global GC confirmed deletion; we can forget the tombstone.
  void ForgetLocallyDeleted(const TxnId& id);
  size_t LocallyDeletedCount() const;

  size_t size() const;
  // Records held by shard `i` (i < kNumShards) — exposed per shard so a
  // scrape can spot skewed striping.
  size_t ShardSize(size_t i) const;

  // Lookup outcome counters (Algorithm 1's per-candidate probes): a hit
  // returned a record, a miss found the id GC'd/absent.
  uint64_t lookup_hits() const { return lookup_hits_.load(std::memory_order_relaxed); }
  uint64_t lookup_misses() const { return lookup_misses_.load(std::memory_order_relaxed); }

 private:
  // Pooled nodes: every commit inserts (and GC later erases) one records
  // entry, so at steady state the churn recycles pool blocks instead of
  // allocating per commit.
  struct Shard {
    // One shared site across shards: the profiler ranks the cache as a
    // whole, per-shard series would be noise.
    static contention::ContentionSite* ContentionSiteFor() {
      static contention::ContentionSite* site = contention::LockSite("commit_cache.shard");
      return site;
    }
    mutable SharedMutex mu{ContentionSiteFor()};
    std::unordered_map<TxnId, CommitRecordPtr, std::hash<TxnId>, std::equal_to<TxnId>,
                       PoolAllocator<std::pair<const TxnId, CommitRecordPtr>>>
        records GUARDED_BY(mu);
    std::unordered_set<TxnId, std::hash<TxnId>, std::equal_to<TxnId>, PoolAllocator<TxnId>>
        locally_deleted GUARDED_BY(mu);
  };

  Shard& ShardFor(const TxnId& id) { return shards_[std::hash<TxnId>{}(id) % kNumShards]; }
  const Shard& ShardFor(const TxnId& id) const {
    return shards_[std::hash<TxnId>{}(id) % kNumShards];
  }

  std::array<Shard, kNumShards> shards_;
  mutable std::atomic<uint64_t> lookup_hits_{0};
  mutable std::atomic<uint64_t> lookup_misses_{0};

  mutable Mutex recent_mu_{"commit_cache.recent"};
  std::vector<TxnId> recent_commits_ GUARDED_BY(recent_mu_);
};

}  // namespace aft

#endif  // SRC_CORE_COMMIT_SET_CACHE_H_
