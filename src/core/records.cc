#include "src/core/records.h"

#include "src/common/serde.h"

namespace aft {
namespace {

constexpr uint8_t kCommitRecordTag = 0xC1;
constexpr uint8_t kVersionedValueTag = 0xD2;

}  // namespace

std::string VersionStorageKey(const std::string& key, const Uuid& writer) {
  std::string out(kVersionPrefix);
  out += key;
  out += '/';
  out += writer.ToString();
  return out;
}

std::string CommitStorageKey(const TxnId& id) { return std::string(kCommitPrefix) + id.Encode(); }

TxnId TxnIdFromCommitStorageKey(const std::string& storage_key) {
  const size_t prefix_len = sizeof(kCommitPrefix) - 1;
  if (storage_key.size() <= prefix_len) {
    return TxnId();
  }
  return TxnId::Decode(storage_key.substr(prefix_len));
}

std::string SegmentStorageKey(const Uuid& writer, uint32_t index) {
  return std::string(kSegmentPrefix) + writer.ToString() + "." + std::to_string(index);
}

Uuid WriterFromSegmentStorageKey(const std::string& storage_key) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t dot = storage_key.rfind('.');
  if (storage_key.compare(0, prefix_len, kSegmentPrefix) != 0 || dot == std::string::npos) {
    return Uuid();
  }
  return Uuid::Parse(storage_key.substr(prefix_len, dot - prefix_len));
}

const VersionLocator* CommitRecord::FindLocator(const std::string& key) const {
  for (const VersionLocator& locator : locators) {
    if (locator.key == key) {
      return &locator;
    }
  }
  return nullptr;
}

std::string CommitRecord::Serialize() const {
  BinaryWriter w;
  w.PutU8(kCommitRecordTag);
  w.PutI64(id.timestamp);
  w.PutU64(id.uuid.hi());
  w.PutU64(id.uuid.lo());
  w.PutStringVector(write_set);
  w.PutU32(segment_count);
  w.PutU32(static_cast<uint32_t>(locators.size()));
  for (const VersionLocator& locator : locators) {
    w.PutString(locator.key);
    w.PutU32(locator.segment_index);
    w.PutU32(locator.offset);
    w.PutU32(locator.length);
  }
  return std::move(w).TakeData();
}

Result<CommitRecord> CommitRecord::Deserialize(const std::string& bytes) {
  BinaryReader r(bytes);
  uint8_t tag = 0;
  CommitRecord record;
  uint64_t hi = 0;
  uint64_t lo = 0;
  uint32_t locator_count = 0;
  if (!r.GetU8(&tag) || tag != kCommitRecordTag || !r.GetI64(&record.id.timestamp) ||
      !r.GetU64(&hi) || !r.GetU64(&lo) || !r.GetStringVector(&record.write_set) ||
      !r.GetU32(&record.segment_count) || !r.GetU32(&locator_count)) {
    return Status::Internal("corrupt commit record");
  }
  // A locator is a length-prefixed key plus three u32s (>= 16 bytes); records
  // arrive over the gossip wire, so bound the reserve by what the remaining
  // bytes could actually hold.
  if (locator_count > r.remaining() / 16) {
    return Status::Internal("corrupt commit record locator count");
  }
  record.locators.reserve(locator_count);
  for (uint32_t i = 0; i < locator_count; ++i) {
    VersionLocator locator;
    if (!r.GetString(&locator.key) || !r.GetU32(&locator.segment_index) ||
        !r.GetU32(&locator.offset) || !r.GetU32(&locator.length)) {
      return Status::Internal("corrupt commit record locator");
    }
    record.locators.push_back(std::move(locator));
  }
  record.id.uuid = Uuid(hi, lo);
  return record;
}

std::string VersionedValue::Serialize() const {
  BinaryWriter w;
  w.PutU8(kVersionedValueTag);
  w.PutI64(writer.timestamp);
  w.PutU64(writer.uuid.hi());
  w.PutU64(writer.uuid.lo());
  w.PutStringVector(cowritten);
  w.PutString(payload);
  return std::move(w).TakeData();
}

Result<VersionedValue> VersionedValue::Deserialize(const std::string& bytes) {
  BinaryReader r(bytes);
  uint8_t tag = 0;
  VersionedValue v;
  uint64_t hi = 0;
  uint64_t lo = 0;
  if (!r.GetU8(&tag) || tag != kVersionedValueTag || !r.GetI64(&v.writer.timestamp) ||
      !r.GetU64(&hi) || !r.GetU64(&lo) || !r.GetStringVector(&v.cowritten) ||
      !r.GetString(&v.payload)) {
    return Status::Internal("corrupt versioned value");
  }
  v.writer.uuid = Uuid(hi, lo);
  return v;
}

}  // namespace aft
