#include "src/core/records.h"

#include "src/common/serde.h"

namespace aft {

using record_detail::kCommitRecordTag;
using record_detail::kVersionedValueTag;

std::string VersionStorageKey(const std::string& key, const Uuid& writer) {
  std::string out;
  out.reserve(sizeof(kVersionPrefix) - 1 + key.size() + 1 + Uuid::kStringLength);
  out += kVersionPrefix;
  out += key;
  out += '/';
  writer.AppendTo(out);
  return out;
}

std::string CommitStorageKey(const TxnId& id) {
  std::string out;
  out.reserve(sizeof(kCommitPrefix) - 1 + TxnId::kEncodedLength);
  out += kCommitPrefix;
  id.EncodeTo(out);
  return out;
}

TxnId TxnIdFromCommitStorageKey(const std::string& storage_key) {
  const size_t prefix_len = sizeof(kCommitPrefix) - 1;
  if (storage_key.size() <= prefix_len) {
    return TxnId();
  }
  return TxnId::Decode(storage_key.substr(prefix_len));
}

std::string SegmentStorageKey(const Uuid& writer, uint32_t index) {
  return std::string(kSegmentPrefix) + writer.ToString() + "." + std::to_string(index);
}

Uuid WriterFromSegmentStorageKey(const std::string& storage_key) {
  const size_t prefix_len = sizeof(kSegmentPrefix) - 1;
  const size_t dot = storage_key.rfind('.');
  if (storage_key.compare(0, prefix_len, kSegmentPrefix) != 0 || dot == std::string::npos) {
    return Uuid();
  }
  return Uuid::Parse(storage_key.substr(prefix_len, dot - prefix_len));
}

const VersionLocator* CommitRecord::FindLocator(const std::string& key) const {
  for (const VersionLocator& locator : locators) {
    if (locator.key == key) {
      return &locator;
    }
  }
  return nullptr;
}

std::string CommitRecord::Serialize() const {
  size_t bytes = record_detail::kRecordHeaderBytes + EncodedStringVectorBytes(write_set) + 4 + 4;
  for (const VersionLocator& locator : locators) {
    bytes += 4 + locator.key.size() + 12;
  }
  BinaryWriter w;
  w.Reserve(bytes);
  EncodeCommitRecordFields(w, id, write_set, segment_count, locators);
  return std::move(w).TakeData();
}

Result<CommitRecord> CommitRecord::Deserialize(std::string_view bytes) {
  BinaryReader r(bytes);
  uint8_t tag = 0;
  CommitRecord record;
  uint64_t hi = 0;
  uint64_t lo = 0;
  uint32_t locator_count = 0;
  if (!r.GetU8(&tag) || tag != kCommitRecordTag || !r.GetI64(&record.id.timestamp) ||
      !r.GetU64(&hi) || !r.GetU64(&lo) || !r.GetStringVector(&record.write_set) ||
      !r.GetU32(&record.segment_count) || !r.GetU32(&locator_count)) {
    return Status::Internal("corrupt commit record");
  }
  // A locator is a length-prefixed key plus three u32s (>= 16 bytes); records
  // arrive over the gossip wire, so bound the reserve by what the remaining
  // bytes could actually hold.
  if (locator_count > r.remaining() / 16) {
    return Status::Internal("corrupt commit record locator count");
  }
  record.locators.reserve(locator_count);
  for (uint32_t i = 0; i < locator_count; ++i) {
    VersionLocator locator;
    if (!r.GetString(&locator.key) || !r.GetU32(&locator.segment_index) ||
        !r.GetU32(&locator.offset) || !r.GetU32(&locator.length)) {
      return Status::Internal("corrupt commit record locator");
    }
    record.locators.push_back(std::move(locator));
  }
  record.id.uuid = Uuid(hi, lo);
  return record;
}

std::string VersionedValue::Serialize() const {
  BinaryWriter w;
  w.Reserve(record_detail::kRecordHeaderBytes + EncodedStringVectorBytes(cowritten) + 4 +
            payload.size());
  EncodeVersionedValueFields(w, writer, cowritten, payload);
  return std::move(w).TakeData();
}

Result<VersionedValue> VersionedValue::Deserialize(std::string_view bytes) {
  BinaryReader r(bytes);
  uint8_t tag = 0;
  VersionedValue v;
  uint64_t hi = 0;
  uint64_t lo = 0;
  if (!r.GetU8(&tag) || tag != kVersionedValueTag || !r.GetI64(&v.writer.timestamp) ||
      !r.GetU64(&hi) || !r.GetU64(&lo) || !r.GetStringVector(&v.cowritten) ||
      !r.GetString(&v.payload)) {
    return Status::Internal("corrupt versioned value");
  }
  v.writer.uuid = Uuid(hi, lo);
  return v;
}

}  // namespace aft
