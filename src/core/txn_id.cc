#include "src/core/txn_id.h"

#include <cstdio>
#include <cstdlib>

namespace aft {

std::string TxnId::Encode() const {
  std::string out;
  out.reserve(kEncodedLength);
  EncodeTo(out);
  return out;
}

void TxnId::EncodeTo(std::string& out) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld_", static_cast<long long>(timestamp));
  out.append(buf);  // 21 chars for every real (non-negative) timestamp.
  uuid.AppendTo(out);
}

TxnId TxnId::Decode(const std::string& text) {
  const size_t sep = text.find('_');
  if (sep == std::string::npos) {
    return TxnId();
  }
  TxnId id;
  id.timestamp = std::strtoll(text.substr(0, sep).c_str(), nullptr, 10);
  id.uuid = Uuid::Parse(text.substr(sep + 1));
  return id;
}

}  // namespace aft
