// Per-transaction state held by an AFT node.
//
// A transaction (one logical request, possibly spanning several FaaS
// functions) is identified by its UUID while running; the commit timestamp —
// and thus the full TxnId — is assigned at commit time (§3.1). The state
// bundles the Atomic Write Buffer with the dynamically constructed atomic
// read set that Algorithm 1 maintains.

#ifndef SRC_CORE_TRANSACTION_H_
#define SRC_CORE_TRANSACTION_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/common/clock.h"
#include "src/common/mutex.h"
#include "src/common/uuid.h"
#include "src/core/commit_set_cache.h"
#include "src/core/txn_id.h"
#include "src/obs/trace.h"

namespace aft {

enum class TxnStatus {
  kRunning,
  kCommitting,
  kCommitted,
  kAborted,
};

// One entry of the transaction's read set R: the version of a key it read,
// with the commit record pinned so the cowritten set stays available even if
// the metadata GC concurrently drops it from the node's cache.
struct ReadSetEntry {
  TxnId version;
  CommitRecordPtr record;
};

struct TransactionState {
  explicit TransactionState(Uuid id, TimePoint start) : uuid(id), start_time(start) {}

  // All transactions share ONE contention site ("txn.state") — per-object
  // sites would flood the registry, and the cached function-static keeps
  // transaction construction free of registry lookups.
  static contention::ContentionSite* ContentionSiteFor() {
    static contention::ContentionSite* site = contention::LockSite("txn.state");
    return site;
  }

  const Uuid uuid;
  const TimePoint start_time;

  // Lifecycle trace context (no-op unless the transaction was sampled at
  // start). Immutable after construction, so readable without `mu`.
  obs::TraceContext trace;

  // Guards everything below. Ops of one transaction are logically sequential
  // (a linear composition of functions), but retries after failures can
  // briefly overlap with the original attempt.
  mutable Mutex mu{ContentionSiteFor()};

  TxnStatus status GUARDED_BY(mu) = TxnStatus::kRunning;

  // ---- Atomic Write Buffer (§3.3) -----------------------------------------
  // key -> payload. `dirty` tracks entries not yet spilled to storage;
  // `spilled` keys already have their version object persisted (invisible
  // until the commit record lands).
  std::map<std::string, std::string> write_buffer GUARDED_BY(mu);
  std::unordered_set<std::string> dirty GUARDED_BY(mu);
  std::unordered_set<std::string> spilled GUARDED_BY(mu);
  uint64_t buffered_bytes GUARDED_BY(mu) = 0;

  // Packed layout (§8): segments written so far (spills + commit) and the
  // locator of each key's payload within them. A key rewritten after a
  // spill gets a fresh locator in a later segment.
  uint32_t next_segment_index GUARDED_BY(mu) = 0;
  std::vector<VersionLocator> packed_locators GUARDED_BY(mu);

  // ---- Atomic read set R (§3.4) --------------------------------------------
  // Only non-NULL reads enter R, exactly as in Algorithm 1.
  std::unordered_map<std::string, ReadSetEntry> read_set GUARDED_BY(mu);

  // Transactions whose versions we have read — the local GC must not drop
  // their metadata while we run (§5.1).
  std::unordered_set<TxnId> reads_from GUARDED_BY(mu);

  // Set at commit.
  TxnId commit_id GUARDED_BY(mu);
};

}  // namespace aft

#endif  // SRC_CORE_TRANSACTION_H_
