// Algorithm 1 (AtomicRead version selection) and Algorithm 2 (transaction
// supersedence) from the paper.

#ifndef SRC_CORE_READ_ALGORITHM_H_
#define SRC_CORE_READ_ALGORITHM_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/commit_set_cache.h"
#include "src/core/key_version_index.h"
#include "src/core/transaction.h"

namespace aft {

// Outcome of Algorithm 1 for a requested key.
struct AtomicReadChoice {
  enum class Kind {
    // A concrete committed version was selected.
    kVersion,
    // No version of the key is compatible *and* nothing in R requires one:
    // the read observes the NULL version (key absent as of the snapshot).
    kNullVersion,
    // R requires a version at least as new as `lower`, but no valid version
    // exists (e.g. conflicting cowrites, or the data was garbage collected).
    // The transaction must abort and retry (§3.6, §5.2.1).
    kNoValidVersion,
  };

  Kind kind = Kind::kNullVersion;
  TxnId version;           // Set when kind == kVersion.
  CommitRecordPtr record;  // The chosen version's commit record (pinned).
  // How many candidate versions the newest-first walk examined before
  // settling (0 for read-set-pinned and NULL outcomes) — the Algorithm-1
  // resolution depth exposed as aft_node_read_walk_depth.
  uint32_t candidates_examined = 0;
};

// Runs Algorithm 1: picks the newest committed version of `key` such that
// read_set ∪ {k_version} is still an Atomic Readset (Definition 1).
//
//  * Lines 3-5: `lower` = max id over entries l_i in R with k ∈ l_i.cowritten
//    — we must return k_j with j >= lower (case 1 of Theorem 1).
//  * Lines 13-23: walk candidates newest-first; a candidate k_t is invalid if
//    some cowritten key l of T_t was read in R at a version older than t
//    (case 2 — we should have been given l_t earlier).
//
// Candidates whose commit record has been concurrently GC'd from `commits`
// are skipped (they cannot be validated); this can only make reads staler,
// never incorrect.
AtomicReadChoice SelectAtomicReadVersion(
    const std::string& key, const std::unordered_map<std::string, ReadSetEntry>& read_set,
    const KeyVersionIndex& index, const CommitSetCache& commits);

// Runs Algorithm 1 for each key IN ORDER, folding every kVersion selection
// into a working copy of the read set before the next key is planned: key
// i+1 sees key i's choice exactly as if the reads had been issued
// sequentially, so the whole batch is one valid Atomic Readset extension
// (the multi-key read of Table 1). Returns one choice per key,
// positionally; a kNoValidVersion entry means the batch — like its
// sequential equivalent — must abort. The caller's `read_set` is not
// modified (entries are installed only after the payloads are fetched).
std::vector<AtomicReadChoice> PlanAtomicMultiRead(
    std::span<const std::string> keys,
    const std::unordered_map<std::string, ReadSetEntry>& read_set,
    const KeyVersionIndex& index, const CommitSetCache& commits);

// Algorithm 2, generalized: T is superseded iff every key in its write set
// has a committed version strictly newer than T. (The paper's formulation
// `latest == i -> not superseded` assumes T is already merged into the local
// index; this form is equivalent there and also correct for records received
// via multicast that were never merged.)
bool IsTransactionSuperseded(const CommitRecord& record, const KeyVersionIndex& index);

}  // namespace aft

#endif  // SRC_CORE_READ_ALGORITHM_H_
