#include "src/core/commit_batcher.h"

#include <utility>

namespace aft {

CommitBatcher::CommitBatcher(const std::string& node_id, StorageEngine& storage,
                             RoundPublisher publisher)
    : node_id_(node_id), storage_(storage), publisher_(std::move(publisher)) {
  auto& reg = obs::MetricsRegistry::Global();
  const obs::MetricLabels labels = {{"node", node_id}};
  batch_size_ = reg.GetHistogram("aft_commit_batch_size", "Transactions fused per commit round",
                                 ExponentialBoundaries(1, 2, 8), labels);
  rounds_ = reg.GetCounter("aft_commit_batch_rounds_total", "Batched commit rounds executed",
                           labels);
  leader_commits_ = reg.GetCounter("aft_commit_batch_commits_total",
                                   "Commits by batch role (leader ran the round)",
                                   {{"node", node_id}, {"role", "leader"}});
  follower_commits_ = reg.GetCounter("aft_commit_batch_commits_total",
                                     "Commits by batch role (follower piggybacked)",
                                     {{"node", node_id}, {"role", "follower"}});
}

Status CommitBatcher::Commit(Pending& pending) {
  MutexLock lock(mu_);
  if (!round_in_flight_ && queue_.empty()) {
    // Solo fast path: nobody to piggyback on and nobody ahead. Run the
    // round alone without touching the queue — with CommitUnits' n==1
    // degeneration this is byte- and allocation-identical to the legacy
    // unbatched commit, so a single writer pays nothing for batching.
    round_in_flight_ = true;
    lock.Unlock();
    Pending* solo = &pending;
    ExecuteRound(std::span<Pending* const>(&solo, 1));
    lock.Lock();
    round_in_flight_ = false;
    cv_.NotifyAll();
    leader_commits_->Increment();
    return std::move(pending.result);
  }

  queue_.push_back(&pending);
  bool led = false;
  // The drain loop: the first waiter to observe the latch free becomes the
  // next round's leader and drains the WHOLE queue — the batch formed
  // adaptively while the previous round was in flight.
  // aftlint: hot
  while (!pending.done) {
    if (round_in_flight_) {
      cv_.Wait(lock);
      continue;
    }
    round_in_flight_ = true;
    SmallVector<Pending*, 16> members(std::move(queue_));
    lock.Unlock();
    ExecuteRound(std::span<Pending* const>(members.data(), members.size()));
    lock.Lock();
    for (Pending* member : members) {
      member->done = true;
    }
    round_in_flight_ = false;
    cv_.NotifyAll();
    led = true;
  }
  (led ? leader_commits_ : follower_commits_)->Increment();
  return std::move(pending.result);
}

void CommitBatcher::RecordRoundSpans(std::span<Pending* const> members, uint64_t start_us,
                                     uint64_t end_us) const {
  for (const Pending* member : members) {
    if (!member->trace.sampled()) {
      continue;
    }
    for (const char* name : {"CommitFlush", "CommitRecordWrite"}) {
      obs::TraceEvent event;
      event.trace_id = member->trace.trace_id;
      event.name = name;
      event.node = node_id_;
      event.start_us = start_us;
      event.dur_us = end_us - start_us;
      obs::Tracer::Global().Record(std::move(event));
    }
  }
}

void CommitBatcher::ExecuteRound(std::span<Pending* const> members) {
  rounds_->Increment();
  batch_size_->Observe(static_cast<double>(members.size()));
  bool sampled = false;
  for (const Pending* member : members) {
    sampled = sampled || member->trace.sampled();
  }
  const uint64_t span_start = sampled ? obs::Tracer::NowMicros() : 0;
  if (members.size() == 1) {
    // One stack unit; no publisher list to build.
    Pending& p = *members[0];
    CommitUnit unit{p.data_ops, std::move(p.commit_record)};
    Status result;
    storage_.CommitUnits(std::span<CommitUnit>(&unit, 1), std::span<Status>(&result, 1));
    if (sampled) {
      RecordRoundSpans(members, span_start, obs::Tracer::NowMicros());
    }
    p.result = std::move(result);
    if (publisher_ && p.result.ok()) {
      publisher_(members);
    }
    return;
  }

  SmallVector<CommitUnit, 16> units;
  SmallVector<Status, 16> results;
  units.reserve(members.size());
  results.reserve(members.size());
  // aftlint: hot
  for (Pending* member : members) {
    units.push_back(CommitUnit{member->data_ops, std::move(member->commit_record)});
    results.push_back(Status());
  }
  storage_.CommitUnits(std::span<CommitUnit>(units.data(), units.size()),
                       std::span<Status>(results.data(), results.size()));
  if (sampled) {
    RecordRoundSpans(members, span_start, obs::Tracer::NowMicros());
  }
  SmallVector<Pending*, 16> committed;
  committed.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    members[i]->result = std::move(results[i]);
    if (members[i]->result.ok()) {
      committed.push_back(members[i]);
    }
  }
  if (publisher_ && !committed.empty()) {
    publisher_(std::span<Pending* const>(committed.data(), committed.size()));
  }
}

}  // namespace aft
