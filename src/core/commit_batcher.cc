#include "src/core/commit_batcher.h"

#include <chrono>
#include <utility>

#include "src/common/contention.h"
#include "src/common/histogram.h"

namespace aft {

namespace {

using StageClock = std::chrono::steady_clock;

uint64_t StageNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   StageClock::now().time_since_epoch())
                                   .count());
}

uint64_t NsOf(StageClock::time_point tp) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp.time_since_epoch()).count());
}

// 10 µs .. ~10 s in doubling buckets — spans a WAL fsync (~ms) and a
// simulated cloud round-trip (~tens of ms) with headroom for stragglers.
std::vector<double> StageBoundaries() { return ExponentialBoundaries(1e-5, 2.0, 21); }

}  // namespace

CommitStageHistograms CommitStageHistograms::ForNode(const std::string& node_id) {
  auto& reg = obs::MetricsRegistry::Global();
  auto stage = [&](const char* stage_name, const char* help) {
    return reg.GetHistogram("aft_commit_stage_seconds", help, StageBoundaries(),
                            {{"node", node_id}, {"stage", stage_name}});
  };
  CommitStageHistograms h;
  h.txn_lock_wait = stage("txn_lock_wait", "Commit stage: transaction lock wait");
  h.queue_wait_leader = stage("queue_wait_leader", "Commit stage: batcher queue wait (led)");
  h.queue_wait_follower =
      stage("queue_wait_follower", "Commit stage: batcher queue wait (piggybacked)");
  h.data_flush = stage("data_flush", "Commit stage: data-version flush");
  h.barrier = stage("barrier", "Commit stage: write-ordering barrier wait");
  h.record_write = stage("record_write", "Commit stage: commit-record write");
  h.gossip_publish = stage("gossip_publish", "Commit stage: staging for gossip broadcast");
  return h;
}

CommitBatcher::CommitBatcher(const std::string& node_id, StorageEngine& storage,
                             RoundPublisher publisher)
    : node_id_(node_id), storage_(storage), publisher_(std::move(publisher)) {
  auto& reg = obs::MetricsRegistry::Global();
  const obs::MetricLabels labels = {{"node", node_id}};
  batch_size_ = reg.GetHistogram("aft_commit_batch_size", "Transactions fused per commit round",
                                 ExponentialBoundaries(1, 2, 8), labels);
  rounds_ = reg.GetCounter("aft_commit_batch_rounds_total", "Batched commit rounds executed",
                           labels);
  leader_commits_ = reg.GetCounter("aft_commit_batch_commits_total",
                                   "Commits by batch role (leader ran the round)",
                                   {{"node", node_id}, {"role", "leader"}});
  follower_commits_ = reg.GetCounter("aft_commit_batch_commits_total",
                                     "Commits by batch role (follower piggybacked)",
                                     {{"node", node_id}, {"role", "follower"}});
  stages_ = CommitStageHistograms::ForNode(node_id);
}

Status CommitBatcher::Commit(Pending& pending) {
  const bool attrib = contention::StageTimingEnabled();
  MutexLock lock(mu_);
  if (!round_in_flight_ && queue_.empty()) {
    // Solo fast path: nobody to piggyback on and nobody ahead. Run the
    // round alone without touching the queue — with CommitUnits' n==1
    // degeneration this is byte- and allocation-identical to the legacy
    // unbatched commit, so a single writer pays nothing for batching.
    round_in_flight_ = true;
    lock.Unlock();
    Pending* solo = &pending;
    ExecuteRound(std::span<Pending* const>(&solo, 1), solo);
    lock.Lock();
    round_in_flight_ = false;
    cv_.NotifyAll();
    leader_commits_->Increment();
    return std::move(pending.result);
  }

  // Queue wait opens here, not before the lock: the solo fast path above
  // never reads the clock for it (its wait is definitionally zero), and the
  // mutex acquire itself is already covered by the sampled lock profiler.
  if (attrib) {
    pending.enqueued_ns = StageNowNs();
  }
  queue_.push_back(&pending);
  bool led = false;
  // The drain loop: the first waiter to observe the latch free becomes the
  // next round's leader and drains the WHOLE queue — the batch formed
  // adaptively while the previous round was in flight.
  // aftlint: hot
  while (!pending.done) {
    if (round_in_flight_) {
      cv_.Wait(lock);
      continue;
    }
    round_in_flight_ = true;
    SmallVector<Pending*, 16> members(std::move(queue_));
    lock.Unlock();
    ExecuteRound(std::span<Pending* const>(members.data(), members.size()), &pending);
    lock.Lock();
    for (Pending* member : members) {
      member->done = true;
    }
    round_in_flight_ = false;
    cv_.NotifyAll();
    led = true;
  }
  (led ? leader_commits_ : follower_commits_)->Increment();
  return std::move(pending.result);
}

void CommitBatcher::RecordRoundSpans(std::span<Pending* const> members, uint64_t start_us,
                                     uint64_t end_us) const {
  for (const Pending* member : members) {
    if (!member->trace.sampled()) {
      continue;
    }
    for (const char* name : {"CommitFlush", "CommitRecordWrite"}) {
      obs::TraceEvent event;
      event.trace_id = member->trace.trace_id;
      event.name = name;
      event.node = node_id_;
      event.start_us = start_us;
      event.dur_us = end_us - start_us;
      obs::Tracer::Global().Record(std::move(event));
    }
  }
}

void CommitBatcher::ExecuteRound(std::span<Pending* const> members, const Pending* leader) {
  rounds_->Increment();
  batch_size_->Observe(static_cast<double>(members.size()));
  const bool attrib = contention::StageTimingEnabled();
  bool sampled = false;
  for (const Pending* member : members) {
    sampled = sampled || member->trace.sampled();
  }
  const uint64_t span_start = sampled ? obs::Tracer::NowMicros() : 0;
  const uint64_t round_start_ns = attrib ? StageNowNs() : 0;
  if (attrib) {
    // Queue wait ends when the round starts executing. EVERY member of the
    // round — leader included — observes its own wait, labeled by role. A
    // solo leader never enqueued (enqueued_ns stays 0): its wait is zero.
    for (const Pending* member : members) {
      const double wait_s =
          member->enqueued_ns == 0
              ? 0.0
              : static_cast<double>(round_start_ns - member->enqueued_ns) * 1e-9;
      (member == leader ? stages_.queue_wait_leader : stages_.queue_wait_follower)
          ->Observe(wait_s);
    }
  }

  CommitStageProfile profile;
  CommitStageProfile* profile_ptr = attrib ? &profile : nullptr;
  if (attrib) {
    // Shared boundary: the round start doubles as the engine's flush start,
    // and the engine's last reading (profile.end) doubles as publish start.
    profile.start = StageClock::time_point(std::chrono::nanoseconds(round_start_ns));
  }
  bool round_ok = false;
  if (members.size() == 1) {
    // One stack unit; no publisher list to build.
    Pending& p = *members[0];
    CommitUnit unit{p.data_ops, std::move(p.commit_record)};
    Status result;
    storage_.CommitUnits(std::span<CommitUnit>(&unit, 1), std::span<Status>(&result, 1),
                         profile_ptr);
    if (sampled) {
      RecordRoundSpans(members, span_start, obs::Tracer::NowMicros());
    }
    p.result = std::move(result);
    round_ok = p.result.ok();
    double publish_s = 0;
    if (publisher_ && round_ok) {
      const uint64_t publish_start_ns =
          !attrib ? 0
          : profile.end != StageClock::time_point{} ? NsOf(profile.end)
                                                    : StageNowNs();
      publisher_(members);
      if (attrib) {
        publish_s = static_cast<double>(StageNowNs() - publish_start_ns) * 1e-9;
      }
    }
    if (attrib) {
      ObserveRoundStages(members, profile, publish_s, round_start_ns, span_start);
    }
    return;
  }

  SmallVector<CommitUnit, 16> units;
  SmallVector<Status, 16> results;
  units.reserve(members.size());
  results.reserve(members.size());
  // aftlint: hot
  for (Pending* member : members) {
    units.push_back(CommitUnit{member->data_ops, std::move(member->commit_record)});
    results.push_back(Status());
  }
  storage_.CommitUnits(std::span<CommitUnit>(units.data(), units.size()),
                       std::span<Status>(results.data(), results.size()), profile_ptr);
  if (sampled) {
    RecordRoundSpans(members, span_start, obs::Tracer::NowMicros());
  }
  SmallVector<Pending*, 16> committed;
  committed.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    members[i]->result = std::move(results[i]);
    if (members[i]->result.ok()) {
      committed.push_back(members[i]);
    }
  }
  double publish_s = 0;
  if (publisher_ && !committed.empty()) {
    const uint64_t publish_start_ns =
        !attrib ? 0
        : profile.end != StageClock::time_point{} ? NsOf(profile.end)
                                                  : StageNowNs();
    publisher_(std::span<Pending* const>(committed.data(), committed.size()));
    if (attrib) {
      publish_s = static_cast<double>(StageNowNs() - publish_start_ns) * 1e-9;
    }
  }
  if (attrib) {
    ObserveRoundStages(members, profile, publish_s, round_start_ns, span_start);
  }
}

void CommitBatcher::ObserveRoundStages(std::span<Pending* const> members,
                                       const CommitStageProfile& profile, double publish_s,
                                       uint64_t round_start_ns, uint64_t span_start_us) const {
  // Every member observes the round's stage durations: each member's
  // end-to-end commit wall time contains the FULL round (followers park for
  // all of it), so charging the round to every member is what makes the
  // per-member stage sum reconcile with aft_node_commit_latency_ms.
  for (const Pending* member : members) {
    stages_.data_flush->Observe(profile.data_flush_s);
    stages_.barrier->Observe(profile.barrier_s);
    stages_.record_write->Observe(profile.record_write_s);
    stages_.gossip_publish->Observe(publish_s);
    if (member->trace.sampled()) {
      // Child spans laid out sequentially from round start by measured
      // duration — an approximation of in-stage timestamps (the stages of a
      // fused WAL round are not separately clocked per member), documented
      // in docs/OBSERVABILITY.md.
      const uint64_t queue_us =
          member->enqueued_ns == 0 ? 0 : (round_start_ns - member->enqueued_ns) / 1000;
      const uint64_t flush_us = static_cast<uint64_t>(profile.data_flush_s * 1e6);
      const uint64_t barrier_us = static_cast<uint64_t>(profile.barrier_s * 1e6);
      const uint64_t record_us = static_cast<uint64_t>(profile.record_write_s * 1e6);
      const uint64_t publish_us = static_cast<uint64_t>(publish_s * 1e6);
      struct StageSpan {
        const char* name;
        uint64_t start_us;
        uint64_t dur_us;
      };
      const StageSpan spans[] = {
          {"StageQueueWait", span_start_us > queue_us ? span_start_us - queue_us : 0, queue_us},
          {"StageDataFlush", span_start_us, flush_us},
          {"StageBarrier", span_start_us + flush_us, barrier_us},
          {"StageRecordWrite", span_start_us + flush_us + barrier_us, record_us},
          {"StageGossipPublish", span_start_us + flush_us + barrier_us + record_us, publish_us},
      };
      for (const StageSpan& s : spans) {
        obs::TraceEvent event;
        event.trace_id = member->trace.trace_id;
        event.name = s.name;
        event.node = node_id_;
        event.start_us = s.start_us;
        event.dur_us = s.dur_us;
        obs::Tracer::Global().Record(std::move(event));
      }
    }
  }
}

}  // namespace aft
