#include "src/core/aft_node.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <ranges>
#include <span>

#include "src/common/contention.h"
#include "src/common/io_executor.h"
#include "src/common/logging.h"
#include "src/common/small_vector.h"
#include "src/storage/sim_engine_base.h"

namespace aft {
namespace {

// A read's version selection is revalidated after the (unlocked) payload
// fetch; concurrent operations on the same transaction can move the
// selection, so the select-fetch-revalidate cycle retries a bounded number
// of times before giving up with kAborted.
constexpr int kReadStabilizeAttempts = 8;

using StageClock = std::chrono::steady_clock;

double StageSecondsSince(StageClock::time_point start) {
  return std::chrono::duration<double>(StageClock::now() - start).count();
}

}  // namespace

AftNode::AftNode(std::string node_id, StorageEngine& storage, Clock& clock, AftNodeOptions options)
    : node_id_(std::move(node_id)),
      storage_(storage),
      clock_(clock),
      options_(std::move(options)),
      data_cache_(options_.data_cache_bytes),
      throttle_(clock, options_.service_cores,
                options_.service_time.Scaled(storage.client_cpu_factor())),
      batcher_(node_id_, storage,
               [this](std::span<CommitBatcher::Pending* const> committed) {
                 PublishCommittedRound(committed);
               }) {
  auto& reg = obs::MetricsRegistry::Global();
  const obs::MetricLabels labels = {{"node", node_id_}};
  metrics_.txns_started =
      reg.GetCounter("aft_node_txns_started_total", "Transactions started", labels);
  metrics_.txns_committed =
      reg.GetCounter("aft_node_txns_committed_total", "Transactions committed", labels);
  metrics_.txns_aborted =
      reg.GetCounter("aft_node_txns_aborted_total", "Transactions aborted", labels);
  metrics_.reads = reg.GetCounter("aft_node_reads_total", "Key reads served", labels);
  metrics_.writes = reg.GetCounter("aft_node_writes_total", "Key writes buffered", labels);
  metrics_.null_reads =
      reg.GetCounter("aft_node_null_reads_total", "Reads observing the NULL version", labels);
  metrics_.read_aborts = reg.GetCounter("aft_node_read_aborts_total",
                                        "Reads aborted with kNoValidVersion (sec. 3.6)", labels);
  metrics_.spills =
      reg.GetCounter("aft_node_spills_total", "Atomic Write Buffer spills (sec. 3.3)", labels);
  metrics_.gc_records_removed = reg.GetCounter(
      "aft_node_gc_records_removed_total", "Commit records removed by local GC", labels);
  metrics_.remote_commits_applied = reg.GetCounter(
      "aft_node_remote_commits_applied_total", "Gossiped commit records merged", labels);
  metrics_.remote_commits_skipped_superseded =
      reg.GetCounter("aft_node_remote_commits_skipped_superseded_total",
                     "Gossiped commit records dropped as superseded (sec. 4.1)", labels);
  metrics_.commit_latency_ms =
      reg.GetHistogram("aft_node_commit_latency_ms", "CommitTransaction wall latency (ms)",
                       DefaultLatencyBoundariesMs(), labels);
  metrics_.read_latency_ms =
      reg.GetHistogram("aft_node_read_latency_ms", "GetVersioned/MultiGet wall latency (ms)",
                       DefaultLatencyBoundariesMs(), labels);
  metrics_.read_walk_depth = reg.GetHistogram(
      "aft_node_read_walk_depth", "Algorithm-1 candidate versions examined per read",
      ExponentialBoundaries(1, 2, 8), labels);
  metrics_.stages = CommitStageHistograms::ForNode(node_id_);

  metric_callbacks_.push_back(reg.RegisterCallback(
      "aft_node_data_cache_hits_total", "Data cache hits", obs::CallbackType::kCounter, labels,
      [this] { return static_cast<double>(data_cache_.hits()); }));
  metric_callbacks_.push_back(reg.RegisterCallback(
      "aft_node_data_cache_misses_total", "Data cache misses", obs::CallbackType::kCounter,
      labels, [this] { return static_cast<double>(data_cache_.misses()); }));
  metric_callbacks_.push_back(reg.RegisterCallback(
      "aft_commit_set_cache_lookup_hits_total", "Commit-set cache lookup hits",
      obs::CallbackType::kCounter, labels,
      [this] { return static_cast<double>(commits_.lookup_hits()); }));
  metric_callbacks_.push_back(reg.RegisterCallback(
      "aft_commit_set_cache_lookup_misses_total", "Commit-set cache lookup misses",
      obs::CallbackType::kCounter, labels,
      [this] { return static_cast<double>(commits_.lookup_misses()); }));
  for (size_t shard = 0; shard < CommitSetCache::kNumShards; ++shard) {
    obs::MetricLabels shard_labels = labels;
    shard_labels.emplace_back("shard", std::to_string(shard));
    metric_callbacks_.push_back(reg.RegisterCallback(
        "aft_commit_set_cache_entries", "Commit records cached, per shard",
        obs::CallbackType::kGauge, std::move(shard_labels),
        [this, shard] { return static_cast<double>(commits_.ShardSize(shard)); }));
  }
  metric_callbacks_.push_back(reg.RegisterCallback(
      "aft_node_write_buffer_bytes", "Dirty (unspilled) bytes buffered across running txns",
      obs::CallbackType::kGauge, labels, [this] {
        uint64_t total = 0;
        MutexLock lock(txns_mu_);
        for (const auto& [uuid, txn] : txns_) {
          MutexLock txn_lock(txn->mu);
          total += txn->buffered_bytes;
        }
        return static_cast<double>(total);
      }));

  baseline_.txns_started.value = metrics_.txns_started->Value();
  baseline_.txns_committed.value = metrics_.txns_committed->Value();
  baseline_.txns_aborted.value = metrics_.txns_aborted->Value();
  baseline_.reads.value = metrics_.reads->Value();
  baseline_.writes.value = metrics_.writes->Value();
  baseline_.null_reads.value = metrics_.null_reads->Value();
  baseline_.read_aborts.value = metrics_.read_aborts->Value();
  baseline_.spills.value = metrics_.spills->Value();
  baseline_.gc_records_removed.value = metrics_.gc_records_removed->Value();
  baseline_.remote_commits_applied.value = metrics_.remote_commits_applied->Value();
  baseline_.remote_commits_skipped_superseded.value =
      metrics_.remote_commits_skipped_superseded->Value();
}

AftNode::~AftNode() {
  stop_background_.store(true);
  if (background_.joinable()) {
    background_.join();
  }
}

Status AftNode::Start() {
  AFT_RETURN_IF_ERROR(CheckAlive());
  // Bootstrap: warm the metadata cache with the newest commit records in the
  // Transaction Commit Set (§3.1). The zero-padded key encoding makes the
  // listing time-ordered, so the tail of the list is the newest.
  AFT_ASSIGN_OR_RETURN(std::vector<std::string> commit_keys, storage_.List(kCommitPrefix));
  const size_t limit = options_.bootstrap_commit_limit;
  const size_t start = commit_keys.size() > limit ? commit_keys.size() - limit : 0;
  size_t loaded = 0;
  for (size_t i = start; i < commit_keys.size(); ++i) {
    // Bulk read: warming the metadata cache is a streaming scan; per-request
    // point latencies would mis-model it, and the wall-clock cost of warmup
    // is charged explicitly where it matters (the §6.7 replacement delay).
    auto bytes = MaintenanceRead(storage_, commit_keys[i]);
    if (!bytes.ok()) {
      continue;  // Deleted by the global GC between List and Get.
    }
    auto record = CommitRecord::Deserialize(bytes.value());
    if (!record.ok()) {
      AFT_LOG(Warn) << node_id_ << ": skipping corrupt commit record " << commit_keys[i];
      continue;
    }
    auto ptr = std::make_shared<const CommitRecord>(std::move(record).value());
    if (commits_.Add(ptr)) {
      index_.AddCommit(*ptr);
      ++loaded;
    }
  }
  AFT_LOG(Info) << node_id_ << ": bootstrapped " << loaded << " commit records";
  if (options_.enable_background_threads && !background_.joinable()) {
    background_ = std::thread([this] { BackgroundLoop(); });
  }
  return Status::Ok();
}

void AftNode::Kill() {
  alive_.store(false, std::memory_order_release);
  stop_background_.store(true);
}

Status AftNode::CheckAlive() const {
  if (!alive()) {
    return Status::Unavailable("aft node " + node_id_ + " is down");
  }
  return Status::Ok();
}

bool AftNode::MaybeCrash(CrashPoint point) {
  if (options_.crash_hook && options_.crash_hook(point)) {
    AFT_LOG(Warn) << node_id_ << ": injected crash";
    Kill();
    return true;
  }
  return false;
}

Result<Uuid> AftNode::StartTransaction() {
  // Local callers sample here; wire callers pass the client-minted context
  // through the overload so a transaction is sampled exactly once.
  return StartTransaction(obs::Tracer::Global().StartTrace());
}

Result<Uuid> AftNode::StartTransaction(const obs::TraceContext& trace) {
  AFT_RETURN_IF_ERROR(CheckAlive());
  obs::TraceSpan span(trace, "StartTxn", node_id_);
  const Uuid txid = Uuid::Random(ThreadLocalRng());
  auto txn = std::make_shared<TransactionState>(txid, clock_.Now());
  txn->trace = trace;
  {
    MutexLock lock(txns_mu_);
    txns_.emplace(txid, std::move(txn));
  }
  metrics_.txns_started->Increment();
  return txid;
}

Status AftNode::AdoptTransaction(const Uuid& txid) {
  AFT_RETURN_IF_ERROR(CheckAlive());
  MutexLock lock(txns_mu_);
  if (!txns_.contains(txid)) {
    txns_.emplace(txid, std::make_shared<TransactionState>(txid, clock_.Now()));
    metrics_.txns_started->Increment();
  }
  return Status::Ok();
}

Result<AftNode::TxnPtr> AftNode::FindTransaction(const Uuid& txid) {
  MutexLock lock(txns_mu_);
  auto it = txns_.find(txid);
  if (it == txns_.end()) {
    return Status::FailedPrecondition("unknown transaction " + txid.ToString());
  }
  return it->second;
}

Status AftNode::Put(const Uuid& txid, const std::string& key, std::string value) {
  AFT_RETURN_IF_ERROR(CheckAlive());
  if (key.empty() || key.find('/') != std::string::npos) {
    return Status::InvalidArgument("keys must be non-empty and must not contain '/'");
  }
  throttle_.Charge(ThreadLocalRng());
  AFT_ASSIGN_OR_RETURN(TxnPtr txn, FindTransaction(txid));
  obs::TraceSpan span(txn->trace, "BufferWrite", node_id_);
  MutexLock lock(txn->mu);
  if (txn->status != TxnStatus::kRunning) {
    return Status::FailedPrecondition("transaction is not running");
  }
  // buffered_bytes counts DIRTY (unspilled) payload only; spilled entries
  // already live in storage and stop counting against the threshold.
  auto it = txn->write_buffer.find(key);
  if (it != txn->write_buffer.end()) {
    if (txn->dirty.contains(key)) {
      txn->buffered_bytes -= it->second.size();
    }
    it->second = std::move(value);
  } else {
    it = txn->write_buffer.emplace(key, std::move(value)).first;
  }
  txn->buffered_bytes += it->second.size();
  txn->dirty.insert(key);
  metrics_.writes->Increment();

  // §3.3: a saturated Atomic Write Buffer proactively writes intermediary
  // data to storage; it stays invisible until the commit record lands.
  if (txn->buffered_bytes > options_.spill_threshold_bytes && !txn->dirty.empty()) {
    metrics_.spills->Increment();
    // Spilled versions carry a zero timestamp (the commit timestamp is not
    // yet known); the authoritative metadata is the commit record.
    AFT_RETURN_IF_ERROR(FlushVersions(*txn, TxnId(0, txid)));
    txn->buffered_bytes = 0;  // Spilled payloads no longer count against the threshold.
  }
  return Status::Ok();
}

Status AftNode::FlushVersions(TransactionState& txn, const TxnId& writer_id, bool final_flush) {
  if (txn.dirty.empty()) {
    return Status::Ok();
  }
  if (options_.packed_layout) {
    // One segment object holds every dirty payload; locators go into the
    // commit record (§8 data layout). A rewritten key's stale locator from
    // an earlier spill is replaced.
    std::string segment;
    std::vector<VersionLocator> fresh;
    for (const auto& [key, payload] : txn.write_buffer) {
      if (!txn.dirty.contains(key)) {
        continue;
      }
      fresh.push_back(VersionLocator{key, txn.next_segment_index,
                                     static_cast<uint32_t>(segment.size()),
                                     static_cast<uint32_t>(payload.size())});
      segment += payload;
    }
    AFT_RETURN_IF_ERROR(storage_.Put(SegmentStorageKey(txn.uuid, txn.next_segment_index),
                                     std::move(segment)));
    for (const VersionLocator& locator : fresh) {
      std::erase_if(txn.packed_locators,
                    [&](const VersionLocator& old) { return old.key == locator.key; });
      txn.packed_locators.push_back(locator);
    }
    ++txn.next_segment_index;
  } else {
    // Key-per-version layout: the cowritten set is the transaction's full
    // write set so far; for the final (commit-time) flush this is the
    // complete, authoritative set. Encode it straight out of the write
    // buffer's keys — no intermediate write-set vector, no VersionedValue
    // materialization; each op is exactly two exact-sized strings (the
    // version key and the serialized value) that move into the engine.
    const auto cowritten = std::views::keys(txn.write_buffer);
    const size_t value_base_bytes =
        record_detail::kRecordHeaderBytes + EncodedStringVectorBytes(cowritten) + 4;
    SmallVector<WriteOp, 8> ops;
    ops.reserve(txn.dirty.size());
    for (const auto& [key, payload] : txn.write_buffer) {
      if (!txn.dirty.contains(key)) {
        continue;
      }
      BinaryWriter w;
      w.Reserve(value_base_bytes + payload.size());
      EncodeVersionedValueFields(w, writer_id, cowritten, payload);
      ops.push_back(WriteOp{VersionStorageKey(key, txn.uuid), std::move(w).TakeData()});
    }
    AFT_RETURN_IF_ERROR(storage_.BatchPutConsume(std::span<WriteOp>(ops.data(), ops.size())));
  }
  // The spilled set exists so an abort can delete orphaned version objects;
  // the commit-time (final) flush never aborts afterwards — its transaction
  // is erased on every path — so skip the per-key bookkeeping inserts there.
  if (!final_flush) {
    for (const auto& [key, payload] : txn.write_buffer) {
      if (txn.dirty.contains(key)) {
        txn.spilled.insert(key);
      }
    }
  }
  txn.dirty.clear();
  return Status::Ok();
}

Result<std::optional<std::string>> AftNode::Get(const Uuid& txid, const std::string& key) {
  AFT_ASSIGN_OR_RETURN(VersionedRead read, GetVersioned(txid, key));
  return std::move(read.value);
}

Result<AftNode::VersionedRead> AftNode::GetVersioned(const Uuid& txid, const std::string& key) {
  AFT_RETURN_IF_ERROR(CheckAlive());
  throttle_.Charge(ThreadLocalRng());
  AFT_ASSIGN_OR_RETURN(TxnPtr txn, FindTransaction(txid));
  obs::ScopedHistogramTimer read_timer(metrics_.read_latency_ms);
  obs::TraceSpan span(txn->trace, "AtomicRead", node_id_);

  bool counted = false;
  for (int attempt = 0; attempt < kReadStabilizeAttempts; ++attempt) {
    TxnId target;
    CommitRecordPtr record;
    {
      MutexLock lock(txn->mu);
      if (txn->status != TxnStatus::kRunning) {
        return Status::FailedPrecondition("transaction is not running");
      }
      if (!counted) {
        metrics_.reads->Increment();
        counted = true;
      }

      // Read-your-writes (§3.5): data in the transaction's own write buffer
      // is returned immediately and bypasses Algorithm 1 (buffered data has
      // no commit timestamp yet, so it cannot participate).
      if (auto it = txn->write_buffer.find(key); it != txn->write_buffer.end()) {
        return VersionedRead{it->second, TxnId(0, txid), nullptr};
      }

      const AtomicReadChoice choice =
          SelectAtomicReadVersion(key, txn->read_set, index_, commits_);
      if (attempt == 0) {
        metrics_.read_walk_depth->Observe(static_cast<double>(choice.candidates_examined));
        span.AddArg("walk_depth", std::to_string(choice.candidates_examined));
      }
      switch (choice.kind) {
        case AtomicReadChoice::Kind::kNullVersion:
          metrics_.null_reads->Increment();
          return VersionedRead{std::nullopt, TxnId::Null(), nullptr};
        case AtomicReadChoice::Kind::kNoValidVersion:
          // §3.6: no version of `key` is compatible with what the
          // transaction already read; the client must abort and retry.
          metrics_.read_aborts->Increment();
          return Status::Aborted("no valid version of '" + key + "' for this read set");
        case AtomicReadChoice::Kind::kVersion:
          break;
      }
      // Pin the chosen version BEFORE releasing the lock: the local GC
      // skips pinned transactions, so the version's metadata (and its
      // record's cowritten set) stays valid across the unlocked fetch. A
      // pin for a version that never gets installed is harmless — the
      // commit/abort epilogue releases everything in reads_from.
      if (txn->reads_from.insert(choice.version).second) {
        read_pins_.Pin(choice.version);
      }
      target = choice.version;
      record = choice.record;
    }

    // The storage fetch — retry backoff included — runs OUTSIDE txn->mu.
    // Holding the transaction lock across blocking I/O stalled every other
    // operation of the transaction (including the timeout sweeper's abort)
    // for up to retries x backoff; with reads now fanned out concurrently
    // it would also have been a lock-ordering hazard.
    Result<std::string> payload = ReadVersionPayload(key, target, record);

    MutexLock lock(txn->mu);
    if (txn->status != TxnStatus::kRunning) {
      return Status::FailedPrecondition("transaction is not running");
    }
    if (!payload.ok()) {
      return payload.status();
    }
    // Revalidate: while unlocked, overlapping operations of this
    // transaction (a function retry racing its original, §3.3.1) may have
    // tightened the read set or buffered a write of this key. Install the
    // entry only if Algorithm 1 still picks the fetched version.
    if (auto it = txn->write_buffer.find(key); it != txn->write_buffer.end()) {
      return VersionedRead{it->second, TxnId(0, txid), nullptr};
    }
    const AtomicReadChoice check = SelectAtomicReadVersion(key, txn->read_set, index_, commits_);
    switch (check.kind) {
      case AtomicReadChoice::Kind::kNullVersion:
        metrics_.null_reads->Increment();
        return VersionedRead{std::nullopt, TxnId::Null(), nullptr};
      case AtomicReadChoice::Kind::kNoValidVersion:
        metrics_.read_aborts->Increment();
        return Status::Aborted("no valid version of '" + key + "' for this read set");
      case AtomicReadChoice::Kind::kVersion:
        if (check.version == target) {
          txn->read_set[key] = ReadSetEntry{target, record};
          return VersionedRead{std::move(payload).value(), target, record};
        }
        break;  // Selection moved while we fetched; fetch the new choice.
    }
  }
  return Status::Aborted("read of '" + key + "' did not stabilize");
}

Result<std::vector<AftNode::VersionedRead>> AftNode::MultiGet(
    const Uuid& txid, std::span<const std::string> keys) {
  AFT_RETURN_IF_ERROR(CheckAlive());
  if (keys.empty()) {
    return std::vector<VersionedRead>{};
  }
  // One shim request covering k keys: cheaper than k separate calls, but
  // response assembly still scales with the batch.
  throttle_.Charge(ThreadLocalRng(), 1.0 + 0.25 * static_cast<double>(keys.size() - 1));
  AFT_ASSIGN_OR_RETURN(TxnPtr txn, FindTransaction(txid));
  obs::ScopedHistogramTimer read_timer(metrics_.read_latency_ms);
  obs::TraceSpan span(txn->trace, "AtomicMultiRead", node_id_);

  struct PlannedFetch {
    size_t key_index;
    TxnId version;
    CommitRecordPtr record;
  };

  bool counted = false;
  for (int attempt = 0; attempt < kReadStabilizeAttempts; ++attempt) {
    std::vector<VersionedRead> out(keys.size());
    std::vector<PlannedFetch> fetches;
    std::vector<std::string> planned_keys;   // Keys going through Algorithm 1.
    std::vector<TxnId> planned_versions;     // Chosen version per planned key (Null = null read).
    std::vector<size_t> planned_index;       // Position of each planned key in `keys`.
    uint64_t null_reads = 0;
    {
      MutexLock lock(txn->mu);
      if (txn->status != TxnStatus::kRunning) {
        return Status::FailedPrecondition("transaction is not running");
      }
      if (!counted) {
        metrics_.reads->Increment(keys.size());
        counted = true;
      }
      // Read-your-writes hits bypass Algorithm 1 (§3.5).
      for (size_t i = 0; i < keys.size(); ++i) {
        if (auto it = txn->write_buffer.find(keys[i]); it != txn->write_buffer.end()) {
          out[i] = VersionedRead{it->second, TxnId(0, txid), nullptr};
        } else {
          planned_keys.push_back(keys[i]);
          planned_index.push_back(i);
        }
      }
      const std::vector<AtomicReadChoice> plan =
          PlanAtomicMultiRead(planned_keys, txn->read_set, index_, commits_);
      planned_versions.reserve(plan.size());
      for (size_t j = 0; j < plan.size(); ++j) {
        const AtomicReadChoice& choice = plan[j];
        if (attempt == 0) {
          metrics_.read_walk_depth->Observe(static_cast<double>(choice.candidates_examined));
        }
        switch (choice.kind) {
          case AtomicReadChoice::Kind::kNullVersion:
            out[planned_index[j]] = VersionedRead{std::nullopt, TxnId::Null(), nullptr};
            planned_versions.push_back(TxnId::Null());
            ++null_reads;
            break;
          case AtomicReadChoice::Kind::kNoValidVersion:
            metrics_.read_aborts->Increment();
            return Status::Aborted("no valid version of '" + planned_keys[j] +
                                   "' for this read set");
          case AtomicReadChoice::Kind::kVersion:
            // Pin before unlocking — see GetVersioned.
            if (txn->reads_from.insert(choice.version).second) {
              read_pins_.Pin(choice.version);
            }
            planned_versions.push_back(choice.version);
            fetches.push_back(PlannedFetch{planned_index[j], choice.version, choice.record});
            break;
        }
      }
    }

    // Fetch every selected payload concurrently, outside txn->mu. Cache
    // hits return immediately inside their lane; the misses together cost
    // ~one storage-get latency sample instead of one per key.
    std::vector<Result<std::string>> payloads(
        fetches.size(), Result<std::string>(Status::Internal("fetch slot never filled")));
    (void)IoExecutor::Shared().ParallelFor(fetches.size(), [&](size_t j) {
      payloads[j] =
          ReadVersionPayload(keys[fetches[j].key_index], fetches[j].version, fetches[j].record);
      return Status::Ok();
    });

    MutexLock lock(txn->mu);
    if (txn->status != TxnStatus::kRunning) {
      return Status::FailedPrecondition("transaction is not running");
    }
    for (const Result<std::string>& payload : payloads) {
      if (!payload.ok()) {
        return payload.status();
      }
    }
    // Revalidate the whole plan against the current read set (overlapping
    // operations may have changed it while we fetched) and install
    // all-or-nothing; on any drift, start the cycle over.
    bool stable = true;
    for (const std::string& key : planned_keys) {
      if (txn->write_buffer.contains(key)) {
        stable = false;  // A concurrent Put buffered this key; replan.
        break;
      }
    }
    if (stable) {
      const std::vector<AtomicReadChoice> check =
          PlanAtomicMultiRead(planned_keys, txn->read_set, index_, commits_);
      for (size_t j = 0; j < check.size(); ++j) {
        if (check[j].kind == AtomicReadChoice::Kind::kNoValidVersion) {
          metrics_.read_aborts->Increment();
          return Status::Aborted("no valid version of '" + planned_keys[j] +
                                 "' for this read set");
        }
        const TxnId now_chosen = check[j].kind == AtomicReadChoice::Kind::kVersion
                                     ? check[j].version
                                     : TxnId::Null();
        if (now_chosen != planned_versions[j]) {
          stable = false;
          break;
        }
      }
    }
    if (!stable) {
      continue;
    }
    for (size_t j = 0; j < fetches.size(); ++j) {
      const PlannedFetch& fetch = fetches[j];
      txn->read_set[keys[fetch.key_index]] = ReadSetEntry{fetch.version, fetch.record};
      out[fetch.key_index] =
          VersionedRead{std::move(payloads[j]).value(), fetch.version, fetch.record};
    }
    metrics_.null_reads->Increment(null_reads);
    return out;
  }
  return Status::Aborted("multi-key read did not stabilize");
}

Result<std::string> AftNode::ReadVersionPayload(const std::string& key, const TxnId& version,
                                                const CommitRecordPtr& record) {
  // The cache key identifies the (key, writer) version in either layout.
  const std::string version_key = VersionStorageKey(key, version.uuid);
  if (auto cached = data_cache_.Get(version_key); cached.has_value()) {
    return std::move(*cached);
  }
  Status last = Status::Internal("unreachable");
  for (int attempt = 0; attempt <= options_.storage_read_retries; ++attempt) {
    if (record != nullptr && record->packed()) {
      // Packed layout: ranged GET of the payload slice out of the segment.
      const VersionLocator* locator = record->FindLocator(key);
      if (locator == nullptr) {
        return Status::Internal("packed commit record has no locator for '" + key + "'");
      }
      auto bytes = storage_.GetRange(SegmentStorageKey(version.uuid, locator->segment_index),
                                     locator->offset, locator->length);
      if (bytes.ok()) {
        data_cache_.Put(version_key, bytes.value());
        return std::move(bytes).value();
      }
      last = bytes.status();
    } else {
      auto bytes = storage_.Get(version_key);
      if (bytes.ok()) {
        auto value = VersionedValue::Deserialize(bytes.value());
        if (!value.ok()) {
          return value.status();
        }
        data_cache_.Put(version_key, value->payload);
        return std::move(value->payload);
      }
      last = bytes.status();
    }
    if (!last.IsNotFound()) {
      return last;
    }
    clock_.SleepFor(options_.storage_read_backoff);
  }
  // The metadata said this version exists but storage cannot produce it —
  // either the global GC raced us (§5.2.1) or visibility lagged far beyond
  // our retry budget. Either way the transaction must retry.
  return Status::Aborted("version " + version_key + " unreadable: " + last.ToString());
}

Status AftNode::AbortTransaction(const Uuid& txid) {
  AFT_RETURN_IF_ERROR(CheckAlive());
  AFT_ASSIGN_OR_RETURN(TxnPtr txn, FindTransaction(txid));
  {
    MutexLock lock(txn->mu);
    if (txn->status == TxnStatus::kCommitted || txn->status == TxnStatus::kCommitting) {
      return Status::FailedPrecondition("transaction already committed/committing");
    }
    txn->status = TxnStatus::kAborted;
    // §3.3: updates are simply deleted from the Atomic Write Buffer; nothing
    // was visible. Spilled intermediary versions are deleted from storage —
    // they were never referenced by any commit record.
    if (!txn->spilled.empty()) {
      std::vector<std::string> spilled_keys;
      if (options_.packed_layout) {
        for (uint32_t i = 0; i < txn->next_segment_index; ++i) {
          spilled_keys.push_back(SegmentStorageKey(txn->uuid, i));
        }
      } else {
        spilled_keys.reserve(txn->spilled.size());
        for (const std::string& key : txn->spilled) {
          spilled_keys.push_back(VersionStorageKey(key, txn->uuid));
        }
      }
      (void)storage_.BatchDelete(spilled_keys);
    }
    txn->write_buffer.clear();
    txn->dirty.clear();
    txn->spilled.clear();
    UnpinReads(*txn);
    txn->reads_from.clear();
  }
  {
    MutexLock lock(txns_mu_);
    txns_.erase(txid);
  }
  metrics_.txns_aborted->Increment();
  return Status::Ok();
}

Result<TxnId> AftNode::CommitTransaction(const Uuid& txid) {
  AFT_RETURN_IF_ERROR(CheckAlive());
  // The scope string only decorates debug-level lines; skip the three
  // concatenations per commit when debug logging is off.
  std::optional<LogScope> log_scope;
  if (internal::LogEnabled(LogLevel::kDebug)) {
    log_scope.emplace("node=" + node_id_ + " txn=" + txid.ToString());
  }
  // Idempotence for retried commits (§3.1): a transaction's updates are
  // persisted exactly once.
  {
    MutexLock lock(committed_mu_);
    if (auto it = committed_uuids_.find(txid); it != committed_uuids_.end()) {
      return it->second;
    }
  }
  AFT_ASSIGN_OR_RETURN(TxnPtr txn, FindTransaction(txid));
  // Commit-side processing (batch assembly, serialization of the whole
  // update set) costs about two operation units of node CPU.
  throttle_.Charge(ThreadLocalRng(), 2.0);
  obs::ScopedHistogramTimer commit_timer(metrics_.commit_latency_ms);
  obs::TraceSpan commit_span(txn->trace, "Commit", node_id_);
  // Stage attribution (aft_commit_stage_seconds): every commit that runs
  // with stage timing on observes exact (not sampled) per-stage durations;
  // their sum reconciles against commit_latency_ms, which starts above.
  const bool attrib = contention::StageTimingEnabled();
  // txn_lock_wait opens at the e2e timer's own clock reading — one fewer
  // clock read per commit, and the stage nests inside the commit_latency_ms
  // window by construction.
  MutexLock lock(txn->mu);
  if (attrib) {
    metrics_.stages.txn_lock_wait->Observe(StageSecondsSince(commit_timer.start()));
  }
  if (txn->status != TxnStatus::kRunning) {
    return Status::FailedPrecondition("transaction is not running");
  }
  txn->status = TxnStatus::kCommitting;

  // Assign the commit timestamp from the local system clock (§3.1).
  const TxnId commit_id(clock_.WallTimeMicros(), txid);
  txn->commit_id = commit_id;

  // Batched path: concurrent committers coalesce into shared storage rounds
  // (src/core/commit_batcher.h) — one merged data flush, one §3.3 barrier,
  // one batched record write, with per-transaction poisoning. The legacy
  // per-transaction sequence below remains for the packed layout (its
  // segment flush mutates txn state mid-write), for crash-point tests
  // (they pin the exact legacy write order), and when batching is off.
  if (options_.enable_commit_batching && !options_.packed_layout && !options_.crash_hook) {
    // Prepare this transaction's commit unit under its lock: exactly the
    // writes the unbatched flush would issue, plus the serialized record.
    // The dirty set is NOT cleared yet — a failed round drops the
    // transaction back to kRunning with its buffer intact, and a retry
    // re-prepares the same unit (version keys are uuid-addressed, so the
    // rewrite is idempotent).
    const auto cowritten = std::views::keys(txn->write_buffer);
    const size_t value_base_bytes =
        record_detail::kRecordHeaderBytes + EncodedStringVectorBytes(cowritten) + 4;
    SmallVector<WriteOp, 8> ops;
    ops.reserve(txn->dirty.size());
    for (const auto& [key, payload] : txn->write_buffer) {
      if (!txn->dirty.contains(key)) {
        continue;
      }
      BinaryWriter w;
      w.Reserve(value_base_bytes + payload.size());
      EncodeVersionedValueFields(w, commit_id, cowritten, payload);
      ops.push_back(WriteOp{VersionStorageKey(key, txn->uuid), std::move(w).TakeData()});
    }
    std::vector<std::string> write_set_keys;
    write_set_keys.reserve(txn->write_buffer.size());
    for (const auto& [key, payload] : txn->write_buffer) {
      write_set_keys.push_back(key);
    }
    auto record = std::allocate_shared<const CommitRecord>(
        record_alloc_, CommitRecord{commit_id, std::move(write_set_keys), 0, {}});
    CommitBatcher::Pending pending;
    pending.data_ops = std::span<WriteOp>(ops.data(), ops.size());
    pending.commit_record = WriteOp{CommitStorageKey(commit_id), record->Serialize()};
    pending.record = record;
    pending.trace = txn->trace;

    Status committed;
    {
      // The round — data flush, §3.3 barrier, record write, possibly fused
      // with batch-mates — runs outside the transaction lock so committers
      // prepared on other threads can join it and the leader can publish.
      // While unlocked the transaction sits in kCommitting, which rejects
      // every concurrent mutation of it.
      obs::TraceSpan round_span(txn->trace, "CommitRound", node_id_);
      lock.Unlock();
      committed = batcher_.Commit(pending);
      lock.Lock();
    }
    if (!committed.ok()) {
      txn->status = TxnStatus::kRunning;  // Buffer and dirty set intact; retry or abort.
      return committed;
    }

    // Step 3: local visibility. The round leader's publisher already staged
    // the record (and trace) for broadcast.
    txn->dirty.clear();
    if (commits_.Add(record)) {
      index_.AddCommit(*record);
    }
    for (const auto& [key, payload] : txn->write_buffer) {
      data_cache_.Put(VersionStorageKey(key, txid), payload);
    }
    commits_.NoteLocalCommit(commit_id);
    txn->status = TxnStatus::kCommitted;
    UnpinReads(*txn);
    txn->reads_from.clear();
    lock.Unlock();

    FinishCommittedTransaction(txid, commit_id);
    return commit_id;
  }

  if (MaybeCrash(CrashPoint::kBeforeDataWrite)) {
    return Status::Unavailable("node crashed");
  }

  // Write-ordering protocol step 1 (§3.3): persist ALL of the transaction's
  // key versions — dispatched in parallel by the engine (batched where it
  // has a batch API, concurrent per-key PUTs where it does not). BatchPut
  // returns only after every write has completed (the IoExecutor's per-call
  // latch, never the pool's drain), so a non-OK status here means the commit
  // record must not be written: stray versions that did land are invisible
  // orphans the sweep reaps.
  Status flushed;
  {
    obs::TraceSpan flush_span(txn->trace, "CommitFlush", node_id_);
    if (attrib) {
      // Same decomposition CommitUnits applies on the batched path: flush
      // wall minus the executor's completion-latch wait is data_flush, the
      // latch wait itself is the §3.3 barrier (stragglers only).
      IoExecutor::ConsumeLatchWaitNanos();
      const auto flush_start = StageClock::now();
      flushed = FlushVersions(*txn, commit_id, /*final_flush=*/true);
      const double flush_wall_s = StageSecondsSince(flush_start);
      const double barrier_s =
          static_cast<double>(IoExecutor::ConsumeLatchWaitNanos()) * 1e-9;
      metrics_.stages.data_flush->Observe(flush_wall_s - barrier_s);
      metrics_.stages.barrier->Observe(barrier_s);
    } else {
      flushed = FlushVersions(*txn, commit_id, /*final_flush=*/true);
    }
  }
  if (!flushed.ok()) {
    txn->status = TxnStatus::kRunning;  // Let the client retry or abort.
    return flushed;
  }

  if (MaybeCrash(CrashPoint::kAfterDataWrite)) {
    // Data is durable but the commit record is not: the transaction is NOT
    // committed; its versions are invisible orphans the GC will reap.
    return Status::Unavailable("node crashed");
  }

  // Step 2: persist the commit record to the Transaction Commit Set. Only
  // now does the transaction become visible.
  std::vector<std::string> write_set_keys;
  write_set_keys.reserve(txn->write_buffer.size());
  for (const auto& [key, payload] : txn->write_buffer) {
    write_set_keys.push_back(key);
  }
  // allocate_shared puts the record and its control block in one pooled
  // block; the allocator (and thus the pool) lives inside the control block,
  // so records released on gossip / fault-manager threads free safely.
  auto record = std::allocate_shared<const CommitRecord>(
      record_alloc_,
      CommitRecord{commit_id, std::move(write_set_keys),
                   options_.packed_layout ? txn->next_segment_index : 0,
                   options_.packed_layout ? txn->packed_locators : std::vector<VersionLocator>{}});
  Status committed;
  {
    obs::TraceSpan record_span(txn->trace, "CommitRecordWrite", node_id_);
    const auto record_start = attrib ? StageClock::now() : StageClock::time_point{};
    committed = storage_.Put(CommitStorageKey(commit_id), record->Serialize());
    if (attrib) {
      metrics_.stages.record_write->Observe(StageSecondsSince(record_start));
    }
  }
  if (!committed.ok()) {
    txn->status = TxnStatus::kRunning;
    return committed;
  }

  if (MaybeCrash(CrashPoint::kAfterCommitWrite)) {
    // The commit record is durable, so the transaction IS committed even
    // though this node dies before acknowledging: the fault manager's
    // commit-set scan will surface it to the surviving nodes (§4.2).
    return Status::Unavailable("node crashed");
  }

  // Step 3: update local caches and make the data visible locally.
  if (commits_.Add(record)) {
    index_.AddCommit(*record);
  }
  for (const auto& [key, payload] : txn->write_buffer) {
    data_cache_.Put(VersionStorageKey(key, txid), payload);
  }
  commits_.NoteLocalCommit(commit_id);
  {
    const auto publish_start = attrib ? StageClock::now() : StageClock::time_point{};
    {
      MutexLock block(broadcast_mu_);
      pending_broadcast_.push_back(record);
      pending_broadcast_traces_.push_back(txn->trace);
    }
    if (attrib) {
      metrics_.stages.gossip_publish->Observe(StageSecondsSince(publish_start));
    }
  }
  txn->status = TxnStatus::kCommitted;
  UnpinReads(*txn);
  txn->reads_from.clear();
  lock.Unlock();

  FinishCommittedTransaction(txid, commit_id);
  return commit_id;
}

void AftNode::FinishCommittedTransaction(const Uuid& txid, const TxnId& commit_id) {
  {
    MutexLock lock(committed_mu_);
    committed_uuids_[txid] = commit_id;
    committed_order_.push_back(txid);
    if (committed_order_.size() > options_.committed_uuid_memory) {
      committed_uuids_.erase(committed_order_[committed_next_evict_]);
      ++committed_next_evict_;
      if (committed_next_evict_ > options_.committed_uuid_memory) {
        committed_order_.erase(committed_order_.begin(),
                               committed_order_.begin() +
                                   static_cast<long>(committed_next_evict_));
        committed_next_evict_ = 0;
      }
    }
  }
  {
    MutexLock lock(txns_mu_);
    txns_.erase(txid);
  }
  metrics_.txns_committed->Increment();
}

void AftNode::PublishCommittedRound(std::span<CommitBatcher::Pending* const> committed) {
  {
    MutexLock lock(broadcast_mu_);
    for (CommitBatcher::Pending* member : committed) {
      pending_broadcast_.push_back(member->record);
      pending_broadcast_traces_.push_back(member->trace);
    }
  }
  // One nudge for the whole round: the gossip bus runs a single coalesced
  // broadcast covering every member.
  if (has_batch_listener_.load(std::memory_order_acquire)) {
    batch_listener_();
  }
}

void AftNode::SetCommitBatchListener(std::function<void()> listener) {
  batch_listener_ = std::move(listener);
  has_batch_listener_.store(static_cast<bool>(batch_listener_), std::memory_order_release);
}

void AftNode::DrainRecentCommits(std::vector<CommitRecordPtr>* pruned,
                                 std::vector<CommitRecordPtr>* unpruned,
                                 obs::TraceContext* trace) {
  std::vector<CommitRecordPtr> drained;
  std::vector<obs::TraceContext> traces;
  {
    MutexLock lock(broadcast_mu_);
    drained.swap(pending_broadcast_);
    traces.swap(pending_broadcast_traces_);
  }
  if (trace != nullptr) {
    for (const obs::TraceContext& t : traces) {
      if (t.sampled()) {
        *trace = t;
        break;
      }
    }
  }
  if (unpruned != nullptr) {
    unpruned->insert(unpruned->end(), drained.begin(), drained.end());
  }
  if (pruned != nullptr) {
    // §4.1: locally superseded transactions are omitted from the multicast.
    for (auto& record : drained) {
      if (!IsTransactionSuperseded(*record, index_)) {
        pruned->push_back(std::move(record));
      }
    }
  }
}

void AftNode::ApplyRemoteCommits(const std::vector<CommitRecordPtr>& records) {
  if (!alive()) {
    return;
  }
  std::optional<LogScope> log_scope;
  if (internal::LogEnabled(LogLevel::kDebug)) {
    log_scope.emplace("node=" + node_id_);
  }
  for (const auto& record : records) {
    if (commits_.Contains(record->id)) {
      continue;
    }
    // §4.1: a received transaction already superseded by local state is not
    // merged into the metadata cache.
    if (IsTransactionSuperseded(*record, index_)) {
      metrics_.remote_commits_skipped_superseded->Increment();
      continue;
    }
    if (commits_.Add(record)) {
      index_.AddCommit(*record);
      metrics_.remote_commits_applied->Increment();
    }
  }
}

bool AftNode::AnyRunningTransactionReadsFrom(const TxnId& id) {
  return read_pins_.IsPinned(id);
}

void AftNode::UnpinReads(const TransactionState& txn) {
  for (const TxnId& id : txn.reads_from) {
    read_pins_.Unpin(id);
  }
}

size_t AftNode::RunLocalGcOnce() {
  if (!alive()) {
    return 0;
  }
  // §5.1: remove a committed transaction's metadata when (a) it is
  // superseded and (b) no currently-executing transaction has read from its
  // write set. Oldest transactions are collected first, which mitigates the
  // missing-versions pitfall of §5.2.1.
  std::vector<CommitRecordPtr> snapshot = commits_.Snapshot();
  std::sort(snapshot.begin(), snapshot.end(),
            [](const CommitRecordPtr& a, const CommitRecordPtr& b) { return a->id < b->id; });
  // Records still pending broadcast must reach the bus / fault manager first.
  std::unordered_set<TxnId> pending;
  {
    MutexLock lock(broadcast_mu_);
    for (const auto& record : pending_broadcast_) {
      pending.insert(record->id);
    }
  }
  size_t removed = 0;
  for (const auto& record : snapshot) {
    if (removed >= options_.local_gc_max_per_sweep) {
      break;
    }
    if (pending.contains(record->id)) {
      continue;
    }
    if (!IsTransactionSuperseded(*record, index_)) {
      continue;
    }
    if (AnyRunningTransactionReadsFrom(record->id)) {
      continue;
    }
    // Remove from the index first so Algorithm 1 stops offering these
    // versions, then drop the record and evict cached data.
    index_.RemoveCommit(*record);
    commits_.Remove(record->id);
    for (const std::string& key : record->write_set) {
      data_cache_.Erase(VersionStorageKey(key, record->id.uuid));
    }
    ++removed;
  }
  metrics_.gc_records_removed->Increment(removed);
  return removed;
}

AftNodeStats AftNode::stats() const {
  AftNodeStats s;
  s.txns_started.value = metrics_.txns_started->Value() - baseline_.txns_started.value;
  s.txns_committed.value = metrics_.txns_committed->Value() - baseline_.txns_committed.value;
  s.txns_aborted.value = metrics_.txns_aborted->Value() - baseline_.txns_aborted.value;
  s.reads.value = metrics_.reads->Value() - baseline_.reads.value;
  s.writes.value = metrics_.writes->Value() - baseline_.writes.value;
  s.null_reads.value = metrics_.null_reads->Value() - baseline_.null_reads.value;
  s.read_aborts.value = metrics_.read_aborts->Value() - baseline_.read_aborts.value;
  s.spills.value = metrics_.spills->Value() - baseline_.spills.value;
  s.gc_records_removed.value =
      metrics_.gc_records_removed->Value() - baseline_.gc_records_removed.value;
  s.remote_commits_applied.value =
      metrics_.remote_commits_applied->Value() - baseline_.remote_commits_applied.value;
  s.remote_commits_skipped_superseded.value =
      metrics_.remote_commits_skipped_superseded->Value() -
      baseline_.remote_commits_skipped_superseded.value;
  return s;
}

bool AftNode::HasLocallyDeleted(const TxnId& id) const {
  return commits_.HasLocallyDeleted(id);
}

void AftNode::AcknowledgeGlobalDelete(const TxnId& id) { commits_.ForgetLocallyDeleted(id); }

bool AftNode::CanGloballyDelete(const TxnId& id) {
  if (!alive()) {
    // A dead node serves no reads; it cannot block deletion.
    return true;
  }
  return !commits_.Contains(id) && !AnyRunningTransactionReadsFrom(id);
}

size_t AftNode::RunningTransactionCount() const {
  MutexLock lock(txns_mu_);
  return txns_.size();
}

size_t AftNode::SweepTimedOutTransactions() {
  const TimePoint now = clock_.Now();
  std::vector<Uuid> expired;
  {
    MutexLock lock(txns_mu_);
    for (const auto& [uuid, txn] : txns_) {
      if (now - txn->start_time > options_.txn_timeout) {
        expired.push_back(uuid);
      }
    }
  }
  size_t aborted = 0;
  for (const Uuid& uuid : expired) {
    if (AbortTransaction(uuid).ok()) {
      ++aborted;
    }
  }
  return aborted;
}

void AftNode::BackgroundLoop() {
  while (!stop_background_.load()) {
    clock_.SleepFor(options_.local_gc_interval);
    if (stop_background_.load() || !alive()) {
      return;
    }
    RunLocalGcOnce();
    SweepTimedOutTransactions();
  }
}

}  // namespace aft
