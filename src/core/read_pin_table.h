// Reference counts of committed transactions currently being read by running
// transactions. The garbage collectors (§5.1, §5.2) must not drop a
// transaction's metadata/data while some running transaction has read from
// its write set; scanning every running transaction per GC candidate would
// serialize against in-flight storage IO, so the node maintains this O(1)
// side table instead: pinned on a transaction's first read of a version,
// unpinned when the reading transaction commits or aborts.

#ifndef SRC_CORE_READ_PIN_TABLE_H_
#define SRC_CORE_READ_PIN_TABLE_H_

#include <unordered_map>

#include "src/common/mutex.h"
#include "src/core/txn_id.h"

namespace aft {

class ReadPinTable {
 public:
  ReadPinTable() = default;

  void Pin(const TxnId& id) {
    MutexLock lock(mu_);
    ++pins_[id];
  }

  void Unpin(const TxnId& id) {
    MutexLock lock(mu_);
    auto it = pins_.find(id);
    if (it == pins_.end()) {
      return;
    }
    if (--it->second <= 0) {
      pins_.erase(it);
    }
  }

  bool IsPinned(const TxnId& id) const {
    MutexLock lock(mu_);
    return pins_.contains(id);
  }

  size_t size() const {
    MutexLock lock(mu_);
    return pins_.size();
  }

 private:
  mutable Mutex mu_;
  std::unordered_map<TxnId, int> pins_ GUARDED_BY(mu_);
};

}  // namespace aft

#endif  // SRC_CORE_READ_PIN_TABLE_H_
