// In-memory index from each key to the recently committed versions of that
// key (§3.1). Backs Algorithm 1's candidate enumeration and Algorithm 2's
// latest-version lookups. Thread-safe; read-mostly (shared_mutex).

#ifndef SRC_CORE_KEY_VERSION_INDEX_H_
#define SRC_CORE_KEY_VERSION_INDEX_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/interner.h"
#include "src/common/mutex.h"
#include "src/common/pool_allocator.h"
#include "src/common/small_vector.h"
#include "src/core/records.h"
#include "src/core/txn_id.h"

namespace aft {

class KeyVersionIndex {
 public:
  KeyVersionIndex() = default;

  // Registers every key version written by the committed transaction.
  void AddCommit(const CommitRecord& record);

  // Removes the transaction's versions (local metadata GC, §5.1).
  void RemoveCommit(const CommitRecord& record);

  // The newest committed version of `key`, or Null() if none is known.
  TxnId LatestVersion(const std::string& key) const;

  // All known versions of `key` with ID >= `lower`, newest first — the
  // candidate list of Algorithm 1 line 11.
  std::vector<TxnId> CandidatesAtLeast(const std::string& key, const TxnId& lower) const;

  // True if `id` is still indexed for `key`.
  bool Contains(const std::string& key, const TxnId& id) const;

  size_t TotalVersionCount() const;
  size_t KeyCount() const;

 private:
  // Version lists are kept sorted ascending by TxnId. Commit timestamps are
  // (mostly) monotone, so AddCommit is an amortized push_back; readers walk
  // from the upper end for the newest-first candidate order. Up to four
  // versions live inline in the map node — the common steady-state depth
  // once GC is running.
  using VersionList = SmallVector<TxnId, 4>;
  using VersionMap =
      std::unordered_map<std::string_view, VersionList, std::hash<std::string_view>,
                         std::equal_to<std::string_view>,
                         PoolAllocator<std::pair<const std::string_view, VersionList>>>;

  mutable SharedMutex mu_;
  // Hot key names are interned once; every commit of the same key after the
  // first allocates nothing for the map key. The interner only grows (its
  // size is bounded by the workload's distinct key names), so views stay
  // valid across RemoveCommit/AddCommit churn.
  KeyInterner interner_ GUARDED_BY(mu_);
  VersionMap versions_ GUARDED_BY(mu_);
};

}  // namespace aft

#endif  // SRC_CORE_KEY_VERSION_INDEX_H_
