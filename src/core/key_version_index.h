// In-memory index from each key to the recently committed versions of that
// key (§3.1). Backs Algorithm 1's candidate enumeration and Algorithm 2's
// latest-version lookups. Thread-safe; read-mostly (shared_mutex).

#ifndef SRC_CORE_KEY_VERSION_INDEX_H_
#define SRC_CORE_KEY_VERSION_INDEX_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/core/records.h"
#include "src/core/txn_id.h"

namespace aft {

class KeyVersionIndex {
 public:
  KeyVersionIndex() = default;

  // Registers every key version written by the committed transaction.
  void AddCommit(const CommitRecord& record);

  // Removes the transaction's versions (local metadata GC, §5.1).
  void RemoveCommit(const CommitRecord& record);

  // The newest committed version of `key`, or Null() if none is known.
  TxnId LatestVersion(const std::string& key) const;

  // All known versions of `key` with ID >= `lower`, newest first — the
  // candidate list of Algorithm 1 line 11.
  std::vector<TxnId> CandidatesAtLeast(const std::string& key, const TxnId& lower) const;

  // True if `id` is still indexed for `key`.
  bool Contains(const std::string& key, const TxnId& id) const;

  size_t TotalVersionCount() const;
  size_t KeyCount() const;

 private:
  mutable SharedMutex mu_;
  std::unordered_map<std::string, std::set<TxnId>> versions_ GUARDED_BY(mu_);
};

}  // namespace aft

#endif  // SRC_CORE_KEY_VERSION_INDEX_H_
