// Node-local data cache (§3.1, evaluated in §6.2).
//
// Caches the *payloads* of a subset of the key versions present in the
// metadata cache, keyed by version storage key. Since key versions are
// immutable (AFT never overwrites), cache entries can never be stale — the
// only policy question is eviction, which is LRU by byte budget.

#ifndef SRC_CORE_DATA_CACHE_H_
#define SRC_CORE_DATA_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/mutex.h"
#include "src/common/pool_allocator.h"

namespace aft {

class DataCache {
 public:
  // `capacity_bytes` == 0 disables caching entirely.
  explicit DataCache(uint64_t capacity_bytes);

  // Returns the cached payload and refreshes recency.
  std::optional<std::string> Get(const std::string& version_key);

  // Inserts (or refreshes) an entry, evicting LRU entries over budget.
  // Both parameters move into the cache (the commit path hands over its
  // exact-sized version key instead of having the cache copy it).
  void Put(std::string version_key, std::string payload);

  // Drops an entry (used when GC deletes the underlying version).
  void Erase(const std::string& version_key);

  bool enabled() const { return capacity_bytes_ > 0; }
  uint64_t size_bytes() const;
  size_t entry_count() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::string key;
    std::string payload;
  };
  // List and index nodes recycle through pools; the index keys are views
  // aliasing Entry::key (list nodes are address-stable, and splice never
  // moves them), so each cached version stores its key exactly once.
  using LruList = std::list<Entry, PoolAllocator<Entry>>;
  using Index =
      std::unordered_map<std::string_view, LruList::iterator, std::hash<std::string_view>,
                         std::equal_to<std::string_view>,
                         PoolAllocator<std::pair<const std::string_view, LruList::iterator>>>;

  void EvictOverBudgetLocked() REQUIRES(mu_);

  const uint64_t capacity_bytes_;
  mutable Mutex mu_;
  LruList lru_ GUARDED_BY(mu_);  // Front == most recently used.
  Index index_ GUARDED_BY(mu_);
  uint64_t used_bytes_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace aft

#endif  // SRC_CORE_DATA_CACHE_H_
