#include "src/core/read_algorithm.h"

#include <algorithm>

namespace aft {

AtomicReadChoice SelectAtomicReadVersion(
    const std::string& key, const std::unordered_map<std::string, ReadSetEntry>& read_set,
    const KeyVersionIndex& index, const CommitSetCache& commits) {
  // Lines 1-5: compute the transaction-ID lower bound from prior reads whose
  // cowritten sets include `key`.
  TxnId lower = TxnId::Null();
  for (const auto& [read_key, entry] : read_set) {
    if (entry.record == nullptr) {
      continue;
    }
    const auto& cowritten = entry.record->write_set;
    if (std::find(cowritten.begin(), cowritten.end(), key) != cowritten.end()) {
      lower = std::max(lower, entry.version);
    }
  }

  // Lines 6-9: if we know of no version at all and nothing constrains us,
  // the read observes the NULL version.
  const TxnId latest = index.LatestVersion(key);
  if (latest.IsNull() && lower.IsNull()) {
    return AtomicReadChoice{AtomicReadChoice::Kind::kNullVersion, TxnId::Null(), nullptr};
  }

  // Line 11: candidate versions of `key` at least as new as `lower`,
  // newest first.
  const std::vector<TxnId> candidates = index.CandidatesAtLeast(key, lower);

  // Lines 12-21: take the newest candidate that does not conflict with R.
  uint32_t examined = 0;
  for (const TxnId& t : candidates) {
    ++examined;
    CommitRecordPtr record = commits.Lookup(t);
    if (record == nullptr) {
      // Metadata GC'd between the index snapshot and now; we cannot check
      // its cowrites, so skip it (reads get staler, never incorrect).
      continue;
    }
    bool valid = true;
    for (const std::string& cowritten_key : record->write_set) {
      auto it = read_set.find(cowritten_key);
      if (it != read_set.end() && it->second.version < t) {
        // We already read an older version of a key T_t cowrote; returning
        // k_t would mean we should have returned l_t earlier (case 2).
        valid = false;
        break;
      }
    }
    if (valid) {
      return AtomicReadChoice{AtomicReadChoice::Kind::kVersion, t, std::move(record), examined};
    }
  }

  // Lines 22-23: no valid version. If R places no lower bound on `key`, the
  // NULL version is still consistent (a snapshot from before `key` existed);
  // otherwise the transaction cannot proceed.
  if (lower.IsNull()) {
    return AtomicReadChoice{AtomicReadChoice::Kind::kNullVersion, TxnId::Null(), nullptr,
                            examined};
  }
  return AtomicReadChoice{AtomicReadChoice::Kind::kNoValidVersion, TxnId::Null(), nullptr,
                          examined};
}

std::vector<AtomicReadChoice> PlanAtomicMultiRead(
    std::span<const std::string> keys,
    const std::unordered_map<std::string, ReadSetEntry>& read_set,
    const KeyVersionIndex& index, const CommitSetCache& commits) {
  std::vector<AtomicReadChoice> choices;
  choices.reserve(keys.size());
  std::unordered_map<std::string, ReadSetEntry> working = read_set;
  for (const std::string& key : keys) {
    AtomicReadChoice choice = SelectAtomicReadVersion(key, working, index, commits);
    if (choice.kind == AtomicReadChoice::Kind::kVersion) {
      working[key] = ReadSetEntry{choice.version, choice.record};
    }
    choices.push_back(std::move(choice));
  }
  return choices;
}

bool IsTransactionSuperseded(const CommitRecord& record, const KeyVersionIndex& index) {
  for (const std::string& key : record.write_set) {
    if (index.LatestVersion(key) <= record.id) {
      return false;
    }
  }
  return true;
}

}  // namespace aft
