#include "src/core/data_cache.h"

namespace aft {

DataCache::DataCache(uint64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

std::optional<std::string> DataCache::Get(const std::string& version_key) {
  if (!enabled()) {
    return std::nullopt;
  }
  MutexLock lock(mu_);
  auto it = index_.find(version_key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Move to front (most recently used).
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->payload;
}

void DataCache::Put(std::string version_key, std::string payload) {
  if (!enabled() || payload.size() > capacity_bytes_) {
    return;
  }
  MutexLock lock(mu_);
  auto it = index_.find(std::string_view(version_key));
  if (it != index_.end()) {
    used_bytes_ -= it->second->payload.size();
    it->second->payload = std::move(payload);
    used_bytes_ += it->second->payload.size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{std::move(version_key), std::move(payload)});
    index_.emplace(std::string_view(lru_.front().key), lru_.begin());
    used_bytes_ += lru_.front().payload.size();
  }
  EvictOverBudgetLocked();
}

void DataCache::Erase(const std::string& version_key) {
  if (!enabled()) {
    return;
  }
  MutexLock lock(mu_);
  auto it = index_.find(std::string_view(version_key));
  if (it == index_.end()) {
    return;
  }
  const auto victim = it->second;
  used_bytes_ -= victim->payload.size();
  // Drop the index entry before the list node its key view aliases.
  index_.erase(it);
  lru_.erase(victim);
}

void DataCache::EvictOverBudgetLocked() {
  while (used_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.payload.size();
    index_.erase(std::string_view(victim.key));
    lru_.pop_back();
  }
}

uint64_t DataCache::size_bytes() const {
  MutexLock lock(mu_);
  return used_bytes_;
}

size_t DataCache::entry_count() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace aft
