#include "src/core/key_version_index.h"

#include <algorithm>

namespace aft {

void KeyVersionIndex::AddCommit(const CommitRecord& record) {
  WriterMutexLock lock(mu_);
  for (const std::string& key : record.write_set) {
    VersionList& list = versions_[interner_.Intern(key)];
    if (list.empty() || list.back() < record.id) {
      list.push_back(record.id);  // Common case: commit IDs arrive in order.
      continue;
    }
    auto it = std::lower_bound(list.begin(), list.end(), record.id);
    if (it != list.end() && *it == record.id) {
      continue;  // Idempotent re-add (gossip duplicates).
    }
    list.insert(it, record.id);
  }
}

void KeyVersionIndex::RemoveCommit(const CommitRecord& record) {
  WriterMutexLock lock(mu_);
  for (const std::string& key : record.write_set) {
    auto it = versions_.find(std::string_view(key));
    if (it == versions_.end()) {
      continue;
    }
    auto pos = std::lower_bound(it->second.begin(), it->second.end(), record.id);
    if (pos != it->second.end() && *pos == record.id) {
      it->second.erase(pos);
    }
    if (it->second.empty()) {
      // The interned key string stays behind (bounded by distinct key names);
      // a later re-add of this key reuses it without allocating.
      versions_.erase(it);
    }
  }
}

TxnId KeyVersionIndex::LatestVersion(const std::string& key) const {
  ReaderMutexLock lock(mu_);
  auto it = versions_.find(std::string_view(key));
  if (it == versions_.end() || it->second.empty()) {
    return TxnId::Null();
  }
  return it->second.back();
}

std::vector<TxnId> KeyVersionIndex::CandidatesAtLeast(const std::string& key,
                                                      const TxnId& lower) const {
  ReaderMutexLock lock(mu_);
  std::vector<TxnId> out;
  auto it = versions_.find(std::string_view(key));
  if (it == versions_.end()) {
    return out;
  }
  // Newest first (Algorithm 1 iterates in reverse timestamp order); the list
  // is sorted ascending, so walk down from the upper end.
  const VersionList& list = it->second;
  for (size_t i = list.size(); i-- > 0;) {
    if (!lower.IsNull() && list[i] < lower) {
      break;
    }
    out.push_back(list[i]);
  }
  return out;
}

bool KeyVersionIndex::Contains(const std::string& key, const TxnId& id) const {
  ReaderMutexLock lock(mu_);
  auto it = versions_.find(std::string_view(key));
  return it != versions_.end() && std::binary_search(it->second.begin(), it->second.end(), id);
}

size_t KeyVersionIndex::TotalVersionCount() const {
  ReaderMutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [key, list] : versions_) {
    total += list.size();
  }
  return total;
}

size_t KeyVersionIndex::KeyCount() const {
  ReaderMutexLock lock(mu_);
  return versions_.size();
}

}  // namespace aft
