#include "src/core/key_version_index.h"


namespace aft {

void KeyVersionIndex::AddCommit(const CommitRecord& record) {
  WriterMutexLock lock(mu_);
  for (const std::string& key : record.write_set) {
    versions_[key].insert(record.id);
  }
}

void KeyVersionIndex::RemoveCommit(const CommitRecord& record) {
  WriterMutexLock lock(mu_);
  for (const std::string& key : record.write_set) {
    auto it = versions_.find(key);
    if (it == versions_.end()) {
      continue;
    }
    it->second.erase(record.id);
    if (it->second.empty()) {
      versions_.erase(it);
    }
  }
}

TxnId KeyVersionIndex::LatestVersion(const std::string& key) const {
  ReaderMutexLock lock(mu_);
  auto it = versions_.find(key);
  if (it == versions_.end() || it->second.empty()) {
    return TxnId::Null();
  }
  return *it->second.rbegin();
}

std::vector<TxnId> KeyVersionIndex::CandidatesAtLeast(const std::string& key,
                                                      const TxnId& lower) const {
  ReaderMutexLock lock(mu_);
  std::vector<TxnId> out;
  auto it = versions_.find(key);
  if (it == versions_.end()) {
    return out;
  }
  // Newest first (Algorithm 1 iterates in reverse timestamp order).
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (!lower.IsNull() && *rit < lower) {
      break;
    }
    out.push_back(*rit);
  }
  return out;
}

bool KeyVersionIndex::Contains(const std::string& key, const TxnId& id) const {
  ReaderMutexLock lock(mu_);
  auto it = versions_.find(key);
  return it != versions_.end() && it->second.contains(id);
}

size_t KeyVersionIndex::TotalVersionCount() const {
  ReaderMutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [key, set] : versions_) {
    total += set.size();
  }
  return total;
}

size_t KeyVersionIndex::KeyCount() const {
  ReaderMutexLock lock(mu_);
  return versions_.size();
}

}  // namespace aft
