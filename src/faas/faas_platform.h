// Simulated Functions-as-a-Service platform (the compute layer AFT sits
// under — AWS Lambda in the paper's evaluation).
//
// What the evaluation depends on and what is modelled here:
//  * per-invocation overhead (scheduling + dispatch of a warm function) and
//    optional cold starts;
//  * a platform-wide concurrent-execution limit — the cause of the Figure 8
//    throughput plateau at 640 clients;
//  * retry-based fault tolerance: failed functions are re-invoked, giving
//    at-least-once execution (§1, §3.3.1) — idempotence must come from the
//    application/AFT, not the platform;
//  * linear composition: one logical request spans several functions, each
//    potentially on a different machine, sharing only the values the
//    application passes along (for AFT workloads: the transaction session).

#ifndef SRC_FAAS_FAAS_PLATFORM_H_
#define SRC_FAAS_FAAS_PLATFORM_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/latency.h"
#include "src/common/mutex.h"
#include "src/common/status.h"

namespace aft {

struct FaasOptions {
  // Warm-invocation dispatch overhead per function (trigger + scheduling +
  // runtime entry; calibrated against the paper's end-to-end numbers).
  LatencyModel invocation_overhead = LatencyModel(16.0, 0.28, 7.0);
  // Cold starts: probability and cost. Zero by default so latency benches
  // are stable; the fault-tolerance bench turns them on.
  double cold_start_probability = 0.0;
  LatencyModel cold_start = LatencyModel(180.0, 0.4, 80.0);

  // Concurrent execution limit across the whole platform (AWS Lambda's
  // account-level cap). Invocations beyond it queue.
  size_t concurrency_limit = 1000;

  // Infrastructure-failure injection: probability that any single function
  // execution crashes (before completing) and must be retried.
  double crash_probability = 0.0;

  // Retry policy for crashed functions (at-least-once execution).
  int max_retries = 3;
  Duration retry_backoff = Millis(20);
};

struct FaasStats {
  std::atomic<uint64_t> invocations{0};
  std::atomic<uint64_t> crashes_injected{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> cold_starts{0};
  std::atomic<uint64_t> exhausted_retries{0};
};

// A function body. Invoked with the (0-based) attempt number; returning a
// non-OK status of kind kUnavailable/kInternal/kTimeout counts as an
// infrastructure failure and is retried; anything else propagates to the
// chain's caller (e.g. kAborted from an AFT read).
using FaasFunction = std::function<Status(int attempt)>;

class FaasPlatform {
 public:
  FaasPlatform(Clock& clock, FaasOptions options = {});

  // Synchronously executes a linear composition of functions as one logical
  // request. Each function acquires a concurrency slot, pays invocation
  // overhead, runs, and may be retried on (injected or returned)
  // infrastructure failures. Stops at the first non-retryable error.
  Status InvokeChain(const std::vector<FaasFunction>& functions);

  // Convenience for a single function.
  Status Invoke(const FaasFunction& function) { return InvokeChain({function}); }

  const FaasStats& stats() const { return stats_; }
  size_t in_flight() const { return in_flight_.load(); }

 private:
  Status InvokeOne(const FaasFunction& function);
  void AcquireSlot();
  void ReleaseSlot();

  Clock& clock_;
  const FaasOptions options_;

  Mutex slots_mu_;
  CondVar slots_cv_;
  size_t used_slots_ GUARDED_BY(slots_mu_) = 0;
  std::atomic<size_t> in_flight_{0};

  FaasStats stats_;
};

}  // namespace aft

#endif  // SRC_FAAS_FAAS_PLATFORM_H_
