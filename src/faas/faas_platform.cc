#include "src/faas/faas_platform.h"

#include "src/storage/sim_engine_base.h"

namespace aft {
namespace {

bool IsInfrastructureFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
    case StatusCode::kTimeout:
      return true;
    default:
      return false;
  }
}

}  // namespace

FaasPlatform::FaasPlatform(Clock& clock, FaasOptions options)
    : clock_(clock), options_(options) {}

void FaasPlatform::AcquireSlot() {
  MutexLock lock(slots_mu_);
  while (used_slots_ >= options_.concurrency_limit) {
    slots_cv_.Wait(lock);
  }
  ++used_slots_;
  in_flight_.fetch_add(1, std::memory_order_relaxed);
}

void FaasPlatform::ReleaseSlot() {
  {
    MutexLock lock(slots_mu_);
    --used_slots_;
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  slots_cv_.NotifyOne();
}

Status FaasPlatform::InvokeOne(const FaasFunction& function) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      stats_.retries.fetch_add(1, std::memory_order_relaxed);
      clock_.SleepFor(options_.retry_backoff);
    }
    AcquireSlot();
    stats_.invocations.fetch_add(1, std::memory_order_relaxed);
    Rng& rng = ThreadLocalRng();
    // Dispatch cost: warm start, or a cold start when a new container must
    // be provisioned for this execution.
    if (options_.cold_start_probability > 0 && rng.Bernoulli(options_.cold_start_probability)) {
      stats_.cold_starts.fetch_add(1, std::memory_order_relaxed);
      clock_.SleepFor(options_.cold_start.Sample(rng));
    } else {
      clock_.SleepFor(options_.invocation_overhead.Sample(rng));
    }
    // Injected crash: the function dies partway through. We model the crash
    // as happening BEFORE the body runs to completion — for AFT workloads
    // the interesting case (partial writes) lives inside the body itself,
    // which uses its own crash points.
    if (options_.crash_probability > 0 && rng.Bernoulli(options_.crash_probability)) {
      stats_.crashes_injected.fetch_add(1, std::memory_order_relaxed);
      ReleaseSlot();
      last = Status::Unavailable("function execution crashed");
      continue;
    }
    last = function(attempt);
    ReleaseSlot();
    if (!IsInfrastructureFailure(last)) {
      return last;
    }
  }
  stats_.exhausted_retries.fetch_add(1, std::memory_order_relaxed);
  return last;
}

Status FaasPlatform::InvokeChain(const std::vector<FaasFunction>& functions) {
  for (const FaasFunction& function : functions) {
    Status status = InvokeOne(function);
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

}  // namespace aft
