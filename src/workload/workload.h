// Workload generation for the paper's evaluation (§6).
//
// The canonical workload: each logical request (transaction) is a linear
// composition of F functions, each performing R reads and W writes of 4 KB
// objects, with keys drawn from a Zipf distribution over a fixed dataset.
// The default (F=2, R=2, W=1, 6 IOs, Zipf 1.0, 1,000 keys) is the §6.1.2
// configuration used throughout the paper.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/zipf.h"

namespace aft {

struct WorkloadSpec {
  uint64_t num_keys = 1000;
  double zipf_theta = 1.0;
  size_t value_bytes = 4096;
  size_t num_functions = 2;
  size_t reads_per_function = 2;
  size_t writes_per_function = 1;

  size_t TotalIos() const {
    return num_functions * (reads_per_function + writes_per_function);
  }
};

// "key000042" — stable names for Zipf ranks.
std::string KeyForRank(uint64_t rank);

// A deterministic filler payload of the spec's value size.
std::string MakePayload(const WorkloadSpec& spec, uint64_t salt);

// One planned operation and the full plan of a request. Plans are generated
// up front because the baselines need the request's write set at write time
// (for embedded cowritten metadata) — AFT itself needs no such declaration.
struct OpPlan {
  bool is_read = true;
  std::string key;
};

struct TxnPlan {
  // ops[f] = the operations of function f, reads first then writes.
  std::vector<std::vector<OpPlan>> functions;
  // Unique keys written anywhere in the request.
  std::vector<std::string> write_set;
};

class TxnPlanGenerator {
 public:
  explicit TxnPlanGenerator(const WorkloadSpec& spec)
      : spec_(spec), zipf_(spec.num_keys, spec.zipf_theta) {}

  // Thread-safe: all mutable state lives in the caller's RNG.
  TxnPlan Generate(Rng& rng) const;

  const WorkloadSpec& spec() const { return spec_; }

 private:
  const WorkloadSpec spec_;
  const ZipfSampler zipf_;
};

}  // namespace aft

#endif  // SRC_WORKLOAD_WORKLOAD_H_
