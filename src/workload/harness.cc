#include "src/workload/harness.h"

#include <cstdio>
#include <thread>
#include <vector>

namespace aft {

std::string HarnessResult::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "completed=%llu failed=%llu tput=%.1f txn/s p50=%.2fms p99=%.2fms "
                "ryw=%llu fr=%llu",
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(failed), throughput_tps, latency.median_ms,
                latency.p99_ms, static_cast<unsigned long long>(ryw_anomalies),
                static_cast<unsigned long long>(fr_anomalies));
  return std::string(buf);
}

HarnessResult RunClients(Clock& clock, RequestRunner& runner, const HarnessOptions& options,
                         ThroughputTimeline* timeline) {
  LatencyRecorder latency;
  AnomalyCounters anomalies;
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};

  const TimePoint start = clock.Now();
  if (timeline != nullptr) {
    timeline->Start();
  }

  auto client_loop = [&](size_t client_index) {
    Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + client_index + 1);
    for (size_t i = 0; i < options.requests_per_client; ++i) {
      if (options.max_duration > Duration::zero() &&
          clock.Now() - start >= options.max_duration) {
        return;
      }
      TxnLog log;
      const TimePoint begin = clock.Now();
      Status status = runner.RunOnce(rng, &log);
      const TimePoint end = clock.Now();
      if (!status.ok()) {
        failed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      latency.Record(end - begin);
      completed.fetch_add(1, std::memory_order_relaxed);
      if (timeline != nullptr) {
        timeline->RecordEvent();
      }
      if (options.check_anomalies) {
        anomalies.Accumulate(CheckTransaction(log));
      }
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(options.num_clients);
  for (size_t c = 0; c < options.num_clients; ++c) {
    clients.emplace_back(client_loop, c);
  }
  for (auto& t : clients) {
    t.join();
  }

  HarnessResult result;
  result.latency = latency.Summarize();
  result.completed = completed.load();
  result.failed = failed.load();
  result.ryw_anomalies = anomalies.ryw_anomalies.load();
  result.fr_anomalies = anomalies.fr_anomalies.load();
  result.elapsed_sec = ToMillis(clock.Now() - start) / 1000.0;
  result.throughput_tps =
      result.elapsed_sec > 0 ? static_cast<double>(result.completed) / result.elapsed_sec : 0;
  return result;
}

}  // namespace aft
