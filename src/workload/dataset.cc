#include "src/workload/dataset.h"

#include "src/core/records.h"
#include "src/storage/sim_engine_base.h"

namespace aft {
namespace {

// Writes through DirectPut when the engine is one of ours.
void StoreDirect(StorageEngine& storage, const std::string& key, const std::string& value) {
  if (auto* sim = dynamic_cast<SimEngineBase*>(&storage); sim != nullptr) {
    sim->DirectPut(key, value);
  } else {
    (void)storage.Put(key, value);
  }
}

}  // namespace

Status LoadAftDataset(StorageEngine& storage, const WorkloadSpec& spec) {
  Rng rng(0xDA7A5EEDULL);
  for (uint64_t rank = 0; rank < spec.num_keys; ++rank) {
    const std::string key = KeyForRank(rank);
    const TxnId writer(1, Uuid::Random(rng));
    const std::vector<std::string> write_set{key};
    VersionedValue value{writer, write_set, MakePayload(spec, rank)};
    StoreDirect(storage, VersionStorageKey(key, writer.uuid), value.Serialize());
    CommitRecord record{writer, write_set};
    StoreDirect(storage, CommitStorageKey(writer), record.Serialize());
  }
  return Status::Ok();
}

Status LoadPlainDataset(StorageEngine& storage, const WorkloadSpec& spec) {
  Rng rng(0xDA7A5EEDULL);
  for (uint64_t rank = 0; rank < spec.num_keys; ++rank) {
    const std::string key = KeyForRank(rank);
    const TxnId writer(1, Uuid::Random(rng));
    VersionedValue value{writer, {key}, MakePayload(spec, rank)};
    StoreDirect(storage, key, value.Serialize());
  }
  return Status::Ok();
}

}  // namespace aft
