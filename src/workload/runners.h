// Request runners: execute one logical request (a FaaS function chain) in
// each of the three system configurations the paper evaluates —
//
//  * AftRequestRunner      — functions talk to AFT (Table 1 API);
//  * PlainRequestRunner    — functions write straight to storage ("Plain");
//  * DynamoTxnRequestRunner— the DynamoDB transaction-mode adaptation.
//
// All runners return the transaction's observation log so the harness can
// audit anomalies uniformly (Table 2). Runners are thread-safe; per-request
// state lives on the caller's stack and in the caller's RNG.

#ifndef SRC_WORKLOAD_RUNNERS_H_
#define SRC_WORKLOAD_RUNNERS_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/baseline/anomaly_checker.h"
#include "src/baseline/dynamo_txn_client.h"
#include "src/baseline/plain_client.h"
#include "src/cluster/aft_client.h"
#include "src/faas/faas_platform.h"
#include "src/workload/workload.h"

namespace aft {

// Interface the harness drives.
class RequestRunner {
 public:
  virtual ~RequestRunner() = default;

  // Executes one logical request to completion (including any internal
  // retries); fills `log` with what was observed. Returns non-OK only when
  // the request ultimately failed. Datasets are pre-loaded separately
  // (src/workload/dataset.h).
  virtual Status RunOnce(Rng& rng, TxnLog* log) = 0;
};

struct RunnerRetryPolicy {
  // Whole-request retries (new transaction) after aborts / node failures.
  int max_request_retries = 16;
  Duration retry_backoff = Millis(10);
};

struct RunnerCounters {
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> request_retries{0};
  std::atomic<uint64_t> failures{0};
};

// ---- AFT --------------------------------------------------------------------
class AftRequestRunner : public RequestRunner {
 public:
  AftRequestRunner(FaasPlatform& faas, AftClient& client, Clock& clock,
                   const TxnPlanGenerator& plans, RunnerRetryPolicy retry = {});

  Status RunOnce(Rng& rng, TxnLog* log) override;

  // When true, each function ships its writes to the shim as one batched
  // request (the "Aft Batch" client of §6.1.1). Per-op by default.
  void set_batch_writes(bool batch) { batch_writes_ = batch; }

  const RunnerCounters& counters() const { return counters_; }

 private:
  Status RunAttempt(Rng& rng, TxnLog* log);

  FaasPlatform& faas_;
  AftClient& client_;
  Clock& clock_;
  const TxnPlanGenerator& plans_;
  const RunnerRetryPolicy retry_;
  bool batch_writes_ = false;
  RunnerCounters counters_;
};

// ---- Plain storage ------------------------------------------------------------
class PlainRequestRunner : public RequestRunner {
 public:
  PlainRequestRunner(FaasPlatform& faas, StorageEngine& storage, Clock& clock,
                     const TxnPlanGenerator& plans);

  Status RunOnce(Rng& rng, TxnLog* log) override;

  const RunnerCounters& counters() const { return counters_; }

 private:
  FaasPlatform& faas_;
  StorageEngine& storage_;
  Clock& clock_;
  const TxnPlanGenerator& plans_;
  RunnerCounters counters_;
};

// ---- DynamoDB transaction mode -------------------------------------------------
class DynamoTxnRequestRunner : public RequestRunner {
 public:
  DynamoTxnRequestRunner(FaasPlatform& faas, SimDynamo& dynamo, Clock& clock,
                         const TxnPlanGenerator& plans, RunnerRetryPolicy retry = {});

  Status RunOnce(Rng& rng, TxnLog* log) override;

  const RunnerCounters& counters() const { return counters_; }

 private:
  FaasPlatform& faas_;
  SimDynamo& dynamo_;
  Clock& clock_;
  const TxnPlanGenerator& plans_;
  const RunnerRetryPolicy retry_;
  RunnerCounters counters_;
};

}  // namespace aft

#endif  // SRC_WORKLOAD_RUNNERS_H_
