#include "src/workload/runners.h"

#include "src/storage/sim_engine_base.h"

namespace aft {
namespace {

// Builds the observation for a versioned AFT read.
ReadObservation ObservationFrom(const std::string& key, const AftNode::VersionedRead& read) {
  ReadObservation obs;
  obs.key = key;
  obs.version = read.version;
  if (read.record != nullptr) {
    // Alias the record's write set; the shared_ptr keeps the record alive.
    obs.cowritten = std::shared_ptr<const std::vector<std::string>>(read.record,
                                                                    &read.record->write_set);
  }
  return obs;
}

}  // namespace

// ---- AftRequestRunner ---------------------------------------------------------

AftRequestRunner::AftRequestRunner(FaasPlatform& faas, AftClient& client, Clock& clock,
                                   const TxnPlanGenerator& plans, RunnerRetryPolicy retry)
    : faas_(faas), client_(client), clock_(clock), plans_(plans), retry_(retry) {}

Status AftRequestRunner::RunAttempt(Rng& rng, TxnLog* log) {
  const TxnPlan plan = plans_.Generate(rng);
  AFT_ASSIGN_OR_RETURN(TxnSession session, client_.StartTransaction());
  log->events.clear();
  log->self = TxnId(0, session.txid);

  std::vector<FaasFunction> chain;
  chain.reserve(plan.functions.size());
  for (size_t f = 0; f < plan.functions.size(); ++f) {
    chain.push_back([this, &plan, &session, &rng, log, f](int attempt) -> Status {
      // A retried function continues the SAME transaction (§3.3.1); its
      // re-issued puts are idempotent upserts into the write buffer. Events
      // are staged locally and appended only on success so that a crashed
      // attempt leaves no trace in the audit log.
      if (attempt > 0) {
        AFT_RETURN_IF_ERROR(client_.Resume(session));
      }
      std::vector<TxnLog::Event> staged;
      std::vector<WriteOp> batched;
      for (const OpPlan& op : plan.functions[f]) {
        if (op.is_read) {
          AFT_ASSIGN_OR_RETURN(AftNode::VersionedRead read,
                               client_.GetVersioned(session, op.key));
          staged.push_back(TxnLog::Event{TxnLog::Event::Kind::kRead, op.key,
                                         ObservationFrom(op.key, read)});
        } else {
          std::string payload = MakePayload(plans_.spec(), rng());
          if (batch_writes_) {
            batched.push_back(WriteOp{op.key, std::move(payload)});
          } else {
            AFT_RETURN_IF_ERROR(client_.Put(session, op.key, std::move(payload)));
          }
          staged.push_back(TxnLog::Event{TxnLog::Event::Kind::kWrite, op.key, ReadObservation{}});
        }
      }
      if (!batched.empty()) {
        AFT_RETURN_IF_ERROR(client_.PutBatch(session, batched));
      }
      log->events.insert(log->events.end(), std::make_move_iterator(staged.begin()),
                         std::make_move_iterator(staged.end()));
      return Status::Ok();
    });
  }

  Status chain_status = faas_.InvokeChain(chain);
  if (!chain_status.ok()) {
    (void)client_.Abort(session);  // Best effort; the timeout sweeper also reaps.
    return chain_status;
  }
  auto committed = client_.Commit(session);
  if (!committed.ok()) {
    return committed.status();
  }
  return Status::Ok();
}

Status AftRequestRunner::RunOnce(Rng& rng, TxnLog* log) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  Status last = Status::Internal("unreachable");
  for (int attempt = 0; attempt <= retry_.max_request_retries; ++attempt) {
    if (attempt > 0) {
      counters_.request_retries.fetch_add(1, std::memory_order_relaxed);
      // Back off before redoing the whole transaction (fresh ID).
      clock_.SleepFor(retry_.retry_backoff);
    }
    last = RunAttempt(rng, log);
    if (last.ok()) {
      return last;
    }
    // Aborts (no valid version / conflicts) and node failures are retried
    // from scratch; anything else is a hard failure.
    if (!last.IsAborted() && !last.IsUnavailable()) {
      break;
    }
  }
  counters_.failures.fetch_add(1, std::memory_order_relaxed);
  return last;
}

// ---- PlainRequestRunner ---------------------------------------------------------

PlainRequestRunner::PlainRequestRunner(FaasPlatform& faas, StorageEngine& storage, Clock& clock,
                                       const TxnPlanGenerator& plans)
    : faas_(faas), storage_(storage), clock_(clock), plans_(plans) {}

Status PlainRequestRunner::RunOnce(Rng& rng, TxnLog* log) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const TxnPlan plan = plans_.Generate(rng);
  PlainTransaction txn(storage_, clock_, plan.write_set);

  std::vector<FaasFunction> chain;
  chain.reserve(plan.functions.size());
  for (size_t f = 0; f < plan.functions.size(); ++f) {
    chain.push_back([this, &plan, &txn, &rng, f](int) -> Status {
      // No session to resume and no rollback: a retried plain function just
      // re-runs, re-exposing whatever it already wrote — the fractional
      // execution hazard of §1.
      for (const OpPlan& op : plan.functions[f]) {
        if (op.is_read) {
          AFT_RETURN_IF_ERROR(txn.Get(op.key).status());
        } else {
          AFT_RETURN_IF_ERROR(txn.Put(op.key, MakePayload(plans_.spec(), rng())));
        }
      }
      return Status::Ok();
    });
  }
  Status status = faas_.InvokeChain(chain);
  if (!status.ok()) {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  *log = txn.log();
  return Status::Ok();
}

// ---- DynamoTxnRequestRunner -----------------------------------------------------

DynamoTxnRequestRunner::DynamoTxnRequestRunner(FaasPlatform& faas, SimDynamo& dynamo, Clock& clock,
                                               const TxnPlanGenerator& plans,
                                               RunnerRetryPolicy retry)
    : faas_(faas), dynamo_(dynamo), clock_(clock), plans_(plans), retry_(retry) {}

Status DynamoTxnRequestRunner::RunOnce(Rng& rng, TxnLog* log) {
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  const TxnPlan plan = plans_.Generate(rng);
  DynamoTxnTransaction txn(dynamo_, clock_, plan.write_set);

  // §6.1.2 workload adaptation: each function's reads form one read-only
  // transaction; ALL of the request's writes are grouped into a single
  // write-only transaction issued by the last function, which is the most
  // favourable grouping for DynamoDB's model (RYW anomalies disappear; reads
  // split across functions can still fracture).
  std::vector<FaasFunction> chain;
  chain.reserve(plan.functions.size());
  for (size_t f = 0; f < plan.functions.size(); ++f) {
    const bool last = (f + 1 == plan.functions.size());
    chain.push_back([this, &plan, &txn, &rng, f, last](int) -> Status {
      std::vector<std::string> read_keys;
      for (const OpPlan& op : plan.functions[f]) {
        if (op.is_read) {
          read_keys.push_back(op.key);
        }
      }
      if (!read_keys.empty()) {
        AFT_RETURN_IF_ERROR(txn.ReadTxn(read_keys).status());
      }
      if (last) {
        std::vector<WriteOp> writes;
        writes.reserve(plan.write_set.size());
        for (const std::string& key : plan.write_set) {
          writes.push_back(WriteOp{key, MakePayload(plans_.spec(), rng())});
        }
        if (!writes.empty()) {
          AFT_RETURN_IF_ERROR(txn.WriteTxn(writes));
        }
      }
      return Status::Ok();
    });
  }
  Status status = faas_.InvokeChain(chain);
  if (!status.ok()) {
    counters_.failures.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  *log = txn.log();
  return Status::Ok();
}

}  // namespace aft
