// Closed-loop multi-client harness.
//
// Spawns N client threads; each synchronously issues requests through a
// RequestRunner (invoke, wait, invoke again — the paper's client model,
// §6.5.1), recording per-request latency, auditing anomalies, and optionally
// feeding a throughput timeline for the time-series figures.

#ifndef SRC_WORKLOAD_HARNESS_H_
#define SRC_WORKLOAD_HARNESS_H_

#include <cstdint>
#include <string>

#include "src/baseline/anomaly_checker.h"
#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/workload/runners.h"

namespace aft {

struct HarnessOptions {
  size_t num_clients = 10;
  // Each client stops after this many completed requests...
  size_t requests_per_client = 1000;
  // ...or when this much simulated time has elapsed (whichever comes first;
  // zero = no time limit). Used by the timeline experiments (Figs 9 & 10).
  Duration max_duration = Duration::zero();
  uint64_t seed = 42;
  // Audit every transaction log with the anomaly checker.
  bool check_anomalies = true;
};

struct HarnessResult {
  LatencySummary latency;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t ryw_anomalies = 0;
  uint64_t fr_anomalies = 0;
  double elapsed_sec = 0;        // Simulated seconds.
  double throughput_tps = 0;     // Completed requests per simulated second.

  std::string ToString() const;
};

// Runs the workload to completion. `timeline` (optional) receives one event
// per completed request.
HarnessResult RunClients(Clock& clock, RequestRunner& runner, const HarnessOptions& options,
                         ThroughputTimeline* timeline = nullptr);

}  // namespace aft

#endif  // SRC_WORKLOAD_HARNESS_H_
