// Dataset pre-loading.
//
// Every experiment starts from a fully populated dataset (e.g. 1,000 or
// 100,000 keys of 4 KB, §6.1.2/§6.2). Loading is maintenance work, not part
// of any measurement, so it goes through the engines' zero-latency
// DirectPut hook when available and falls back to regular puts otherwise.

#ifndef SRC_WORKLOAD_DATASET_H_
#define SRC_WORKLOAD_DATASET_H_

#include "src/common/status.h"
#include "src/storage/storage_engine.h"
#include "src/workload/workload.h"

namespace aft {

// Loads the dataset in AFT's on-storage format: one key version plus one
// single-key commit record per key (all with timestamp 1, so any workload
// commit supersedes them). AFT nodes pick these up when they bootstrap.
Status LoadAftDataset(StorageEngine& storage, const WorkloadSpec& spec);

// Loads the dataset in the baselines' format: the user key maps directly to
// a metadata-embedding VersionedValue.
Status LoadPlainDataset(StorageEngine& storage, const WorkloadSpec& spec);

}  // namespace aft

#endif  // SRC_WORKLOAD_DATASET_H_
