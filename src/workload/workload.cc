#include "src/workload/workload.h"

#include <algorithm>
#include <cstdio>

namespace aft {

std::string KeyForRank(uint64_t rank) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%08llu", static_cast<unsigned long long>(rank));
  return std::string(buf);
}

std::string MakePayload(const WorkloadSpec& spec, uint64_t salt) {
  std::string payload;
  payload.reserve(spec.value_bytes);
  // Cheap deterministic filler; the salt makes payloads distinguishable so
  // tests can assert which version they read.
  uint64_t state = salt * 0x9e3779b97f4a7c15ULL + 1;
  while (payload.size() < spec.value_bytes) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    payload.push_back(static_cast<char>('a' + ((state >> 33) % 26)));
  }
  return payload;
}

TxnPlan TxnPlanGenerator::Generate(Rng& rng) const {
  TxnPlan plan;
  plan.functions.resize(spec_.num_functions);
  for (size_t f = 0; f < spec_.num_functions; ++f) {
    auto& ops = plan.functions[f];
    ops.reserve(spec_.reads_per_function + spec_.writes_per_function);
    for (size_t r = 0; r < spec_.reads_per_function; ++r) {
      ops.push_back(OpPlan{true, KeyForRank(zipf_.Sample(rng))});
    }
    for (size_t w = 0; w < spec_.writes_per_function; ++w) {
      ops.push_back(OpPlan{false, KeyForRank(zipf_.Sample(rng))});
    }
  }
  for (const auto& ops : plan.functions) {
    for (const auto& op : ops) {
      if (!op.is_read) {
        plan.write_set.push_back(op.key);
      }
    }
  }
  std::sort(plan.write_set.begin(), plan.write_set.end());
  plan.write_set.erase(std::unique(plan.write_set.begin(), plan.write_set.end()),
                       plan.write_set.end());
  return plan;
}

}  // namespace aft
