// Wire-compatibility golden tests for the zero-copy serde path.
//
// Protocol v1 froze the frame and payload encodings; the arena writer and the
// scatter-gather frame sealer were added UNDER that contract (see
// docs/PROTOCOLS.md, "Buffer ownership & zero-copy contract"). These tests
// pin the contract down byte for byte:
//
//   * every request/response encodes identically through the legacy
//     `Serialize()` (BinaryWriter, flat string) and the arena
//     `SerializeTo(ArenaWriter&)` path — including payloads that span
//     multiple 16 KiB pool segments;
//   * `SealFrame` produces exactly `EncodeFrame`'s bytes, with and without a
//     trace-context prefix;
//   * the direct-field record encoders emit exactly the struct Serialize()
//     bytes through BOTH writers;
//   * `BinaryReader`'s view getters parse IN PLACE: returned views alias the
//     caller's buffer, never a copy.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/arena.h"
#include "src/common/serde.h"
#include "src/core/records.h"
#include "src/net/frame.h"
#include "src/net/message.h"

namespace aft {
namespace {

using net::EncodeFrame;
using net::MessageType;
using net::SealFrame;

// A value long enough that one of it cannot fit in a pool segment and a few
// of them force the arena onto its third segment — the interesting regime
// for Append's split-across-segments arithmetic.
std::string BigValue(char fill) { return std::string(BufferPool::kSegmentSize + 911, fill); }

template <typename Msg>
void ExpectRequestCompat(const Msg& msg) {
  ArenaWriter arena;
  msg.SerializeTo(arena);
  EXPECT_EQ(arena.buffer().ToString(), msg.Serialize());
}

template <typename Msg>
void ExpectResponseCompat(const Msg& msg, const Status& status) {
  ArenaWriter arena;
  msg.SerializeTo(arena, status);
  EXPECT_EQ(arena.buffer().ToString(), msg.Serialize(status));
}

TEST(SerdeCompatTest, RequestsEncodeIdenticallyThroughBothWriters) {
  const Uuid txid(0x0123456789abcdefull, 0xfedcba9876543210ull);

  ExpectRequestCompat(net::StartTxnRequest{});
  ExpectRequestCompat(net::AdoptTxnRequest{txid});
  ExpectRequestCompat(net::GetRequest{txid, "user:42"});
  ExpectRequestCompat(net::MultiGetRequest{txid, {"a", "", "user:42", BigValue('k')}});
  ExpectRequestCompat(net::PutRequest{txid, "k", std::string("\x00\x01 binary \xff", 11)});
  // Three oversized ops: the arena payload spans at least four segments.
  ExpectRequestCompat(net::PutBatchRequest{
      txid, {{"k1", BigValue('a')}, {"k2", BigValue('b')}, {"k3", BigValue('c')}}});
  ExpectRequestCompat(net::CommitRequest{txid});
  ExpectRequestCompat(net::AbortRequest{txid});
  ExpectRequestCompat(net::PingRequest{});
  ExpectRequestCompat(net::GetMetricsRequest{});

  auto record = std::make_shared<CommitRecord>();
  record->id = TxnId{1234567, Uuid(7, 9)};
  record->write_set = {"alpha", BigValue('w')};
  record->segment_count = 1;
  record->locators = {{"alpha", 0, 0, 5}, {"beta", 0, 5, 7}};
  ExpectRequestCompat(net::ApplyCommitsRequest{{record, record}});
}

TEST(SerdeCompatTest, ResponsesEncodeIdenticallyThroughBothWriters) {
  const Status statuses[] = {Status::Ok(), Status::Aborted("read atomicity violated"),
                             Status::Unavailable("node killed")};
  auto record = std::make_shared<CommitRecord>();
  record->id = TxnId{42, Uuid(1, 2)};
  record->write_set = {"k"};

  for (const Status& status : statuses) {
    ExpectResponseCompat(net::StartTxnResponse{Uuid(3, 4)}, status);

    net::GetResponse get;
    get.read.value = BigValue('v');
    get.read.version = TxnId{42, Uuid(1, 2)};
    get.read.record = record;
    ExpectResponseCompat(get, status);

    net::MultiGetResponse mget;
    mget.reads.push_back(get.read);
    mget.reads.push_back({});  // NULL-version read: no value, no record.
    ExpectResponseCompat(mget, status);

    ExpectResponseCompat(net::CommitResponse{TxnId{7, Uuid(8, 9)}}, status);
    ExpectResponseCompat(net::ApplyCommitsResponse{3}, status);
    ExpectResponseCompat(net::PingResponse{"aft-0"}, status);
    ExpectResponseCompat(net::GetMetricsResponse{"# TYPE aft_up gauge\naft_up 1\n"}, status);

    ArenaWriter arena;
    net::SerializeEmptyResponseTo(arena, status);
    EXPECT_EQ(arena.buffer().ToString(), net::SerializeEmptyResponse(status));
  }
}

TEST(SerdeCompatTest, SealFrameMatchesEncodeFrameByteForByte) {
  const std::string payloads[] = {
      std::string(),
      std::string("hello"),
      std::string("\x00\x01\xff\x7f binary \x00", 14),
      std::string(3 * BufferPool::kSegmentSize + 17, 'x'),  // four-segment chain
  };
  const uint64_t trace_ids[] = {0, 0x1122334455667788ull};

  for (const std::string& payload : payloads) {
    for (const uint64_t trace_id : trace_ids) {
      SegmentBuffer buffer;
      buffer.Append(payload.data(), payload.size());
      auto sealed = SealFrame(MessageType::kCommit, std::move(buffer), trace_id);
      ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();

      std::string wire(sealed->head, sealed->head_len);
      wire += sealed->payload.ToString();
      EXPECT_EQ(wire, EncodeFrame(MessageType::kCommit, payload, trace_id));

      // Both spellings must decode to the same frame (CRC verified inside).
      auto frame = net::DecodeFrame(wire);
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      EXPECT_EQ(frame->payload, payload);
      EXPECT_EQ(frame->trace_id, trace_id);
    }
  }
}

TEST(SerdeCompatTest, RecordFieldEncodersMatchStructSerialize) {
  CommitRecord record;
  record.id = TxnId{987654321, Uuid(0xaa, 0xbb)};
  record.write_set = {"alpha", "", BigValue('w')};
  record.segment_count = 2;
  record.locators = {{"alpha", 0, 0, 10}, {BigValue('l'), 1, 10, 20}};

  BinaryWriter flat;
  EncodeCommitRecordFields(flat, record.id, record.write_set, record.segment_count,
                           record.locators);
  ArenaWriter arena;
  EncodeCommitRecordFields(arena, record.id, record.write_set, record.segment_count,
                           record.locators);
  EXPECT_EQ(flat.data(), record.Serialize());
  EXPECT_EQ(arena.buffer().ToString(), record.Serialize());

  VersionedValue value;
  value.writer = record.id;
  value.cowritten = record.write_set;
  value.payload = BigValue('p');

  BinaryWriter flat_value;
  EncodeVersionedValueFields(flat_value, value.writer, value.cowritten, value.payload);
  ArenaWriter arena_value;
  EncodeVersionedValueFields(arena_value, value.writer, value.cowritten, value.payload);
  EXPECT_EQ(flat_value.data(), value.Serialize());
  EXPECT_EQ(arena_value.buffer().ToString(), value.Serialize());
}

TEST(SerdeCompatTest, ReaderViewsAliasTheDecodedBuffer) {
  BinaryWriter w;
  w.PutString("short");
  w.PutString(BigValue('z'));
  w.PutStringVector({"a", "", "long enough to defeat SSO either way......."});
  const std::string& bytes = w.data();
  const char* lo = bytes.data();
  const char* hi = bytes.data() + bytes.size();

  auto aliases = [&](std::string_view v) {
    return v.empty() || (v.data() >= lo && v.data() + v.size() <= hi);
  };

  BinaryReader r(bytes);
  std::string_view s;
  ASSERT_TRUE(r.GetStringView(&s));
  EXPECT_EQ(s, "short");
  EXPECT_TRUE(aliases(s));

  ASSERT_TRUE(r.GetStringView(&s));
  EXPECT_EQ(s.size(), BufferPool::kSegmentSize + 911);
  EXPECT_TRUE(aliases(s));

  uint32_t count = 0;
  ASSERT_TRUE(r.GetU32(&count));
  ASSERT_EQ(count, 3u);
  for (uint32_t i = 0; i < count; ++i) {
    ASSERT_TRUE(r.GetStringView(&s));
    EXPECT_TRUE(aliases(s));
  }
  EXPECT_TRUE(r.AtEnd());
}

// The flip side of decode-in-place: a view that outlives its frame buffer is
// a use-after-free, and the ASan CI leg must CATCH that pattern, not let it
// read stale-but-mapped memory silently. Death test, ASan builds only —
// without ASan the read is quiet UB and nothing dies.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AFT_SERDE_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define AFT_SERDE_TEST_ASAN 1
#endif

#ifdef AFT_SERDE_TEST_ASAN
TEST(SerdeCompatDeathTest, ViewOutlivingFrameBufferIsCaughtByAsan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        BinaryWriter w;
        w.PutString("long enough to live on the heap, not in SSO storage");
        auto* frame = new std::string(std::move(w).TakeData());
        BinaryReader r(*frame);
        std::string_view view;
        (void)r.GetStringView(&view);
        delete frame;  // The frame dies; `view` now dangles.
        volatile char sink = view[0];
        (void)sink;
      },
      "use-after-free");
}
#endif  // AFT_SERDE_TEST_ASAN

}  // namespace
}  // namespace aft
