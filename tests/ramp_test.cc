// Tests for the RAMP-Fast baseline: store semantics, the two-round write /
// repair-read protocol, and side-by-side behavioural comparisons with AFT
// that reproduce the paper's §2.2 / §3.6 discussion.

#include <gtest/gtest.h>

#include <thread>

#include "src/core/aft_node.h"
#include "src/ramp/ramp_client.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

RampStoreOptions InstantRamp() {
  RampStoreOptions options;
  options.op_latency = LatencyModel::Zero();
  // Zero-latency concurrency tests can burn through many versions between a
  // reader's two rounds; keep enough history that exact-timestamp fetches
  // never miss due to pruning.
  options.max_versions_per_key = 1 << 20;
  return options;
}

// ---- Store ------------------------------------------------------------------------

TEST(RampStoreTest, BottomForUnknownKeys) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  auto latest = store.GetLatest("nope");
  ASSERT_TRUE(latest.ok());
  EXPECT_TRUE(latest->IsBottom());
}

TEST(RampStoreTest, PreparedVersionsAreInvisibleUntilCommit) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  ASSERT_TRUE(store.Prepare(RampVersion{10, {"k"}, "", "v"}, "k").ok());
  EXPECT_TRUE(store.GetLatest("k")->IsBottom());
  // But version-specific reads CAN see them (RAMP round 2 relies on this).
  EXPECT_EQ(store.GetVersion("k", 10)->value, "v");
  ASSERT_TRUE(store.Commit("k", 10).ok());
  EXPECT_EQ(store.GetLatest("k")->value, "v");
}

TEST(RampStoreTest, LastCommitNeverRegresses) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  ASSERT_TRUE(store.Prepare(RampVersion{20, {"k"}, "", "new"}, "k").ok());
  ASSERT_TRUE(store.Prepare(RampVersion{10, {"k"}, "", "old"}, "k").ok());
  ASSERT_TRUE(store.Commit("k", 20).ok());
  ASSERT_TRUE(store.Commit("k", 10).ok());  // Late, out-of-order commit.
  EXPECT_EQ(store.GetLatest("k")->value, "new");
}

TEST(RampStoreTest, VersionHistoryIsBounded) {
  SimClock clock;
  RampStoreOptions options = InstantRamp();
  options.max_versions_per_key = 4;
  RampStore store(clock, options);
  for (int64_t ts = 1; ts <= 20; ++ts) {
    ASSERT_TRUE(store.Prepare(RampVersion{ts, {"k"}, "", "v"}, "k").ok());
    ASSERT_TRUE(store.Commit("k", ts).ok());
  }
  EXPECT_LE(store.VersionCountForTest("k"), 5u);
  EXPECT_EQ(store.GetLatest("k")->timestamp, 20);
}

TEST(RampStoreTest, KeysArePartitionedAcrossShards) {
  SimClock clock;
  RampStoreOptions options = InstantRamp();
  options.num_shards = 4;
  RampStore store(clock, options);
  std::set<size_t> shards;
  for (int i = 0; i < 64; ++i) {
    shards.insert(store.ShardOf("key" + std::to_string(i)));
  }
  EXPECT_EQ(shards.size(), 4u);
}

// ---- RAMP-Fast client -----------------------------------------------------------------

TEST(RampFastTest, WriteThenReadRoundTrips) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampFastClient client(store);
  ASSERT_TRUE(client.WriteTransaction({{"x", "1"}, {"y", "2"}}).ok());
  auto result = client.ReadTransaction({"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].value, "1");
  EXPECT_EQ((*result)[1].value, "2");
}

TEST(RampFastTest, ReadSetIsAlwaysAtomic) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampFastClient client(store);
  ASSERT_TRUE(client.WriteTransaction({{"x", "a1"}, {"y", "a1"}}).ok());
  ASSERT_TRUE(client.WriteTransaction({{"x", "a2"}, {"y", "a2"}}).ok());
  auto result = client.ReadTransaction({"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].value, (*result)[1].value) << "fractured RAMP read";
  EXPECT_EQ((*result)[0].timestamp, (*result)[1].timestamp);
}

// The defining RAMP behaviour: when round 1 observes a mismatch, round 2
// REPAIRS FORWARD by fetching the exact (possibly prepared-only) version —
// where AFT would have returned the older compatible version instead (§3.6).
TEST(RampFastTest, RepairsForwardFromPreparedVersions) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampFastClient client(store);
  ASSERT_TRUE(client.WriteTransaction({{"x", "old"}, {"y", "old"}}).ok());

  // A writer that prepared everywhere but committed only x so far.
  const int64_t ts = 1'000'000;
  ASSERT_TRUE(store.Prepare(RampVersion{ts, {"x", "y"}, "", "new"}, "x").ok());
  ASSERT_TRUE(store.Prepare(RampVersion{ts, {"x", "y"}, "", "new"}, "y").ok());
  ASSERT_TRUE(store.Commit("x", ts).ok());
  // y's commit has not arrived: GetLatest(y) still returns "old".

  auto result = client.ReadTransaction({"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].value, "new");
  EXPECT_EQ((*result)[1].value, "new") << "round 2 must repair y forward to ts";
  EXPECT_EQ(client.stats().second_round_fetches.load(), 1u);
}

TEST(RampFastTest, DisjointKeysNeedNoSecondRound) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampFastClient client(store);
  ASSERT_TRUE(client.WriteTransaction({{"x", "1"}}).ok());
  ASSERT_TRUE(client.WriteTransaction({{"y", "2"}}).ok());
  ASSERT_TRUE(client.ReadTransaction({"x", "y"}).ok());
  EXPECT_EQ(client.stats().second_round_fetches.load(), 0u);
}

TEST(RampFastTest, ConcurrentWritersNeverFractureReaders) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampFastClient writer_client(store);
  RampFastClient reader_client(store);
  ASSERT_TRUE(writer_client.WriteTransaction({{"x", "0"}, {"y", "0"}}).ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 1;
    while (!stop.load()) {
      (void)writer_client.WriteTransaction(
          {{"x", std::to_string(i)}, {"y", std::to_string(i)}});
      ++i;
    }
  });
  for (int i = 0; i < 500; ++i) {
    auto result = reader_client.ReadTransaction({"x", "y"});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)[0].value, (*result)[1].value)
        << "fractured read under concurrency";
  }
  stop.store(true);
  writer.join();
}

// ---- RAMP vs AFT: the §3.6 trade-off ----------------------------------------------------
//
// Same history, same reads. RAMP (pre-declared read sets) repairs forward
// and returns the NEWEST atomic pair; AFT (interactive reads, first k then
// l) must return the older compatible version of l. Both are valid Read
// Atomic outcomes — AFT trades freshness for not needing declared read sets.
TEST(RampVsAftTest, InteractiveReadsAreStalerThanDeclaredReads) {
  SimClock clock;

  // RAMP side.
  RampStore ramp_store(clock, InstantRamp());
  RampFastClient ramp(ramp_store);
  ASSERT_TRUE(ramp.WriteTransaction({{"l", "v1"}}).ok());
  ASSERT_TRUE(ramp.WriteTransaction({{"k", "v2"}, {"l", "v2"}}).ok());

  // AFT side, same logical history.
  SimDynamoOptions dynamo_options;
  dynamo_options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                                LatencyModel::Zero(), LatencyModel::Zero(),
                                                LatencyModel::Zero(), LatencyModel::Zero()};
  dynamo_options.staleness = StalenessModel{};
  dynamo_options.txn_call = LatencyModel::Zero();
  SimDynamo dynamo(clock, dynamo_options);
  AftNode node("n0", dynamo, clock);
  ASSERT_TRUE(node.Start().ok());
  {
    auto t1 = node.StartTransaction();
    ASSERT_TRUE(node.Put(*t1, "l", "v1").ok());
    ASSERT_TRUE(node.CommitTransaction(*t1).ok());
  }

  // An AFT reader starts and reads l BEFORE the {k,l} transaction commits —
  // the interactive-session scenario of §3.6.
  auto reader = node.StartTransaction();
  EXPECT_EQ(node.Get(*reader, "l")->value(), "v1");
  {
    auto t2 = node.StartTransaction();
    ASSERT_TRUE(node.Put(*t2, "k", "v2").ok());
    ASSERT_TRUE(node.Put(*t2, "l", "v2").ok());
    ASSERT_TRUE(node.CommitTransaction(*t2).ok());
  }
  // AFT: k@v2 would conflict with l@v1, so the reader observes NULL for k
  // (the pre-k snapshot) — STALER than RAMP, but atomic.
  auto aft_k = node.Get(*reader, "k");
  ASSERT_TRUE(aft_k.ok());
  EXPECT_FALSE(aft_k->has_value());

  // RAMP: the declared {k,l} read arrives after both commits and returns the
  // fresh atomic pair.
  auto ramp_result = ramp.ReadTransaction({"k", "l"});
  ASSERT_TRUE(ramp_result.ok());
  EXPECT_EQ((*ramp_result)[0].value, "v2");
  EXPECT_EQ((*ramp_result)[1].value, "v2");
}

TEST(RampVsAftTest, RampChargesParallelRounds) {
  SimClock clock;
  RampStoreOptions options;
  options.op_latency = LatencyModel(5.0, 0.0, 5.0);  // Deterministic 5ms.
  RampStore store(clock, options);
  RampFastClient client(store);
  const TimePoint before = clock.Now();
  ASSERT_TRUE(client.WriteTransaction({{"a", "1"}, {"b", "2"}, {"c", "3"}}).ok());
  // Two parallel rounds of 5ms each — NOT 6 sequential ops.
  EXPECT_EQ(clock.Now() - before, Millis(10));
}

}  // namespace
}  // namespace aft
