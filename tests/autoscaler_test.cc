// Tests for the autoscaling policy and mechanism (§4.3 / §8 future work).

#include <gtest/gtest.h>

#include "src/cluster/autoscaler.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

// ---- Policy ---------------------------------------------------------------------

TEST(ThresholdPolicyTest, ScalesUpWhenOverThreshold) {
  ThresholdPolicy policy(ThresholdPolicyOptions{100.0, 0.75, 0.30});
  AutoscalingPolicy::Observation obs;
  obs.live_nodes = 2;
  obs.aggregate_tps = 180;  // 90% of 2x100 capacity.
  EXPECT_GT(policy.DesiredNodes(obs), 2u);
}

TEST(ThresholdPolicyTest, ScalesDownWhenUnderThreshold) {
  ThresholdPolicy policy(ThresholdPolicyOptions{100.0, 0.75, 0.30});
  AutoscalingPolicy::Observation obs;
  obs.live_nodes = 4;
  obs.aggregate_tps = 80;  // 20% utilization.
  EXPECT_EQ(policy.DesiredNodes(obs), 3u);
}

TEST(ThresholdPolicyTest, HoldsInTheDeadband) {
  ThresholdPolicy policy(ThresholdPolicyOptions{100.0, 0.75, 0.30});
  AutoscalingPolicy::Observation obs;
  obs.live_nodes = 3;
  obs.aggregate_tps = 150;  // 50% utilization.
  EXPECT_EQ(policy.DesiredNodes(obs), 3u);
}

TEST(ThresholdPolicyTest, NeverGoesBelowOneNode) {
  ThresholdPolicy policy;
  AutoscalingPolicy::Observation obs;
  obs.live_nodes = 1;
  obs.aggregate_tps = 0;
  EXPECT_EQ(policy.DesiredNodes(obs), 1u);
}

TEST(ThresholdPolicyTest, SizesFleetProportionallyToLoad) {
  ThresholdPolicy policy(ThresholdPolicyOptions{100.0, 0.8, 0.3});
  AutoscalingPolicy::Observation obs;
  obs.live_nodes = 1;
  obs.aggregate_tps = 400;  // Needs ceil(400 / 80) = 5 nodes.
  EXPECT_EQ(policy.DesiredNodes(obs), 5u);
}

// ---- Mechanism --------------------------------------------------------------------

class AutoscalerTest : public ::testing::Test {
 protected:
  AutoscalerTest() : storage_(clock_, InstantDynamo()) {}

  void CommitN(AftNode& node, int n) {
    for (int i = 0; i < n; ++i) {
      auto txid = node.StartTransaction();
      ASSERT_TRUE(node.Put(*txid, "k" + std::to_string(i % 7), "v").ok());
      ASSERT_TRUE(node.CommitTransaction(*txid).ok());
    }
  }

  SimClock clock_;
  SimDynamo storage_;
};

TEST_F(AutoscalerTest, ScalesUpUnderLoad) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  cluster_options.start_background_threads = false;
  ClusterDeployment cluster(storage_, clock_, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  AutoscalerOptions options;
  options.cooldown = Duration::zero();
  Autoscaler autoscaler(cluster, clock_,
                        std::make_unique<ThresholdPolicy>(ThresholdPolicyOptions{
                            /*per_node_capacity_tps=*/100, 0.75, 0.30}),
                        options);
  EXPECT_EQ(autoscaler.RunOnce(), 0);  // Priming call.

  // Generate 200 commits over 1 simulated second: 200 tps >> 75 tps target.
  CommitN(*cluster.node(0), 200);
  clock_.Advance(Millis(1000));
  EXPECT_EQ(autoscaler.RunOnce(), 1);
  EXPECT_EQ(cluster.balancer().LiveNodes().size(), 2u);
  EXPECT_EQ(autoscaler.stats().scale_ups.load(), 1u);
}

TEST_F(AutoscalerTest, ScalesDownWhenIdleAndDrainsGracefully) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 3;
  cluster_options.start_background_threads = false;
  ClusterDeployment cluster(storage_, clock_, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  // The node about to be decommissioned holds committed state the cluster
  // must not lose.
  CommitN(*cluster.node(2), 3);
  auto txid = cluster.node(2)->StartTransaction();
  ASSERT_TRUE(cluster.node(2)->Put(*txid, "draining", "ok").ok());

  AutoscalerOptions options;
  options.cooldown = Duration::zero();
  options.drain_timeout = std::chrono::hours(24);  // Drain must wait for us.
  Autoscaler autoscaler(cluster, clock_,
                        std::make_unique<ThresholdPolicy>(ThresholdPolicyOptions{100, 0.75, 0.30}),
                        options);
  (void)autoscaler.RunOnce();  // Prime.
  clock_.Advance(Millis(1000));

  // Nearly idle: scale down. Run the autoscaler on its own thread; it must
  // block in the drain loop until the open transaction finishes. We observe
  // the drain phase via the balancer (the victim is deregistered first).
  std::atomic<int> delta{0};
  std::thread scaler([&] { delta.store(autoscaler.RunOnce()); });
  while (cluster.balancer().LiveNodes().size() != 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cluster.node(2)->alive()) << "victim must stay up until drained";
  ASSERT_TRUE(cluster.node(2)->CommitTransaction(*txid).ok());
  scaler.join();
  EXPECT_EQ(delta.load(), -1);

  EXPECT_EQ(cluster.balancer().LiveNodes().size(), 2u);
  EXPECT_FALSE(cluster.node(2)->alive());
  // Planned removal: not a failure, no replacement.
  cluster.fault_manager().CheckForFailuresOnce();
  cluster.fault_manager().Stop();
  EXPECT_EQ(cluster.fault_manager().stats().failures_detected.load(), 0u);
  // The drained node's last commit reached its peers via the final gossip.
  auto reader = cluster.node(0)->StartTransaction();
  auto value = cluster.node(0)->Get(*reader, "draining");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->value(), "ok");
}

TEST_F(AutoscalerTest, CooldownLimitsActionRate) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  cluster_options.start_background_threads = false;
  ClusterDeployment cluster(storage_, clock_, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  AutoscalerOptions options;
  options.cooldown = Millis(10000);
  Autoscaler autoscaler(cluster, clock_,
                        std::make_unique<ThresholdPolicy>(ThresholdPolicyOptions{100, 0.75, 0.3}),
                        options);
  (void)autoscaler.RunOnce();
  CommitN(*cluster.node(0), 200);
  clock_.Advance(Millis(1000));
  EXPECT_EQ(autoscaler.RunOnce(), 1);
  // Still hot, but inside the cooldown window: no further action.
  CommitN(*cluster.node(0), 200);
  clock_.Advance(Millis(1000));
  EXPECT_EQ(autoscaler.RunOnce(), 0);
  EXPECT_EQ(autoscaler.stats().scale_ups.load(), 1u);
}

TEST_F(AutoscalerTest, RespectsMaxNodes) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 2;
  cluster_options.start_background_threads = false;
  ClusterDeployment cluster(storage_, clock_, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  AutoscalerOptions options;
  options.cooldown = Duration::zero();
  options.max_nodes = 2;
  Autoscaler autoscaler(cluster, clock_,
                        std::make_unique<ThresholdPolicy>(ThresholdPolicyOptions{10, 0.5, 0.1}),
                        options);
  (void)autoscaler.RunOnce();
  CommitN(*cluster.node(0), 500);
  clock_.Advance(Millis(1000));
  EXPECT_EQ(autoscaler.RunOnce(), 0) << "already at max_nodes";
  EXPECT_EQ(cluster.balancer().LiveNodes().size(), 2u);
}

}  // namespace
}  // namespace aft
