// Unit tests for src/common.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/latency.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/common/uuid.h"
#include "src/common/zipf.h"

namespace aft {
namespace {

// ---- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key");

  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndStatusRoundTrip) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = Status::Timeout("slow");
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MacrosPropagateErrors) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) {
      return Status::InvalidArgument("nope");
    }
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    AFT_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInvalidArgument);
}

// ---- Clocks -------------------------------------------------------------------

TEST(SimClockTest, SingleThreadSleepAdvancesInstantly) {
  SimClock clock;
  const TimePoint before = clock.Now();
  clock.SleepFor(Millis(250));
  EXPECT_EQ(clock.Now() - before, Millis(250));
}

TEST(SimClockTest, AdvanceWakesSleepers) {
  SimClock clock;
  clock.set_auto_advance(false);
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepFor(Millis(100));
    woke.store(true);
  });
  // Give the sleeper time to block; it cannot advance on its own.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.Advance(Millis(100));
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(SimClockTest, WallTimeIsMonotonicAcrossTies) {
  SimClock clock;
  int64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const int64_t now = clock.WallTimeMicros();
    EXPECT_GT(now, last);
    last = now;
  }
}

TEST(SimClockTest, MultipleSleepersWakeInOrder) {
  SimClock clock;
  std::atomic<int> wake_count{0};
  std::vector<std::thread> sleepers;
  for (int i = 1; i <= 3; ++i) {
    sleepers.emplace_back([&clock, &wake_count, i] {
      clock.SleepFor(Millis(10 * i));
      wake_count.fetch_add(1);
    });
  }
  for (auto& t : sleepers) {
    t.join();
  }
  EXPECT_EQ(wake_count.load(), 3);
  EXPECT_GE(clock.Now(), TimePoint(Millis(30)));
}

TEST(RealClockTest, ScaledSleepIsShorterInWallTime) {
  RealClock clock(0.05);  // 20x faster than real time.
  const auto wall_start = std::chrono::steady_clock::now();
  clock.SleepFor(Millis(100));  // Should take ~5ms of wall time.
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;
  EXPECT_LT(wall_elapsed, std::chrono::milliseconds(60));
  // And simulated time advanced by at least the requested amount.
  EXPECT_GE(clock.Now(), TimePoint(Millis(90)));
}

// ---- UUIDs --------------------------------------------------------------------

TEST(UuidTest, RandomUuidsAreUniqueAndRoundTrip) {
  Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    const Uuid u = Uuid::Random(rng);
    EXPECT_FALSE(u.IsNil());
    const std::string text = u.ToString();
    EXPECT_EQ(text.size(), 36u);
    EXPECT_EQ(Uuid::Parse(text), u);
    seen.insert(text);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(UuidTest, OrderingIsLexicographicOnHiLo) {
  EXPECT_LT(Uuid(1, 2), Uuid(1, 3));
  EXPECT_LT(Uuid(1, 99), Uuid(2, 0));
  EXPECT_EQ(Uuid(5, 5), Uuid(5, 5));
}

TEST(UuidTest, ParseRejectsGarbage) {
  EXPECT_TRUE(Uuid::Parse("not-a-uuid").IsNil());
  EXPECT_TRUE(Uuid::Parse("").IsNil());
}

// ---- RNG / Zipf ----------------------------------------------------------------

TEST(RngTest, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, NextDoubleIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(11);
  ZipfSampler zipf(10, 0.0);
  std::map<uint64_t, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, kSamples / 10.0, kSamples * 0.01);
  }
}

// The head of the distribution must dominate more as theta grows.
TEST(ZipfTest, SkewIncreasesWithTheta) {
  Rng rng(13);
  auto head_mass = [&](double theta) {
    ZipfSampler zipf(1000, theta);
    int head = 0;
    constexpr int kSamples = 20000;
    for (int i = 0; i < kSamples; ++i) {
      if (zipf.Sample(rng) == 0) {
        ++head;
      }
    }
    return static_cast<double>(head) / kSamples;
  };
  const double h10 = head_mass(1.0);
  const double h15 = head_mass(1.5);
  const double h20 = head_mass(2.0);
  EXPECT_LT(h10, h15);
  EXPECT_LT(h15, h20);
  EXPECT_GT(h20, 0.5);  // Zipf 2.0 over 1000 keys: rank 0 has >50% of mass.
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  Rng rng(17);
  for (double theta : {0.0, 0.5, 0.99, 1.0, 1.5, 2.0}) {
    ZipfSampler zipf(37, theta);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(zipf.Sample(rng), 37u) << "theta=" << theta;
    }
  }
}

TEST(ZipfTest, MatchesAnalyticHeadProbability) {
  // P(rank 0) = 1 / (1^t + ... + n^-t * ...) — compute the harmonic sum.
  const double theta = 1.0;
  const uint64_t n = 100;
  double z = 0;
  for (uint64_t k = 1; k <= n; ++k) {
    z += 1.0 / std::pow(static_cast<double>(k), theta);
  }
  Rng rng(19);
  ZipfSampler zipf(n, theta);
  int head = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) == 0) {
      ++head;
    }
  }
  EXPECT_NEAR(static_cast<double>(head) / kSamples, 1.0 / z, 0.01);
}

// ---- Latency models -------------------------------------------------------------

TEST(LatencyModelTest, ZeroModelCostsNothing) {
  Rng rng(1);
  EXPECT_EQ(LatencyModel::Zero().Sample(rng), Duration::zero());
}

TEST(LatencyModelTest, MedianRoughlyMatches) {
  Rng rng(23);
  LatencyModel model(10.0, 0.5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(ToMillis(model.Sample(rng)));
  }
  EXPECT_NEAR(Percentile(samples, 50), 10.0, 0.5);
  // Lognormal: p99 well above median.
  EXPECT_GT(Percentile(samples, 99), 20.0);
}

TEST(LatencyModelTest, FloorIsRespected) {
  Rng rng(29);
  LatencyModel model(1.0, 1.5, /*floor_ms=*/0.8);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(ToMillis(model.Sample(rng)), 0.8);
  }
}

TEST(LatencyModelTest, PerKbCostScalesWithPayload) {
  Rng rng(31);
  LatencyModel model(5.0, 0.0, 0.0, /*per_kb_ms=*/1.0);
  const double small = ToMillis(model.Sample(rng, 1024));
  const double large = ToMillis(model.Sample(rng, 10 * 1024));
  EXPECT_NEAR(large - small, 9.0, 0.01);
}

// ---- Serde ----------------------------------------------------------------------

TEST(SerdeTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU32(123456);
  w.PutU64(0xDEADBEEFCAFEBABEULL);
  w.PutI64(-42);
  w.PutString("hello");
  w.PutStringVector({"a", "", "long string with spaces"});
  const std::string bytes = std::move(w).TakeData();

  BinaryReader r(bytes);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  std::string s;
  std::vector<std::string> v;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetI64(&i64));
  ASSERT_TRUE(r.GetString(&s));
  ASSERT_TRUE(r.GetStringVector(&v));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(v, (std::vector<std::string>{"a", "", "long string with spaces"}));
}

TEST(SerdeTest, TruncatedInputFailsCleanly) {
  BinaryWriter w;
  w.PutString("hello world");
  std::string bytes = std::move(w).TakeData();
  bytes.resize(bytes.size() - 3);
  BinaryReader r(bytes);
  std::string s;
  EXPECT_FALSE(r.GetString(&s));
}

TEST(SerdeTest, EmptyVectorRoundTrip) {
  BinaryWriter w;
  w.PutStringVector({});
  BinaryReader r(w.data());
  std::vector<std::string> v{"sentinel"};
  ASSERT_TRUE(r.GetStringVector(&v));
  EXPECT_TRUE(v.empty());
}

// ---- Stats ---------------------------------------------------------------------

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> samples{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(samples, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(samples, 50), 5.5);
}

TEST(StatsTest, RecorderSummarizes) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.RecordMillis(i);
  }
  const LatencySummary s = rec.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 100.0);
  EXPECT_NEAR(s.median_ms, 50.5, 0.01);
  EXPECT_NEAR(s.mean_ms, 50.5, 0.01);
}

TEST(StatsTest, MergeCombinesSamples) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.RecordMillis(1);
  b.RecordMillis(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(StatsTest, TimelineBucketsEvents) {
  SimClock clock;
  ThroughputTimeline timeline(clock, Millis(1000));
  timeline.Start();
  timeline.RecordEvent();
  timeline.RecordEvent();
  clock.Advance(Millis(1500));
  timeline.RecordEvent();
  const auto rows = timeline.Report();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].events_per_sec, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].events_per_sec, 1.0);
  EXPECT_EQ(timeline.total(), 3u);
}

// ---- ThreadPool -----------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, WaitReturnsWhenIdle) {
  ThreadPool pool(2);
  pool.Wait();  // No tasks: returns immediately.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace aft
