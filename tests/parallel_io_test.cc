// Tests for the parallel storage I/O layer: the shared IoExecutor, the
// concurrent commit flush and its §3.3 write-ordering barrier under partial
// failure, the multi-key read path (PlanAtomicMultiRead + AftNode::MultiGet),
// and the parallelized fault-manager maintenance passes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/deployment.h"
#include "src/common/io_executor.h"
#include "src/core/aft_node.h"
#include "src/core/read_algorithm.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_engine_base.h"

namespace aft {
namespace {

EngineLatencyProfile ZeroProfile() {
  return EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(), LatencyModel::Zero(),
                              LatencyModel::Zero(), LatencyModel::Zero(), LatencyModel::Zero()};
}

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = ZeroProfile();
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

// ---- IoExecutor -------------------------------------------------------------------

TEST(IoExecutorTest, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  const Status status = IoExecutor::Shared().ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(IoExecutorTest, ReturnsFirstErrorByIndexWithoutEarlyExit) {
  std::vector<std::atomic<int>> hits(64);
  const Status status = IoExecutor::Shared().ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1);
    if (i == 7 || i == 50) {
      return Status::Unavailable("boom at " + std::to_string(i));
    }
    return Status::Ok();
  });
  // The lowest failing index wins deterministically...
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_NE(status.ToString().find("boom at 7"), std::string::npos) << status.ToString();
  // ...and a failure never cancels the remaining items: in-flight parallel
  // writes cannot be recalled, so the executor runs everything (§3.3 relies
  // on this — stray versions become invisible orphans, not torn state).
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(IoExecutorTest, MaxParallelismCapsConcurrency) {
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  const Status status = IoExecutor::Shared().ParallelFor(
      32,
      [&](size_t) {
        const int now = current.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        current.fetch_sub(1);
        return Status::Ok();
      },
      /*max_parallelism=*/2);
  EXPECT_TRUE(status.ok());
  EXPECT_LE(peak.load(), 2);
}

TEST(IoExecutorTest, NestedParallelForCompletes) {
  // Commit flush (outer) over an engine whose BatchPut fans out again
  // (inner) must not deadlock even though both levels share the executor:
  // the caller of each level participates in its own drain.
  std::atomic<int> total{0};
  const Status status = IoExecutor::Shared().ParallelFor(4, [&](size_t) {
    return IoExecutor::Shared().ParallelFor(8, [&](size_t) {
      total.fetch_add(1);
      return Status::Ok();
    });
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(total.load(), 32);
}

TEST(IoExecutorTest, ZeroAndSingleItemShortCircuit) {
  int calls = 0;
  EXPECT_TRUE(IoExecutor::Shared()
                  .ParallelFor(0,
                               [&](size_t) {
                                 ++calls;
                                 return Status::Ok();
                               })
                  .ok());
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(IoExecutor::Shared()
                  .ParallelFor(1,
                               [&](size_t) {
                                 ++calls;
                                 return Status::Ok();
                               })
                  .ok());
  EXPECT_EQ(calls, 1);
}

// The documented answer to ThreadPool's destructor semantics (pending tasks
// are DROPPED): a commit flush never waits on pool drain, only on its own
// per-call latch, so a shut-down executor still completes every item inline
// on the calling thread.
TEST(IoExecutorTest, ShutdownExecutorStillCompletesAllWorkInline) {
  IoExecutor executor(2);
  executor.Shutdown();
  std::vector<std::atomic<int>> hits(16);
  const Status status = executor.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

// ---- Concurrent commit flush ------------------------------------------------------

// Zero-latency engine with no batch API (S3-like: every version object is
// its own PUT, so the commit flush must fan them out concurrently).
class PerKeyEngine : public SimEngineBase {
 public:
  explicit PerKeyEngine(Clock& clock)
      : SimEngineBase("per-key", clock, ZeroProfile(), StalenessModel{}, 16) {}
  bool SupportsBatchPut() const override { return false; }
  size_t MaxBatchSize() const override { return 1; }
};

// Proof of concurrency: version-object PUTs rendezvous — each blocks until
// all `expected` writers have arrived. Serial dispatch would see every PUT
// time out alone; parallel dispatch gets all of them through the barrier.
class RendezvousEngine final : public PerKeyEngine {
 public:
  RendezvousEngine(Clock& clock, size_t expected) : PerKeyEngine(clock), expected_(expected) {}

  Status Put(std::string key, std::string value) override {
    if (key.compare(0, 2, kVersionPrefix) == 0) {
      std::unique_lock<std::mutex> lock(mu_);
      ++arrived_;
      cv_.notify_all();
      if (cv_.wait_for(lock, std::chrono::seconds(2), [&] { return arrived_ >= expected_; })) {
        ++rendezvous_;
      }
    }
    return PerKeyEngine::Put(std::move(key), std::move(value));
  }

  size_t rendezvous() {
    std::lock_guard<std::mutex> lock(mu_);
    return rendezvous_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const size_t expected_;
  size_t arrived_ = 0;
  size_t rendezvous_ = 0;
};

TEST(ParallelCommitTest, CommitFlushDispatchesWritesConcurrently) {
  SimClock clock;
  RendezvousEngine storage(clock, 4);
  AftNode node("n0", storage, clock);
  ASSERT_TRUE(node.Start().ok());

  auto txid = node.StartTransaction();
  ASSERT_TRUE(txid.ok());
  for (const std::string key : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(node.Put(*txid, key, "v-" + key).ok());
  }
  ASSERT_TRUE(node.CommitTransaction(*txid).ok());
  // All four version writes were in flight at once.
  EXPECT_EQ(storage.rendezvous(), 4u);
}

// Engine that fails the PUT of any storage key containing `marker`.
class PoisonedEngine final : public PerKeyEngine {
 public:
  using PerKeyEngine::PerKeyEngine;

  Status Put(std::string key, std::string value) override {
    if (!poison_.empty() && key.find(poison_) != std::string::npos) {
      attempted_poison_puts_.fetch_add(1);
      return Status::Unavailable("injected write failure for " + key);
    }
    return PerKeyEngine::Put(std::move(key), std::move(value));
  }

  void Poison(std::string marker) { poison_ = std::move(marker); }
  uint64_t attempted_poison_puts() const { return attempted_poison_puts_.load(); }

 private:
  std::string poison_;  // Set before the commit under test; read-only after.
  std::atomic<uint64_t> attempted_poison_puts_{0};
};

// The §3.3 commit barrier under partial flush failure: one of six parallel
// data writes fails, so the commit record must never be written and NO
// partial state may be visible to any reader — the five versions that did
// land are invisible orphans.
TEST(ParallelCommitTest, PartialFlushFailureWritesNoCommitRecord) {
  SimClock clock;
  PoisonedEngine storage(clock);
  storage.Poison("/k3/");  // Fails the version object of user key "k3".
  AftNode node("n0", storage, clock);
  ASSERT_TRUE(node.Start().ok());

  auto txid = node.StartTransaction();
  ASSERT_TRUE(txid.ok());
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3", "k4", "k5"};
  for (const std::string& key : keys) {
    ASSERT_TRUE(node.Put(*txid, key, "payload-" + key).ok());
  }
  const auto committed = node.CommitTransaction(*txid);
  ASSERT_FALSE(committed.ok());
  EXPECT_TRUE(committed.status().IsUnavailable());
  EXPECT_GE(storage.attempted_poison_puts(), 1u);

  // Barrier holds: no commit record reached storage...
  auto commit_keys = storage.List(kCommitPrefix);
  ASSERT_TRUE(commit_keys.ok());
  EXPECT_TRUE(commit_keys->empty());
  // ...while the successful parallel writes are present as orphans (they
  // could not be recalled once dispatched) awaiting the orphan sweep.
  auto version_keys = storage.List(kVersionPrefix);
  ASSERT_TRUE(version_keys.ok());
  EXPECT_EQ(version_keys->size(), keys.size() - 1);

  // No partial reads: a fresh node bootstrapping from the same storage sees
  // none of the transaction's keys.
  AftNode fresh("n1", storage, clock);
  ASSERT_TRUE(fresh.Start().ok());
  auto reader = fresh.StartTransaction();
  ASSERT_TRUE(reader.ok());
  for (const std::string& key : keys) {
    auto read = fresh.Get(*reader, key);
    ASSERT_TRUE(read.ok()) << key;
    EXPECT_FALSE(read->has_value()) << "partial commit visible at " << key;
  }
}

// Under a sustained transient-fault storm, every acknowledged commit is
// all-or-nothing readable and every failed commit is all-or-nothing
// invisible — the parallel flush never changes the §3.3 guarantee.
TEST(ParallelCommitTest, TransientFaultStormPreservesAtomicity) {
  SimClock clock;
  PerKeyEngine storage(clock);
  AftNode node("n0", storage, clock);
  ASSERT_TRUE(node.Start().ok());

  storage.InjectTransientFaults(0.3);
  std::vector<bool> acked(20, false);
  for (int t = 0; t < 20; ++t) {
    auto txid = node.StartTransaction();
    ASSERT_TRUE(txid.ok());
    bool ok = true;
    for (int k = 0; k < 4; ++k) {
      ok = ok && node.Put(*txid, "t" + std::to_string(t) + "k" + std::to_string(k),
                          std::to_string(t))
                     .ok();
    }
    acked[t] = ok && node.CommitTransaction(*txid).ok();
  }
  storage.InjectTransientFaults(0.0);

  // Audit from a fresh node: acked commits fully readable, failed ones
  // fully invisible.
  AftNode fresh("n1", storage, clock);
  ASSERT_TRUE(fresh.Start().ok());
  auto reader = fresh.StartTransaction();
  ASSERT_TRUE(reader.ok());
  for (int t = 0; t < 20; ++t) {
    for (int k = 0; k < 4; ++k) {
      auto read = fresh.Get(*reader, "t" + std::to_string(t) + "k" + std::to_string(k));
      ASSERT_TRUE(read.ok());
      EXPECT_EQ(read->has_value(), acked[t]) << "t" << t << "k" << k;
    }
  }
}

// ---- PlanAtomicMultiRead ----------------------------------------------------------

class PlanAtomicMultiReadTest : public ::testing::Test {
 protected:
  TxnId Commit(int64_t ts, std::vector<std::string> keys) {
    auto record = std::make_shared<const CommitRecord>(
        CommitRecord{TxnId(ts, Uuid::Random(rng_)), std::move(keys)});
    commits_.Add(record);
    index_.AddCommit(*record);
    return record->id;
  }

  Rng rng_{42};
  KeyVersionIndex index_;
  CommitSetCache commits_;
  std::unordered_map<std::string, ReadSetEntry> read_set_;
};

// The §3.2 example as ONE batch: after the plan picks k@T2, the l entry of
// the same batch must also come from T2 (never l@T1 — a fractured batch).
TEST_F(PlanAtomicMultiReadTest, EarlierChoicesConstrainLaterKeysInBatch) {
  Commit(10, {"l"});                        // T1
  const TxnId t2 = Commit(20, {"k", "l"});  // T2

  const std::vector<std::string> keys = {"k", "l"};
  const auto plan = PlanAtomicMultiRead(keys, read_set_, index_, commits_);
  ASSERT_EQ(plan.size(), 2u);
  ASSERT_EQ(plan[0].kind, AtomicReadChoice::Kind::kVersion);
  ASSERT_EQ(plan[1].kind, AtomicReadChoice::Kind::kVersion);
  EXPECT_EQ(plan[0].version, t2);
  EXPECT_EQ(plan[1].version, t2) << "fractured batch: l@T1 with k@T2";
}

// A batch equals its sequential composition, and the CALLER's read set is
// never modified — only the plan's working copy folds choices in.
TEST_F(PlanAtomicMultiReadTest, CallerReadSetIsUntouched) {
  Commit(10, {"k"});
  const std::vector<std::string> keys = {"k"};
  (void)PlanAtomicMultiRead(keys, read_set_, index_, commits_);
  EXPECT_TRUE(read_set_.empty());
}

// The §5.2.1 forced abort inside a batch: a lower bound exists for a key but
// every candidate version is gone (GC'd), so the batch must report
// kNoValidVersion for that key.
TEST_F(PlanAtomicMultiReadTest, GcedLowerBoundYieldsNoValidVersion) {
  const TxnId t2 = Commit(20, {"k", "l"});
  read_set_["l"] = ReadSetEntry{t2, commits_.Lookup(t2)};

  auto t2_record = commits_.Lookup(t2);
  index_.RemoveCommit(*t2_record);
  commits_.Remove(t2);

  const std::vector<std::string> keys = {"k"};
  const auto plan = PlanAtomicMultiRead(keys, read_set_, index_, commits_);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, AtomicReadChoice::Kind::kNoValidVersion);
}

// ---- AftNode::MultiGet ------------------------------------------------------------

class MultiGetTest : public ::testing::Test {
 protected:
  MultiGetTest() : storage_(clock_, InstantDynamo()) {}

  std::unique_ptr<AftNode> MakeNode(const std::string& id, AftNodeOptions options = {}) {
    auto node = std::make_unique<AftNode>(id, storage_, clock_, options);
    EXPECT_TRUE(node->Start().ok());
    return node;
  }

  TxnId CommitSimple(AftNode& node, const std::vector<std::pair<std::string, std::string>>& kvs) {
    auto txid = node.StartTransaction();
    EXPECT_TRUE(txid.ok());
    for (const auto& [key, value] : kvs) {
      EXPECT_TRUE(node.Put(*txid, key, value).ok());
    }
    auto committed = node.CommitTransaction(*txid);
    EXPECT_TRUE(committed.ok());
    return committed.ok() ? *committed : TxnId();
  }

  SimClock clock_;
  SimDynamo storage_;
};

TEST_F(MultiGetTest, PositionalResultsAcrossAllReadKinds) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"a", "1"}, {"b", "2"}});

  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  ASSERT_TRUE(node->Put(*txid, "c", "3").ok());  // Buffered, uncommitted.

  const std::vector<std::string> keys = {"a", "c", "missing", "b"};
  auto reads = node->MultiGet(*txid, keys);
  ASSERT_TRUE(reads.ok());
  ASSERT_EQ(reads->size(), 4u);
  EXPECT_EQ((*reads)[0].value.value(), "1");
  // Read-your-writes: the buffered value, tagged as a write-buffer read.
  EXPECT_EQ((*reads)[1].value.value(), "3");
  EXPECT_EQ((*reads)[1].version, TxnId(0, *txid));
  // NULL version for the never-written key.
  EXPECT_FALSE((*reads)[2].value.has_value());
  EXPECT_EQ((*reads)[2].version, TxnId::Null());
  EXPECT_EQ((*reads)[3].value.value(), "2");
}

TEST_F(MultiGetTest, EmptyBatchIsANoOp) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  auto reads = node->MultiGet(*txid, {});
  ASSERT_TRUE(reads.ok());
  EXPECT_TRUE(reads->empty());
}

TEST_F(MultiGetTest, BatchInstallsRepeatableReadSet) {
  auto node = MakeNode("n0");
  const TxnId first = CommitSimple(*node, {{"a", "old"}});

  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  const std::vector<std::string> keys = {"a"};
  auto reads = node->MultiGet(*txid, keys);
  ASSERT_TRUE(reads.ok());
  ASSERT_EQ((*reads)[0].version, first);

  // A newer version lands mid-transaction; the installed read set keeps the
  // transaction on the version the batch read (Corollary 1.1).
  CommitSimple(*node, {{"a", "new"}});
  auto again = node->GetVersioned(*txid, "a");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->version, first);
  EXPECT_EQ(again->value.value(), "old");
}

TEST_F(MultiGetTest, BatchNeverReturnsFracturedReads) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "k1"}, {"l", "l1"}});  // T1
  CommitSimple(*node, {{"k", "k2"}, {"l", "l2"}});  // T2

  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  const std::vector<std::string> keys = {"k", "l"};
  auto reads = node->MultiGet(*txid, keys);
  ASSERT_TRUE(reads.ok());
  // Both keys from the SAME transaction — k2/l1 would be a fractured read.
  EXPECT_EQ((*reads)[0].version, (*reads)[1].version);
  EXPECT_EQ((*reads)[0].value.value(), "k2");
  EXPECT_EQ((*reads)[1].value.value(), "l2");
}

TEST_F(MultiGetTest, CacheHitsSkipStorageEntirely) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"a", "1"}, {"b", "2"}});

  // First batch populates the data cache.
  auto warm = node->StartTransaction();
  ASSERT_TRUE(warm.ok());
  const std::vector<std::string> keys = {"a", "b"};
  ASSERT_TRUE(node->MultiGet(*warm, keys).ok());
  ASSERT_TRUE(node->AbortTransaction(*warm).ok());

  const uint64_t gets_before = storage_.counters().gets.load();
  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  auto reads = node->MultiGet(*txid, keys);
  ASSERT_TRUE(reads.ok());
  EXPECT_EQ((*reads)[0].value.value(), "1");
  EXPECT_EQ((*reads)[1].value.value(), "2");
  EXPECT_EQ(storage_.counters().gets.load(), gets_before);
}

TEST_F(MultiGetTest, PackedLayoutBatchReadsRangedSlices) {
  AftNodeOptions options;
  options.packed_layout = true;
  options.data_cache_bytes = 0;  // Force ranged GETs on every read.
  auto node = MakeNode("n0", options);
  CommitSimple(*node, {{"a", "alpha"}, {"b", "bravo"}, {"c", "charlie"}});

  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  const std::vector<std::string> keys = {"c", "a", "b"};
  auto reads = node->MultiGet(*txid, keys);
  ASSERT_TRUE(reads.ok());
  EXPECT_EQ((*reads)[0].value.value(), "charlie");
  EXPECT_EQ((*reads)[1].value.value(), "alpha");
  EXPECT_EQ((*reads)[2].value.value(), "bravo");
  EXPECT_EQ((*reads)[0].version, (*reads)[1].version);
}

TEST_F(MultiGetTest, UnreadablePinnedVersionAbortsBatch) {
  AftNodeOptions options;
  options.data_cache_bytes = 0;
  options.storage_read_retries = 0;
  options.storage_read_backoff = Duration::zero();
  auto node = MakeNode("n0", options);
  const TxnId id = CommitSimple(*node, {{"k", "v"}, {"m", "w"}});

  // Delete one version's data behind the node's back (a GC race, §5.2.1).
  ASSERT_TRUE(storage_.Delete(VersionStorageKey("k", id.uuid)).ok());

  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  const std::vector<std::string> keys = {"m", "k"};
  auto reads = node->MultiGet(*txid, keys);
  ASSERT_FALSE(reads.ok());
  EXPECT_EQ(reads.status().code(), StatusCode::kAborted);
}

TEST_F(MultiGetTest, OperationsOnUnknownTransactionFail) {
  auto node = MakeNode("n0");
  Rng rng(7);
  const std::vector<std::string> keys = {"k"};
  EXPECT_EQ(node->MultiGet(Uuid::Random(rng), keys).status().code(),
            StatusCode::kFailedPrecondition);
}

// ---- Parallel maintenance (fault manager) -----------------------------------------

ClusterOptions ManualCluster(size_t nodes) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.start_background_threads = false;
  return options;
}

class ParallelMaintenanceTest : public ::testing::Test {
 protected:
  ParallelMaintenanceTest() : storage_(clock_, InstantDynamo()) {}

  TxnId CommitVia(AftNode& node, const std::string& key, const std::string& value) {
    auto txid = node.StartTransaction();
    EXPECT_TRUE(txid.ok());
    EXPECT_TRUE(node.Put(*txid, key, value).ok());
    auto committed = node.CommitTransaction(*txid);
    EXPECT_TRUE(committed.ok());
    return committed.ok() ? *committed : TxnId();
  }

  std::optional<std::string> ReadVia(AftNode& node, const std::string& key) {
    auto txid = node.StartTransaction();
    auto result = node.Get(*txid, key);
    EXPECT_TRUE(result.ok());
    (void)node.AbortTransaction(*txid);
    return result.ok() ? *result : std::nullopt;
  }

  SimClock clock_;
  SimDynamo storage_;
};

TEST_F(ParallelMaintenanceTest, LivenessScanFetchesCandidatesConcurrently) {
  ClusterOptions options = ManualCluster(2);
  options.fault_manager.maintenance_parallelism = 3;  // Smaller than the batch.
  ClusterDeployment cluster(storage_, clock_, options);
  ASSERT_TRUE(cluster.Start().ok());

  // Node 0 commits 12 transactions and never gossips (no bus round): the
  // fault manager must recover every one from the storage scan.
  for (int i = 0; i < 12; ++i) {
    CommitVia(*cluster.node(0), "mk" + std::to_string(i), std::to_string(i));
  }
  clock_.Advance(std::chrono::seconds(5));  // Clear the liveness grace.
  EXPECT_EQ(cluster.fault_manager().RunLivenessScanOnce(), 12u);
  EXPECT_EQ(cluster.fault_manager().stats().missed_commits_recovered.load(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(ReadVia(*cluster.node(1), "mk" + std::to_string(i)).value(), std::to_string(i));
  }
  // Idempotent, exactly as before parallelization.
  EXPECT_EQ(cluster.fault_manager().RunLivenessScanOnce(), 0u);
}

TEST_F(ParallelMaintenanceTest, LivenessScanWorksWithParallelismOne) {
  ClusterOptions options = ManualCluster(2);
  options.fault_manager.maintenance_parallelism = 1;  // Fully serial fetches.
  ClusterDeployment cluster(storage_, clock_, options);
  ASSERT_TRUE(cluster.Start().ok());
  for (int i = 0; i < 5; ++i) {
    CommitVia(*cluster.node(0), "sk" + std::to_string(i), "v");
  }
  clock_.Advance(std::chrono::seconds(5));
  EXPECT_EQ(cluster.fault_manager().RunLivenessScanOnce(), 5u);
}

TEST_F(ParallelMaintenanceTest, GlobalGcGroupsDeleteAndBookkeepCompletely) {
  ClusterOptions options = ManualCluster(2);
  options.fault_manager.maintenance_parallelism = 4;  // 10 victims -> 3 groups.
  ClusterDeployment cluster(storage_, clock_, options);
  ASSERT_TRUE(cluster.Start().ok());

  std::vector<TxnId> old_ids;
  for (int i = 0; i < 10; ++i) {
    const std::string key = "gk" + std::to_string(i);
    old_ids.push_back(CommitVia(*cluster.node(0), key, "old"));
    CommitVia(*cluster.node(0), key, "new");
  }
  cluster.bus().RunOnce();
  (void)cluster.node(0)->RunLocalGcOnce();
  (void)cluster.node(1)->RunLocalGcOnce();

  EXPECT_EQ(cluster.fault_manager().RunGlobalGcOnce(), 10u);
  cluster.fault_manager().Stop();  // Flush every deletion group.

  for (int i = 0; i < 10; ++i) {
    const std::string key = "gk" + std::to_string(i);
    // Every group deleted its records' data and commit record...
    EXPECT_TRUE(storage_.Get(CommitStorageKey(old_ids[i])).status().IsNotFound());
    EXPECT_TRUE(storage_.Get(VersionStorageKey(key, old_ids[i].uuid)).status().IsNotFound());
    // ...and completed its bookkeeping (tombstones acknowledged).
    EXPECT_FALSE(cluster.node(0)->HasLocallyDeleted(old_ids[i]));
    // The surviving versions read fine everywhere.
    EXPECT_EQ(ReadVia(*cluster.node(0), key).value(), "new");
    EXPECT_EQ(ReadVia(*cluster.node(1), key).value(), "new");
  }
  EXPECT_EQ(cluster.fault_manager().stats().txns_deleted.load(), 10u);
}

}  // namespace
}  // namespace aft
