// Tests for the observability layer: metrics registry exactness and
// exposition format, trace ring semantics, trace propagation across the real
// TCP wire, the kGetMetrics RPC, and the plaintext HTTP exporter.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/cluster/deployment.h"
#include "src/common/contention.h"
#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_http.h"
#include "src/obs/trace.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using net::AftServiceServer;
using net::NetEndpoint;
using net::RemoteAftClient;
using net::RemoteAftClientOptions;
using net::Socket;
using net::TcpConnect;
using obs::CallbackType;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsHttpServer;
using obs::MetricsRegistry;
using obs::TraceContext;
using obs::Tracer;
using obs::TraceSpan;

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

RemoteAftClientOptions FastClient() {
  RemoteAftClientOptions options;
  options.connect_timeout = std::chrono::seconds(2);
  options.call_timeout = std::chrono::seconds(5);
  options.initial_backoff = std::chrono::milliseconds(1);
  options.max_backoff = std::chrono::milliseconds(20);
  options.max_attempts = 2;
  return options;
}

// ---- Instruments ------------------------------------------------------------

TEST(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(MetricsTest, GaugeMovesBothWays) {
  Gauge gauge;
  gauge.Set(10.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 10.5);
  gauge.Add(2.0);
  gauge.Sub(0.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 12.0);
}

TEST(MetricsTest, HistogramBucketsFollowLeSemantics) {
  Histogram hist({1.0, 2.0, 4.0});
  // A value equal to a boundary belongs to that boundary's bucket (le).
  hist.Observe(1.0);
  hist.Observe(1.5);
  hist.Observe(4.0);
  hist.Observe(100.0);  // +Inf bucket.
  const std::vector<uint64_t> cumulative = hist.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 4u);
  EXPECT_EQ(cumulative[0], 1u);  // le=1
  EXPECT_EQ(cumulative[1], 2u);  // le=2
  EXPECT_EQ(cumulative[2], 3u);  // le=4
  EXPECT_EQ(cumulative[3], 4u);  // +Inf
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 106.5);
}

TEST(MetricsTest, ConcurrentHistogramObservationsAreExact) {
  Histogram hist(DefaultLatencyBoundariesMs());
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<double>(t) + 1.0);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
  // Sum of (1 + 2 + ... + 8) * 5000.
  EXPECT_DOUBLE_EQ(hist.Sum(), 36.0 * kPerThread);
}

// ---- Registry + exposition --------------------------------------------------

TEST(MetricsRegistryTest, ExpositionRendersAllTypesDeterministically) {
  MetricsRegistry registry;
  registry.GetCounter("test_ops_total", "Operations", {{"node", "a"}})->Increment(3);
  registry.GetGauge("test_depth", "Queue depth")->Set(2.5);
  Histogram* hist =
      registry.GetHistogram("test_latency_ms", "Latency (ms)", {1.0, 2.0}, {{"op", "get"}});
  hist->Observe(0.5);
  hist->Observe(1.5);
  hist->Observe(9.0);

  const std::string expected =
      "# HELP test_depth Queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth 2.5\n"
      "# HELP test_latency_ms Latency (ms)\n"
      "# TYPE test_latency_ms histogram\n"
      "test_latency_ms_bucket{op=\"get\",le=\"1\"} 1\n"
      "test_latency_ms_bucket{op=\"get\",le=\"2\"} 2\n"
      "test_latency_ms_bucket{op=\"get\",le=\"+Inf\"} 3\n"
      "test_latency_ms_sum{op=\"get\"} 11\n"
      "test_latency_ms_count{op=\"get\"} 3\n"
      "# HELP test_ops_total Operations\n"
      "# TYPE test_ops_total counter\n"
      "test_ops_total{node=\"a\"} 3\n";
  EXPECT_EQ(registry.Exposition(), expected);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("test_esc_total", "x", {{"k", "a\"b\\c\nd"}})->Increment();
  const std::string exposition = registry.Exposition();
  EXPECT_NE(exposition.find("test_esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos)
      << exposition;
}

TEST(MetricsRegistryTest, SameNameAndLabelsIsTheSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test_same_total", "x", {{"l", "1"}});
  Counter* b = registry.GetCounter("test_same_total", "x", {{"l", "1"}});
  EXPECT_EQ(a, b);
  Counter* other = registry.GetCounter("test_same_total", "x", {{"l", "2"}});
  EXPECT_NE(a, other);
}

TEST(MetricsRegistryTest, TypeConflictDegradesToDetachedInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("test_conflict", "x")->Increment();
  // Same name re-requested as a gauge: usable (never nullptr) but detached.
  Gauge* gauge = registry.GetGauge("test_conflict", "x");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(5);
  const std::string exposition = registry.Exposition();
  // The original counter renders once; the detached gauge never does.
  EXPECT_NE(exposition.find("test_conflict 1\n"), std::string::npos);
  EXPECT_EQ(exposition.find("test_conflict 5"), std::string::npos);
}

TEST(MetricsRegistryTest, CallbacksReadLiveValuesAndUnregisterOnDestruction) {
  MetricsRegistry registry;
  double level = 7.0;
  {
    auto handle = registry.RegisterCallback("test_level", "x", CallbackType::kGauge, {},
                                            [&level] { return level; });
    double value = 0;
    ASSERT_TRUE(registry.ReadValue("test_level", {}, &value));
    EXPECT_DOUBLE_EQ(value, 7.0);
    level = 9.0;
    ASSERT_TRUE(registry.ReadValue("test_level", {}, &value));
    EXPECT_DOUBLE_EQ(value, 9.0);
    EXPECT_NE(registry.Exposition().find("test_level 9\n"), std::string::npos);
  }
  // Handle destroyed: the family renders nothing (no dangling callback).
  EXPECT_EQ(registry.Exposition().find("test_level "), std::string::npos);
}

TEST(MetricsRegistryTest, ReregisteringReplacesAndSupersededHandleIsInert) {
  MetricsRegistry registry;
  auto first = registry.RegisterCallback("test_replace", "x", CallbackType::kGauge, {},
                                         [] { return 1.0; });
  auto second = registry.RegisterCallback("test_replace", "x", CallbackType::kGauge, {},
                                          [] { return 2.0; });
  double value = 0;
  ASSERT_TRUE(registry.ReadValue("test_replace", {}, &value));
  EXPECT_DOUBLE_EQ(value, 2.0);
  // Destroying the superseded handle must NOT remove the live callback.
  first = obs::ScopedMetricCallback();
  ASSERT_TRUE(registry.ReadValue("test_replace", {}, &value));
  EXPECT_DOUBLE_EQ(value, 2.0);
}

// ---- Tracer -----------------------------------------------------------------

TEST(TraceTest, SamplesOneInN) {
  Tracer tracer;
  tracer.SetSampleEveryN(0);
  EXPECT_FALSE(tracer.StartTrace().sampled());
  tracer.SetSampleEveryN(2);
  int sampled = 0;
  for (int i = 0; i < 10; ++i) {
    if (tracer.StartTrace().sampled()) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 5);
}

TEST(TraceTest, RingOverwritesOldestAndDumpsOldestFirst) {
  Tracer tracer(4);
  for (uint64_t i = 1; i <= 6; ++i) {
    obs::TraceEvent event;
    event.trace_id = 1;
    event.name = "span" + std::to_string(i);
    event.start_us = i;
    tracer.Record(std::move(event));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.total_recorded(), 6u);
  const std::string json = tracer.DumpJson();
  // Events 1 and 2 were overwritten; 3..6 remain, oldest first.
  EXPECT_EQ(json.find("span1"), std::string::npos);
  EXPECT_EQ(json.find("span2"), std::string::npos);
  EXPECT_LT(json.find("span3"), json.find("span4"));
  EXPECT_LT(json.find("span4"), json.find("span5"));
  EXPECT_LT(json.find("span5"), json.find("span6"));
  EXPECT_EQ(json.front(), '[');
}

TEST(TraceTest, UnsampledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.SetSampleEveryN(0);
  tracer.Clear();
  const uint64_t before = tracer.total_recorded();
  {
    TraceSpan span(TraceContext{}, "ShouldNotAppear");
    span.AddArg("k", "v");
  }
  EXPECT_EQ(tracer.total_recorded(), before);
}

TEST(TraceTest, JsonEscapesArgValues) {
  Tracer tracer(4);
  obs::TraceEvent event;
  event.trace_id = 1;
  event.name = "quote\"name";
  event.args.emplace_back("key", "line\nbreak");
  tracer.Record(std::move(event));
  const std::string json = tracer.DumpJson();
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos) << json;
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos) << json;
}

// ---- LatencyRecorder cap (satellite) ----------------------------------------

TEST(LatencyRecorderTest, StaysExactUnderTheCap) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) {
    recorder.RecordMillis(static_cast<double>(i));
  }
  EXPECT_FALSE(recorder.overflowed());
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, 100u);
  EXPECT_DOUBLE_EQ(summary.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(summary.max_ms, 100.0);
  EXPECT_DOUBLE_EQ(summary.median_ms, 50.5);
}

TEST(LatencyRecorderTest, OverflowSwitchesToBoundedHistogramEstimates) {
  LatencyRecorder recorder;
  const size_t total = LatencyRecorder::kMaxExactSamples + 20000;
  for (size_t i = 0; i < total; ++i) {
    // Uniform over (0, 100] ms.
    recorder.RecordMillis(static_cast<double>(i % 1000) / 10.0 + 0.1);
  }
  EXPECT_TRUE(recorder.overflowed());
  const LatencySummary summary = recorder.Summarize();
  EXPECT_EQ(summary.count, total);
  // Histogram estimates: within the documented ~8% relative bucket error.
  EXPECT_NEAR(summary.median_ms, 50.0, 5.0);
  EXPECT_NEAR(summary.p99_ms, 99.0, 9.0);
  EXPECT_GT(summary.mean_ms, 45.0);
  EXPECT_LT(summary.mean_ms, 55.0);
}

TEST(LatencyRecorderTest, MergePreservesTotalCountPastTheCap) {
  LatencyRecorder a;
  LatencyRecorder b;
  for (int i = 0; i < 100; ++i) {
    a.RecordMillis(1.0);
    b.RecordMillis(2.0);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_NEAR(a.Summarize().mean_ms, 1.5, 0.1);
}

// ---- LogScope (satellite) ---------------------------------------------------

TEST(LogScopeTest, NestsAndRestores) {
  EXPECT_EQ(LogScope::Current(), "");
  {
    LogScope outer("node=a");
    EXPECT_EQ(LogScope::Current(), "node=a");
    {
      LogScope inner("node=a txn=t1");
      EXPECT_EQ(LogScope::Current(), "node=a txn=t1");
    }
    EXPECT_EQ(LogScope::Current(), "node=a");
  }
  EXPECT_EQ(LogScope::Current(), "");
}

// ---- End-to-end over TCP ----------------------------------------------------

ClusterOptions TcpManualCluster(size_t nodes) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.transport = ClusterTransport::kTcp;
  options.start_background_threads = false;
  return options;
}

TEST(NetObsTest, GetMetricsRpcReturnsPrometheusText) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  AftNode node("obs-rpc-node", storage, clock);
  ASSERT_TRUE(node.Start().ok());
  AftServiceServer server(node);
  ASSERT_TRUE(server.Start().ok());
  RemoteAftClient client({server.endpoint()}, FastClient());

  // Run one commit so the interesting metrics are non-zero.
  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(client.Put(*session, "k", "v").ok());
  ASSERT_TRUE(client.Commit(*session).ok());

  auto text = client.GetMetrics(0);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Node lifecycle counters, with this node's label.
  EXPECT_NE(text->find("aft_node_txns_committed_total{node=\"obs-rpc-node\"} 1"),
            std::string::npos);
  // Commit latency histogram.
  EXPECT_NE(text->find("# TYPE aft_node_commit_latency_ms histogram"), std::string::npos);
  EXPECT_NE(text->find("aft_node_commit_latency_ms_bucket"), std::string::npos);
  // Cache hit/miss counters (callback metrics).
  EXPECT_NE(text->find("aft_commit_set_cache_lookup_hits_total"), std::string::npos);
  EXPECT_NE(text->find("aft_node_data_cache_hits_total"), std::string::npos);
  // Server-side RPC metrics and pipeline gauge.
  EXPECT_NE(text->find("aft_net_rpc_latency_ms_bucket"), std::string::npos);
  EXPECT_NE(text->find("aft_net_requests_inflight"), std::string::npos);
  // Storage engine counters.
  EXPECT_NE(text->find("aft_storage_puts_total{engine=\"dynamodb\"}"), std::string::npos);

  node.Kill();
  server.Stop();
}

TEST(NetObsTest, TracePropagatesClientToServerToGossipToRemoteApply) {
  Tracer& tracer = Tracer::Global();
  tracer.SetSampleEveryN(1);
  tracer.Clear();

  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  ClusterDeployment cluster(storage, clock, TcpManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  RemoteAftClient client(cluster.ServiceEndpoints(), FastClient());

  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->trace.sampled());
  ASSERT_TRUE(client.Put(*session, "traced-key", "traced-value").ok());
  ASSERT_TRUE(client.Commit(*session).ok());
  cluster.bus().RunOnce();  // Gossip: broadcast + remote apply.

  tracer.SetSampleEveryN(0);
  const std::string json = tracer.DumpJson();
  const std::string id = std::to_string(session->trace.trace_id);
  // Every lifecycle stage appears, all tagged with the client-minted id.
  for (const char* span : {"\"ClientStartTxn\"", "\"StartTxn\"", "\"ClientCommit\"",
                           "\"Commit\"", "\"CommitFlush\"", "\"CommitRecordWrite\"",
                           "\"GossipBroadcast\"", "\"RemoteApply\""}) {
    EXPECT_NE(json.find(span), std::string::npos) << "missing " << span << " in\n" << json;
  }
  EXPECT_NE(json.find("\"trace_id\":" + id), std::string::npos) << json;
  // The GossipBroadcast and RemoteApply spans carry the same trace id (they
  // appear after the commit spans in ring order).
  const size_t gossip_pos = json.find("\"GossipBroadcast\"");
  ASSERT_NE(gossip_pos, std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":" + id, gossip_pos), std::string::npos);
}

TEST(NetObsTest, HttpExporterServesMetricsAndTraces) {
  MetricsRegistry::Global().GetCounter("test_http_smoke_total", "x")->Increment();
  MetricsHttpServer server(MetricsRegistry::Global(), Tracer::Global());
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);

  auto get = [&](const std::string& request_line) {
    auto socket = TcpConnect(NetEndpoint{"127.0.0.1", server.port()}, std::chrono::seconds(2));
    EXPECT_TRUE(socket.ok());
    const std::string request = request_line + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    EXPECT_TRUE(socket->SendAll(request.data(), request.size()).ok());
    (void)socket->SetRecvTimeout(std::chrono::seconds(2));
    std::string response;
    char buf[4096];
    while (true) {
      auto n = socket->RecvSome(buf, sizeof(buf));
      if (!n.ok() || *n == 0) {
        break;
      }
      response.append(buf, *n);
    }
    return response;
  };

  const std::string metrics = get("GET /metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("test_http_smoke_total"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  const std::string traces = get("GET /traces");
  EXPECT_NE(traces.find("200 OK"), std::string::npos);
  EXPECT_NE(traces.find("application/json"), std::string::npos);

  EXPECT_NE(get("GET /nope").find("404"), std::string::npos);
  EXPECT_NE(get("POST /metrics").find("405"), std::string::npos);

  server.Stop();
}

// Sends `raw` verbatim and reads until EOF — the exporter speaks
// Connection: close, so EOF delimits the response.
std::string RawHttp(uint16_t port, const std::string& raw) {
  auto socket = TcpConnect(NetEndpoint{"127.0.0.1", port}, std::chrono::seconds(2));
  EXPECT_TRUE(socket.ok());
  if (!socket.ok()) {
    return "";
  }
  EXPECT_TRUE(socket->SendAll(raw.data(), raw.size()).ok());
  (void)socket->SetRecvTimeout(std::chrono::seconds(2));
  std::string response;
  char buf[4096];
  while (true) {
    auto n = socket->RecvSome(buf, sizeof(buf));
    if (!n.ok() || *n == 0) {
      break;
    }
    response.append(buf, *n);
  }
  return response;
}

// Every response, success or error, must carry a correct Content-Length and
// Connection: close — scrapers read to EOF and reuse nothing, and a missing
// length on an error path desyncs pipelined clients (metrics_http.cc routes
// every path through one response builder; this test pins that).
void ExpectFramed(const std::string& response, const std::string& expect_status) {
  EXPECT_NE(response.find(expect_status), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos) << response;
  const size_t cl = response.find("Content-Length: ");
  ASSERT_NE(cl, std::string::npos) << response;
  const size_t body_start = response.find("\r\n\r\n");
  ASSERT_NE(body_start, std::string::npos) << response;
  const size_t declared = std::stoul(response.substr(cl + 16));
  EXPECT_EQ(response.size() - (body_start + 4), declared) << response;
}

TEST(ObsHttpTest, ErrorResponsesCarryFramingHeaders) {
  MetricsHttpServer server(MetricsRegistry::Global(), Tracer::Global());
  ASSERT_TRUE(server.Start(0).ok());

  ExpectFramed(RawHttp(server.port(), "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"),
               "404 Not Found");
  const std::string method_not_allowed =
      RawHttp(server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  ExpectFramed(method_not_allowed, "405 Method Not Allowed");
  EXPECT_NE(method_not_allowed.find("Allow: GET\r\n"), std::string::npos);
  // Request line with no second space: malformed.
  ExpectFramed(RawHttp(server.port(), "GET /metrics\r\n\r\n"), "400 Bad Request");
  // Headers that never terminate within the exporter's 8 KiB cap.
  ExpectFramed(RawHttp(server.port(),
                       "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(9000, 'a')),
               "400 Bad Request");

  server.Stop();
}

TEST(ObsHttpTest, HealthSurfaceEndpoints) {
  MetricsHttpServer server(MetricsRegistry::Global(), Tracer::Global());
  ASSERT_TRUE(server.Start(0).ok());
  auto get = [&](const std::string& path) {
    return RawHttp(server.port(), "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
  };

  // Liveness always answers ok.
  const std::string healthz = get("/healthz");
  ExpectFramed(healthz, "200 OK");
  EXPECT_NE(healthz.find("ok\n"), std::string::npos);

  // Readiness: vacuously ready, then a failing check flips to 503, and
  // releasing the check restores 200.
  EXPECT_NE(get("/readyz").find("200 OK"), std::string::npos);
  {
    obs::ScopedReadyCheck failing = obs::RegisterReadyCheck(
        "test_gate", [] { return std::make_pair(false, std::string("not yet")); });
    const std::string not_ready = get("/readyz");
    ExpectFramed(not_ready, "503 Service Unavailable");
    EXPECT_NE(not_ready.find("test_gate: FAIL not yet"), std::string::npos);

    obs::ScopedReadyCheck passing = obs::RegisterReadyCheck(
        "test_ok", [] { return std::make_pair(true, std::string()); });
    const std::string mixed = get("/readyz");
    EXPECT_NE(mixed.find("503"), std::string::npos);  // One FAIL fails the whole.
    EXPECT_NE(mixed.find("test_ok: ok"), std::string::npos);
  }
  EXPECT_NE(get("/readyz").find("200 OK"), std::string::npos);

  // /varz renders published keys plus the build/process built-ins.
  obs::SetVarz("test.flag", "42");
  const std::string varz = get("/varz");
  ExpectFramed(varz, "200 OK");
  EXPECT_NE(varz.find("test.flag: 42"), std::string::npos);
  EXPECT_NE(varz.find("build.mode: "), std::string::npos);
  EXPECT_NE(varz.find("proc.uptime_s: "), std::string::npos);

  // /debug/contention renders the ranked site table (the named mutex below
  // guarantees at least one row exists).
  Mutex named("test.http_surface");
  { MutexLock lock(named); }
  const std::string contention = get("/debug/contention");
  ExpectFramed(contention, "200 OK");
  EXPECT_NE(contention.find("contention sites"), std::string::npos);
  EXPECT_NE(contention.find("test.http_surface"), std::string::npos);

  // The contention bridge: scraping /metrics exposes per-site counters.
  const std::string metrics = get("/metrics");
  EXPECT_NE(metrics.find("aft_lock_wait_seconds_total"), std::string::npos);
  EXPECT_NE(metrics.find("lock=\"test.http_surface\""), std::string::npos);

  server.Stop();
}

}  // namespace
}  // namespace aft
