// Cross-transaction commit batching (src/core/commit_batcher.h) and the
// CommitUnits storage contract (src/storage/storage_engine.h).
//
// The load-bearing guarantees under test:
//   * Per-unit §3.3 ordering — no member's commit record is visible (even
//     after a LocalEngine reopen/replay) unless that member's data is
//     durable.
//   * Per-unit poisoning — one member's failed write aborts that member
//     alone; its commit record is never written, its batch-mates commit and
//     stay readable.
//   * Fusion — a multi-unit round on the local engine rides ONE batched API
//     call and ONE group-committed fsync.
//   * Equivalence — a batched node commit is observably identical to the
//     legacy unbatched one, including after crash-recovery replay, and a
//     failed round leaves the transaction retryable.
// The TSan stress at the bottom drives concurrent committers through the
// batcher under fault injection (run under -DAFT_SANITIZE=thread in CI).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/aft_node.h"
#include "src/core/records.h"
#include "src/storage/local_engine.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/aft_cbatch_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    path_ = dir == nullptr ? "" : dir;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::map<std::string, std::string> Snapshot(StorageEngine& engine) {
  std::map<std::string, std::string> out;
  auto keys = engine.List("");
  EXPECT_TRUE(keys.ok());
  for (const std::string& key : *keys) {
    auto value = engine.Get(key);
    EXPECT_TRUE(value.ok()) << key;
    if (value.ok()) {
      out[key] = *value;
    }
  }
  return out;
}


// Zero-latency engine profile: these tests exercise ordering and contention,
// not simulated round-trip times.
SimDynamoOptions InstantDynamoOptions() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

// Builds one commit unit over caller-owned backing vectors.
struct UnitFixture {
  std::vector<WriteOp> data;
  WriteOp record;
  CommitUnit unit() { return CommitUnit{std::span<WriteOp>(data), record}; }
};

UnitFixture MakeUnit(const std::string& tag, int data_ops) {
  UnitFixture f;
  for (int i = 0; i < data_ops; ++i) {
    f.data.push_back(
        WriteOp{"data/" + tag + "/" + std::to_string(i), "payload-" + tag + std::to_string(i)});
  }
  f.record = WriteOp{"commit/" + tag, "record-" + tag};
  return f;
}

AftNodeOptions FastNodeOptions() {
  AftNodeOptions options;
  options.service_cores = 0;  // No service-time throttling in tests.
  return options;
}

// ---- storage-level contract -------------------------------------------------

TEST(CommitUnitsLocalEngine, MultiUnitRoundIsOneApiCallAndOneFsync) {
  TempDir dir;
  auto engine = LocalEngine::Open(dir.path());
  ASSERT_TRUE(engine.ok());

  UnitFixture a = MakeUnit("a", 2);
  UnitFixture b = MakeUnit("b", 3);
  UnitFixture c = MakeUnit("c", 1);
  std::vector<CommitUnit> units = {a.unit(), b.unit(), c.unit()};
  std::vector<Status> results(units.size());

  const Wal::Stats before = (*engine)->wal_stats();
  const uint64_t api_before = (*engine)->counters().api_calls.load();
  (*engine)->CommitUnits(units, results);
  const Wal::Stats after = (*engine)->wal_stats();

  for (const Status& r : results) {
    EXPECT_TRUE(r.ok()) << r.ToString();
  }
  // The whole round: one batched API call, one WAL append batch, one fsync.
  EXPECT_EQ((*engine)->counters().api_calls.load() - api_before, 1u);
  EXPECT_EQ(after.batches - before.batches, 1u);
  EXPECT_EQ(after.fsyncs - before.fsyncs, 1u);
  // 6 data records + 3 commit records.
  EXPECT_EQ(after.records - before.records, 9u);

  for (const std::string& tag : {"a", "b", "c"}) {
    auto record = (*engine)->Get("commit/" + tag);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(*record, "record-" + tag);
  }
  auto payload = (*engine)->Get("data/b/2");
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "payload-b2");
}

TEST(CommitUnitsLocalEngine, PoisonedUnitAbortsAloneAndSurvivesReplay) {
  TempDir dir;
  std::map<std::string, std::string> committed_view;
  {
    auto engine = LocalEngine::Open(dir.path());
    ASSERT_TRUE(engine.ok());
    // Fail unit b's SECOND data op: its first op is already accepted (the
    // engine's batches are not atomic), but its commit record must be
    // withheld.
    (*engine)->SetWriteFailureInjector([](std::string_view key) {
      if (key == "data/b/1") {
        return Status::Unavailable("injected write failure");
      }
      return Status::Ok();
    });

    UnitFixture a = MakeUnit("a", 2);
    UnitFixture b = MakeUnit("b", 3);
    UnitFixture c = MakeUnit("c", 1);
    std::vector<CommitUnit> units = {a.unit(), b.unit(), c.unit()};
    std::vector<Status> results(units.size());
    (*engine)->CommitUnits(units, results);

    EXPECT_TRUE(results[0].ok());
    EXPECT_FALSE(results[1].ok());
    EXPECT_TRUE(results[2].ok());

    // Batch-mates committed and readable; b's record absent, its accepted
    // data ops are invisible orphans.
    EXPECT_TRUE((*engine)->Get("commit/a").ok());
    EXPECT_EQ((*engine)->Get("commit/b").status().code(), StatusCode::kNotFound);
    EXPECT_TRUE((*engine)->Get("commit/c").ok());
    EXPECT_TRUE((*engine)->Get("data/b/0").ok());   // orphan (sweep's job)
    EXPECT_EQ((*engine)->Get("data/b/1").status().code(), StatusCode::kNotFound);
    committed_view = Snapshot(**engine);
  }
  // Reopen: WAL replay must reproduce the same state — in particular the
  // poisoned unit's record must STILL be absent.
  auto reopened = LocalEngine::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Snapshot(**reopened), committed_view);
  EXPECT_EQ((*reopened)->Get("commit/b").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE((*reopened)->Get("commit/a").ok());
  EXPECT_TRUE((*reopened)->Get("commit/c").ok());
}

TEST(CommitUnitsLocalEngine, FailedRecordWritePoisonsThatUnitOnly) {
  TempDir dir;
  auto engine = LocalEngine::Open(dir.path());
  ASSERT_TRUE(engine.ok());
  (*engine)->SetWriteFailureInjector([](std::string_view key) {
    if (key == "commit/b") {
      return Status::Unavailable("injected record failure");
    }
    return Status::Ok();
  });
  UnitFixture a = MakeUnit("a", 1);
  UnitFixture b = MakeUnit("b", 1);
  std::vector<CommitUnit> units = {a.unit(), b.unit()};
  std::vector<Status> results(units.size());
  (*engine)->CommitUnits(units, results);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE((*engine)->Get("commit/a").ok());
  EXPECT_EQ((*engine)->Get("commit/b").status().code(), StatusCode::kNotFound);
}

TEST(CommitUnitsDefaultImpl, TwoRoundFallbackPreservesPerUnitOutcomes) {
  // SimDynamo has no CommitUnits override: the default two merged
  // BatchPutEach rounds must produce the same contract.
  RealClock clock(0.002);
  SimDynamoOptions options = InstantDynamoOptions();
  SimDynamo engine(clock, options);

  UnitFixture a = MakeUnit("a", 2);
  UnitFixture b = MakeUnit("b", 1);
  std::vector<CommitUnit> units = {a.unit(), b.unit()};
  std::vector<Status> results(units.size());
  engine.CommitUnits(units, results);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(engine.PeekLatest("commit/a").has_value());
  EXPECT_TRUE(engine.PeekLatest("commit/b").has_value());
  EXPECT_TRUE(engine.PeekLatest("data/a/1").has_value());

  // Total failure: every unit is poisoned and no record is written.
  engine.InjectTransientFaults(1.0);
  UnitFixture c = MakeUnit("c", 1);
  UnitFixture d = MakeUnit("d", 1);
  std::vector<CommitUnit> units2 = {c.unit(), d.unit()};
  std::vector<Status> results2(units2.size());
  engine.CommitUnits(units2, results2);
  EXPECT_FALSE(results2[0].ok());
  EXPECT_FALSE(results2[1].ok());
  EXPECT_FALSE(engine.PeekLatest("commit/c").has_value());
  EXPECT_FALSE(engine.PeekLatest("commit/d").has_value());
}

// ---- node-level contract ----------------------------------------------------

TEST(CommitBatcherNode, BatchedCommitEquivalentToUnbatchedAfterReplay) {
  // The same workload through a batched and an unbatched node must leave
  // equivalent committed state, including after a reopen/replay cycle.
  for (const bool batching : {true, false}) {
    TempDir dir;
    RealClock clock(0.002);
    {
      auto engine = LocalEngine::Open(dir.path());
      ASSERT_TRUE(engine.ok());
      AftNodeOptions options = FastNodeOptions();
      options.enable_commit_batching = batching;
      AftNode node("n0", **engine, clock, options);
      ASSERT_TRUE(node.Start().ok());
      for (int t = 0; t < 10; ++t) {
        auto txid = node.StartTransaction();
        ASSERT_TRUE(txid.ok());
        ASSERT_TRUE(node.Put(*txid, "k" + std::to_string(t % 3), "v" + std::to_string(t)).ok());
        ASSERT_TRUE(node.Put(*txid, "shared", "round-" + std::to_string(t)).ok());
        ASSERT_TRUE(node.CommitTransaction(*txid).ok());
      }
    }
    auto reopened = LocalEngine::Open(dir.path());
    ASSERT_TRUE(reopened.ok());
    AftNode reader("reader", **reopened, clock, FastNodeOptions());
    ASSERT_TRUE(reader.Start().ok());
    auto txid = reader.StartTransaction();
    ASSERT_TRUE(txid.ok());
    auto shared = reader.Get(*txid, "shared");
    ASSERT_TRUE(shared.ok()) << "batching=" << batching;
    ASSERT_TRUE(shared->has_value());
    EXPECT_EQ(**shared, "round-9");
    auto k2 = reader.Get(*txid, "k2");
    ASSERT_TRUE(k2.ok());
    ASSERT_TRUE(k2->has_value());
    EXPECT_EQ(**k2, "v8");
  }
}

TEST(CommitBatcherNode, FailedRoundLeavesTransactionRetryable) {
  TempDir dir;
  RealClock clock(0.002);
  auto engine = LocalEngine::Open(dir.path());
  ASSERT_TRUE(engine.ok());
  AftNode node("n0", **engine, clock, FastNodeOptions());
  ASSERT_TRUE(node.Start().ok());

  std::atomic<bool> fail{true};
  (*engine)->SetWriteFailureInjector([&fail](std::string_view key) {
    if (fail.load() && key.find("doomed") != std::string_view::npos) {
      return Status::Unavailable("injected");
    }
    return Status::Ok();
  });

  auto txid = node.StartTransaction();
  ASSERT_TRUE(txid.ok());
  ASSERT_TRUE(node.Put(*txid, "doomed", "v1").ok());
  EXPECT_FALSE(node.CommitTransaction(*txid).ok());
  // No commit record may exist for the failed attempt.
  auto commits = (*engine)->List(std::string(kCommitPrefix));
  ASSERT_TRUE(commits.ok());
  EXPECT_TRUE(commits->empty());

  // The transaction survives and a retry (fault cleared) commits it.
  fail.store(false);
  auto commit_id = node.CommitTransaction(*txid);
  ASSERT_TRUE(commit_id.ok());
  auto reader_txn = node.StartTransaction();
  ASSERT_TRUE(reader_txn.ok());
  auto read = node.Get(*reader_txn, "doomed");
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read->has_value());
  EXPECT_EQ(**read, "v1");
}

TEST(CommitBatcherNode, PoisonedMemberDoesNotFailBatchMates) {
  // Concurrent committers where exactly one member's data write fails: the
  // poisoned transaction aborts with no commit record; every batch-mate
  // commits and its data survives a replay cycle.
  TempDir dir;
  RealClock clock(0.002);
  std::map<std::string, std::string> state_before_reopen;
  {
    auto engine = LocalEngine::Open(dir.path());
    ASSERT_TRUE(engine.ok());
    AftNode node("n0", **engine, clock, FastNodeOptions());
    ASSERT_TRUE(node.Start().ok());
    (*engine)->SetWriteFailureInjector([](std::string_view key) {
      if (key.find("poison") != std::string_view::npos) {
        return Status::Unavailable("injected");
      }
      return Status::Ok();
    });

    constexpr int kThreads = 8;
    std::atomic<int> committed{0};
    std::atomic<int> failed{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        auto txid = node.StartTransaction();
        ASSERT_TRUE(txid.ok());
        const std::string key = (i == 3) ? "poisoned-key" : ("ok-" + std::to_string(i));
        ASSERT_TRUE(node.Put(*txid, key, "value-" + std::to_string(i)).ok());
        auto result = node.CommitTransaction(*txid);
        if (result.ok()) {
          committed.fetch_add(1);
        } else {
          failed.fetch_add(1);
          ASSERT_TRUE(node.AbortTransaction(*txid).ok());
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    EXPECT_EQ(committed.load(), kThreads - 1);
    EXPECT_EQ(failed.load(), 1);

    auto commits = (*engine)->List(std::string(kCommitPrefix));
    ASSERT_TRUE(commits.ok());
    EXPECT_EQ(commits->size(), static_cast<size_t>(kThreads - 1));
    state_before_reopen = Snapshot(**engine);
  }
  // Replay equivalence: reopen and read the mates' values through a fresh
  // node; the poisoned transaction must not have resurfaced.
  auto reopened = LocalEngine::Open(dir.path());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Snapshot(**reopened), state_before_reopen);
  AftNode reader("reader", **reopened, clock, FastNodeOptions());
  ASSERT_TRUE(reader.Start().ok());
  auto txid = reader.StartTransaction();
  ASSERT_TRUE(txid.ok());
  for (int i = 0; i < 8; ++i) {
    if (i == 3) {
      auto read = reader.Get(*txid, "poisoned-key");
      ASSERT_TRUE(read.ok());
      EXPECT_FALSE(read->has_value());
    } else {
      auto read = reader.Get(*txid, "ok-" + std::to_string(i));
      ASSERT_TRUE(read.ok());
      ASSERT_TRUE(read->has_value()) << i;
      EXPECT_EQ(**read, "value-" + std::to_string(i));
    }
  }
}

// ---- concurrency stress (TSan leg) ------------------------------------------

TEST(CommitBatcherStress, ConcurrentCommittersUnderTransientFaults) {
  // Many committers race through the batcher against an engine that fails
  // writes at random; every failure is retried until it lands. Exercises
  // solo / leader / follower paths, leadership handoff, and per-member
  // poisoning concurrently. Run under TSan in CI.
  RealClock clock(0.002);
  SimDynamo engine(clock, InstantDynamoOptions());
  engine.InjectTransientFaults(0.05);

  AftNode node("n0", engine, clock, FastNodeOptions());
  ASSERT_TRUE(node.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> total_committed{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txid = node.StartTransaction();
        ASSERT_TRUE(txid.ok());
        const std::string value = std::to_string(t) + ":" + std::to_string(i);
        ASSERT_TRUE(node.Put(*txid, "slot-" + std::to_string(t), value).ok());
        ASSERT_TRUE(node.Put(*txid, "hot", value).ok());
        // Retry through transient faults; commit must eventually land.
        Status committed = Status::Unavailable("not yet");
        for (int attempt = 0; attempt < 200 && !committed.ok(); ++attempt) {
          auto result = node.CommitTransaction(*txid);
          committed = result.ok() ? Status::Ok() : result.status();
        }
        ASSERT_TRUE(committed.ok()) << committed.ToString();
        total_committed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(total_committed.load(), kThreads * kTxnsPerThread);

  engine.InjectTransientFaults(0.0);
  auto txid = node.StartTransaction();
  ASSERT_TRUE(txid.ok());
  for (int t = 0; t < kThreads; ++t) {
    auto read = node.Get(*txid, "slot-" + std::to_string(t));
    ASSERT_TRUE(read.ok());
    ASSERT_TRUE(read->has_value()) << t;
    // The thread's last committed write is its final value.
    EXPECT_EQ(**read, std::to_string(t) + ":" + std::to_string(kTxnsPerThread - 1));
  }
}

}  // namespace
}  // namespace aft
