// Tests for the TCP transport (src/net): wire framing robustness, message
// serde round-trips, the AFT service server + remote client over real
// loopback sockets, fault injection (server killed mid-commit), and the
// socket-based commit multicast with fault-manager recovery.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "src/common/rng.h"
#include "src/cluster/deployment.h"
#include "src/core/records.h"
#include "src/net/client.h"
#include "src/net/frame.h"
#include "src/net/message.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/tcp_multicast_bus.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using net::AftServiceServer;
using net::AftServiceServerOptions;
using net::DecodeFrame;
using net::EncodeFrame;
using net::Frame;
using net::Listener;
using net::MessageType;
using net::NetEndpoint;
using net::ReadFrame;
using net::RemoteAftClient;
using net::RemoteAftClientOptions;
using net::Socket;
using net::TcpConnect;
using net::WriteFrame;

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

// Client options tuned for tests: fail fast instead of the production-grade
// ten-second budgets.
RemoteAftClientOptions FastClient() {
  RemoteAftClientOptions options;
  options.connect_timeout = std::chrono::seconds(2);
  options.call_timeout = std::chrono::seconds(5);
  options.initial_backoff = std::chrono::milliseconds(1);
  options.max_backoff = std::chrono::milliseconds(20);
  options.max_attempts = 2;
  return options;
}

// ---- Frame layer ------------------------------------------------------------

TEST(FrameTest, Crc32MatchesKnownVector) {
  // The canonical CRC-32 check value (IEEE 802.3, reflected 0xEDB88320).
  EXPECT_EQ(net::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(net::Crc32(""), 0x00000000u);
}

TEST(FrameTest, RoundTripsPayloads) {
  const std::string payloads[] = {
      "",
      "hello",
      std::string("\x00\x01\xff\x7f binary \x00", 14),
      std::string(1 << 20, 'x'),
  };
  for (const std::string& payload : payloads) {
    const std::string bytes = EncodeFrame(MessageType::kCommit, payload);
    ASSERT_EQ(bytes.size(), net::kFrameHeaderSize + payload.size());
    auto frame = DecodeFrame(bytes);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, MessageType::kCommit);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(FrameTest, RejectsBadMagic) {
  std::string bytes = EncodeFrame(MessageType::kGet, "payload");
  bytes[0] ^= 0xff;
  auto frame = DecodeFrame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsUnsupportedVersion) {
  std::string bytes = EncodeFrame(MessageType::kGet, "payload");
  bytes[4] = 99;  // version field
  auto frame = DecodeFrame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsUnknownMessageType) {
  std::string bytes = EncodeFrame(MessageType::kGet, "payload");
  bytes[5] = 0x7f;  // type field: not a known request or response
  auto frame = DecodeFrame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsCorruptPayload) {
  std::string bytes = EncodeFrame(MessageType::kPut, "checksummed-payload");
  bytes[net::kFrameHeaderSize + 3] ^= 0x10;  // flip one payload bit
  auto frame = DecodeFrame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsOversizedLength) {
  std::string bytes = EncodeFrame(MessageType::kPut, "small");
  // Patch the length field (offset 8, little-endian) to a hostile value.
  bytes[8] = bytes[9] = bytes[10] = bytes[11] = static_cast<char>(0xff);
  auto frame = DecodeFrame(bytes);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, RejectsEveryTruncation) {
  const std::string bytes = EncodeFrame(MessageType::kMultiGet, "truncate-me");
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto frame = DecodeFrame(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(frame.ok()) << "prefix of length " << len << " decoded";
  }
}

TEST(FrameTest, TruncatedFrameOverSocketIsAnError) {
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto writer = TcpConnect(NetEndpoint{"127.0.0.1", listener->port()}, std::chrono::seconds(2));
  ASSERT_TRUE(writer.ok());
  auto reader = listener->Accept();
  ASSERT_TRUE(reader.ok());

  // A valid frame cut off mid-payload, then EOF: the reader must surface an
  // error, not hang or fabricate a short message.
  const std::string bytes = EncodeFrame(MessageType::kPut, "this payload will be cut off");
  ASSERT_TRUE(writer->SendAll(bytes.data(), bytes.size() - 10).ok());
  writer->Close();
  auto frame = ReadFrame(*reader);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
}

// ---- Message serde ----------------------------------------------------------

TEST(MessageTest, RequestsRoundTrip) {
  const Uuid txid(0x1122334455667788ull, 0x99aabbccddeeff00ull);

  net::GetRequest get;
  get.txid = txid;
  get.key = "user:42";
  auto get2 = net::GetRequest::Deserialize(get.Serialize());
  ASSERT_TRUE(get2.ok());
  EXPECT_EQ(get2->txid, txid);
  EXPECT_EQ(get2->key, "user:42");

  net::MultiGetRequest mget;
  mget.txid = txid;
  mget.keys = {"a", "b", "c"};
  auto mget2 = net::MultiGetRequest::Deserialize(mget.Serialize());
  ASSERT_TRUE(mget2.ok());
  EXPECT_EQ(mget2->keys, mget.keys);

  net::PutRequest put;
  put.txid = txid;
  put.key = "k";
  put.value = std::string("\x00\x01 binary \xff", 11);
  auto put2 = net::PutRequest::Deserialize(put.Serialize());
  ASSERT_TRUE(put2.ok());
  EXPECT_EQ(put2->value, put.value);

  net::PutBatchRequest batch;
  batch.txid = txid;
  batch.ops = {{"k1", "v1"}, {"k2", "v2"}};
  auto batch2 = net::PutBatchRequest::Deserialize(batch.Serialize());
  ASSERT_TRUE(batch2.ok());
  ASSERT_EQ(batch2->ops.size(), 2u);
  EXPECT_EQ(batch2->ops[1].key, "k2");
  EXPECT_EQ(batch2->ops[1].value, "v2");
}

TEST(MessageTest, CommitRecordsRoundTripThroughApplyCommits) {
  auto record = std::make_shared<CommitRecord>();
  record->id = TxnId{1234567, Uuid(7, 9)};
  record->write_set = {"alpha", "beta"};
  record->segment_count = 1;
  record->locators = {{"alpha", 0, 0, 5}, {"beta", 0, 5, 7}};

  net::ApplyCommitsRequest request;
  request.records = {record};
  auto decoded = net::ApplyCommitsRequest::Deserialize(request.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->records.size(), 1u);
  const CommitRecord& out = *decoded->records[0];
  EXPECT_EQ(out.id, record->id);
  EXPECT_EQ(out.write_set, record->write_set);
  ASSERT_EQ(out.locators.size(), 2u);
  EXPECT_EQ(out.locators[1].key, "beta");
  EXPECT_EQ(out.locators[1].length, 7u);
}

TEST(MessageTest, ResponsesCarryStatusVerbatim) {
  net::CommitResponse commit;
  commit.id = TxnId{42, Uuid(1, 2)};
  auto ok = net::CommitResponse::Deserialize(commit.Serialize(Status::Ok()));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->id, commit.id);

  auto aborted =
      net::CommitResponse::Deserialize(net::CommitResponse{}.Serialize(Status::Aborted("lost")));
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(aborted.status().code(), StatusCode::kAborted);
  EXPECT_EQ(aborted.status().message(), "lost");

  EXPECT_TRUE(net::DeserializeEmptyResponse(net::SerializeEmptyResponse(Status::Ok())).ok());
  const Status not_found =
      net::DeserializeEmptyResponse(net::SerializeEmptyResponse(Status::NotFound("missing")));
  EXPECT_EQ(not_found.code(), StatusCode::kNotFound);
}

TEST(MessageTest, DecodersRejectGarbageAndTruncation) {
  const std::string garbage = "this is not a serialized message at all....";
  EXPECT_FALSE(net::GetRequest::Deserialize(garbage).ok());
  EXPECT_FALSE(net::PutBatchRequest::Deserialize(garbage).ok());
  EXPECT_FALSE(net::ApplyCommitsRequest::Deserialize(garbage).ok());
  EXPECT_FALSE(net::CommitResponse::Deserialize(garbage).ok());

  net::PutRequest put;
  put.txid = Uuid(1, 2);
  put.key = "k";
  put.value = "value";
  const std::string bytes = put.Serialize();
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(net::PutRequest::Deserialize(bytes.substr(0, len)).ok());
  }
  // Trailing junk is rejected too (a frame is exactly one message).
  EXPECT_FALSE(net::PutRequest::Deserialize(bytes + "junk").ok());
}

// A list count field is wire-controlled: a tiny payload claiming billions of
// elements must be rejected up front, not answered with a multi-gigabyte
// reserve() (memory DoS in production, minutes of shadow poisoning under
// ASan). Each decoder bounds the count by the bytes that could back it.
TEST(MessageTest, HostileListCountsAreRejectedWithoutAllocating) {
  BinaryWriter hostile_batch;
  net::EncodeUuid(hostile_batch, Uuid(1, 2));
  hostile_batch.PutU32(0xffffffffu);  // four billion ops, zero bytes of data
  EXPECT_FALSE(net::PutBatchRequest::Deserialize(hostile_batch.data()).ok());

  BinaryWriter hostile_gossip;
  hostile_gossip.PutU32(0xfffffffeu);
  EXPECT_FALSE(net::ApplyCommitsRequest::Deserialize(hostile_gossip.data()).ok());

  // Same for the string-vector primitive every record decoder leans on.
  BinaryWriter hostile_vec;
  hostile_vec.PutU32(0x80000000u);
  BinaryReader reader(hostile_vec.data());
  std::vector<std::string> out;
  EXPECT_FALSE(reader.GetStringVector(&out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.capacity(), 0u);

  // And for commit records (they travel inside kApplyCommits frames): forge a
  // record whose locator count claims more than the payload holds.
  CommitRecord record;
  record.id = TxnId{1, Uuid(3, 4)};
  record.write_set = {"k"};
  std::string bytes = record.Serialize();
  // Locator count is the last u32 before the (empty) locator list.
  ASSERT_GE(bytes.size(), 4u);
  bytes[bytes.size() - 4] = '\xff';
  bytes[bytes.size() - 3] = '\xff';
  bytes[bytes.size() - 2] = '\xff';
  bytes[bytes.size() - 1] = '\xff';
  EXPECT_FALSE(CommitRecord::Deserialize(bytes).ok());
}

// ---- Server + remote client over real sockets -------------------------------

class NetServiceTest : public ::testing::Test {
 protected:
  NetServiceTest() : storage_(clock_, InstantDynamo()), node_("aft-0", storage_, clock_) {
    EXPECT_TRUE(node_.Start().ok());
  }

  SimClock clock_;
  SimDynamo storage_;
  AftNode node_;
};

TEST_F(NetServiceTest, CommitReadCycleOverTcp) {
  AftServiceServer server(node_);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  RemoteAftClient client({server.endpoint()}, FastClient());

  EXPECT_EQ(client.Ping(0).value_or("?"), "aft-0");

  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(client.Put(*session, "account:alice", "100").ok());
  // Read-your-writes across the wire.
  auto own = client.Get(*session, "account:alice");
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->value(), "100");
  auto committed = client.Commit(*session);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();

  // A fresh transaction (fresh connection state server-side) sees the commit.
  auto reader = client.StartTransaction();
  ASSERT_TRUE(reader.ok());
  auto read = client.Get(*reader, "account:alice");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value(), "100");
  EXPECT_TRUE(client.Abort(*reader).ok());
  server.Stop();
}

TEST_F(NetServiceTest, MultiGetAndPutBatchOverTcp) {
  AftServiceServer server(node_);
  ASSERT_TRUE(server.Start().ok());
  RemoteAftClient client({server.endpoint()}, FastClient());

  auto writer = client.StartTransaction();
  ASSERT_TRUE(writer.ok());
  const WriteOp ops[] = {{"mk:1", "v1"}, {"mk:2", "v2"}, {"mk:3", "v3"}};
  ASSERT_TRUE(client.PutBatch(*writer, ops).ok());
  ASSERT_TRUE(client.Commit(*writer).ok());

  auto reader = client.StartTransaction();
  ASSERT_TRUE(reader.ok());
  const std::string keys[] = {"mk:1", "mk:404", "mk:3"};
  auto reads = client.MultiGet(*reader, keys);
  ASSERT_TRUE(reads.ok()) << reads.status().ToString();
  ASSERT_EQ(reads->size(), 3u);  // Positional, including the miss.
  EXPECT_EQ((*reads)[0].value.value(), "v1");
  EXPECT_FALSE((*reads)[1].value.has_value());
  EXPECT_EQ((*reads)[2].value.value(), "v3");
  EXPECT_TRUE(client.Abort(*reader).ok());
  server.Stop();
}

TEST_F(NetServiceTest, SemanticErrorsTravelVerbatim) {
  AftServiceServer server(node_);
  ASSERT_TRUE(server.Start().ok());
  RemoteAftClient client({server.endpoint()}, FastClient());

  // Commit of a transaction the node has never seen: the server-side
  // kFailedPrecondition must arrive unchanged, not as a transport error.
  net::RemoteTxnSession forged;
  forged.endpoint = 0;
  forged.txid = Uuid(123, 456);
  forged.started = true;
  auto committed = client.Commit(forged);
  ASSERT_FALSE(committed.ok());
  EXPECT_EQ(committed.status().code(), StatusCode::kFailedPrecondition);
  server.Stop();
}

TEST_F(NetServiceTest, GarbageBytesDoNotKillTheServer) {
  AftServiceServer server(node_);
  ASSERT_TRUE(server.Start().ok());

  {
    auto raw = TcpConnect(server.endpoint(), std::chrono::seconds(2));
    ASSERT_TRUE(raw.ok());
    const std::string garbage = "GET / HTTP/1.1\r\nHost: not-aft\r\n\r\n";
    ASSERT_TRUE(raw->SendAll(garbage).ok());
    // The server drops the connection (the stream cannot be resynced).
    char byte;
    EXPECT_EQ(raw->RecvAll(&byte, 1).code(), StatusCode::kUnavailable);
  }

  // The server survives and serves well-formed clients.
  RemoteAftClient client({server.endpoint()}, FastClient());
  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(client.Put(*session, "k", "v").ok());
  ASSERT_TRUE(client.Commit(*session).ok());
  EXPECT_GE(server.stats().bad_frames.load(), 1u);
  server.Stop();
}

TEST(NetClientTest, TimesOutOnSilentServer) {
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  // Accept the connection, then never reply.
  std::thread sink([&listener] {
    auto accepted = listener->Accept();
    if (accepted.ok()) {
      char buffer[256];
      (void)accepted->RecvAll(buffer, sizeof(buffer));  // Swallow the request; EOF ends us.
    }
  });

  RemoteAftClientOptions options = FastClient();
  options.call_timeout = std::chrono::milliseconds(200);
  options.max_attempts = 1;
  RemoteAftClient client({NetEndpoint{"127.0.0.1", listener->port()}}, options);
  auto pong = client.Ping(0);
  ASSERT_FALSE(pong.ok());
  EXPECT_EQ(pong.status().code(), StatusCode::kTimeout);

  listener->Shutdown();
  sink.join();
}

TEST_F(NetServiceTest, PipelinedDeadlineExpiriesOnSilentServerAllReturnAndRecover) {
  // Regression: a caller whose deadline expired while the reader role was
  // free used to re-claim the role in a tight loop with the channel mutex
  // held (RunReader bounces straight off its own TimeLeft check) — the call
  // never returned and every other caller on the channel wedged behind the
  // mutex. And once every in-flight caller had abandoned its slot, no reader
  // was left to drain the queue, so the pipeline stayed occupied forever.
  auto listener = Listener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  // Accept one connection and swallow its bytes forever, never replying.
  std::thread sink([&listener] {
    auto accepted = listener->Accept();
    if (accepted.ok()) {
      char byte;
      while (accepted->RecvAll(&byte, 1).ok()) {
      }
    }
  });

  RemoteAftClientOptions options = FastClient();
  options.call_timeout = std::chrono::milliseconds(300);
  options.max_attempts = 1;
  options.connections_per_endpoint = 1;  // Every caller shares one channel.
  options.max_inflight = 8;
  RemoteAftClient client({NetEndpoint{"127.0.0.1", port}}, options);

  constexpr size_t kCallers = 6;
  std::vector<Status> statuses(kCallers, Status::Ok());
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&client, &statuses, c] {
      statuses[c] = client.Ping(0).status();
    });
  }
  for (auto& t : callers) {
    t.join();  // Pre-fix this hung: one spinner held the channel mutex.
  }
  for (const Status& status : statuses) {
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.code() == StatusCode::kTimeout ||
                status.code() == StatusCode::kUnavailable)
        << status.ToString();
  }
  listener->Shutdown();
  sink.join();

  // The abandoned slots must not wedge the channel: against a real server on
  // the same port, the next call re-dials and succeeds on a clean stream.
  AftServiceServerOptions server_options;
  server_options.port = port;
  AftServiceServer server(node_, server_options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(client.Ping(0).ok());
  server.Stop();
}

TEST_F(NetServiceTest, ClientReconnectsAfterServerRestart) {
  auto first = std::make_unique<AftServiceServer>(node_);
  ASSERT_TRUE(first->Start().ok());
  const uint16_t port = first->port();
  RemoteAftClient client({first->endpoint()}, FastClient());
  EXPECT_TRUE(client.Ping(0).ok());

  first->Stop();
  first.reset();
  // The pooled connection is now dead AND the port is closed: the call fails
  // with a transport error after retries.
  EXPECT_FALSE(client.Ping(0).ok());

  // Same port, fresh server (simulates a restarted process). The client
  // re-dials transparently.
  AftServiceServerOptions options;
  options.port = port;
  AftServiceServer second(node_, options);
  ASSERT_TRUE(second.Start().ok());
  EXPECT_TRUE(client.Ping(0).ok());
  EXPECT_GE(client.stats().reconnects.load(), 1u);
  second.Stop();
}

// ---- Fault injection: server killed mid-commit ------------------------------
//
// The write-ordering invariant (§3.3): key versions are written BEFORE the
// commit record, so a node that dies between the two must leave NO visible
// dirty data — a second client reading after the crash sees nothing.

TEST(NetFaultTest, ServerKilledMidCommitLeavesNoDirtyData) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());

  AftServiceServer* server_hook = nullptr;
  AftNodeOptions node_options;
  // Crash AFTER the data write, BEFORE the commit record: the worst case for
  // dirty reads. The hook also tears the TCP connection, exactly as a kill -9
  // of the server process would.
  node_options.crash_hook = [&server_hook](CrashPoint point) {
    if (point == CrashPoint::kAfterDataWrite && server_hook != nullptr) {
      server_hook->AbandonConnections();
      return true;
    }
    return false;
  };
  AftNode node("aft-0", storage, clock, node_options);
  ASSERT_TRUE(node.Start().ok());
  AftServiceServer server(node);
  ASSERT_TRUE(server.Start().ok());
  server_hook = &server;

  RemoteAftClientOptions options = FastClient();
  options.call_timeout = std::chrono::seconds(2);
  options.max_attempts = 1;
  RemoteAftClient client({server.endpoint()}, options);

  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(client.Put(*session, "k", "dirty").ok());
  auto committed = client.Commit(*session);
  // The client observes a failure — torn connection or the dying node's
  // kUnavailable — NEVER a successful commit.
  ASSERT_FALSE(committed.ok());
  EXPECT_FALSE(node.alive());
  server_hook = nullptr;
  server.Stop();

  // The data version reached storage (write-ordering step 1)...
  EXPECT_TRUE(storage.Get(VersionStorageKey("k", session->txid)).ok());

  // ...but a recovered node over the same storage serves NO value for "k":
  // without a commit record the write never happened (step 2 was not reached).
  AftNode recovered("aft-1", storage, clock);
  ASSERT_TRUE(recovered.Start().ok());
  AftServiceServer recovered_server(recovered);
  ASSERT_TRUE(recovered_server.Start().ok());
  RemoteAftClient reader({recovered_server.endpoint()}, FastClient());
  auto reader_session = reader.StartTransaction();
  ASSERT_TRUE(reader_session.ok());
  auto read = reader.Get(*reader_session, "k");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->has_value());
  EXPECT_TRUE(reader.Abort(*reader_session).ok());
  recovered_server.Stop();
}

// ---- Threading matrix: both server models, explicitly ------------------------
//
// The AFT_NET_THREADING env var flips the process-wide default (the CI matrix
// dimension); these tests pin the mode per server so one binary always covers
// BOTH models regardless of environment.

class ThreadingMatrixTest : public ::testing::TestWithParam<net::ServerThreading> {
 protected:
  ThreadingMatrixTest() : storage_(clock_, InstantDynamo()), node_("aft-0", storage_, clock_) {
    EXPECT_TRUE(node_.Start().ok());
    server_options_.threading = GetParam();
  }

  SimClock clock_;
  SimDynamo storage_;
  AftNode node_;
  AftServiceServerOptions server_options_;
};

TEST_P(ThreadingMatrixTest, CommitReadCycle) {
  AftServiceServer server(node_, server_options_);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.threading(), GetParam());
  RemoteAftClient client({server.endpoint()}, FastClient());

  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(client.Put(*session, "tm:k", "v").ok());
  ASSERT_TRUE(client.Commit(*session).ok());
  auto reader = client.StartTransaction();
  ASSERT_TRUE(reader.ok());
  auto read = client.Get(*reader, "tm:k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value(), "v");
  EXPECT_TRUE(client.Abort(*reader).ok());
  server.Stop();
}

// The pipelining contract at the wire level: N request frames written
// back-to-back on ONE connection come back as N responses in request order,
// even though (in event-loop mode) the handlers run concurrently on the
// worker pool and finish in any order.
TEST_P(ThreadingMatrixTest, PipelinedRequestsAnswerInOrder) {
  AftServiceServer server(node_, server_options_);
  ASSERT_TRUE(server.Start().ok());

  // Commit distinct values the pipelined Gets will read back.
  constexpr size_t kDepth = 32;
  auto writer = node_.StartTransaction();
  ASSERT_TRUE(writer.ok());
  for (size_t i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(node_.Put(*writer, "pipe:" + std::to_string(i), "value-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(node_.CommitTransaction(*writer).ok());

  auto reader_txn = node_.StartTransaction();
  ASSERT_TRUE(reader_txn.ok());

  auto raw = TcpConnect(server.endpoint(), std::chrono::seconds(2));
  ASSERT_TRUE(raw.ok());
  // One syscall, kDepth frames: the whole pipeline is on the wire before the
  // first response is read.
  std::string burst;
  for (size_t i = 0; i < kDepth; ++i) {
    net::GetRequest request;
    request.txid = *reader_txn;
    request.key = "pipe:" + std::to_string(i);
    burst += EncodeFrame(MessageType::kGet, request.Serialize());
  }
  ASSERT_TRUE(raw->SendAll(burst).ok());

  for (size_t i = 0; i < kDepth; ++i) {
    auto frame = ReadFrame(*raw);
    ASSERT_TRUE(frame.ok()) << "response " << i << ": " << frame.status().ToString();
    ASSERT_EQ(frame->type, net::ResponseType(MessageType::kGet));
    auto response = net::GetResponse::Deserialize(frame->payload);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->read.value.has_value());
    EXPECT_EQ(*response->read.value, "value-" + std::to_string(i)) << "out of order at " << i;
  }
  ASSERT_TRUE(node_.AbortTransaction(*reader_txn).ok());
  server.Stop();
}

// Overlapping client calls multiplexed onto ONE pooled connection: every call
// succeeds and the server really saw a single connection (the pool did not
// silently widen).
TEST_P(ThreadingMatrixTest, ConcurrentCallersShareOneConnection) {
  AftServiceServer server(node_, server_options_);
  ASSERT_TRUE(server.Start().ok());
  RemoteAftClientOptions options = FastClient();
  options.connections_per_endpoint = 1;
  options.max_inflight = 64;
  RemoteAftClient client({server.endpoint()}, options);

  constexpr size_t kThreads = 8;
  constexpr int kOpsPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&client, &failures, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto session = client.StartTransaction();
        if (!session.ok()) { ++failures; continue; }
        const std::string key = "mux:" + std::to_string(t) + ":" + std::to_string(i);
        if (!client.Put(*session, key, "v").ok() || !client.Commit(*session).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().connections_accepted.load(), 1u);
  server.Stop();
}

// Mid-pipeline connection kill: calls in flight when the stream tears fail
// with a TRANSPORT status (never a wrong answer, never a hang), and the same
// client reconnects cleanly for subsequent calls.
TEST_P(ThreadingMatrixTest, MidPipelineKillFailsOnlyInflightThenReconnects) {
  AftServiceServer server(node_, server_options_);
  ASSERT_TRUE(server.Start().ok());
  RemoteAftClientOptions options = FastClient();
  options.connections_per_endpoint = 1;
  options.max_inflight = 64;
  options.max_attempts = 1;  // No retries: a torn in-flight call must surface.
  options.call_timeout = std::chrono::seconds(5);
  RemoteAftClient client({server.endpoint()}, options);

  std::atomic<bool> stop{false};
  std::atomic<int> ok_calls{0};
  std::atomic<int> transport_failures{0};
  std::atomic<int> wrong_failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto pong = client.Ping(0);
        if (pong.ok()) {
          ++ok_calls;
        } else if (pong.status().code() == StatusCode::kUnavailable ||
                   pong.status().code() == StatusCode::kTimeout) {
          ++transport_failures;
        } else {
          ++wrong_failures;
        }
      }
    });
  }
  // Let the pipeline fill, tear every connection, let traffic resume, repeat.
  for (int kill = 0; kill < 3; ++kill) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    server.AbandonConnections();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_GT(ok_calls.load(), 0);
  EXPECT_EQ(wrong_failures.load(), 0);  // Failures are transport-coded only.
  // The SAME client object works after the kills (fresh dial on a live port).
  EXPECT_TRUE(client.Ping(0).ok());
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(BothModes, ThreadingMatrixTest,
                         ::testing::Values(net::ServerThreading::kThreadPerConn,
                                           net::ServerThreading::kEventLoop),
                         [](const auto& info) {
                           return info.param == net::ServerThreading::kEventLoop ? "EventLoop"
                                                                                 : "ThreadPerConn";
                         });

// ---- Client backoff ---------------------------------------------------------

TEST(BackoffTest, FullJitterStaysWithinExponentialCap) {
  Rng rng(42);
  const Duration initial = Millis(10);
  const Duration cap = Millis(500);
  for (int attempt = 0; attempt < 12; ++attempt) {
    // Expected ceiling: min(cap, initial * 2^attempt).
    Duration ceiling = initial;
    for (int i = 0; i < attempt && ceiling < cap; ++i) {
      ceiling *= 2;
    }
    if (ceiling > cap) {
      ceiling = cap;
    }
    for (int trial = 0; trial < 200; ++trial) {
      const Duration d = net::BackoffWithJitter(initial, cap, attempt, rng);
      EXPECT_GE(d.count(), 0) << "attempt " << attempt;
      EXPECT_LE(d.count(), ceiling.count()) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, JitterActuallyVaries) {
  // Full jitter exists to de-synchronize retry stampedes; a degenerate
  // implementation returning the ceiling (or zero) every time would pass the
  // bounds test but defeat the point.
  Rng rng(7);
  std::set<Duration::rep> distinct;
  for (int trial = 0; trial < 64; ++trial) {
    distinct.insert(net::BackoffWithJitter(Millis(10), Millis(500), 4, rng).count());
  }
  EXPECT_GT(distinct.size(), 8u);
}

// ---- TcpMulticastBus --------------------------------------------------------

ClusterOptions TcpManualCluster(size_t nodes) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.transport = ClusterTransport::kTcp;
  options.start_background_threads = false;
  return options;
}

class TcpBusTest : public ::testing::Test {
 protected:
  TcpBusTest() : storage_(clock_, InstantDynamo()) {}

  TxnId CommitVia(AftNode& node, const std::string& key, const std::string& value) {
    auto txid = node.StartTransaction();
    EXPECT_TRUE(txid.ok());
    EXPECT_TRUE(node.Put(*txid, key, value).ok());
    auto committed = node.CommitTransaction(*txid);
    EXPECT_TRUE(committed.ok());
    return committed.ok() ? *committed : TxnId();
  }

  std::optional<std::string> ReadVia(AftNode& node, const std::string& key) {
    auto txid = node.StartTransaction();
    auto result = node.Get(*txid, key);
    EXPECT_TRUE(result.ok());
    (void)node.AbortTransaction(*txid);
    return result.ok() ? *result : std::nullopt;
  }

  SimClock clock_;
  SimDynamo storage_;
};

TEST_F(TcpBusTest, GossipDeliversCommitsOverSockets) {
  ClusterDeployment cluster(storage_, clock_, TcpManualCluster(3));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_EQ(cluster.ServiceEndpoints().size(), 3u);

  CommitVia(*cluster.node(0), "k", "over-tcp");
  EXPECT_FALSE(ReadVia(*cluster.node(1), "k").has_value());
  cluster.bus().RunOnce();
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "over-tcp");
  EXPECT_EQ(ReadVia(*cluster.node(2), "k").value(), "over-tcp");
  EXPECT_EQ(cluster.bus().stats().delivery_errors.load(), 0u);
  // Supersedence pruning runs over the socket path too.
  CommitVia(*cluster.node(0), "p", "old");
  CommitVia(*cluster.node(0), "p", "new");
  cluster.bus().RunOnce();
  EXPECT_EQ(cluster.bus().stats().records_pruned.load(), 1u);
  EXPECT_EQ(ReadVia(*cluster.node(1), "p").value(), "new");
}

TEST_F(TcpBusTest, RemoteClientAgainstDeploymentEndpoints) {
  ClusterDeployment cluster(storage_, clock_, TcpManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  RemoteAftClient client(cluster.ServiceEndpoints(), FastClient());

  // Round-robin start: consecutive transactions land on different nodes, and
  // the session stays pinned to its endpoint.
  auto s0 = client.StartTransaction();
  auto s1 = client.StartTransaction();
  ASSERT_TRUE(s0.ok() && s1.ok());
  EXPECT_NE(s0->endpoint, s1->endpoint);
  ASSERT_TRUE(client.Put(*s0, "k", "from-remote").ok());
  ASSERT_TRUE(client.Commit(*s0).ok());
  EXPECT_TRUE(client.Abort(*s1).ok());

  cluster.bus().RunOnce();
  EXPECT_EQ(ReadVia(*cluster.node(0), "k").value(), "from-remote");
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "from-remote");
}

TEST_F(TcpBusTest, DeliveryFailuresAreCountedNotRetried) {
  ClusterDeployment cluster(storage_, clock_, TcpManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  auto& bus = static_cast<net::TcpMulticastBus&>(cluster.bus());

  // Receiver's socket dies (machine lost its network, node process fine).
  bus.KillEndpoint(cluster.node(1));
  CommitVia(*cluster.node(0), "k", "lost-on-the-wire");
  cluster.bus().RunOnce();
  EXPECT_GE(cluster.bus().stats().delivery_errors.load(), 1u);
  // The bus does NOT retry: node 1 is missing the record (the fault
  // manager's scan is the recovery path, exercised below).
  EXPECT_FALSE(ReadVia(*cluster.node(1), "k").has_value());
}

// One dead peer must cost only its own delivery: in the SAME gossip round,
// every healthy peer still receives the records (deliveries are concurrent
// and independently error-handled — a refused/timed-out peer is never
// serialized before, and never aborts, the others).
TEST_F(TcpBusTest, DeadPeerDoesNotDelayHealthyDelivery) {
  ClusterDeployment cluster(storage_, clock_, TcpManualCluster(3));
  ASSERT_TRUE(cluster.Start().ok());
  auto& bus = static_cast<net::TcpMulticastBus&>(cluster.bus());

  bus.KillEndpoint(cluster.node(2));  // Node 2's network died; 0 and 1 are fine.
  CommitVia(*cluster.node(0), "iso:k", "healthy-path");
  cluster.bus().RunOnce();

  // Same round: the healthy peer has the record, the dead one does not, and
  // the failure is visible in stats for the NEXT round's re-dial to clear.
  EXPECT_EQ(ReadVia(*cluster.node(1), "iso:k").value(), "healthy-path");
  EXPECT_FALSE(ReadVia(*cluster.node(2), "iso:k").has_value());
  EXPECT_GE(cluster.bus().stats().delivery_errors.load(), 1u);
}

// The kill-the-socket test: node 0 ACKs a commit to its client, then the
// whole machine dies — process AND socket — before any gossip round. The
// fault manager's liveness scan must recover the commit from storage (§4.2)
// with the transport running over real sockets.
TEST_F(TcpBusTest, KilledSocketCommitRecoveredFromStorage) {
  ClusterOptions options = TcpManualCluster(2);
  options.fault_manager.failure_detection_delay = Millis(10);
  ClusterDeployment cluster(storage_, clock_, options);
  ASSERT_TRUE(cluster.Start().ok());
  auto& bus = static_cast<net::TcpMulticastBus&>(cluster.bus());

  CommitVia(*cluster.node(0), "k", "acked");  // Client got its ACK.
  bus.KillEndpoint(cluster.node(0));          // Socket gone...
  cluster.KillNode(0);                        // ...process gone.

  cluster.bus().RunOnce();  // Gossip cannot drain the dead node.
  EXPECT_FALSE(ReadVia(*cluster.node(1), "k").has_value());

  // The commit record is in storage; past the liveness grace window the scan
  // finds it and notifies the survivors.
  clock_.Advance(std::chrono::seconds(5));
  EXPECT_EQ(cluster.fault_manager().RunLivenessScanOnce(), 1u);
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "acked");
}

}  // namespace
}  // namespace aft
